//! Deterministic, dependency-free randomness for the workspace's
//! randomized tests.
//!
//! The seed tests originally used `proptest`, which this environment cannot
//! fetch from a registry. The randomized suites now draw from this crate's
//! [`Rng`] (a SplitMix64 generator) instead: every test enumerates seeds
//! `0..cases(N)` so failures are reproducible by seed number, runs are
//! identical across machines, and the workspace builds fully offline.
//!
//! Case counts scale with the `slow-tests` feature (×8) or the
//! `DSWP_TEST_CASES` environment variable (an absolute override), so CI can
//! cheaply deepen coverage without code changes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// A SplitMix64 pseudo-random generator: tiny, fast, and statistically
/// solid for test-case generation (it seeds xoshiro in the literature).
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Distinct seeds give independent
    /// streams.
    pub fn new(seed: u64) -> Self {
        // Avalanche the seed once so small consecutive seeds diverge fast.
        Rng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        // Multiply-shift rejection-free mapping; bias is negligible for
        // test-sized bounds (< 2^32).
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(((self.next_u64() as u128 * span as u128) >> 64) as i64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// A uniformly random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.below(den) < num
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// A vector of `len` draws from `f`.
    pub fn vec<T>(&mut self, len: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        (0..len).map(|_| f(self)).collect()
    }
}

/// The number of randomized cases a test should run.
///
/// Returns `default`, multiplied by 8 under the `slow-tests` feature;
/// the `DSWP_TEST_CASES` environment variable overrides both.
pub fn cases(default: usize) -> usize {
    if let Ok(v) = std::env::var("DSWP_TEST_CASES") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    if cfg!(feature = "slow-tests") {
        default * 8
    } else {
        default
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::new(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let x = r.range_i64(-5, 9);
            assert!((-5..9).contains(&x));
            let u = r.range(3, 10);
            assert!((3..10).contains(&u));
        }
    }

    #[test]
    fn consecutive_seeds_diverge() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..256u64 {
            assert!(seen.insert(Rng::new(s).next_u64()));
        }
    }
}
