//! A minimal directed-graph representation shared by the dominator,
//! control-dependence and SCC computations.
//!
//! The analyses in this crate run both on function CFGs and on *derived*
//! graphs (the reversed CFG for post-dominators, the peeled loop CFG for
//! loop-iteration control dependence, the PDG for SCCs), so they are written
//! against this plain adjacency-list type rather than against
//! [`Function`](dswp_ir::Function) directly.

/// A directed graph over dense node ids `0..n`.
#[derive(Clone, Debug)]
pub struct Graph {
    succs: Vec<Vec<usize>>,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            succs: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Adds an edge `from → to` (parallel edges are collapsed).
    pub fn add_edge(&mut self, from: usize, to: usize) {
        if !self.succs[from].contains(&to) {
            self.succs[from].push(to);
        }
    }

    /// Successors of `node`.
    #[inline]
    pub fn succs(&self, node: usize) -> &[usize] {
        &self.succs[node]
    }

    /// Computes the predecessor lists of every node.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.len()];
        for (u, ss) in self.succs.iter().enumerate() {
            for &v in ss {
                preds[v].push(u);
            }
        }
        preds
    }

    /// The graph with all edges reversed.
    pub fn reversed(&self) -> Graph {
        let mut g = Graph::new(self.len());
        for (u, ss) in self.succs.iter().enumerate() {
            for &v in ss {
                g.add_edge(v, u);
            }
        }
        g
    }

    /// Reverse post-order of the nodes reachable from `entry`.
    pub fn reverse_post_order(&self, entry: usize) -> Vec<usize> {
        let mut visited = vec![false; self.len()];
        let mut order = Vec::with_capacity(self.len());
        // Iterative DFS with an explicit "post" marker to avoid recursion.
        let mut stack = vec![(entry, 0usize)];
        visited[entry] = true;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            if *next < self.succs[node].len() {
                let s = self.succs[node][*next];
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(node);
                stack.pop();
            }
        }
        order.reverse();
        order
    }

    /// Nodes reachable from `entry` (including `entry`).
    pub fn reachable(&self, entry: usize) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![entry];
        seen[entry] = true;
        while let Some(n) = stack.pop() {
            for &s in &self.succs[n] {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let g = diamond();
        let rpo = g.reverse_post_order(0);
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 4);
        assert_eq!(*rpo.last().unwrap(), 3);
    }

    #[test]
    fn rpo_ignores_unreachable() {
        let mut g = diamond();
        let _ = &mut g; // node 4 unreachable
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        let rpo = g.reverse_post_order(0);
        assert_eq!(rpo, vec![0, 1]);
    }

    #[test]
    fn reversed_swaps_edges() {
        let g = diamond().reversed();
        assert!(g.succs(3).contains(&1) && g.succs(3).contains(&2));
        assert!(g.succs(0).is_empty());
    }

    #[test]
    fn parallel_edges_collapse() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.succs(0).len(), 1);
    }

    #[test]
    fn reachable_set() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let r = g.reachable(0);
        assert_eq!(r, vec![true, true, false, false]);
    }

    #[test]
    fn rpo_handles_cycles() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        let rpo = g.reverse_post_order(0);
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo.len(), 3);
    }
}
