//! Dominator and post-dominator trees.
//!
//! Implemented with the Cooper–Harvey–Kennedy iterative algorithm over
//! reverse post-order. Post-dominators are dominators of the reversed graph
//! rooted at a virtual exit that every sink (return/halt block) feeds.

use crate::graph::Graph;

/// A dominator tree over a [`Graph`].
///
/// `idom[n]` is the immediate dominator of `n`; the entry is its own
/// immediate dominator; unreachable nodes have `None`.
#[derive(Clone, Debug)]
pub struct DomTree {
    entry: usize,
    idom: Vec<Option<usize>>,
    /// Reverse post-order index per node (used for intersection), `usize::MAX`
    /// for unreachable nodes.
    rpo_index: Vec<usize>,
}

impl DomTree {
    /// Computes the dominator tree of `g` rooted at `entry`.
    pub fn compute(g: &Graph, entry: usize) -> Self {
        let rpo = g.reverse_post_order(entry);
        let mut rpo_index = vec![usize::MAX; g.len()];
        for (i, &n) in rpo.iter().enumerate() {
            rpo_index[n] = i;
        }
        let preds = g.preds();
        let mut idom: Vec<Option<usize>> = vec![None; g.len()];
        idom[entry] = Some(entry);

        let mut changed = true;
        while changed {
            changed = false;
            for &n in rpo.iter().skip(1) {
                // First processed predecessor with a known idom.
                let mut new_idom: Option<usize> = None;
                for &p in &preds[n] {
                    if idom[p].is_some() {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, &rpo_index, p, cur),
                        });
                    }
                }
                if let Some(ni) = new_idom {
                    if idom[n] != Some(ni) {
                        idom[n] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        DomTree {
            entry,
            idom,
            rpo_index,
        }
    }

    /// The immediate dominator of `n` (`None` for the entry itself and for
    /// unreachable nodes).
    pub fn idom(&self, n: usize) -> Option<usize> {
        match self.idom[n] {
            Some(d) if n != self.entry => Some(d),
            _ => None,
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if self.idom[b].is_none() || self.idom[a].is_none() {
            return false;
        }
        let mut n = b;
        loop {
            if n == a {
                return true;
            }
            if n == self.entry {
                return false;
            }
            n = self.idom[n].expect("reachable node has idom");
        }
    }

    /// Whether `n` is reachable from the entry.
    pub fn is_reachable(&self, n: usize) -> bool {
        self.idom[n].is_some()
    }

    /// The tree root (graph entry).
    pub fn root(&self) -> usize {
        self.entry
    }

    fn intersect_pub(&self, a: usize, b: usize) -> usize {
        intersect(&self.idom, &self.rpo_index, a, b)
    }

    /// Nearest common ancestor of `a` and `b` in the tree.
    pub fn nearest_common_ancestor(&self, a: usize, b: usize) -> usize {
        self.intersect_pub(a, b)
    }
}

fn intersect(idom: &[Option<usize>], rpo_index: &[usize], a: usize, b: usize) -> usize {
    let (mut a, mut b) = (a, b);
    while a != b {
        while rpo_index[a] > rpo_index[b] {
            a = idom[a].expect("node in intersection has idom");
        }
        while rpo_index[b] > rpo_index[a] {
            b = idom[b].expect("node in intersection has idom");
        }
    }
    a
}

/// A post-dominator tree over a graph, rooted at a virtual exit node.
///
/// Built by reversing the graph and adding a virtual exit that is preceded
/// by every sink node (a node with no successors). Nodes from which no sink
/// is reachable (infinite loops) are unreachable in the post-dominance sense.
#[derive(Clone, Debug)]
pub struct PostDomTree {
    dom: DomTree,
    /// Dense id of the virtual exit node.
    virtual_exit: usize,
}

impl PostDomTree {
    /// Computes the post-dominator tree of `g`.
    ///
    /// `extra_exits` lists nodes that should additionally be connected to the
    /// virtual exit even if they have successors (e.g. loop-exit blocks when
    /// analyzing a loop sub-CFG in isolation).
    pub fn compute(g: &Graph, extra_exits: &[usize]) -> Self {
        let n = g.len();
        let virtual_exit = n;
        // Build reversed graph with the virtual exit as entry.
        let mut rev = Graph::new(n + 1);
        for u in 0..n {
            for &v in g.succs(u) {
                rev.add_edge(v, u);
            }
        }
        for u in 0..n {
            if g.succs(u).is_empty() {
                rev.add_edge(virtual_exit, u);
            }
        }
        for &u in extra_exits {
            rev.add_edge(virtual_exit, u);
        }
        let dom = DomTree::compute(&rev, virtual_exit);
        PostDomTree { dom, virtual_exit }
    }

    /// The immediate post-dominator of `n`. `None` when `n`'s only
    /// post-dominator is the virtual exit, or when `n` cannot reach an exit.
    pub fn ipdom(&self, n: usize) -> Option<usize> {
        match self.dom.idom(n) {
            Some(d) if d != self.virtual_exit => Some(d),
            _ => None,
        }
    }

    /// Whether `a` post-dominates `b` (reflexive).
    pub fn post_dominates(&self, a: usize, b: usize) -> bool {
        self.dom.dominates(a, b)
    }

    /// Whether `n` can reach an exit at all (nodes inside exitless cycles
    /// have no defined post-dominators).
    pub fn reaches_exit(&self, n: usize) -> bool {
        self.dom.is_reachable(n)
    }

    /// Walks the post-dominator chain of `n` (exclusive of `n`), up to the
    /// virtual exit.
    pub fn chain(&self, n: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cur = n;
        while let Some(d) = self.dom.idom(cur) {
            if d == self.virtual_exit {
                break;
            }
            out.push(d);
            cur = d;
        }
        out
    }

    /// Nearest common ancestor in the post-dominator tree (may be the
    /// virtual exit, in which case `None` is returned).
    pub fn nca(&self, a: usize, b: usize) -> Option<usize> {
        if !self.dom.is_reachable(a) || !self.dom.is_reachable(b) {
            return None;
        }
        let r = self.dom.nearest_common_ancestor(a, b);
        (r != self.virtual_exit).then_some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 4
    fn diamond_tail() -> Graph {
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g
    }

    #[test]
    fn idoms_of_diamond() {
        let g = diamond_tail();
        let d = DomTree::compute(&g, 0);
        assert_eq!(d.idom(0), None);
        assert_eq!(d.idom(1), Some(0));
        assert_eq!(d.idom(2), Some(0));
        assert_eq!(d.idom(3), Some(0));
        assert_eq!(d.idom(4), Some(3));
        assert!(d.dominates(0, 4));
        assert!(d.dominates(3, 4));
        assert!(!d.dominates(1, 3));
        assert!(d.dominates(2, 2));
    }

    #[test]
    fn dominators_with_loop() {
        // 0 -> 1 -> 2 -> 1, 2 -> 3
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1);
        g.add_edge(2, 3);
        let d = DomTree::compute(&g, 0);
        assert_eq!(d.idom(1), Some(0));
        assert_eq!(d.idom(2), Some(1));
        assert_eq!(d.idom(3), Some(2));
        assert!(d.dominates(1, 3));
    }

    #[test]
    fn post_dominators_of_diamond() {
        let g = diamond_tail();
        let pd = PostDomTree::compute(&g, &[]);
        assert_eq!(pd.ipdom(0), Some(3));
        assert_eq!(pd.ipdom(1), Some(3));
        assert_eq!(pd.ipdom(2), Some(3));
        assert_eq!(pd.ipdom(3), Some(4));
        assert_eq!(pd.ipdom(4), None);
        assert!(pd.post_dominates(3, 0));
        assert!(!pd.post_dominates(1, 0));
        assert_eq!(pd.chain(0), vec![3, 4]);
    }

    #[test]
    fn unreachable_nodes_have_no_idom() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        let d = DomTree::compute(&g, 0);
        assert_eq!(d.idom(2), None);
        assert!(!d.is_reachable(2));
        assert!(!d.dominates(0, 2));
    }

    #[test]
    fn dominance_is_brute_force_correct_on_small_graph() {
        // Compare against the definition: a dom b iff every path 0 -> b
        // passes through a. Enumerate by removing a and checking reachability.
        let g = diamond_tail();
        let d = DomTree::compute(&g, 0);
        for a in 0..5 {
            for b in 0..5 {
                let brute = brute_dominates(&g, 0, a, b);
                assert_eq!(d.dominates(a, b), brute, "a={a} b={b}");
            }
        }
    }

    fn brute_dominates(g: &Graph, entry: usize, a: usize, b: usize) -> bool {
        if a == b {
            return g.reachable(entry)[b];
        }
        if !g.reachable(entry)[b] {
            return false;
        }
        // Reachability of b from entry avoiding a.
        let mut seen = vec![false; g.len()];
        let mut stack = vec![entry];
        if entry == a {
            return true;
        }
        seen[entry] = true;
        while let Some(n) = stack.pop() {
            for &s in g.succs(n) {
                if s != a && !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        !seen[b]
    }
}
