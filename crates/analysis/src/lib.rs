//! Dependence analyses for the DSWP reproduction.
//!
//! This crate reconstructs the compiler analysis infrastructure the MICRO
//! 2005 DSWP paper obtained from the IMPACT compiler:
//!
//! * [`graph`] — a small directed-graph type shared by all analyses;
//! * [`dom`] — dominator and post-dominator trees (Cooper–Harvey–Kennedy);
//! * [`loops`] — natural-loop discovery with nesting depths;
//! * [`cdg`] — control dependence, standard (Ferrante–Ottenstein–Warren)
//!   plus the paper's **loop-iteration** extension computed on a
//!   conceptually peeled CFG (Section 2.3.1, Figure 4);
//! * [`dataflow`] — liveness and loop reaching definitions with
//!   loop-carried tagging;
//! * [`alias`] — memory disambiguation at three precision levels
//!   (conservative / region / affine), the knob behind the paper's epicdec
//!   case study (Section 5.1);
//! * [`pdg`] — the loop Program Dependence Graph, including conditional
//!   control dependences and live-out output coupling (Section 2.3.2,
//!   Figure 5);
//! * [`scc`] — Tarjan SCCs and the coalesced `DAG_SCC` (Figure 2(c)).
//!
//! The `dswp` crate consumes these to implement the transformation itself.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alias;
pub mod cdg;
pub mod cfg;
pub mod dataflow;
pub mod dom;
pub mod dot;
pub mod graph;
pub mod loops;
pub mod pdg;
pub mod scc;
pub mod scev;

pub use alias::{alias_query, AliasMode, AliasResult};
pub use cdg::{control_deps, loop_control_deps, LoopControlDep};
pub use dataflow::{loop_dataflow, Liveness, LoopDataFlow, RegDep};
pub use dom::{DomTree, PostDomTree};
pub use dot::{dag_to_dot, pdg_to_dot};
pub use graph::Graph;
pub use loops::{find_loops, NaturalLoop};
pub use pdg::{build_pdg, DepKind, Pdg, PdgArc, PdgNode, PdgOptions};
pub use scc::{strongly_connected_components, DagScc};
pub use scev::{annotate_affine, ScevStats};
