//! A miniature scalar-evolution analysis: automatic affine annotation of
//! memory accesses.
//!
//! The paper's epicdec case study hinges on "accurate memory analysis at
//! the assembly level" [Section 5.1]. The workloads can *assert* affine
//! facts via [`MemInfo::affine`](dswp_ir::op::MemInfo::affine); this module
//! instead **derives** them: it finds basic induction variables
//! (`i = i + C`, the only definition of `i` in the loop), symbolically
//! evaluates each load/store address as
//!
//! ```text
//! address = coeff · iv + Σ invariantⱼ + const
//! ```
//!
//! and annotates the access with a sound [`Affine`](dswp_ir::op::Affine)
//! pattern: two accesses receive the same `iv` label only when their
//! symbolic forms differ by a compile-time constant, so the
//! [`Precise`](crate::AliasMode::Precise) alias test's arithmetic is exact.
//!
//! The analysis is deliberately conservative: any register with multiple
//! intra-iteration reaching definitions, any non-linear operation, or any
//! value flowing around the back edge other than a basic IV makes the
//! address unanalyzable (and the access keeps its existing annotation).

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};

use dswp_ir::op::MemInfo;
use dswp_ir::{BinOp, Function, InstrId, Op, Operand, Reg, UnOp};

use crate::loops::NaturalLoop;

/// A linear symbolic value: `coeff·iv + Σ invariant terms + constant`.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Lin {
    /// The basic induction variable and its coefficient, if any.
    iv: Option<(Reg, i64)>,
    /// Loop-invariant registers with coefficients (sorted).
    inv: BTreeMap<Reg, i64>,
    /// Constant term.
    k: i64,
}

impl Lin {
    fn constant(k: i64) -> Self {
        Lin {
            iv: None,
            inv: BTreeMap::new(),
            k,
        }
    }

    fn invariant(r: Reg) -> Self {
        let mut inv = BTreeMap::new();
        inv.insert(r, 1);
        Lin {
            iv: None,
            inv,
            k: 0,
        }
    }

    fn iv(r: Reg) -> Self {
        Lin {
            iv: Some((r, 1)),
            inv: BTreeMap::new(),
            k: 0,
        }
    }

    fn add(&self, other: &Lin, sign: i64) -> Option<Lin> {
        let iv = match (self.iv, other.iv) {
            (a, None) => a,
            (None, Some((r, c))) => Some((r, sign * c)),
            (Some((r1, c1)), Some((r2, c2))) if r1 == r2 => {
                let c = c1 + sign * c2;
                (c != 0).then_some((r1, c))
            }
            _ => return None, // two different IVs: give up
        };
        let mut inv = self.inv.clone();
        for (&r, &c) in &other.inv {
            let e = inv.entry(r).or_insert(0);
            *e += sign * c;
            if *e == 0 {
                inv.remove(&r);
            }
        }
        Some(Lin {
            iv,
            inv,
            k: self.k.wrapping_add(sign.wrapping_mul(other.k)),
        })
    }

    fn scale(&self, s: i64) -> Lin {
        Lin {
            iv: self.iv.map(|(r, c)| (r, c * s)),
            inv: self.inv.iter().map(|(&r, &c)| (r, c * s)).collect(),
            k: self.k.wrapping_mul(s),
        }
    }
}

/// Result of an annotation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScevStats {
    /// Memory accesses that received a derived affine annotation.
    pub annotated: usize,
    /// Memory accesses whose address was not analyzable.
    pub unanalyzed: usize,
}

/// Derives affine annotations for the loads and stores of loop `l`,
/// writing them into the instructions' [`MemInfo`]. Existing `region`
/// annotations are preserved; existing `affine` annotations are
/// overwritten only when the analysis succeeds.
pub fn annotate_affine(f: &mut Function, l: &NaturalLoop) -> ScevStats {
    // Analyze an immutable snapshot; mutate `f` only when writing the
    // derived annotations at the end.
    let src = f.clone();
    // ---- find basic induction variables and loop-invariant registers ----
    // defs[r] = number of definitions of r inside the loop; iv_step[r] set
    // when the single def is `r = add r, Imm(c)`.
    let mut def_count: HashMap<Reg, usize> = HashMap::new();
    let mut iv_step: HashMap<Reg, i64> = HashMap::new();
    let mut def_site: HashMap<Reg, InstrId> = HashMap::new();
    for &b in &l.blocks {
        for &i in src.block(b).instrs() {
            if let Some(d) = src.op(i).def() {
                *def_count.entry(d).or_insert(0) += 1;
                def_site.insert(d, i);
                if let Op::Binary {
                    dst,
                    op: BinOp::Add,
                    lhs: Operand::Reg(x),
                    rhs: Operand::Imm(c),
                } = src.op(i)
                {
                    if dst == x {
                        iv_step.insert(*dst, *c);
                    }
                }
            }
        }
    }
    let is_iv = |r: Reg| def_count.get(&r) == Some(&1) && iv_step.contains_key(&r);
    let is_invariant = |r: Reg| !def_count.contains_key(&r);

    // ---- intra-iteration ordering (soundness guard) ----
    // `strictly_before(a, b)`: instruction `a` executes before `b` in every
    // iteration that executes both (same block index order, or a's block
    // reaches b's block without the back edge). Unordered pairs return
    // false, which makes the chase bail out.
    let order = {
        let local: BTreeMap<dswp_ir::BlockId, usize> =
            l.blocks.iter().enumerate().map(|(k, &b)| (b, k)).collect();
        let n = l.blocks.len();
        let mut g = crate::graph::Graph::new(n);
        for (k, &b) in l.blocks.iter().enumerate() {
            for s in src.successors(b) {
                if s != l.header {
                    if let Some(&j) = local.get(&s) {
                        g.add_edge(k, j);
                    }
                }
            }
        }
        let reach: Vec<Vec<bool>> = (0..n).map(|k| g.reachable(k)).collect();
        let mut pos: HashMap<InstrId, (usize, usize)> = HashMap::new();
        for &b in &l.blocks {
            for (idx, &i) in src.block(b).instrs().iter().enumerate() {
                pos.insert(i, (local[&b], idx));
            }
        }
        move |a: InstrId, b: InstrId| -> bool {
            let (Some(&(ba, ia)), Some(&(bb, ib))) = (pos.get(&a), pos.get(&b)) else {
                return false;
            };
            if ba == bb {
                ia < ib
            } else {
                reach[ba][bb]
            }
        }
    };

    // ---- symbolic evaluation of a register read at instruction `at` ----
    // Sound only for registers with a *single* definition in the loop that
    // strictly precedes the read intra-iteration (otherwise the read sees
    // the previous iteration's value); IV reads must strictly precede the
    // increment, so every analyzed address is a function of the same
    // iteration's pre-increment IV value.
    #[allow(clippy::too_many_arguments)] // closure bundle; a context struct would only rename the problem
    fn eval(
        f: &Function,
        r: Reg,
        at: InstrId,
        depth: usize,
        is_iv: &dyn Fn(Reg) -> bool,
        is_invariant: &dyn Fn(Reg) -> bool,
        single_def: &dyn Fn(Reg, InstrId) -> Option<InstrId>,
        iv_site: &dyn Fn(Reg) -> InstrId,
        strictly_before: &dyn Fn(InstrId, InstrId) -> bool,
    ) -> Option<Lin> {
        if is_iv(r) {
            // The read must see the pre-increment value.
            return strictly_before(at, iv_site(r)).then(|| Lin::iv(r));
        }
        if is_invariant(r) {
            return Some(Lin::invariant(r));
        }
        if depth == 0 {
            return None;
        }
        let d = single_def(r, at)?;
        if !strictly_before(d, at) {
            return None; // would read last iteration's value
        }
        let op_lin = |o: Operand, depth: usize| -> Option<Lin> {
            match o {
                Operand::Imm(v) => Some(Lin::constant(v)),
                Operand::Reg(x) => eval(
                    f,
                    x,
                    d,
                    depth,
                    is_iv,
                    is_invariant,
                    single_def,
                    iv_site,
                    strictly_before,
                ),
            }
        };
        match f.op(d) {
            Op::Const { value, .. } => Some(Lin::constant(*value)),
            Op::Unary {
                op: UnOp::Mov, src, ..
            } => op_lin(*src, depth - 1),
            Op::Binary { op, lhs, rhs, .. } => {
                let a = op_lin(*lhs, depth - 1)?;
                let b = op_lin(*rhs, depth - 1)?;
                match op {
                    BinOp::Add => a.add(&b, 1),
                    BinOp::Sub => a.add(&b, -1),
                    BinOp::Mul => {
                        // One side must be a constant.
                        if b.iv.is_none() && b.inv.is_empty() {
                            Some(a.scale(b.k))
                        } else if a.iv.is_none() && a.inv.is_empty() {
                            Some(b.scale(a.k))
                        } else {
                            None
                        }
                    }
                    BinOp::Shl => {
                        if b.iv.is_none() && b.inv.is_empty() && (0..63).contains(&b.k) {
                            Some(a.scale(1i64 << b.k))
                        } else {
                            None
                        }
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    // The definition a read at `at` observes, found soundly:
    //  1. the closest preceding def in `at`'s own block (registers like
    //     `addr` are commonly reused);
    //  2. else walk up the intra-iteration dominator tree of the loop body
    //     and take the *last* def in the first dominating block that has
    //     one — valid only when no other def of the register sits in a
    //     block strictly between that dominator and `at` (it could
    //     intervene on some path);
    //  3. else the unique loop definition (ordering checked by the caller).
    let instr_block = src.instr_blocks();
    let local_idx: BTreeMap<dswp_ir::BlockId, usize> =
        l.blocks.iter().enumerate().map(|(k, &b)| (b, k)).collect();
    let (intra_reach, loop_idom, all_defs) = {
        let n = l.blocks.len();
        let mut g = crate::graph::Graph::new(n);
        for (k, &b) in l.blocks.iter().enumerate() {
            for s in src.successors(b) {
                if s != l.header {
                    if let Some(&j) = local_idx.get(&s) {
                        g.add_edge(k, j);
                    }
                }
            }
        }
        let reach: Vec<Vec<bool>> = (0..n).map(|k| g.reachable(k)).collect();
        let dom = crate::dom::DomTree::compute(&g, local_idx[&l.header]);
        let mut all_defs: HashMap<Reg, Vec<(usize, InstrId)>> = HashMap::new();
        for &b in &l.blocks {
            for &i in src.block(b).instrs() {
                if let Some(d) = src.op(i).def() {
                    all_defs.entry(d).or_default().push((local_idx[&b], i));
                }
            }
        }
        (reach, dom, all_defs)
    };
    let src_ref = &src;
    let def_count_ref = &def_count;
    let def_site_ref = &def_site;
    let iv_step_ref = &iv_step;
    let blocks_ref = &l.blocks;
    let single_def = move |r: Reg, at: InstrId| -> Option<InstrId> {
        if def_count_ref.get(&r) == Some(&1) && iv_step_ref.contains_key(&r) {
            return None; // IVs are handled by the caller
        }
        let b = instr_block[at.index()]?;
        let instrs = src_ref.block(b).instrs();
        let at_pos = instrs.iter().position(|&x| x == at)?;
        for &i in instrs[..at_pos].iter().rev() {
            if src_ref.op(i).def() == Some(r) {
                return Some(i);
            }
        }
        if def_count_ref.get(&r) == Some(&1) {
            return Some(def_site_ref[&r]);
        }
        // Dominator-chain lookup for multi-def registers.
        let at_local = *local_idx.get(&b)?;
        let defs = all_defs.get(&r)?;
        let mut cur = at_local;
        loop {
            let d = loop_idom.idom(cur)?;
            let dom_block = blocks_ref[d];
            if let Some(&found) = src_ref
                .block(dom_block)
                .instrs()
                .iter()
                .rev()
                .find(|&&i| src_ref.op(i).def() == Some(r))
            {
                // No other def may sit strictly between d and at's block.
                let clean = defs.iter().all(|&(db, di)| {
                    di == found
                        || db == d
                        || db == at_local
                        || !(intra_reach[d][db] && intra_reach[db][at_local])
                });
                return clean.then_some(found);
            }
            cur = d;
        }
    };
    let iv_site = |r: Reg| -> InstrId { def_site[&r] };

    // ---- annotate every load/store whose address is linear in one IV ----
    let mut stats = ScevStats::default();
    let accesses: Vec<InstrId> = l
        .blocks
        .iter()
        .flat_map(|&b| src.block(b).instrs().iter().copied())
        .filter(|&i| matches!(src.op(i), Op::Load { .. } | Op::Store { .. }))
        .collect();
    for i in accesses {
        let (addr, offset) = match src.op(i) {
            Op::Load { addr, offset, .. } | Op::Store { addr, offset, .. } => (*addr, *offset),
            _ => unreachable!(),
        };
        let Some(lin) = eval(
            &src,
            addr,
            i,
            8,
            &is_iv,
            &is_invariant,
            &single_def,
            &iv_site,
            &order,
        ) else {
            stats.unanalyzed += 1;
            continue;
        };
        let Some((iv_reg, coeff)) = lin.iv else {
            stats.unanalyzed += 1;
            continue;
        };
        let step = iv_step[&iv_reg];
        let stride = coeff.wrapping_mul(step);
        if stride == 0 {
            stats.unanalyzed += 1;
            continue;
        }
        // Label: identical only for addresses whose symbolic forms differ
        // by a constant (same IV, same coefficient, same invariant terms).
        let mut h = DefaultHasher::new();
        (iv_reg, coeff, &lin.inv).hash(&mut h);
        let label = (h.finish() & 0x7FFF_FFFF) as u32;
        let phase = lin.k.wrapping_add(offset);

        let mem = match f.op_mut(i) {
            Op::Load { mem, .. } | Op::Store { mem, .. } => mem,
            _ => unreachable!(),
        };
        *mem = MemInfo {
            region: mem.region,
            affine: Some(dswp_ir::op::Affine {
                iv: label,
                stride,
                phase,
            }),
        };
        stats.annotated += 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alias::{alias_query, AliasMode};
    use crate::loops::find_loops;
    use dswp_ir::ProgramBuilder;

    /// for i in 0..n: t = a[i]; a[i] = t + 1; b[2i+1] = t
    fn kernel() -> (dswp_ir::Program, Vec<InstrId>) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let h = f.block("h");
        let body = f.block("body");
        let exit = f.block("exit");
        let (i, n, t, a_base, b_base, done) =
            (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
        let mut ids = Vec::new();
        f.switch_to(e);
        f.iconst(i, 0);
        f.iconst(n, 8);
        f.iconst(a_base, 16);
        f.iconst(b_base, 64);
        f.jump(h);
        f.switch_to(h);
        f.cmp_ge(done, i, n);
        f.br(done, exit, body);
        f.switch_to(body);
        let addr_a = f.reg();
        f.add(addr_a, a_base, i);
        ids.push(f.load(t, addr_a, 0)); // a[i]
        f.add(t, t, 1);
        ids.push(f.store(t, addr_a, 0)); // a[i]
        let addr_b = f.reg();
        f.mul(addr_b, i, 2);
        f.add(addr_b, addr_b, b_base);
        ids.push(f.store(t, addr_b, 1)); // b[2i+1]
        f.add(i, i, 1);
        f.jump(h);
        f.switch_to(exit);
        f.halt();
        let main = f.finish();
        (pb.finish(main, 96), ids)
    }

    #[test]
    fn derives_affine_facts_without_annotations() {
        let (mut p, ids) = kernel();
        let main = p.main();
        let l = find_loops(p.function(main))[0].clone();
        let stats = annotate_affine(p.function_mut(main), &l);
        assert_eq!(stats.annotated, 3, "{stats:?}");

        let f = p.function(main);
        let info = |i: InstrId| match f.op(i) {
            Op::Load { mem, .. } | Op::Store { mem, .. } => *mem,
            _ => unreachable!(),
        };
        let (ld_a, st_a, st_b) = (info(ids[0]), info(ids[1]), info(ids[2]));
        // a[i] load and store: same label, stride 1, same phase.
        assert_eq!(ld_a.affine.unwrap().iv, st_a.affine.unwrap().iv);
        assert_eq!(ld_a.affine.unwrap().stride, 1);
        assert_eq!(ld_a.affine.unwrap().phase, st_a.affine.unwrap().phase);
        // b store: stride 2 (coefficient 2 × step 1) with a distinct label
        // (different invariant base).
        assert_eq!(st_b.affine.unwrap().stride, 2);
        assert_ne!(st_b.affine.unwrap().iv, st_a.affine.unwrap().iv);

        // The precise alias test now splits the a[i] pair across iterations.
        let r = alias_query(&ld_a, &st_a, AliasMode::Precise);
        assert!(r.intra && !r.carried_forward && !r.carried_backward);
    }

    #[test]
    fn unanalyzable_addresses_are_left_alone() {
        // A pointer chase: the address comes from memory, not from an IV.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let h = f.block("h");
        let body = f.block("body");
        let exit = f.block("exit");
        let (ptr, done) = (f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(ptr, 8);
        f.jump(h);
        f.switch_to(h);
        f.cmp_eq(done, ptr, 0);
        f.br(done, exit, body);
        f.switch_to(body);
        let v = f.reg();
        f.load(v, ptr, 1);
        f.load(ptr, ptr, 0);
        f.jump(h);
        f.switch_to(exit);
        f.halt();
        let main = f.finish();
        let mut p = pb.finish(main, 64);
        let l = find_loops(p.function(main))[0].clone();
        let stats = annotate_affine(p.function_mut(main), &l);
        assert_eq!(stats.annotated, 0);
        assert_eq!(stats.unanalyzed, 2);
    }

    #[test]
    fn shifted_addressing_is_linear() {
        // addr = base + (i << 3): stride 8.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let h = f.block("h");
        let body = f.block("body");
        let exit = f.block("exit");
        let (i, n, base, done, v) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(i, 0);
        f.iconst(n, 4);
        f.iconst(base, 16);
        f.jump(h);
        f.switch_to(h);
        f.cmp_ge(done, i, n);
        f.br(done, exit, body);
        f.switch_to(body);
        let addr = f.reg();
        f.shl(addr, i, 3);
        f.add(addr, addr, base);
        let st = f.store(v, addr, 2);
        f.add(i, i, 1);
        f.jump(h);
        f.switch_to(exit);
        f.halt();
        let main = f.finish();
        let mut p = pb.finish(main, 64);
        let l = find_loops(p.function(main))[0].clone();
        annotate_affine(p.function_mut(main), &l);
        let aff = match p.function(main).op(st) {
            Op::Store { mem, .. } => mem.affine.unwrap(),
            _ => unreachable!(),
        };
        assert_eq!(aff.stride, 8);
        assert_eq!(aff.phase, 2);
    }
}
