//! Register dataflow: whole-function liveness and loop-level reaching
//! definitions with loop-carried tagging.
//!
//! The DSWP dependence graph needs, for every register use inside the loop,
//! the set of defining instructions that may reach it, with each dependence
//! classified as *intra-iteration* or *loop-carried* (Section 2.2.1 of the
//! paper, Figure 2(b)'s solid vs dashed arcs). Definitions that reach from
//! outside the loop become *live-in* pseudo-dependences (initial flows), and
//! definitions reaching a loop exit at which the register is live become
//! *live-out* pseudo-dependences (final flows).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use dswp_ir::{BlockId, Function, InstrId, Reg};

use crate::loops::NaturalLoop;

/// Whole-function block-level liveness.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<BTreeSet<Reg>>,
}

impl Liveness {
    /// Computes liveness for `f` by the usual backward fixpoint.
    pub fn compute(f: &Function) -> Self {
        let n = f.num_blocks();
        // Per-block upward-exposed uses and kills.
        let mut gen = vec![BTreeSet::new(); n];
        let mut kill = vec![BTreeSet::new(); n];
        for b in f.block_ids() {
            let (g, k) = (&mut gen[b.index()], &mut kill[b.index()]);
            for &i in f.block(b).instrs() {
                let op = f.op(i);
                for u in op.uses() {
                    if !k.contains(&u) {
                        g.insert(u);
                    }
                }
                if let Some(d) = op.def() {
                    k.insert(d);
                }
            }
        }

        let preds = f.predecessors();
        let mut live_in = vec![BTreeSet::new(); n];
        let mut live_out = vec![BTreeSet::new(); n];
        let mut work: VecDeque<usize> = (0..n).collect();
        while let Some(b) = work.pop_front() {
            let block = BlockId::from_index(b);
            let mut out = BTreeSet::new();
            for s in f.successors(block) {
                out.extend(live_in[s.index()].iter().copied());
            }
            let mut inn: BTreeSet<Reg> = gen[b].clone();
            inn.extend(out.difference(&kill[b]).copied());
            let changed = inn != live_in[b];
            live_out[b] = out;
            if changed {
                live_in[b] = inn;
                for &p in &preds[b] {
                    if !work.contains(&p.index()) {
                        work.push_back(p.index());
                    }
                }
            }
        }
        Liveness { live_in }
    }

    /// Registers live at the entry of `block`.
    pub fn live_in(&self, block: BlockId) -> &BTreeSet<Reg> {
        &self.live_in[block.index()]
    }
}

/// A register flow dependence inside a loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RegDep {
    /// Defining instruction.
    pub def: InstrId,
    /// Using instruction.
    pub use_: InstrId,
    /// The register carrying the value.
    pub reg: Reg,
    /// Whether the value flows around the loop back edge.
    pub carried: bool,
}

/// Register dataflow facts of one loop.
#[derive(Clone, Debug, Default)]
pub struct LoopDataFlow {
    /// def → use flow dependences among loop instructions.
    pub reg_deps: Vec<RegDep>,
    /// Uses reached by a definition from outside the loop: `(reg, use)`.
    pub live_in_uses: Vec<(Reg, InstrId)>,
    /// Definitions reaching a loop exit at which the register is live:
    /// `(reg, def)`.
    pub live_out_defs: Vec<(Reg, InstrId)>,
    /// Registers with at least one external reaching definition used in the
    /// loop (loop live-ins).
    pub live_ins: BTreeSet<Reg>,
    /// Registers defined in the loop and live at some exit (loop live-outs).
    pub live_outs: BTreeSet<Reg>,
    /// Live-out registers whose pre-loop value may also survive to the exit
    /// (conditionally (re)defined inside the loop).
    pub live_out_external: BTreeSet<Reg>,
}

/// A reaching definition site: `-1` encodes "defined outside the loop",
/// otherwise the instruction index.
type Site = i64;
const EXTERNAL: Site = -1;
type RegState = BTreeMap<Reg, BTreeSet<(Site, bool)>>;

/// Computes [`LoopDataFlow`] for loop `l` of `f` given whole-function
/// `liveness`.
///
/// Only true (flow) dependences are produced: output- and anti-dependences
/// are ignored per Section 2.2.1 of the paper (threads get private register
/// files); the live-out coupling of Figure 5(b) is handled separately by the
/// PDG builder using [`LoopDataFlow::live_out_defs`].
pub fn loop_dataflow(f: &Function, l: &NaturalLoop, liveness: &Liveness) -> LoopDataFlow {
    let in_loop = |b: BlockId| l.contains(b);

    // Phase 1: fixpoint on block-entry states.
    let mut in_states: HashMap<BlockId, RegState> = HashMap::new();
    let mut header_seed: RegState = RegState::new();
    for r in 0..f.num_regs() {
        header_seed
            .entry(Reg(r))
            .or_default()
            .insert((EXTERNAL, false));
    }
    in_states.insert(l.header, header_seed);

    let mut work: VecDeque<BlockId> = VecDeque::new();
    work.push_back(l.header);
    while let Some(b) = work.pop_front() {
        let mut state = in_states.get(&b).cloned().unwrap_or_default();
        transfer_block(f, b, &mut state, None);
        for s in f.successors(b) {
            if !in_loop(s) {
                continue;
            }
            let carried = s == l.header;
            let mut delta = state.clone();
            if carried {
                for sites in delta.values_mut() {
                    let lifted: BTreeSet<(Site, bool)> =
                        sites.iter().map(|&(d, _)| (d, true)).collect();
                    *sites = lifted;
                }
            }
            let dst = in_states.entry(s).or_default();
            let mut changed = false;
            for (r, sites) in delta {
                let e = dst.entry(r).or_default();
                for site in sites {
                    changed |= e.insert(site);
                }
            }
            if changed && !work.contains(&s) {
                work.push_back(s);
            }
        }
    }

    // Phase 2: one pass per block recording dependences and exit facts.
    let mut flow = LoopDataFlow::default();
    let mut seen_dep = BTreeSet::new();
    let mut seen_live_in = BTreeSet::new();
    let mut live_out_sets: BTreeMap<Reg, BTreeSet<Site>> = BTreeMap::new();

    for &b in &l.blocks {
        let mut state = in_states.get(&b).cloned().unwrap_or_default();
        let mut on_use = |r: Reg, u: InstrId, state: &RegState| {
            if let Some(sites) = state.get(&r) {
                for &(site, carried) in sites {
                    if site == EXTERNAL {
                        if seen_live_in.insert((r, u)) {
                            flow.live_in_uses.push((r, u));
                            flow.live_ins.insert(r);
                        }
                    } else {
                        let dep = RegDep {
                            def: InstrId(site as u32),
                            use_: u,
                            reg: r,
                            carried,
                        };
                        if seen_dep.insert(dep) {
                            flow.reg_deps.push(dep);
                        }
                    }
                }
            }
        };
        transfer_block(f, b, &mut state, Some(&mut on_use));

        // Exit edges: record which definitions reach a live register.
        for s in f.successors(b) {
            if l.contains(s) {
                continue;
            }
            for &r in liveness.live_in(s) {
                if let Some(sites) = state.get(&r) {
                    let entry = live_out_sets.entry(r).or_default();
                    for &(site, _) in sites {
                        entry.insert(site);
                    }
                }
            }
        }
    }

    for (r, sites) in live_out_sets {
        let internal: Vec<Site> = sites.iter().copied().filter(|&s| s != EXTERNAL).collect();
        if internal.is_empty() {
            continue; // loop never defines it; not a DSWP live-out
        }
        flow.live_outs.insert(r);
        if sites.contains(&EXTERNAL) {
            flow.live_out_external.insert(r);
        }
        for s in internal {
            flow.live_out_defs.push((r, InstrId(s as u32)));
        }
    }
    flow.reg_deps.sort();
    flow.live_in_uses.sort();
    flow.live_out_defs.sort();
    flow
}

/// Callback invoked for each register use during a block transfer, with the
/// state *before* the using instruction's own definition.
type OnUse<'a> = &'a mut dyn FnMut(Reg, InstrId, &RegState);

/// Applies a block's transfer function to `state`, optionally reporting
/// register uses through `on_use`.
fn transfer_block(f: &Function, b: BlockId, state: &mut RegState, mut on_use: Option<OnUse<'_>>) {
    for &i in f.block(b).instrs() {
        let op = f.op(i);
        if let Some(cb) = on_use.as_deref_mut() {
            for u in op.uses() {
                cb(u, i, state);
            }
        }
        if let Some(d) = op.def() {
            let mut set = BTreeSet::new();
            set.insert((i.index() as Site, false));
            state.insert(d, set);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::find_loops;
    use dswp_ir::{Program, ProgramBuilder};

    /// entry: i=0, sum=0, n=10 ; header: done = i>=n ; br done exit body ;
    /// body: sum+=i; i+=1; jump header ; exit: store sum ; halt
    fn sum_loop() -> (Program, Vec<InstrId>) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let header = f.block("header");
        let body = f.block("body");
        let exit = f.block("exit");
        let (i, sum, n, base, done) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
        let mut ids = Vec::new();
        f.switch_to(e);
        ids.push(f.iconst(i, 0)); // 0
        ids.push(f.iconst(sum, 0)); // 1
        ids.push(f.iconst(n, 10)); // 2
        ids.push(f.iconst(base, 0)); // 3
        ids.push(f.jump(header)); // 4
        f.switch_to(header);
        ids.push(f.cmp_ge(done, i, n)); // 5
        ids.push(f.br(done, exit, body)); // 6
        f.switch_to(body);
        ids.push(f.add(sum, sum, i)); // 7
        ids.push(f.add(i, i, 1)); // 8
        ids.push(f.jump(header)); // 9
        f.switch_to(exit);
        ids.push(f.store(sum, base, 0)); // 10
        ids.push(f.halt()); // 11
        let main = f.finish();
        (pb.finish(main, 4), ids)
    }

    #[test]
    fn liveness_at_loop_exit() {
        let (p, _) = sum_loop();
        let f = p.function(p.main());
        let lv = Liveness::compute(f);
        // At exit block entry, sum (r1) and base (r3) are live.
        let live = lv.live_in(BlockId(3));
        assert!(live.contains(&Reg(1)));
        assert!(live.contains(&Reg(3)));
        assert!(!live.contains(&Reg(0)));
    }

    #[test]
    fn loop_dataflow_finds_carried_and_intra_deps() {
        let (p, ids) = sum_loop();
        let f = p.function(p.main());
        let lv = Liveness::compute(f);
        let l = &find_loops(f)[0];
        let df = loop_dataflow(f, l, &lv);

        let dep = |def: usize, use_: usize, carried: bool| RegDep {
            def: ids[def],
            use_: ids[use_],
            reg: f.op(ids[def]).def().unwrap(),
            carried,
        };
        // i += 1 (8) feeds the compare (5) and both adds (7, 8) carried.
        assert!(df.reg_deps.contains(&dep(8, 5, true)), "{:?}", df.reg_deps);
        assert!(df.reg_deps.contains(&dep(8, 8, true)));
        assert!(df.reg_deps.contains(&dep(8, 7, true)));
        // sum += i (7) feeds itself carried.
        assert!(df.reg_deps.contains(&dep(7, 7, true)));
        // The compare feeds the branch intra-iteration.
        assert!(df.reg_deps.contains(&dep(5, 6, false)));
        // i's use in block body after redef? add(i,i,1) defines i after
        // using it: the use sees both carried (from 8) and external (first
        // iteration).
        assert!(df.live_ins.contains(&Reg(0)));
        assert!(df.live_ins.contains(&Reg(1)));
        assert!(df.live_ins.contains(&Reg(2))); // n
                                                // sum is live-out, defined at 7, and on the zero-trip path the
                                                // external value survives.
        assert!(df.live_outs.contains(&Reg(1)));
        assert!(df.live_out_defs.contains(&(Reg(1), ids[7])));
        assert!(df.live_out_external.contains(&Reg(1)));
        // i is not live out (dead after the loop).
        assert!(!df.live_outs.contains(&Reg(0)));
    }

    #[test]
    fn unconditional_redefinition_is_not_external_live_out() {
        // loop body always redefines x before exiting only via the header.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let header = f.block("header");
        let body = f.block("body");
        let exit = f.block("exit");
        let (x, i, n, done, base) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(x, 0);
        f.iconst(i, 0);
        f.iconst(n, 5);
        f.iconst(base, 0);
        f.jump(header);
        f.switch_to(header);
        f.cmp_ge(done, i, n);
        f.br(done, exit, body);
        f.switch_to(body);
        let xdef = f.add(x, i, 100);
        f.add(i, i, 1);
        f.jump(header);
        f.switch_to(exit);
        f.store(x, base, 0);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 1);
        let func = p.function(main);
        let lv = Liveness::compute(func);
        let l = &find_loops(func)[0];
        let df = loop_dataflow(func, l, &lv);
        assert!(df.live_outs.contains(&Reg(0)));
        assert!(df.live_out_defs.contains(&(Reg(0), xdef)));
        // x's pre-loop value survives the zero-trip path (exit from header
        // before any body execution), so it *is* externally reachable.
        assert!(df.live_out_external.contains(&Reg(0)));
    }
}
