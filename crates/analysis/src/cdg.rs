//! Control-dependence computation.
//!
//! Standard control dependence follows Ferrante–Ottenstein–Warren: node `q`
//! is control dependent on branch node `p` iff `p` has an outgoing edge
//! `p → s` such that `q` post-dominates `s` but `q` does not post-dominate
//! `p`.
//!
//! DSWP additionally needs **loop-iteration control dependences**
//! (Section 2.3.1, Figure 4 of the paper): a branch may determine whether
//! the *next* iteration's instructions execute even when no standard control
//! dependence exists. Following the paper, we conceptually peel the first
//! iteration of the loop, compute standard control dependence on the peeled
//! CFG, and coalesce the two copies of each block; dependences between
//! different copies become *loop-carried* control dependences.

use dswp_ir::{BlockId, Function};

use crate::dom::PostDomTree;
use crate::graph::Graph;
use crate::loops::NaturalLoop;

/// Computes standard node-level control dependences of `g`.
///
/// Returns, for each node, the sorted list of nodes it is control dependent
/// on. `extra_exits` is forwarded to the post-dominator computation.
pub fn control_deps(g: &Graph, extra_exits: &[usize]) -> Vec<Vec<usize>> {
    let pd = PostDomTree::compute(g, extra_exits);
    let mut deps = vec![Vec::new(); g.len()];
    for a in 0..g.len() {
        if g.succs(a).len() < 2 {
            continue; // only real branches generate control dependence
        }
        let ipdom_a = pd.ipdom(a);
        for &b in g.succs(a) {
            // Post-dominance (and hence control dependence) is undefined
            // for nodes that cannot reach an exit (exitless cycles); the
            // DSWP driver never transforms such regions.
            if !pd.reaches_exit(b) {
                continue;
            }
            // Walk from b up the post-dominator tree to (exclusive) ipdom(a).
            let mut runner = Some(b);
            while runner != ipdom_a {
                let Some(r) = runner else { break };
                if !deps[r].contains(&a) {
                    deps[r].push(a);
                }
                runner = pd.ipdom(r);
            }
        }
    }
    for d in &mut deps {
        d.sort_unstable();
    }
    deps
}

/// One loop-level control dependence: `dependent` is control dependent on
/// the branch terminating `branch_block`; `carried` marks a loop-iteration
/// (cross-iteration) dependence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LoopControlDep {
    /// Block whose terminator is the controlling branch.
    pub branch_block: BlockId,
    /// Block whose instructions are control dependent on the branch.
    pub dependent: BlockId,
    /// Whether the dependence crosses the loop back edge.
    pub carried: bool,
}

/// Computes the combined standard + loop-iteration control dependences of a
/// loop, restricted to blocks of the loop (Figure 4(e) of the paper).
pub fn loop_control_deps(f: &Function, l: &NaturalLoop) -> Vec<LoopControlDep> {
    let k = l.blocks.len();
    let local = |b: BlockId| l.blocks.binary_search(&b).ok();

    // Peeled graph: nodes 0..k are iteration-0 copies, k..2k iteration-1
    // copies, 2k is the shared outside/exit sink.
    let outside = 2 * k;
    let mut g = Graph::new(2 * k + 1);
    for (i, &b) in l.blocks.iter().enumerate() {
        for s in f.successors(b) {
            match local(s) {
                Some(j) if s == l.header => {
                    // Back edge: iteration 0 flows into iteration 1;
                    // iteration 1 loops on itself (steady state).
                    g.add_edge(i, k + j);
                    g.add_edge(k + i, k + j);
                }
                Some(j) => {
                    g.add_edge(i, j);
                    g.add_edge(k + i, k + j);
                }
                None => {
                    g.add_edge(i, outside);
                    g.add_edge(k + i, outside);
                }
            }
        }
    }

    let deps = control_deps(&g, &[]);
    let mut out = Vec::new();
    for (q, controllers) in deps.iter().enumerate() {
        if q == outside {
            continue;
        }
        let (q_copy, q_local) = (q / k, q % k);
        for &p in controllers {
            if p == outside {
                continue;
            }
            let (p_copy, p_local) = (p / k, p % k);
            // A branch cannot control instructions of its own block within
            // one iteration (they precede it); a same-copy self dependence
            // is an artifact of the steady-state copy's internal back edge
            // and is really loop-carried.
            let carried = p_copy != q_copy || p_local == q_local;
            let dep = LoopControlDep {
                branch_block: l.blocks[p_local],
                dependent: l.blocks[q_local],
                carried,
            };
            if !out.contains(&dep) {
                out.push(dep);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::find_loops;
    use dswp_ir::{Program, ProgramBuilder};

    #[test]
    fn diamond_control_deps() {
        // 0 -> {1,2}; 1 -> 3; 2 -> 3
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let deps = control_deps(&g, &[]);
        assert_eq!(deps[1], vec![0]);
        assert_eq!(deps[2], vec![0]);
        assert!(deps[3].is_empty());
        assert!(deps[0].is_empty());
    }

    #[test]
    fn control_deps_match_brute_force_on_random_shapes() {
        // Hand-rolled small graphs checked against the FOW definition.
        let mut g = Graph::new(6);
        // 0 -> 1 -> {2, 4}; 2 -> 3; 3 -> {1, 5}; 4 -> 5
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(1, 4);
        g.add_edge(2, 3);
        g.add_edge(3, 1);
        g.add_edge(3, 5);
        g.add_edge(4, 5);
        let deps = control_deps(&g, &[]);
        let pd = PostDomTree::compute(&g, &[]);
        for (q, dq) in deps.iter().enumerate().take(6) {
            for p in 0..6 {
                let expected = g.succs(p).len() >= 2
                    && g.succs(p).iter().any(|&s| pd.post_dominates(q, s))
                    && !pd.post_dominates(q, p);
                assert_eq!(dq.contains(&p), expected, "q={q} p={p}");
            }
        }
    }

    /// The paper's Figure 4 shape: pre-header -> B1; B1 -> {B2, B3};
    /// B2 -> B3(jump); B3 -> {B1, exit}.
    fn figure4() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let b1 = f.block("B1");
        let b2 = f.block("B2");
        let b3 = f.block("B3");
        let exit = f.block("exit");
        let (p1, p3) = (f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(p1, 1);
        f.iconst(p3, 1);
        f.jump(b1);
        f.switch_to(b1);
        f.br(p1, b2, b3);
        f.switch_to(b2);
        f.jump(b3);
        f.switch_to(b3);
        f.br(p3, b1, exit);
        f.switch_to(exit);
        f.halt();
        let main = f.finish();
        pb.finish(main, 0)
    }

    #[test]
    fn loop_iteration_deps_match_figure4() {
        let p = figure4();
        let f = p.function(p.main());
        let l = &find_loops(f)[0];
        let deps = loop_control_deps(f, l);
        let has = |bb: u32, dep: u32, carried: bool| {
            deps.contains(&LoopControlDep {
                branch_block: BlockId(bb),
                dependent: BlockId(dep),
                carried,
            })
        };
        // Standard: B2 is control dependent on B1 (intra-iteration).
        assert!(has(1, 2, false), "{deps:?}");
        // Loop-iteration (Figure 4e): F (the B3 branch) controls whether
        // the next iteration's B1 — and F itself — execute.
        assert!(has(3, 1, true), "{deps:?}");
        assert!(has(3, 3, true), "{deps:?}");
        // No intra-iteration dependence of B3 on itself.
        assert!(!has(3, 3, false), "{deps:?}");
        // B1's branch does not control B3 intra-iteration (B3 always runs
        // once B1 runs), matching Figure 4(b).
        assert!(!has(1, 3, false), "{deps:?}");
        // Control dependence is not transitive: B2 of the next iteration is
        // controlled by its own iteration's B1, not directly by F.
        assert!(!has(3, 2, true), "{deps:?}");
    }

    #[test]
    fn single_block_self_loop_controls_itself_carried() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let h = f.block("h");
        let x = f.block("x");
        let c = f.reg();
        f.switch_to(e);
        f.iconst(c, 0);
        f.jump(h);
        f.switch_to(h);
        f.br(c, h, x);
        f.switch_to(x);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 0);
        let func = p.function(main);
        let l = &find_loops(func)[0];
        let deps = loop_control_deps(func, l);
        assert_eq!(
            deps,
            vec![LoopControlDep {
                branch_block: BlockId(1),
                dependent: BlockId(1),
                carried: true
            }]
        );
    }
}
