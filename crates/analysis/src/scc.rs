//! Strongly connected components and the `DAG_SCC`.
//!
//! Step 2 of the DSWP algorithm (Figure 3, lines 2–4): the SCCs of the
//! dependence graph are the loop recurrences; coalescing each SCC to one
//! node yields the acyclic `DAG_SCC` that the thread-partitioning heuristic
//! operates on.

use crate::graph::Graph;

/// Computes the strongly connected components of `g` (Tarjan, iterative).
///
/// Components are returned in **topological order** (sources first), each as
/// a sorted list of node ids. Every node appears in exactly one component.
pub fn strongly_connected_components(g: &Graph) -> Vec<Vec<usize>> {
    let n = g.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan: frames of (node, next-successor-position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        call_stack.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
            if *pos < g.succs(v).len() {
                let w = g.succs(v)[*pos];
                *pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    components.push(comp);
                }
            }
        }
    }
    // Tarjan emits components in reverse topological order.
    components.reverse();
    components
}

/// The coalesced `DAG_SCC` of a dependence graph (Figure 2(c) of the paper).
#[derive(Clone, Debug)]
pub struct DagScc {
    /// Components in topological order; each is a sorted list of original
    /// node ids.
    pub sccs: Vec<Vec<usize>>,
    /// `node_scc[v]` is the index (into [`sccs`](Self::sccs)) of `v`'s
    /// component.
    pub node_scc: Vec<usize>,
    /// Deduplicated inter-component arcs; every arc goes forward in
    /// topological order.
    pub arcs: Vec<(usize, usize)>,
}

impl DagScc {
    /// Builds the `DAG_SCC` of `g`.
    pub fn compute(g: &Graph) -> Self {
        let sccs = strongly_connected_components(g);
        let mut node_scc = vec![0usize; g.len()];
        for (ci, comp) in sccs.iter().enumerate() {
            for &v in comp {
                node_scc[v] = ci;
            }
        }
        let mut arcs = Vec::new();
        for v in 0..g.len() {
            for &w in g.succs(v) {
                let (a, b) = (node_scc[v], node_scc[w]);
                if a != b && !arcs.contains(&(a, b)) {
                    arcs.push((a, b));
                }
            }
        }
        arcs.sort_unstable();
        DagScc {
            sccs,
            node_scc,
            arcs,
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.sccs.len()
    }

    /// Whether the graph was empty.
    pub fn is_empty(&self) -> bool {
        self.sccs.is_empty()
    }

    /// Successor components of component `c`.
    pub fn succs(&self, c: usize) -> impl Iterator<Item = usize> + '_ {
        self.arcs
            .iter()
            .filter(move |&&(a, _)| a == c)
            .map(|&(_, b)| b)
    }

    /// Predecessor components of component `c`.
    pub fn preds(&self, c: usize) -> impl Iterator<Item = usize> + '_ {
        self.arcs
            .iter()
            .filter(move |&&(_, b)| b == c)
            .map(|&(a, _)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_is_one_component() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn dag_yields_singletons_in_topo_order() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let sccs = strongly_connected_components(&g);
        assert_eq!(sccs.len(), 4);
        let pos = |v: usize| sccs.iter().position(|c| c.contains(&v)).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
    }

    #[test]
    fn mixed_components_and_dag_arcs() {
        // {0,1} cycle -> 2 -> {3,4} cycle
        let mut g = Graph::new(5);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 3);
        let dag = DagScc::compute(&g);
        assert_eq!(dag.len(), 3);
        assert_eq!(dag.sccs[0], vec![0, 1]);
        assert_eq!(dag.sccs[1], vec![2]);
        assert_eq!(dag.sccs[2], vec![3, 4]);
        assert_eq!(dag.arcs, vec![(0, 1), (1, 2)]);
        assert_eq!(dag.succs(0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(dag.preds(2).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn matches_brute_force_mutual_reachability() {
        // Deterministic pseudo-random graph, checked against the definition
        // that u,v share a component iff u reaches v and v reaches u.
        let n = 12;
        let mut g = Graph::new(n);
        let mut seed = 0x12345678u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..24 {
            let a = rnd() % n;
            let b = rnd() % n;
            if a != b {
                g.add_edge(a, b);
            }
        }
        let sccs = strongly_connected_components(&g);
        // All nodes covered exactly once.
        let mut count = vec![0; n];
        for c in &sccs {
            for &v in c {
                count[v] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1));

        let reach: Vec<Vec<bool>> = (0..n).map(|v| g.reachable(v)).collect();
        let comp_of = |v: usize| sccs.iter().position(|c| c.contains(&v)).unwrap();
        for (u, ru) in reach.iter().enumerate() {
            for (v, rv) in reach.iter().enumerate() {
                let same = ru[v] && rv[u];
                assert_eq!(comp_of(u) == comp_of(v), same, "u={u} v={v}");
            }
        }
        // Topological order: every cross-component edge goes forward.
        for u in 0..n {
            for &v in g.succs(u) {
                if comp_of(u) != comp_of(v) {
                    assert!(comp_of(u) < comp_of(v));
                }
            }
        }
    }
}
