//! Bridging between [`Function`] CFGs and the analysis [`Graph`] type.

use dswp_ir::{BlockId, Function};

use crate::graph::Graph;

/// Builds the block-level CFG of `f` as a [`Graph`] (node `i` is block `i`).
pub fn cfg_graph(f: &Function) -> Graph {
    let mut g = Graph::new(f.num_blocks());
    for b in f.block_ids() {
        for s in f.successors(b) {
            g.add_edge(b.index(), s.index());
        }
    }
    g
}

/// Converts a dense node id back to a [`BlockId`].
#[inline]
pub fn node_block(n: usize) -> BlockId {
    BlockId::from_index(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::ProgramBuilder;

    #[test]
    fn cfg_matches_function_edges() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let a = f.block("a");
        let b = f.block("b");
        let c = f.reg();
        f.switch_to(e);
        f.iconst(c, 1);
        f.br(c, a, b);
        f.switch_to(a);
        f.halt();
        f.switch_to(b);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 0);
        let g = cfg_graph(p.function(main));
        assert_eq!(g.succs(0), &[1, 2]);
        assert!(g.succs(1).is_empty());
    }
}
