//! Natural-loop discovery.
//!
//! A back edge is a CFG edge `latch → header` where `header` dominates
//! `latch`; the natural loop of a header is the union of the header and all
//! nodes that reach a latch without passing through the header. Loops with
//! the same header are merged, as usual.

use std::collections::BTreeSet;

use dswp_ir::{BlockId, Function};

use crate::cfg::cfg_graph;
use crate::dom::DomTree;
use crate::graph::Graph;

/// A natural loop of a function.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// The loop header block.
    pub header: BlockId,
    /// All blocks of the loop, including the header (sorted).
    pub blocks: Vec<BlockId>,
    /// Source blocks of back edges (`latch → header`).
    pub latches: Vec<BlockId>,
    /// Loop-exit edges `(from ∈ loop, to ∉ loop)`.
    pub exit_edges: Vec<(BlockId, BlockId)>,
    /// Nesting depth (1 = outermost).
    pub depth: usize,
}

impl NaturalLoop {
    /// Whether `b` belongs to the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }

    /// The distinct blocks outside the loop targeted by exit edges.
    pub fn exit_targets(&self) -> Vec<BlockId> {
        let mut t: Vec<BlockId> = self.exit_edges.iter().map(|&(_, to)| to).collect();
        t.sort();
        t.dedup();
        t
    }
}

/// Finds all natural loops of `f`, outermost first within each header, and
/// computes nesting depths.
///
/// Irreducible control flow (a cycle whose "header" does not dominate the
/// rest of the cycle) produces no loop for that cycle; the DSWP driver
/// simply never selects such regions.
pub fn find_loops(f: &Function) -> Vec<NaturalLoop> {
    let g = cfg_graph(f);
    let dom = DomTree::compute(&g, f.entry().index());

    // Collect back edges grouped by header.
    let mut headers: Vec<(usize, Vec<usize>)> = Vec::new();
    for u in 0..g.len() {
        if !dom.is_reachable(u) {
            continue;
        }
        for &v in g.succs(u) {
            if dom.dominates(v, u) {
                match headers.iter_mut().find(|(h, _)| *h == v) {
                    Some((_, latches)) => latches.push(u),
                    None => headers.push((v, vec![u])),
                }
            }
        }
    }

    let preds = g.preds();
    let mut loops: Vec<NaturalLoop> = headers
        .into_iter()
        .map(|(header, latches)| {
            let body = loop_body(&preds, header, &latches);
            let mut blocks: Vec<BlockId> = body.iter().map(|&b| BlockId::from_index(b)).collect();
            blocks.sort();
            let exit_edges = collect_exits(&g, &body);
            NaturalLoop {
                header: BlockId::from_index(header),
                blocks,
                latches: latches.into_iter().map(BlockId::from_index).collect(),
                exit_edges,
                depth: 1,
            }
        })
        .collect();

    // Nesting depth: loop A contains loop B if A's blocks ⊇ B's blocks and
    // A ≠ B. Depth = number of containing loops + 1.
    let snapshots: Vec<BTreeSet<BlockId>> = loops
        .iter()
        .map(|l| l.blocks.iter().copied().collect())
        .collect();
    for i in 0..loops.len() {
        let mut depth = 1;
        for (j, other) in snapshots.iter().enumerate() {
            if i != j && other.len() > snapshots[i].len() && snapshots[i].is_subset(other) {
                depth += 1;
            }
        }
        loops[i].depth = depth;
    }
    // Outermost (shallowest, then largest) first.
    loops.sort_by_key(|l| (l.depth, usize::MAX - l.blocks.len(), l.header));
    loops
}

fn loop_body(preds: &[Vec<usize>], header: usize, latches: &[usize]) -> BTreeSet<usize> {
    let mut body: BTreeSet<usize> = BTreeSet::new();
    body.insert(header);
    let mut stack: Vec<usize> = Vec::new();
    for &l in latches {
        if body.insert(l) {
            stack.push(l);
        }
    }
    while let Some(n) = stack.pop() {
        for &p in &preds[n] {
            if body.insert(p) {
                stack.push(p);
            }
        }
    }
    body
}

fn collect_exits(g: &Graph, body: &BTreeSet<usize>) -> Vec<(BlockId, BlockId)> {
    let mut exits = Vec::new();
    for &b in body {
        for &s in g.succs(b) {
            if !body.contains(&s) {
                exits.push((BlockId::from_index(b), BlockId::from_index(s)));
            }
        }
    }
    exits
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::{Program, ProgramBuilder};

    /// entry -> h1 -> b1 -> h2 -> b2 -> h2 (inner), h2 -> l1 -> h1 (outer),
    /// h1 -> exit
    fn nested() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let h1 = f.block("h1");
        let b1 = f.block("b1");
        let h2 = f.block("h2");
        let b2 = f.block("b2");
        let l1 = f.block("l1");
        let exit = f.block("exit");
        let c = f.reg();
        f.switch_to(e);
        f.iconst(c, 1);
        f.jump(h1);
        f.switch_to(h1);
        f.br(c, b1, exit);
        f.switch_to(b1);
        f.jump(h2);
        f.switch_to(h2);
        f.br(c, b2, l1);
        f.switch_to(b2);
        f.jump(h2);
        f.switch_to(l1);
        f.jump(h1);
        f.switch_to(exit);
        f.halt();
        let main = f.finish();
        pb.finish(main, 0)
    }

    #[test]
    fn finds_nested_loops_with_depths() {
        let p = nested();
        let loops = find_loops(p.function(p.main()));
        assert_eq!(loops.len(), 2);
        let outer = &loops[0];
        let inner = &loops[1];
        assert_eq!(outer.header, BlockId(1));
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.header, BlockId(3));
        assert_eq!(inner.depth, 2);
        assert!(outer.contains(BlockId(3)));
        assert!(!inner.contains(BlockId(1)));
        assert_eq!(outer.exit_edges, vec![(BlockId(1), BlockId(6))]);
        assert_eq!(inner.exit_edges, vec![(BlockId(3), BlockId(5))]);
        assert_eq!(outer.latches, vec![BlockId(5)]);
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.switch_to(e);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 0);
        assert!(find_loops(p.function(main)).is_empty());
    }

    #[test]
    fn self_loop_is_detected() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let h = f.block("h");
        let x = f.block("x");
        let c = f.reg();
        f.switch_to(e);
        f.iconst(c, 0);
        f.jump(h);
        f.switch_to(h);
        f.br(c, h, x);
        f.switch_to(x);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 0);
        let loops = find_loops(p.function(main));
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].blocks, vec![BlockId(1)]);
        assert_eq!(loops[0].latches, vec![BlockId(1)]);
        assert_eq!(loops[0].exit_targets(), vec![BlockId(2)]);
    }
}
