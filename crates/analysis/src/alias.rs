//! Memory alias analysis.
//!
//! The precision of memory analysis is a first-class knob in this
//! reproduction: the paper's epicdec case study (Section 5.1) shows DSWP
//! blocked by conservative memory dependences and unblocked by IMPACT's
//! accurate assembly-level analysis. The three [`AliasMode`]s correspond to:
//!
//! * [`Conservative`](AliasMode::Conservative) — every load/store pair may
//!   alias (the "false memory dependences, conservatively inserted by
//!   earlier optimizations" of the case study);
//! * [`Region`](AliasMode::Region) — accesses to distinct annotated regions
//!   (arrays / allocation sites) never alias, a points-to-level analysis;
//! * [`Precise`](AliasMode::Precise) — region analysis plus affine
//!   dependence testing on [`Affine`](dswp_ir::op::Affine)-annotated
//!   accesses, distinguishing intra-iteration from loop-carried collisions
//!   and proving stride-disjoint accesses independent.

use dswp_ir::op::MemInfo;

/// Memory-analysis precision.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AliasMode {
    /// Every pair of memory accesses may alias.
    Conservative,
    /// Distinct annotated regions never alias.
    #[default]
    Region,
    /// Region analysis plus affine dependence testing.
    Precise,
}

/// How two memory accesses may collide across loop iterations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AliasResult {
    /// May touch the same address within one iteration.
    pub intra: bool,
    /// The *first* access (as passed to [`alias_query`]) in iteration `i`
    /// may touch the address the second access touches in some **later**
    /// iteration `i + d`, `d > 0` (i.e. a loop-carried dependence flowing
    /// first → second across the back edge).
    pub carried_forward: bool,
    /// Symmetric: second-in-iteration-`i` collides with first in a later
    /// iteration.
    pub carried_backward: bool,
}

impl AliasResult {
    /// No collision in any iteration relationship.
    pub const NONE: AliasResult = AliasResult {
        intra: false,
        carried_forward: false,
        carried_backward: false,
    };

    /// Fully conservative: may collide in every relationship.
    pub const ALL: AliasResult = AliasResult {
        intra: true,
        carried_forward: true,
        carried_backward: true,
    };

    /// Whether any collision is possible.
    pub fn any(self) -> bool {
        self.intra || self.carried_forward || self.carried_backward
    }
}

/// Queries whether two memory accesses (`a` first in intra-iteration
/// program order where ordered) may alias under `mode`.
pub fn alias_query(a: &MemInfo, b: &MemInfo, mode: AliasMode) -> AliasResult {
    match mode {
        AliasMode::Conservative => AliasResult::ALL,
        AliasMode::Region => region_query(a, b),
        AliasMode::Precise => {
            let r = region_query(a, b);
            if !r.any() {
                return r;
            }
            affine_query(a, b)
        }
    }
}

fn region_query(a: &MemInfo, b: &MemInfo) -> AliasResult {
    match (a.region, b.region) {
        (Some(ra), Some(rb)) if ra != rb => AliasResult::NONE,
        _ => AliasResult::ALL,
    }
}

fn affine_query(a: &MemInfo, b: &MemInfo) -> AliasResult {
    let (Some(fa), Some(fb)) = (a.affine, b.affine) else {
        return AliasResult::ALL;
    };
    if fa.iv != fb.iv || fa.stride != fb.stride || fa.stride == 0 {
        return AliasResult::ALL;
    }
    let s = fa.stride;
    let delta = fb.phase - fa.phase;
    if delta % s != 0 {
        // Addresses interleave but never coincide.
        return AliasResult::NONE;
    }
    let d = delta / s;
    AliasResult {
        intra: d == 0,
        // a@i collides with b@j when s*i + pa = s*j + pb  ⇒  i - j = d/…:
        // with d = (pb - pa)/s, a at iteration j + d equals b at iteration
        // j. d < 0 ⇒ a earlier than b ⇒ value flows a → b (forward).
        carried_forward: d < 0,
        carried_backward: d > 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::RegionId;

    fn region(r: u32) -> MemInfo {
        MemInfo::region(RegionId(r))
    }

    #[test]
    fn conservative_always_aliases() {
        let r = alias_query(&region(0), &region(1), AliasMode::Conservative);
        assert_eq!(r, AliasResult::ALL);
        assert!(alias_query(
            &MemInfo::UNKNOWN,
            &MemInfo::UNKNOWN,
            AliasMode::Conservative
        )
        .any());
    }

    #[test]
    fn region_mode_disambiguates_distinct_regions() {
        assert_eq!(
            alias_query(&region(0), &region(1), AliasMode::Region),
            AliasResult::NONE
        );
        assert_eq!(
            alias_query(&region(0), &region(0), AliasMode::Region),
            AliasResult::ALL
        );
        // Unknown regions stay conservative.
        assert!(alias_query(&region(0), &MemInfo::UNKNOWN, AliasMode::Region).any());
    }

    #[test]
    fn precise_same_phase_is_intra_only() {
        // The epicdec pattern: load A[i] / store A[i].
        let ld = MemInfo::affine(RegionId(0), 0, 1, 0);
        let st = MemInfo::affine(RegionId(0), 0, 1, 0);
        let r = alias_query(&ld, &st, AliasMode::Precise);
        assert!(r.intra);
        assert!(!r.carried_forward && !r.carried_backward);
    }

    #[test]
    fn precise_disjoint_phases_never_alias() {
        // Unrolled by 2: even and odd slots.
        let even = MemInfo::affine(RegionId(0), 0, 2, 0);
        let odd = MemInfo::affine(RegionId(0), 0, 2, 1);
        assert_eq!(
            alias_query(&even, &odd, AliasMode::Precise),
            AliasResult::NONE
        );
    }

    #[test]
    fn precise_detects_carried_direction() {
        // a touches A[i], b touches A[i-1]: a@i collides with b@(i+1):
        // value flows a → b across the back edge.
        let a = MemInfo::affine(RegionId(0), 0, 1, 0);
        let b = MemInfo::affine(RegionId(0), 0, 1, -1);
        let r = alias_query(&a, &b, AliasMode::Precise);
        assert!(!r.intra);
        assert!(r.carried_forward);
        assert!(!r.carried_backward);
        // Swapped query direction flips it.
        let r2 = alias_query(&b, &a, AliasMode::Precise);
        assert!(r2.carried_backward && !r2.carried_forward);
    }

    #[test]
    fn precise_falls_back_on_mismatched_strides_or_ivs() {
        let a = MemInfo::affine(RegionId(0), 0, 1, 0);
        let b = MemInfo::affine(RegionId(0), 0, 2, 0);
        assert_eq!(alias_query(&a, &b, AliasMode::Precise), AliasResult::ALL);
        let c = MemInfo::affine(RegionId(0), 1, 1, 0);
        assert_eq!(alias_query(&a, &c, AliasMode::Precise), AliasResult::ALL);
        // Distinct regions still win even with unanalyzable affine parts.
        let d = MemInfo::affine(RegionId(1), 0, 2, 0);
        assert_eq!(alias_query(&a, &d, AliasMode::Precise), AliasResult::NONE);
    }
}
