//! Graphviz (`dot`) export of dependence graphs.
//!
//! Renders a loop [`Pdg`] — or its coalesced `DAG_SCC` — the way the paper
//! draws them (Figure 2(b)/(c)): solid arcs for intra-iteration
//! dependences, dashed arcs for loop-carried ones, data arcs annotated with
//! the register they carry, SCCs grouped as clusters.

use std::fmt::Write as _;

use dswp_ir::Function;

use crate::pdg::{DepKind, Pdg, PdgNode};
use crate::scc::DagScc;

/// Renders `pdg` as a Graphviz digraph, grouping each multi-node SCC of
/// `dag` into a cluster (pass the `DAG_SCC` computed from
/// [`Pdg::instr_graph`]).
pub fn pdg_to_dot(f: &Function, pdg: &Pdg, dag: Option<&DagScc>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph pdg {{");
    let _ = writeln!(
        out,
        "  rankdir=TB; node [shape=box, fontname=\"monospace\"];"
    );

    let label = |n: usize| -> String {
        match pdg.nodes()[n] {
            PdgNode::Instr(i) => format!("{i}: {}", f.op(i)).replace('"', "'"),
            PdgNode::LiveIn(r) => format!("live-in {r}"),
            PdgNode::LiveOut(r) => format!("live-out {r}"),
        }
    };

    match dag {
        Some(dag) => {
            for (ci, comp) in dag.sccs.iter().enumerate() {
                if comp.len() > 1 {
                    let _ = writeln!(out, "  subgraph cluster_scc{ci} {{");
                    let _ = writeln!(out, "    label=\"SCC {ci}\"; style=rounded;");
                    for &n in comp {
                        let _ = writeln!(out, "    n{n} [label=\"{}\"];", label(n));
                    }
                    let _ = writeln!(out, "  }}");
                } else {
                    let n = comp[0];
                    let _ = writeln!(out, "  n{n} [label=\"{}\"];", label(n));
                }
            }
            // Pseudo nodes are outside the SCC universe.
            for n in pdg.num_instr_nodes()..pdg.nodes().len() {
                let _ = writeln!(out, "  n{n} [label=\"{}\", shape=ellipse];", label(n));
            }
        }
        None => {
            for n in 0..pdg.nodes().len() {
                let shape = if n < pdg.num_instr_nodes() {
                    "box"
                } else {
                    "ellipse"
                };
                let _ = writeln!(out, "  n{n} [label=\"{}\", shape={shape}];", label(n));
            }
        }
    }

    for a in pdg.arcs() {
        let style = if a.carried { "dashed" } else { "solid" };
        let (color, lbl) = match a.kind {
            DepKind::Data(r) => ("black", format!("{r}")),
            DepKind::Control => ("blue", String::new()),
            DepKind::CondControl => ("steelblue", "cond".into()),
            DepKind::Memory => ("red", "mem".into()),
            DepKind::Output => ("orange", "out".into()),
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [style={style}, color={color}, label=\"{lbl}\"];",
            a.src, a.dst
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders just the coalesced `DAG_SCC` (one node per SCC, labeled with its
/// instruction count, like Figure 7's diagrams).
pub fn dag_to_dot(dag: &DagScc) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph dag_scc {{");
    let _ = writeln!(out, "  rankdir=TB; node [shape=circle];");
    for (ci, comp) in dag.sccs.iter().enumerate() {
        let _ = writeln!(out, "  s{ci} [label=\"{}\"];", comp.len());
    }
    for &(a, b) in &dag.arcs {
        let _ = writeln!(out, "  s{a} -> s{b};");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::Liveness;
    use crate::loops::find_loops;
    use crate::pdg::{build_pdg, PdgOptions};
    use dswp_ir::ProgramBuilder;

    fn sample() -> (dswp_ir::Program, dswp_ir::FuncId) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let h = f.block("h");
        let x = f.block("x");
        let (ptr, v, done, sum) = (f.reg(), f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(ptr, 1);
        f.iconst(sum, 0);
        f.jump(h);
        f.switch_to(h);
        f.cmp_eq(done, ptr, 0);
        f.load(v, ptr, 1);
        f.add(sum, sum, v);
        f.load(ptr, ptr, 0);
        f.br(done, x, h);
        f.switch_to(x);
        let b = f.reg();
        f.iconst(b, 0);
        f.store(sum, b, 0);
        f.halt();
        let main = f.finish();
        (pb.finish(main, 8), main)
    }

    #[test]
    fn dot_output_is_well_formed() {
        let (p, main) = sample();
        let f = p.function(main);
        let liveness = Liveness::compute(f);
        let l = &find_loops(f)[0];
        let pdg = build_pdg(f, l, &liveness, &PdgOptions::default());
        let dag = DagScc::compute(&pdg.instr_graph());

        let dot = pdg_to_dot(f, &pdg, Some(&dag));
        assert!(dot.starts_with("digraph pdg {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("live-in"));
        assert!(dot.contains("style=dashed"), "carried arcs render dashed");
        assert!(dot.contains("->"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());

        let dag_dot = dag_to_dot(&dag);
        assert!(dag_dot.starts_with("digraph dag_scc {"));
        assert!(dag_dot.matches("s0").count() >= 1);
    }

    #[test]
    fn dot_without_clusters_lists_every_node() {
        let (p, main) = sample();
        let f = p.function(main);
        let liveness = Liveness::compute(f);
        let l = &find_loops(f)[0];
        let pdg = build_pdg(f, l, &liveness, &PdgOptions::default());
        let dot = pdg_to_dot(f, &pdg, None);
        for n in 0..pdg.nodes().len() {
            assert!(dot.contains(&format!("n{n} [")), "node {n} missing");
        }
    }
}
