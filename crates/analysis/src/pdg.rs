//! The loop Program Dependence Graph (PDG) — step 1 of the DSWP algorithm
//! (Figure 3, line 1 of the paper).
//!
//! The graph contains one node per loop instruction plus pseudo-nodes for
//! loop live-in and live-out registers (the "special nodes ... in the top
//! (bottom) of the graph" of Section 2.2.1). Arcs cover
//!
//! * register **flow** dependences (output/anti dependences are dropped —
//!   threads get private register frames),
//! * **control** dependences, including the loop-iteration extension of
//!   Section 2.3.1 (computed on a conceptually peeled CFG),
//! * **conditional control** dependences (Section 2.3.2, Figure 5(a)): when
//!   the source of a dependence is control dependent on a branch the sink is
//!   not, the sink also depends on that branch so the *condition* of the
//!   dependence can be communicated,
//! * **memory** dependences from the configured [`AliasMode`], with calls as
//!   barriers (the memory/synchronization category of Section 2.2.4),
//! * **output** coupling among multiple loop definitions of the same
//!   live-out register (Figure 5(b)), forcing them into one SCC.
//!
//! Each arc carries a `carried` flag distinguishing intra-iteration from
//! loop-carried dependences (Figure 2(b)'s solid vs dashed arcs). The flag
//! is advisory for control arcs (see [`crate::cdg`]); the DSWP
//! transformation treats both identically.

use std::collections::{BTreeMap, HashMap};

use dswp_ir::{BlockId, Function, InstrId, Reg};

use crate::alias::{alias_query, AliasMode, AliasResult};
use crate::cdg::loop_control_deps;
use crate::dataflow::{loop_dataflow, Liveness, LoopDataFlow};
use crate::graph::Graph;
use crate::loops::NaturalLoop;

/// A PDG node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PdgNode {
    /// A loop instruction.
    Instr(InstrId),
    /// The value of a register entering the loop (initial-flow source).
    LiveIn(Reg),
    /// The value of a register leaving the loop (final-flow sink).
    LiveOut(Reg),
}

/// The kind of a PDG arc.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DepKind {
    /// Register flow dependence carrying `Reg`.
    Data(Reg),
    /// Control dependence (source is a branch instruction).
    Control,
    /// Conditional-control dependence added by the Figure 5(a) rule.
    CondControl,
    /// Memory or call-ordering dependence (token flow).
    Memory,
    /// Output-dependence coupling among live-out definitions (Figure 5(b)).
    Output,
}

/// A PDG arc `src → dst` (`src` must execute before / produces for `dst`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct PdgArc {
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Dependence kind.
    pub kind: DepKind,
    /// Whether the dependence crosses the loop back edge.
    pub carried: bool,
}

/// Options controlling PDG construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct PdgOptions {
    /// Memory-analysis precision.
    pub alias: AliasMode,
}

/// The loop program dependence graph.
#[derive(Clone, Debug)]
pub struct Pdg {
    nodes: Vec<PdgNode>,
    arcs: Vec<PdgArc>,
    num_instr_nodes: usize,
    instr_index: HashMap<InstrId, usize>,
    /// The register dataflow facts the graph was built from (needed again
    /// by flow insertion).
    pub dataflow: LoopDataFlow,
}

impl Pdg {
    /// All nodes; instruction nodes come first (`0..num_instr_nodes`).
    pub fn nodes(&self) -> &[PdgNode] {
        &self.nodes
    }

    /// All arcs.
    pub fn arcs(&self) -> &[PdgArc] {
        &self.arcs
    }

    /// Number of instruction nodes (they occupy indices
    /// `0..num_instr_nodes`).
    pub fn num_instr_nodes(&self) -> usize {
        self.num_instr_nodes
    }

    /// The node index of a loop instruction.
    pub fn node_of(&self, instr: InstrId) -> Option<usize> {
        self.instr_index.get(&instr).copied()
    }

    /// The instruction of a node, if it is an instruction node.
    pub fn instr_of(&self, node: usize) -> Option<InstrId> {
        match self.nodes[node] {
            PdgNode::Instr(i) => Some(i),
            _ => None,
        }
    }

    /// The subgraph induced by instruction nodes, for SCC computation
    /// (pseudo live-in/live-out nodes never join a recurrence).
    pub fn instr_graph(&self) -> Graph {
        let mut g = Graph::new(self.num_instr_nodes);
        for a in &self.arcs {
            if a.src < self.num_instr_nodes && a.dst < self.num_instr_nodes && a.src != a.dst {
                g.add_edge(a.src, a.dst);
            }
        }
        g
    }

    /// Iterates over arcs whose source is `node`.
    pub fn arcs_from(&self, node: usize) -> impl Iterator<Item = &PdgArc> + '_ {
        self.arcs.iter().filter(move |a| a.src == node)
    }

    /// Iterates over arcs whose destination is `node`.
    pub fn arcs_to(&self, node: usize) -> impl Iterator<Item = &PdgArc> + '_ {
        self.arcs.iter().filter(move |a| a.dst == node)
    }
}

/// Builds the PDG of loop `l` in function `f`.
pub fn build_pdg(f: &Function, l: &NaturalLoop, liveness: &Liveness, opts: &PdgOptions) -> Pdg {
    let df = loop_dataflow(f, l, liveness);

    // ---- nodes ----
    let mut nodes = Vec::new();
    let mut instr_index = HashMap::new();
    let mut instr_block: HashMap<InstrId, BlockId> = HashMap::new();
    let mut instr_pos: HashMap<InstrId, usize> = HashMap::new();
    for &b in &l.blocks {
        for (pos, &i) in f.block(b).instrs().iter().enumerate() {
            instr_index.insert(i, nodes.len());
            instr_block.insert(i, b);
            instr_pos.insert(i, pos);
            nodes.push(PdgNode::Instr(i));
        }
    }
    let num_instr_nodes = nodes.len();
    let mut live_in_index: BTreeMap<Reg, usize> = BTreeMap::new();
    for &r in &df.live_ins {
        live_in_index.insert(r, nodes.len());
        nodes.push(PdgNode::LiveIn(r));
    }
    let mut live_out_index: BTreeMap<Reg, usize> = BTreeMap::new();
    for &r in &df.live_outs {
        live_out_index.insert(r, nodes.len());
        nodes.push(PdgNode::LiveOut(r));
    }

    let mut arcs: Vec<PdgArc> = Vec::new();
    let push = |arcs: &mut Vec<PdgArc>, a: PdgArc| {
        if !arcs.contains(&a) {
            arcs.push(a);
        }
    };

    // ---- register flow dependences ----
    for d in &df.reg_deps {
        push(
            &mut arcs,
            PdgArc {
                src: instr_index[&d.def],
                dst: instr_index[&d.use_],
                kind: DepKind::Data(d.reg),
                carried: d.carried,
            },
        );
    }
    for &(r, u) in &df.live_in_uses {
        push(
            &mut arcs,
            PdgArc {
                src: live_in_index[&r],
                dst: instr_index[&u],
                kind: DepKind::Data(r),
                carried: false,
            },
        );
    }
    for &(r, d) in &df.live_out_defs {
        push(
            &mut arcs,
            PdgArc {
                src: instr_index[&d],
                dst: live_out_index[&r],
                kind: DepKind::Data(r),
                carried: false,
            },
        );
    }

    // ---- control dependences (standard + loop-iteration) ----
    let block_deps = loop_control_deps(f, l);
    for dep in &block_deps {
        let branch = *f
            .block(dep.branch_block)
            .instrs()
            .last()
            .expect("branch block has terminator");
        for &i in f.block(dep.dependent).instrs() {
            push(
                &mut arcs,
                PdgArc {
                    src: instr_index[&branch],
                    dst: instr_index[&i],
                    kind: DepKind::Control,
                    carried: dep.carried,
                },
            );
        }
    }

    // ---- memory / call-ordering dependences ----
    let order = IntraOrder::new(f, l);
    let participants: Vec<InstrId> = instr_index
        .keys()
        .copied()
        .filter(|&i| {
            let op = f.op(i);
            op.is_mem_read() || op.is_mem_write() || op.is_barrier()
        })
        .collect();
    for (xi, &x) in participants.iter().enumerate() {
        for &y in &participants[xi + 1..] {
            let (ox, oy) = (f.op(x), f.op(y));
            let both_reads = ox.is_mem_read() && oy.is_mem_read();
            let barrier = ox.is_barrier() || oy.is_barrier();
            if both_reads && !barrier {
                continue;
            }
            let result = if barrier {
                AliasResult::ALL
            } else {
                let mx = mem_info(ox);
                let my = mem_info(oy);
                alias_query(&mx, &my, opts.alias)
            };
            if !result.any() {
                continue;
            }
            let (nx, ny) = (instr_index[&x], instr_index[&y]);
            if result.intra {
                // Same-iteration collision: the arc follows intra-iteration
                // program order. Instructions on mutually exclusive paths
                // never co-execute within one iteration, so an unordered
                // pair generates no intra arc (cross-iteration collisions
                // are covered by the carried flags below).
                match order.compare(
                    (instr_block[&x], instr_pos[&x]),
                    (instr_block[&y], instr_pos[&y]),
                ) {
                    Some(std::cmp::Ordering::Less) => {
                        push(&mut arcs, mem_arc(nx, ny, false));
                    }
                    Some(std::cmp::Ordering::Greater) => {
                        push(&mut arcs, mem_arc(ny, nx, false));
                    }
                    _ => {}
                }
            }
            if result.carried_forward {
                push(&mut arcs, mem_arc(nx, ny, true));
            }
            if result.carried_backward {
                push(&mut arcs, mem_arc(ny, nx, true));
            }
        }
    }

    // ---- output coupling of multiple live-out definitions (Fig. 5b) ----
    let mut by_reg: BTreeMap<Reg, Vec<usize>> = BTreeMap::new();
    for &(r, d) in &df.live_out_defs {
        by_reg.entry(r).or_default().push(instr_index[&d]);
    }
    for defs in by_reg.values() {
        if defs.len() >= 2 {
            for w in 0..defs.len() {
                let next = defs[(w + 1) % defs.len()];
                push(
                    &mut arcs,
                    PdgArc {
                        src: defs[w],
                        dst: next,
                        kind: DepKind::Output,
                        carried: false,
                    },
                );
            }
        }
    }

    // ---- conditional control dependences (Fig. 5a), to a fixpoint ----
    // For every inter-instruction dependence d → u: u inherits d's
    // controlling branches it does not already depend on, so the *condition*
    // of the dependence can be communicated to u's thread. The rule is
    // iterated to a fixpoint because a communicated branch flag is itself a
    // dependence whose own condition must be communicated: without the
    // closure, the code generator's transitive branch-duplication needs
    // could require a flow that Definition 1 never validated (a potential
    // backward, pipeline-breaking queue).
    let mut ctrl_sources: HashMap<usize, Vec<(usize, bool)>> = HashMap::new();
    for a in &arcs {
        if matches!(a.kind, DepKind::Control) {
            ctrl_sources
                .entry(a.dst)
                .or_default()
                .push((a.src, a.carried));
        }
    }
    loop {
        let mut new_arcs = Vec::new();
        for a in &arcs {
            let propagates = matches!(
                a.kind,
                DepKind::Data(_) | DepKind::Memory | DepKind::Control | DepKind::CondControl
            );
            if !propagates || a.src >= num_instr_nodes || a.dst >= num_instr_nodes {
                continue;
            }
            let empty = Vec::new();
            let d_ctrl = ctrl_sources.get(&a.src).unwrap_or(&empty);
            let u_ctrl = ctrl_sources.get(&a.dst).unwrap_or(&empty);
            for &(b, carried) in d_ctrl {
                if b == a.dst || b == a.src {
                    continue;
                }
                if u_ctrl.iter().any(|&(ub, _)| ub == b) {
                    continue;
                }
                let cand = PdgArc {
                    src: b,
                    dst: a.dst,
                    kind: DepKind::CondControl,
                    carried: carried || a.carried,
                };
                if !arcs.contains(&cand) && !new_arcs.contains(&cand) {
                    new_arcs.push(cand);
                }
            }
        }
        if new_arcs.is_empty() {
            break;
        }
        for a in new_arcs {
            // CondControl arcs participate in the next round both as
            // propagating arcs and as control sources of their sink.
            ctrl_sources
                .entry(a.dst)
                .or_default()
                .push((a.src, a.carried));
            push(&mut arcs, a);
        }
    }

    arcs.sort();
    Pdg {
        nodes,
        arcs,
        num_instr_nodes,
        instr_index,
        dataflow: df,
    }
}

fn mem_arc(src: usize, dst: usize, carried: bool) -> PdgArc {
    PdgArc {
        src,
        dst,
        kind: DepKind::Memory,
        carried,
    }
}

fn mem_info(op: &dswp_ir::Op) -> dswp_ir::op::MemInfo {
    match op {
        dswp_ir::Op::Load { mem, .. } | dswp_ir::Op::Store { mem, .. } => *mem,
        _ => dswp_ir::op::MemInfo::UNKNOWN,
    }
}

/// Intra-iteration execution order between loop instructions: `a < b` when
/// `a`'s block reaches `b`'s block in the loop CFG with back edges removed
/// (or `a` precedes `b` in the same block). Blocks on mutually exclusive
/// paths are unordered.
struct IntraOrder {
    /// reach[i][j]: block i (loop-local index) reaches block j without
    /// crossing a back edge.
    reach: Vec<Vec<bool>>,
    local: HashMap<BlockId, usize>,
}

impl IntraOrder {
    fn new(f: &Function, l: &NaturalLoop) -> Self {
        let k = l.blocks.len();
        let local: HashMap<BlockId, usize> =
            l.blocks.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        let mut g = Graph::new(k);
        for (i, &b) in l.blocks.iter().enumerate() {
            for s in f.successors(b) {
                if s != l.header {
                    if let Some(&j) = local.get(&s) {
                        g.add_edge(i, j);
                    }
                }
            }
        }
        let reach = (0..k).map(|i| g.reachable(i)).collect();
        IntraOrder { reach, local }
    }

    fn compare(&self, a: (BlockId, usize), b: (BlockId, usize)) -> Option<std::cmp::Ordering> {
        let (ba, ia) = (self.local[&a.0], a.1);
        let (bb, ib) = (self.local[&b.0], b.1);
        if ba == bb {
            return Some(ia.cmp(&ib));
        }
        if self.reach[ba][bb] {
            Some(std::cmp::Ordering::Less)
        } else if self.reach[bb][ba] {
            Some(std::cmp::Ordering::Greater)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::find_loops;
    use crate::scc::DagScc;
    use dswp_ir::{Program, ProgramBuilder, RegionId};

    /// The paper's Figure 2(a): traverse a list of lists summing elements.
    ///
    /// Memory layout of an outer node at address `p`: `[_, next, inner]`;
    /// inner node at `q`: `[next, _, _, value]` (offsets chosen to match the
    /// paper's `M[r1+1]`, `M[r1+2]`, `M[r2+3]`, `M[r2+0]`).
    pub(crate) fn figure2() -> (Program, Vec<InstrId>) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let bb1 = f.entry_block();
        let bb2 = f.block("BB2");
        let bb3 = f.block("BB3");
        let bb4 = f.block("BB4");
        let bb5 = f.block("BB5");
        let bb6 = f.block("BB6");
        let bb7 = f.block("BB7");
        // r1 = outer ptr, r2 = inner ptr, r3 = value, r4 = sum,
        // p1/p2 predicates, r6 = base for final store.
        let (r1, r2, r3, r4, p1, p2, r6) = (
            f.reg(),
            f.reg(),
            f.reg(),
            f.reg(),
            f.reg(),
            f.reg(),
            f.reg(),
        );
        let mut ids = Vec::new();
        f.switch_to(bb1);
        ids.push(f.iconst(r1, 1)); // 0: head of outer list at word 1
        ids.push(f.iconst(r4, 0)); // 1: sum
        ids.push(f.jump(bb2)); // 2
        f.switch_to(bb2);
        ids.push(f.cmp_eq(p1, r1, 0)); // 3: A
        ids.push(f.br(p1, bb7, bb3)); // 4: B
        f.switch_to(bb3);
        ids.push(f.load_region(r2, r1, 2, RegionId(0))); // 5: C
        ids.push(f.jump(bb4)); // 6
        f.switch_to(bb4);
        ids.push(f.cmp_eq(p2, r2, 0)); // 7: D
        ids.push(f.br(p2, bb6, bb5)); // 8: E
        f.switch_to(bb5);
        ids.push(f.load_region(r3, r2, 3, RegionId(1))); // 9: F
        ids.push(f.add(r4, r4, r3)); // 10: G
        ids.push(f.load_region(r2, r2, 0, RegionId(1))); // 11: H
        ids.push(f.jump(bb4)); // 12: I
        f.switch_to(bb6);
        ids.push(f.load_region(r1, r1, 1, RegionId(0))); // 13: J
        ids.push(f.jump(bb2)); // 14: K
        f.switch_to(bb7);
        ids.push(f.iconst(r6, 0)); // 15
        ids.push(f.store(r4, r6, 0)); // 16
        ids.push(f.halt()); // 17
        let main = f.finish();

        // Memory: outer nodes at 1 and 4; inner lists hang off them.
        //   outer node 1: [_, next=4, inner=10]
        //   outer node 4: [_, next=0, inner=20]
        //   inner 10: [next=14, _, _, val=7]; inner 14: [next=0,_,_,val=5]
        //   inner 20: [next=0, _, _, val=11]
        let mut mem = vec![0i64; 32];
        mem[1 + 1] = 4;
        mem[1 + 2] = 10;
        mem[4 + 1] = 0;
        mem[4 + 2] = 20;
        mem[10] = 14;
        mem[10 + 3] = 7;
        mem[14] = 0;
        mem[14 + 3] = 5;
        mem[20] = 0;
        mem[20 + 3] = 11;
        (pb.finish_with_memory(main, mem), ids)
    }

    #[test]
    fn figure2_program_sums_correctly() {
        let (p, _) = figure2();
        let r = dswp_ir::interp::Interpreter::new(&p).run().unwrap();
        assert_eq!(r.memory[0], 7 + 5 + 11);
    }

    fn build_fig2_pdg() -> (Pdg, Vec<InstrId>) {
        let (p, ids) = figure2();
        let f = p.function(p.main());
        let liveness = Liveness::compute(f);
        let l = &find_loops(f)[0]; // outer loop (depth 1)
        assert_eq!(l.header, BlockId(1));
        let pdg = build_pdg(
            f,
            l,
            &liveness,
            &PdgOptions {
                alias: AliasMode::Region,
            },
        );
        (pdg, ids)
    }

    #[test]
    fn figure2_pdg_has_five_sccs() {
        let (pdg, ids) = build_fig2_pdg();
        let dag = DagScc::compute(&pdg.instr_graph());
        // The paper's Figure 2(c): five SCCs.
        // {A,B,J,K?}: K is BB6's jump — jumps have no dependences out, so
        // they are singleton or grouped; only consider the paper's labeled
        // instructions.
        let scc_of = |i: InstrId| dag.node_scc[pdg.node_of(i).unwrap()];
        let (a, b, c, d, e, ff, g, h, j) = (
            ids[3], ids[4], ids[5], ids[7], ids[8], ids[9], ids[10], ids[11], ids[13],
        );
        // {A, B, J} — the outer pointer-chasing recurrence.
        assert_eq!(scc_of(a), scc_of(b));
        assert_eq!(scc_of(a), scc_of(j));
        // {C} alone.
        assert_ne!(scc_of(c), scc_of(a));
        assert_ne!(scc_of(c), scc_of(d));
        // {D, E, H} — the inner-list recurrence.
        assert_eq!(scc_of(d), scc_of(e));
        assert_eq!(scc_of(d), scc_of(h));
        assert_ne!(scc_of(d), scc_of(a));
        // {F} feeds {G}; G is its own recurrence (sum accumulation).
        assert_ne!(scc_of(ff), scc_of(g));
        assert_ne!(scc_of(ff), scc_of(d));
        assert_ne!(scc_of(g), scc_of(a));
        // Topological order: {A,B,J} ≤ {C} ≤ {D,E,H} ≤ {F} ≤ {G}.
        assert!(scc_of(a) < scc_of(c));
        assert!(scc_of(c) < scc_of(d));
        assert!(scc_of(d) < scc_of(ff));
        assert!(scc_of(ff) < scc_of(g));
    }

    #[test]
    fn figure2_live_in_and_out_nodes() {
        let (pdg, ids) = build_fig2_pdg();
        let live_ins: Vec<Reg> = pdg
            .nodes()
            .iter()
            .filter_map(|n| match n {
                PdgNode::LiveIn(r) => Some(*r),
                _ => None,
            })
            .collect();
        let live_outs: Vec<Reg> = pdg
            .nodes()
            .iter()
            .filter_map(|n| match n {
                PdgNode::LiveOut(r) => Some(*r),
                _ => None,
            })
            .collect();
        // r1 (outer ptr) and r4 (sum) enter the loop; r4 leaves it.
        assert!(live_ins.contains(&Reg(0)), "{live_ins:?}");
        assert!(live_ins.contains(&Reg(3)), "{live_ins:?}");
        assert_eq!(live_outs, vec![Reg(3)]);
        // G defines the live-out sum.
        let g_node = pdg.node_of(ids[10]).unwrap();
        let lo_node = pdg
            .nodes()
            .iter()
            .position(|n| matches!(n, PdgNode::LiveOut(_)))
            .unwrap();
        assert!(pdg
            .arcs()
            .iter()
            .any(|a| a.src == g_node && a.dst == lo_node));
    }

    #[test]
    fn no_memory_arcs_in_figure2() {
        // The paper notes Figure 2 has no memory dependences (loads only).
        let (pdg, _) = build_fig2_pdg();
        assert!(pdg.arcs().iter().all(|a| a.kind != DepKind::Memory));
    }

    #[test]
    fn conservative_store_load_pair_forms_recurrence() {
        // for(i..n) { t = A[i]; A[i] = t + 1 } — conservative analysis ties
        // the load and store into one SCC via carried memory arcs; precise
        // affine analysis splits them apart.
        let build = |alias: AliasMode| {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("main");
            let e = f.entry_block();
            let header = f.block("header");
            let body = f.block("body");
            let exit = f.block("exit");
            let (i, n, t, done) = (f.reg(), f.reg(), f.reg(), f.reg());
            f.switch_to(e);
            f.iconst(i, 0);
            f.iconst(n, 8);
            f.jump(header);
            f.switch_to(header);
            f.cmp_ge(done, i, n);
            f.br(done, exit, body);
            f.switch_to(body);
            let ld = f.load_mem(t, i, 0, dswp_ir::op::MemInfo::affine(RegionId(0), 0, 1, 0));
            f.add(t, t, 1);
            let st = f.store_mem(t, i, 0, dswp_ir::op::MemInfo::affine(RegionId(0), 0, 1, 0));
            f.add(i, i, 1);
            f.jump(header);
            f.switch_to(exit);
            f.halt();
            let main = f.finish();
            let p = pb.finish(main, 8);
            let func = p.function(main).clone();
            let liveness = Liveness::compute(&func);
            let l = find_loops(&func)[0].clone();
            let pdg = build_pdg(&func, &l, &liveness, &PdgOptions { alias });
            let dag = DagScc::compute(&pdg.instr_graph());
            dag.node_scc[pdg.node_of(ld).unwrap()] == dag.node_scc[pdg.node_of(st).unwrap()]
        };
        assert!(build(AliasMode::Conservative));
        assert!(build(AliasMode::Region)); // same region: still tied
        assert!(!build(AliasMode::Precise)); // affine: intra-only, split
    }
}
