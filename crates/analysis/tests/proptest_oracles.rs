//! Property tests checking the core graph analyses against brute-force
//! oracles on random graphs.

use proptest::prelude::*;

use dswp_analysis::{control_deps, strongly_connected_components, DomTree, Graph, PostDomTree};

/// A random directed graph with `n` nodes and the given edge list.
fn graph_strategy(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..max_n).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 0..n * 3).prop_map(move |edges| {
            let mut g = Graph::new(n);
            // Make node 0 reach a spine so most nodes are reachable.
            for i in 1..n {
                if i % 2 == 1 {
                    g.add_edge(i - 1, i);
                }
            }
            for (a, b) in edges {
                if a != b {
                    g.add_edge(a, b);
                }
            }
            g
        })
    })
}

fn brute_dominates(g: &Graph, entry: usize, a: usize, b: usize) -> bool {
    // a dominates b iff b is unreachable from entry when a is removed
    // (and b is reachable at all).
    let reach = g.reachable(entry);
    if !reach[b] {
        return false;
    }
    if a == b {
        return true;
    }
    if entry == a {
        return true;
    }
    let mut seen = vec![false; g.len()];
    let mut stack = vec![entry];
    seen[entry] = true;
    while let Some(x) = stack.pop() {
        for &s in g.succs(x) {
            if s != a && !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    !seen[b]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn dominators_match_brute_force(g in graph_strategy(10)) {
        let dom = DomTree::compute(&g, 0);
        for a in 0..g.len() {
            for b in 0..g.len() {
                let brute = brute_dominates(&g, 0, a, b);
                prop_assert_eq!(
                    dom.dominates(a, b), brute,
                    "a={} b={} graph={:?}", a, b, g
                );
            }
        }
    }

    #[test]
    fn post_dominance_is_dominance_of_the_reverse(g in graph_strategy(9)) {
        // Build the reversed graph with a virtual exit feeding all sinks,
        // and check PostDomTree agrees with brute-force dominance there.
        let pd = PostDomTree::compute(&g, &[]);
        let n = g.len();
        let mut rev = Graph::new(n + 1);
        for u in 0..n {
            for &v in g.succs(u) {
                rev.add_edge(v, u);
            }
            if g.succs(u).is_empty() {
                rev.add_edge(n, u);
            }
        }
        for a in 0..n {
            for b in 0..n {
                let brute = brute_dominates(&rev, n, a, b);
                prop_assert_eq!(pd.post_dominates(a, b), brute, "a={} b={}", a, b);
            }
        }
    }

    #[test]
    fn control_deps_match_definition(g in graph_strategy(9)) {
        // Ferrante-Ottenstein-Warren: q is control dependent on p iff p has
        // a successor s with q post-dominating s, and q does not strictly
        // post-dominate p.
        let deps = control_deps(&g, &[]);
        let pd = PostDomTree::compute(&g, &[]);
        for q in 0..g.len() {
            for p in 0..g.len() {
                let expected = g.succs(p).len() >= 2
                    && g.succs(p).iter().any(|&s| pd.post_dominates(q, s))
                    && !(q != p && pd.post_dominates(q, p));
                prop_assert_eq!(
                    deps[q].contains(&p),
                    expected,
                    "q={} p={} graph={:?}", q, p, g
                );
            }
        }
    }

    #[test]
    fn sccs_match_mutual_reachability(g in graph_strategy(12)) {
        let sccs = strongly_connected_components(&g);
        // Partition: every node in exactly one component.
        let mut owner = vec![usize::MAX; g.len()];
        for (ci, comp) in sccs.iter().enumerate() {
            for &v in comp {
                prop_assert_eq!(owner[v], usize::MAX);
                owner[v] = ci;
            }
        }
        prop_assert!(owner.iter().all(|&o| o != usize::MAX));

        let reach: Vec<Vec<bool>> = (0..g.len()).map(|v| g.reachable(v)).collect();
        for u in 0..g.len() {
            for v in 0..g.len() {
                let same = reach[u][v] && reach[v][u];
                prop_assert_eq!(owner[u] == owner[v], same, "u={} v={}", u, v);
            }
        }
        // Topological order of components.
        for u in 0..g.len() {
            for &v in g.succs(u) {
                if owner[u] != owner[v] {
                    prop_assert!(owner[u] < owner[v]);
                }
            }
        }
    }
}
