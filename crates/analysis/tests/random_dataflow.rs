//! Property test for the loop-carried tagging of register dependences: the
//! tags must agree with a *2-unrolled oracle*.
//!
//! If loop `L` is unrolled once (two replicas `R0`, `R1` of the body, tests
//! preserved), then in the unrolled loop `L2`:
//!
//! * an **intra-iteration** dependence `d → u` of `L` appears as an
//!   intra-iteration dependence `d₀ → u₀` between the replica-0 copies;
//! * a **loop-carried** dependence `d → u` of `L` appears either as an
//!   intra-iteration dependence `d₀ → u₁` (distance-1 crossing the replica
//!   boundary) or as a carried dependence between some replica copies
//!   (distance ≥ 2, or odd distances wrapping the unrolled back edge).
//!
//! The test generates random structured loops, unrolls them with the same
//! block-replication scheme `dswp::unroll_loop` uses (re-implemented here
//! so this crate needs no dev-dependency on `dswp`), and checks both
//! directions.

use std::collections::BTreeMap;

use dswp_analysis::{find_loops, loop_dataflow, Liveness, RegDep};
use dswp_ir::{BlockId, FunctionBuilder, InstrId, Program, ProgramBuilder, Reg};
use dswp_testutil::{cases, Rng};

const POOL: usize = 4;
const ITERS: i64 = 8;

#[derive(Clone, Debug)]
enum BodyOp {
    Bin { d: u8, a: u8, b: u8, k: u8 },
    Mov { d: u8, a: u8 },
}

fn body_op(rng: &mut Rng) -> BodyOp {
    let r = |rng: &mut Rng| rng.below(POOL) as u8;
    if rng.bool() {
        BodyOp::Bin {
            d: r(rng),
            a: r(rng),
            b: r(rng),
            k: rng.below(4) as u8,
        }
    } else {
        BodyOp::Mov {
            d: r(rng),
            a: r(rng),
        }
    }
}

#[derive(Clone, Debug)]
struct LoopSpec {
    straight: Vec<BodyOp>,
    then_ops: Vec<BodyOp>,
    else_ops: Vec<BodyOp>,
    cond: u8,
}

fn loop_spec(rng: &mut Rng) -> LoopSpec {
    let straight = {
        let n = rng.range(1, 5);
        rng.vec(n, body_op)
    };
    let then_ops = {
        let n = rng.below(3);
        rng.vec(n, body_op)
    };
    let else_ops = {
        let n = rng.below(3);
        rng.vec(n, body_op)
    };
    LoopSpec {
        straight,
        then_ops,
        else_ops,
        cond: rng.below(POOL) as u8,
    }
}

fn emit_ops(f: &mut FunctionBuilder, pool: &[Reg], ops: &[BodyOp]) {
    for op in ops {
        match *op {
            BodyOp::Bin { d, a, b, k } => {
                use dswp_ir::BinOp::*;
                let sel = [Add, Sub, Xor, Or];
                f.binary(
                    pool[d as usize],
                    sel[k as usize % 4],
                    pool[a as usize],
                    pool[b as usize],
                );
            }
            BodyOp::Mov { d, a } => {
                f.mov(pool[d as usize], pool[a as usize]);
            }
        }
    }
}

/// Builds the loop; with `unrolled`, emits two body replicas sharing the
/// header (replica 0's latch jumps to replica 1's entry; replica 1's latch
/// jumps to the header) — test-elision is NOT performed, matching the
/// "conceptual" unrolling of the oracle.
fn build(spec: &LoopSpec, unrolled: bool) -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let exit = f.block("exit");
    let (i, n, done) = (f.reg(), f.reg(), f.reg());
    let pool: Vec<Reg> = (0..POOL).map(|_| f.reg()).collect();

    f.switch_to(e);
    f.iconst(i, 0);
    f.iconst(n, ITERS);
    for (k, &r) in pool.iter().enumerate() {
        f.iconst(r, k as i64 + 1);
    }
    f.jump(header);

    let replicas = if unrolled { 2 } else { 1 };
    let mut entries = Vec::new();
    let mut latches = Vec::new();
    for k in 0..replicas {
        let body = f.block(format!("body{k}"));
        let then_b = f.block(format!("then{k}"));
        let else_b = f.block(format!("else{k}"));
        let latch = f.block(format!("latch{k}"));
        entries.push(body);
        latches.push(latch);

        f.switch_to(body);
        emit_ops(&mut f, &pool, &spec.straight);
        let c = f.reg();
        f.and(c, pool[spec.cond as usize], 1);
        f.br(c, then_b, else_b);
        f.switch_to(then_b);
        emit_ops(&mut f, &pool, &spec.then_ops);
        f.jump(latch);
        f.switch_to(else_b);
        emit_ops(&mut f, &pool, &spec.else_ops);
        f.jump(latch);
        f.switch_to(latch);
        f.add(i, i, 1);
        // Replica k continues to replica k+1; the last goes to the header.
        // Each replica keeps the exit test via the shared header for k = 0;
        // intermediate replicas jump directly (the oracle only needs the
        // dependence structure, and the dataflow analysis is path-based).
    }
    f.switch_to(header);
    f.cmp_ge(done, i, n);
    f.br(done, exit, entries[0]);
    for k in 0..replicas {
        f.switch_to(latches[k]);
        if k + 1 < replicas {
            f.jump(entries[k + 1]);
        } else {
            f.jump(header);
        }
    }
    f.switch_to(exit);
    let base = f.reg();
    f.iconst(base, 0);
    for (k, &r) in pool.iter().enumerate() {
        f.store(r, base, k as i64);
    }
    f.halt();
    let main = f.finish();
    pb.finish(main, POOL)
}

/// A position inside a function: (block-name, index-in-block), stable across
/// unrolling so the base and unrolled programs can be correlated.
type Pos = (String, usize);
/// `Pos` prefixed with the replica number a block belongs to.
type ReplicaPos = (usize, String, usize);

/// Dependences of the candidate loop as `(def position, use position, reg,
/// carried)`.
fn deps_by_position(p: &Program) -> Vec<(Pos, Pos, Reg, bool)> {
    let f = p.function(p.main());
    let liveness = Liveness::compute(f);
    let l = find_loops(f)
        .into_iter()
        .find(|l| l.header == BlockId(1))
        .expect("loop exists");
    let df = loop_dataflow(f, &l, &liveness);
    let pos: BTreeMap<InstrId, (String, usize)> = f
        .instr_ids()
        .map(|(b, i)| {
            let idx = f.block(b).instrs().iter().position(|&x| x == i).unwrap();
            (i, (f.block(b).name.clone(), idx))
        })
        .collect();
    df.reg_deps
        .iter()
        .map(
            |&RegDep {
                 def,
                 use_,
                 reg,
                 carried,
             }| { (pos[&def].clone(), pos[&use_].clone(), reg, carried) },
        )
        .collect()
}

fn replica_of(name: &str) -> Option<(usize, String)> {
    // "body0" → (0, "body"), "then1" → (1, "then"), header/exit → None.
    let (base, digit) = name.split_at(name.len().saturating_sub(1));
    digit
        .parse::<usize>()
        .ok()
        .filter(|&d| d < 2 && !base.is_empty())
        .map(|d| (d, base.to_string()))
}

#[test]
fn carried_tags_match_the_two_unrolled_oracle() {
    for seed in 0..cases(48) as u64 {
        let spec = loop_spec(&mut Rng::new(seed));

        let base = build(&spec, false);
        let unrolled = build(&spec, true);
        let base_deps = deps_by_position(&base);
        let u_deps = deps_by_position(&unrolled);

        // Project the unrolled deps onto (replica, base-name) coordinates.
        let proj: Vec<(ReplicaPos, ReplicaPos, Reg, bool)> = u_deps
            .iter()
            .filter_map(|((db, di), (ub, ui), r, c)| {
                let (dk, dn) = replica_of(db)?;
                let (uk, un) = replica_of(ub)?;
                Some(((dk, dn, *di), (uk, un, *ui), *r, *c))
            })
            .collect();

        for ((db, di), (ub, ui), r, carried) in &base_deps {
            let Some((dn, _)) = replica_of(db) else {
                continue;
            };
            let Some((un, _)) = replica_of(ub) else {
                continue;
            };
            let _ = (dn, un);
            let dname = db.trim_end_matches('0').to_string();
            let uname = ub.trim_end_matches('0').to_string();
            if *carried {
                // Must appear as R0 → R1 intra, or as a carried dep between
                // some replica pair.
                let found = proj.iter().any(|((dk, dn2, di2), (uk, un2, ui2), r2, c2)| {
                    dn2 == &dname
                        && un2 == &uname
                        && di2 == di
                        && ui2 == ui
                        && r2 == r
                        && ((*dk == 0 && *uk == 1 && !c2) || *c2)
                });
                assert!(
                    found,
                    "carried dep {dname}[{di}] -> {uname}[{ui}] ({r}) missing in oracle"
                );
            } else {
                // Must appear replica-0-internally, intra.
                let found = proj.iter().any(|((dk, dn2, di2), (uk, un2, ui2), r2, c2)| {
                    *dk == 0
                        && *uk == 0
                        && dn2 == &dname
                        && un2 == &uname
                        && di2 == di
                        && ui2 == ui
                        && r2 == r
                        && !c2
                });
                assert!(
                    found,
                    "intra dep {dname}[{di}] -> {uname}[{ui}] ({r}) missing in oracle"
                );
            }
        }

        // Converse: every replica-0-internal intra dep of the oracle exists
        // intra in the base loop.
        for ((dk, dn, di), (uk, un, ui), r, c) in &proj {
            if *dk == 0 && *uk == 0 && !*c {
                let found = base_deps.iter().any(|((db, di2), (ub, ui2), r2, c2)| {
                    db.trim_end_matches('0') == dn
                        && ub.trim_end_matches('0') == un
                        && di2 == di
                        && ui2 == ui
                        && r2 == r
                        && !c2
                });
                assert!(
                    found,
                    "oracle intra dep {dn}[{di}] -> {un}[{ui}] ({r}) missing in base"
                );
            }
        }

        // Sanity: the two programs compute the same result.
        let a = dswp_ir::interp::Interpreter::new(&base).run().unwrap();
        let b = dswp_ir::interp::Interpreter::new(&unrolled).run().unwrap();
        assert_eq!(a.memory, b.memory);
    }
}
