//! Randomized tests checking the core graph analyses against brute-force
//! oracles on random graphs. Cases are enumerated from deterministic seeds
//! (see `dswp-testutil`).

use dswp_analysis::{control_deps, strongly_connected_components, DomTree, Graph, PostDomTree};
use dswp_testutil::{cases, Rng};

/// A random directed graph with up to `max_n` nodes.
fn random_graph(rng: &mut Rng, max_n: usize) -> Graph {
    let n = rng.range(2, max_n);
    let mut g = Graph::new(n);
    // Make node 0 reach a spine so most nodes are reachable.
    for i in 1..n {
        if i % 2 == 1 {
            g.add_edge(i - 1, i);
        }
    }
    for _ in 0..rng.below(n * 3) {
        let a = rng.below(n);
        let b = rng.below(n);
        if a != b {
            g.add_edge(a, b);
        }
    }
    g
}

fn brute_dominates(g: &Graph, entry: usize, a: usize, b: usize) -> bool {
    // a dominates b iff b is unreachable from entry when a is removed
    // (and b is reachable at all).
    let reach = g.reachable(entry);
    if !reach[b] {
        return false;
    }
    if a == b {
        return true;
    }
    if entry == a {
        return true;
    }
    let mut seen = vec![false; g.len()];
    let mut stack = vec![entry];
    seen[entry] = true;
    while let Some(x) = stack.pop() {
        for &s in g.succs(x) {
            if s != a && !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    !seen[b]
}

#[test]
fn dominators_match_brute_force() {
    for seed in 0..cases(64) as u64 {
        let g = random_graph(&mut Rng::new(seed), 10);
        let dom = DomTree::compute(&g, 0);
        for a in 0..g.len() {
            for b in 0..g.len() {
                let brute = brute_dominates(&g, 0, a, b);
                assert_eq!(
                    dom.dominates(a, b),
                    brute,
                    "seed={seed} a={a} b={b} graph={g:?}"
                );
            }
        }
    }
}

#[test]
fn post_dominance_is_dominance_of_the_reverse() {
    for seed in 0..cases(64) as u64 {
        let g = random_graph(&mut Rng::new(0x504F_5354 ^ seed), 9);
        // Build the reversed graph with a virtual exit feeding all sinks,
        // and check PostDomTree agrees with brute-force dominance there.
        let pd = PostDomTree::compute(&g, &[]);
        let n = g.len();
        let mut rev = Graph::new(n + 1);
        for u in 0..n {
            for &v in g.succs(u) {
                rev.add_edge(v, u);
            }
            if g.succs(u).is_empty() {
                rev.add_edge(n, u);
            }
        }
        for a in 0..n {
            for b in 0..n {
                let brute = brute_dominates(&rev, n, a, b);
                assert_eq!(pd.post_dominates(a, b), brute, "seed={seed} a={a} b={b}");
            }
        }
    }
}

#[test]
fn control_deps_match_definition() {
    for seed in 0..cases(64) as u64 {
        let g = random_graph(&mut Rng::new(0x4344_4550 ^ seed), 9);
        // Ferrante-Ottenstein-Warren: q is control dependent on p iff p has
        // a successor s with q post-dominating s, and q does not strictly
        // post-dominate p.
        let deps = control_deps(&g, &[]);
        let pd = PostDomTree::compute(&g, &[]);
        for (q, dq) in deps.iter().enumerate() {
            for p in 0..g.len() {
                let expected = g.succs(p).len() >= 2
                    && g.succs(p).iter().any(|&s| pd.post_dominates(q, s))
                    && !(q != p && pd.post_dominates(q, p));
                assert_eq!(
                    dq.contains(&p),
                    expected,
                    "seed={seed} q={q} p={p} graph={g:?}"
                );
            }
        }
    }
}

#[test]
fn sccs_match_mutual_reachability() {
    for seed in 0..cases(64) as u64 {
        let g = random_graph(&mut Rng::new(0x5343_4353 ^ seed), 12);
        let sccs = strongly_connected_components(&g);
        // Partition: every node in exactly one component.
        let mut owner = vec![usize::MAX; g.len()];
        for (ci, comp) in sccs.iter().enumerate() {
            for &v in comp {
                assert_eq!(owner[v], usize::MAX, "seed {seed}");
                owner[v] = ci;
            }
        }
        assert!(owner.iter().all(|&o| o != usize::MAX), "seed {seed}");

        let reach: Vec<Vec<bool>> = (0..g.len()).map(|v| g.reachable(v)).collect();
        for u in 0..g.len() {
            for v in 0..g.len() {
                let same = reach[u][v] && reach[v][u];
                assert_eq!(owner[u] == owner[v], same, "seed={seed} u={u} v={v}");
            }
        }
        // Topological order of components.
        for u in 0..g.len() {
            for &v in g.succs(u) {
                if owner[u] != owner[v] {
                    assert!(owner[u] < owner[v], "seed {seed}");
                }
            }
        }
    }
}
