//! A multi-context *functional* executor: exact semantics, no timing.
//!
//! Runs every hardware context round-robin, one instruction at a time, with
//! unbounded FIFO queues. `consume` blocks while its queue is empty;
//! `produce` never blocks. Used as the fast correctness oracle for
//! DSWP-transformed programs: the observable result (final memory + main
//! thread's entry-frame registers) must equal the single-threaded
//! interpreter's result on the original program.
//!
//! Deadlock (every live context blocked on an empty queue) is detected and
//! reported — a valid DSWP partitioning can never deadlock, so the oracle
//! doubles as a pipeline-acyclicity check.

use std::collections::VecDeque;
use std::fmt;

use dswp_ir::exec::{checked_read, checked_write, new_frame, read_operand, Frame};
use dswp_ir::interp::{eval_binary, eval_cmp, eval_unary};
use dswp_ir::{FuncId, Op, Program};

/// Errors raised by the functional executor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A load or store addressed a word outside program memory.
    MemoryOutOfBounds {
        /// Faulting word address.
        address: i64,
        /// Memory size in words.
        size: usize,
    },
    /// Every live context is blocked on an empty queue.
    Deadlock {
        /// Contexts still alive (not halted) at deadlock.
        live_threads: Vec<usize>,
    },
    /// An indirect call target was not a valid function id.
    BadIndirectTarget(i64),
    /// The step limit was exceeded.
    StepLimit(u64),
    /// `ret` with an empty call stack.
    ReturnFromEntry(usize),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MemoryOutOfBounds { address, size } => {
                write!(
                    f,
                    "memory access at word {address} out of bounds (size {size})"
                )
            }
            ExecError::Deadlock { live_threads } => {
                write!(
                    f,
                    "deadlock: threads {live_threads:?} all blocked on empty queues"
                )
            }
            ExecError::BadIndirectTarget(v) => {
                write!(f, "indirect call target {v} is not a valid function id")
            }
            ExecError::StepLimit(n) => write!(f, "step limit of {n} instructions exceeded"),
            ExecError::ReturnFromEntry(t) => {
                write!(f, "thread {t} returned from its entry function")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Observable result of a functional multi-context run.
#[derive(Clone, Debug)]
pub struct ExecResult {
    /// Final shared memory.
    pub memory: Vec<i64>,
    /// Registers of the main thread's entry frame at halt.
    pub entry_regs: Vec<i64>,
    /// Instructions executed per context.
    pub steps: Vec<u64>,
    /// Maximum number of values simultaneously buffered in any queue
    /// (a decoupling measure; the paper reports occupancies up to
    /// thousands of instructions, Section 2).
    pub max_queue_occupancy: usize,
    /// Per-queue sequence of produced values, in production order (token
    /// produces record a `0`). Because every queue has a single producer
    /// stage, this stream is deterministic for valid DSWP programs and is
    /// compared verbatim against the native runtime by the differential
    /// test suite.
    pub streams: Vec<Vec<i64>>,
}

struct Context {
    stack: Vec<Frame>,
    halted: bool,
}

/// Multi-context functional executor.
#[derive(Debug)]
pub struct Executor<'p> {
    program: &'p Program,
    step_limit: u64,
}

impl<'p> Executor<'p> {
    /// Creates an executor over `program`.
    pub fn new(program: &'p Program) -> Self {
        Executor {
            program,
            step_limit: 500_000_000,
        }
    }

    /// Overrides the total step limit.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Runs all contexts to completion.
    ///
    /// The run ends when every context halts — DSWP auxiliary threads
    /// receive the terminate sentinel produced before the main thread's
    /// `halt` (Section 3 of the paper), so they halt shortly after it.
    /// A context still blocked on an empty queue after the main context has
    /// halted is treated as parked and the run completes; if the *main*
    /// context is among the blocked, the run is a deadlock.
    ///
    /// # Errors
    ///
    /// See [`ExecError`].
    pub fn run(&self) -> Result<ExecResult, ExecError> {
        let program = self.program;
        let mut memory = program.initial_memory.clone();
        let mut queues: Vec<VecDeque<i64>> =
            (0..program.num_queues).map(|_| VecDeque::new()).collect();
        let mut streams: Vec<Vec<i64>> = vec![Vec::new(); program.num_queues as usize];
        let mut max_occ = 0usize;

        let mut contexts: Vec<Context> = program
            .thread_entries()
            .iter()
            .map(|&entry| Context {
                stack: vec![new_frame(program.function(entry), entry)],
                halted: false,
            })
            .collect();
        let mut steps = vec![0u64; contexts.len()];
        let mut total_steps = 0u64;

        loop {
            let mut any_progress = false;
            for t in 0..contexts.len() {
                // Run each context until it blocks, halts, or exhausts a
                // small quantum (keeps round-robin fair yet fast).
                let mut quantum = 128;
                while quantum > 0 && !contexts[t].halted {
                    quantum -= 1;
                    if total_steps >= self.step_limit {
                        return Err(ExecError::StepLimit(self.step_limit));
                    }
                    match step(
                        program,
                        &mut contexts[t],
                        &mut memory,
                        &mut queues,
                        &mut streams,
                        t,
                    )? {
                        StepOutcome::Progress => {
                            steps[t] += 1;
                            total_steps += 1;
                            any_progress = true;
                            let occ = queues.iter().map(VecDeque::len).max().unwrap_or(0);
                            max_occ = max_occ.max(occ);
                        }
                        StepOutcome::Blocked => break,
                        StepOutcome::Halted => {
                            contexts[t].halted = true;
                            any_progress = true;
                        }
                    }
                }
            }
            if contexts.iter().all(|c| c.halted) {
                break;
            }
            if !any_progress {
                if contexts[0].halted {
                    // Remaining contexts are parked on empty queues with no
                    // producer left; the program is done.
                    break;
                }
                let live: Vec<usize> = contexts
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !c.halted)
                    .map(|(i, _)| i)
                    .collect();
                return Err(ExecError::Deadlock { live_threads: live });
            }
        }

        let entry_regs = contexts[0]
            .stack
            .first()
            .map(|f| f.regs.clone())
            .unwrap_or_default();
        Ok(ExecResult {
            memory,
            entry_regs,
            steps,
            max_queue_occupancy: max_occ,
            streams,
        })
    }
}

enum StepOutcome {
    Progress,
    Blocked,
    Halted,
}

fn step(
    program: &Program,
    ctx: &mut Context,
    memory: &mut [i64],
    queues: &mut [VecDeque<i64>],
    streams: &mut [Vec<i64>],
    thread: usize,
) -> Result<StepOutcome, ExecError> {
    let frame = ctx.stack.last_mut().expect("live context has a frame");
    let func = program.function(frame.func);
    let instr = func.block(frame.block).instrs()[frame.index];
    let op = func.op(instr);

    match *op {
        Op::Const { dst, value } => {
            frame.regs[dst.index()] = value;
            frame.index += 1;
        }
        Op::Unary { dst, op, src } => {
            let v = read_operand(src, &frame.regs);
            frame.regs[dst.index()] = eval_unary(op, v);
            frame.index += 1;
        }
        Op::Binary { dst, op, lhs, rhs } => {
            let (a, b) = (
                read_operand(lhs, &frame.regs),
                read_operand(rhs, &frame.regs),
            );
            frame.regs[dst.index()] = eval_binary(op, a, b);
            frame.index += 1;
        }
        Op::Cmp { dst, op, lhs, rhs } => {
            let (a, b) = (
                read_operand(lhs, &frame.regs),
                read_operand(rhs, &frame.regs),
            );
            frame.regs[dst.index()] = eval_cmp(op, a, b);
            frame.index += 1;
        }
        Op::Load {
            dst, addr, offset, ..
        } => {
            let a = frame.regs[addr.index()].wrapping_add(offset);
            let v = checked_read(memory, a).ok_or(ExecError::MemoryOutOfBounds {
                address: a,
                size: memory.len(),
            })?;
            frame.regs[dst.index()] = v;
            frame.index += 1;
        }
        Op::Store {
            src, addr, offset, ..
        } => {
            let v = read_operand(src, &frame.regs);
            let a = frame.regs[addr.index()].wrapping_add(offset);
            if !checked_write(memory, a, v) {
                return Err(ExecError::MemoryOutOfBounds {
                    address: a,
                    size: memory.len(),
                });
            }
            frame.index += 1;
        }
        Op::Call { callee } => {
            frame.index += 1;
            let callee_fn = program.function(callee);
            ctx.stack.push(new_frame(callee_fn, callee));
        }
        Op::CallInd { target } => {
            let v = frame.regs[target.index()];
            if v < 0 {
                return Ok(StepOutcome::Halted);
            }
            let idx = usize::try_from(v)
                .ok()
                .filter(|&i| i < program.functions().len())
                .ok_or(ExecError::BadIndirectTarget(v))?;
            frame.index += 1;
            let callee = FuncId::from_index(idx);
            ctx.stack.push(new_frame(program.function(callee), callee));
        }
        Op::Br { cond, then_, else_ } => {
            frame.block = if frame.regs[cond.index()] != 0 {
                then_
            } else {
                else_
            };
            frame.index = 0;
        }
        Op::Jump { target } => {
            frame.block = target;
            frame.index = 0;
        }
        Op::Ret => {
            if ctx.stack.len() == 1 {
                return Err(ExecError::ReturnFromEntry(thread));
            }
            ctx.stack.pop();
        }
        Op::Halt => return Ok(StepOutcome::Halted),
        Op::Produce { queue, src } => {
            let v = read_operand(src, &frame.regs);
            queues[queue.index()].push_back(v);
            streams[queue.index()].push(v);
            frame.index += 1;
        }
        Op::Consume { queue, dst } => {
            let Some(v) = queues[queue.index()].pop_front() else {
                return Ok(StepOutcome::Blocked);
            };
            frame.regs[dst.index()] = v;
            frame.index += 1;
        }
        Op::ProduceToken { queue } => {
            queues[queue.index()].push_back(0);
            streams[queue.index()].push(0);
            frame.index += 1;
        }
        Op::ConsumeToken { queue } => {
            if queues[queue.index()].pop_front().is_none() {
                return Ok(StepOutcome::Blocked);
            }
            frame.index += 1;
        }
        Op::QueueDepth { dst, queue } => {
            frame.regs[dst.index()] = queues[queue.index()].len() as i64;
            frame.index += 1;
        }
        Op::Nop => {
            frame.index += 1;
        }
    }
    Ok(StepOutcome::Progress)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::{ProgramBuilder, QueueId};

    /// Two threads: thread 0 produces 0..n, thread 1 sums and stores,
    /// thread 0 then reads the result back through a second queue.
    fn ping_pong(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();

        let q_data = QueueId(0);
        let q_done = QueueId(1);

        let mut f = pb.function("producer");
        let e = f.entry_block();
        let header = f.block("header");
        let body = f.block("body");
        let tail = f.block("tail");
        let (i, lim, done, res, base) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(i, 0);
        f.iconst(lim, n);
        f.iconst(base, 0);
        f.jump(header);
        f.switch_to(header);
        f.cmp_ge(done, i, lim);
        f.br(done, tail, body);
        f.switch_to(body);
        f.produce(q_data, i);
        f.add(i, i, 1);
        f.jump(header);
        f.switch_to(tail);
        f.produce(q_data, -1);
        f.consume(res, q_done);
        f.store(res, base, 0);
        f.halt();
        let producer = f.finish();

        let mut g = pb.function("consumer");
        let e2 = g.entry_block();
        let loop_ = g.block("loop");
        let acc_b = g.block("accumulate");
        let fin = g.block("fin");
        let (v, sum, neg) = (g.reg(), g.reg(), g.reg());
        g.switch_to(e2);
        g.iconst(sum, 0);
        g.jump(loop_);
        g.switch_to(loop_);
        g.consume(v, q_data);
        g.cmp_lt(neg, v, 0);
        g.br(neg, fin, acc_b);
        g.switch_to(acc_b);
        g.add(sum, sum, v);
        g.jump(loop_);
        g.switch_to(fin);
        g.produce(q_done, sum);
        g.halt();
        let consumer = g.finish();

        let mut p = pb.finish(producer, 4);
        p.num_queues = 2;
        p.add_thread(consumer);
        p
    }

    #[test]
    fn two_threads_communicate_through_queues() {
        let p = ping_pong(100);
        let r = Executor::new(&p).run().unwrap();
        assert_eq!(r.memory[0], 4950);
        assert!(r.steps[0] > 0 && r.steps[1] > 0);
        assert!(r.max_queue_occupancy >= 1);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let r = f.reg();
        f.switch_to(e);
        f.consume(r, QueueId(0));
        f.halt();
        let main = f.finish();
        let mut p = pb.finish(main, 0);
        p.num_queues = 1;
        let err = Executor::new(&p).run().unwrap_err();
        assert!(matches!(err, ExecError::Deadlock { .. }));
    }

    #[test]
    fn run_ends_when_main_halts_even_if_aux_parks() {
        // Aux thread blocks forever on an empty queue (like a master loop
        // waiting for work); the run still completes when main halts.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.switch_to(e);
        f.halt();
        let main = f.finish();
        let mut g = pb.function("parked");
        let e2 = g.entry_block();
        let r = g.reg();
        g.switch_to(e2);
        g.consume(r, QueueId(0));
        g.halt();
        let parked = g.finish();
        let mut p = pb.finish(main, 0);
        p.num_queues = 1;
        p.add_thread(parked);
        let res = Executor::new(&p).run().unwrap();
        assert_eq!(res.steps[1], 0);
    }

    #[test]
    fn step_limit_guards_runaways() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.switch_to(e);
        f.jump(e);
        let main = f.finish();
        let p = pb.finish(main, 0);
        let err = Executor::new(&p).with_step_limit(1_000).run().unwrap_err();
        assert_eq!(err, ExecError::StepLimit(1000));
    }
}
