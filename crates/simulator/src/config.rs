//! Machine configuration for the timing model.
//!
//! The defaults model the paper's evaluation platform (Section 4.2): an
//! in-order Itanium 2-like core that issues up to 6 instructions per cycle,
//! at most 4 of them M-type (memory or queue operations), connected to a
//! synchronization array of 32-element queues with 1-cycle access latency.
//! The *half-width* variant of Section 4.3 halves the fetch/dispersal
//! width (and the M-ports with it).

use dswp_ir::LatencyTable;

/// Cache hierarchy parameters (per-core L1D plus a flat next level).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// L1D capacity in words.
    pub l1_words: usize,
    /// Line size in words.
    pub line_words: usize,
    /// L1D associativity.
    pub l1_assoc: usize,
    /// Latency of an L1 hit (overrides `LatencyTable::load` when the cache
    /// model is enabled).
    pub l1_hit: u64,
    /// Latency of an L1 miss / L2 hit.
    pub l2_hit: u64,
    /// L2 capacity in words (shared).
    pub l2_words: usize,
    /// L2 associativity.
    pub l2_assoc: usize,
    /// Latency of an L2 miss (memory).
    pub memory: u64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            // 16 KB / 64 B lines → 2048 words of 8 bytes, 8 words per line.
            l1_words: 2048,
            line_words: 8,
            l1_assoc: 4,
            l1_hit: 2,
            l2_hit: 7,
            // 256 KB.
            l2_words: 32768,
            l2_assoc: 8,
            memory: 120,
        }
    }
}

/// Full machine configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Instructions issued per cycle per core.
    pub issue_width: usize,
    /// M-type (memory + queue) issue slots per cycle per core.
    pub m_ports: usize,
    /// Per-opcode latencies.
    pub latency: LatencyTable,
    /// Cache hierarchy; `None` uses the flat `latency.load` for all loads.
    pub cache: Option<CacheConfig>,
    /// Synchronization-array queue capacity (elements per queue).
    pub queue_capacity: usize,
    /// Cycles for a produced value to become visible to the consumer
    /// (Section 4.4 sweeps 1 / 10 / 50).
    pub comm_latency: u64,
    /// Front-end bubble after a taken branch.
    pub taken_branch_bubble: u64,
    /// Hard cycle limit (deadlock/runaway guard).
    pub max_cycles: u64,
    /// Sampling period for the occupancy timeline (cycles).
    pub occupancy_sample_period: u64,
    /// Record the full memory trace for the offline sharing analysis
    /// ([`crate::sharing`]); costs memory proportional to the access count.
    pub record_mem_trace: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::full_width()
    }
}

impl MachineConfig {
    /// The paper's baseline: full-width (6-issue) Itanium 2-like core.
    pub fn full_width() -> Self {
        MachineConfig {
            issue_width: 6,
            m_ports: 4,
            latency: LatencyTable::default(),
            cache: Some(CacheConfig::default()),
            queue_capacity: 32,
            comm_latency: 1,
            taken_branch_bubble: 0,
            max_cycles: 2_000_000_000,
            occupancy_sample_period: 64,
            record_mem_trace: false,
        }
    }

    /// The half-width variant of Section 4.3 (half fetch/dispersal width).
    pub fn half_width() -> Self {
        MachineConfig {
            issue_width: 3,
            m_ports: 2,
            ..MachineConfig::full_width()
        }
    }

    /// Sets the inter-core communication latency (Figure 9(b)).
    pub fn with_comm_latency(mut self, cycles: u64) -> Self {
        self.comm_latency = cycles.max(1);
        self
    }

    /// Sets the queue capacity (Section 4.4's 8 / 32 / 128 sweep).
    pub fn with_queue_capacity(mut self, elements: usize) -> Self {
        self.queue_capacity = elements.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_width_only() {
        let full = MachineConfig::full_width();
        let half = MachineConfig::half_width();
        assert_eq!(full.issue_width, 6);
        assert_eq!(half.issue_width, 3);
        assert_eq!(half.m_ports, 2);
        assert_eq!(full.queue_capacity, half.queue_capacity);
    }

    #[test]
    fn builders_clamp_to_sane_values() {
        let c = MachineConfig::full_width().with_comm_latency(0);
        assert_eq!(c.comm_latency, 1);
        let c = MachineConfig::full_width().with_queue_capacity(0);
        assert_eq!(c.queue_capacity, 1);
    }
}
