//! A small set-associative cache model (per-core L1D over a shared L2).
//!
//! Only load latency is modeled (stores are assumed write-buffered, as on
//! Itanium 2); no coherence traffic is simulated, matching the paper's
//! methodology (Section 4.2 analyzes sharing offline instead — see
//! [`crate::sharing`]).

use crate::config::CacheConfig;

/// One set-associative cache level with LRU replacement.
#[derive(Clone, Debug)]
struct Level {
    sets: usize,
    assoc: usize,
    line_words: usize,
    /// `tags[set * assoc + way]`: line address, `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
}

impl Level {
    fn new(words: usize, assoc: usize, line_words: usize) -> Self {
        let lines = (words / line_words).max(assoc);
        let sets = (lines / assoc).max(1);
        Level {
            sets,
            assoc,
            line_words,
            tags: vec![u64::MAX; sets * assoc],
            stamps: vec![0; sets * assoc],
            clock: 0,
        }
    }

    /// Accesses `addr` (word address); returns whether it hit, and installs
    /// the line.
    fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr / self.line_words as u64;
        let set = (line % self.sets as u64) as usize;
        let base = set * self.assoc;
        for way in 0..self.assoc {
            if self.tags[base + way] == line {
                self.stamps[base + way] = self.clock;
                return true;
            }
        }
        // Miss: replace LRU way.
        let mut victim = 0;
        for way in 1..self.assoc {
            if self.stamps[base + way] < self.stamps[base + victim] {
                victim = way;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        false
    }
}

/// Per-core load-latency statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Load accesses.
    pub accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses that hit L2.
    pub l2_hits: u64,
    /// Accesses that went to memory.
    pub memory: u64,
}

impl CacheStats {
    /// L1 miss rate in [0, 1].
    pub fn l1_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            1.0 - self.l1_hits as f64 / self.accesses as f64
        }
    }
}

/// The cache hierarchy: one L1D per core, one shared L2.
#[derive(Clone, Debug)]
pub struct CacheModel {
    config: CacheConfig,
    l1: Vec<Level>,
    l2: Level,
    stats: Vec<CacheStats>,
}

impl CacheModel {
    /// Builds the hierarchy for `cores` cores.
    pub fn new(config: CacheConfig, cores: usize) -> Self {
        CacheModel {
            config,
            l1: (0..cores)
                .map(|_| Level::new(config.l1_words, config.l1_assoc, config.line_words))
                .collect(),
            l2: Level::new(config.l2_words, config.l2_assoc, config.line_words),
            stats: vec![CacheStats::default(); cores],
        }
    }

    /// Latency of a load from `core` at word `addr`.
    pub fn load_latency(&mut self, core: usize, addr: u64) -> u64 {
        let s = &mut self.stats[core];
        s.accesses += 1;
        if self.l1[core].access(addr) {
            s.l1_hits += 1;
            self.config.l1_hit
        } else if self.l2.access(addr) {
            s.l2_hits += 1;
            self.config.l2_hit
        } else {
            s.memory += 1;
            self.config.memory
        }
    }

    /// Installs a stored line in the core's L1 (write-allocate, no latency).
    pub fn store(&mut self, core: usize, addr: u64) {
        self.l1[core].access(addr);
        self.l2.access(addr);
    }

    /// Per-core statistics.
    pub fn stats(&self) -> &[CacheStats] {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> CacheConfig {
        CacheConfig {
            l1_words: 32,
            line_words: 4,
            l1_assoc: 2,
            l1_hit: 2,
            l2_hit: 7,
            l2_words: 128,
            l2_assoc: 2,
            memory: 100,
        }
    }

    #[test]
    fn repeated_access_hits_l1() {
        let mut c = CacheModel::new(tiny_config(), 1);
        assert_eq!(c.load_latency(0, 8), 100); // cold miss to memory
        assert_eq!(c.load_latency(0, 8), 2); // now in L1
        assert_eq!(c.load_latency(0, 9), 2); // same line
        assert_eq!(c.stats()[0].accesses, 3);
        assert_eq!(c.stats()[0].l1_hits, 2);
    }

    #[test]
    fn capacity_eviction_falls_back_to_l2() {
        let mut c = CacheModel::new(tiny_config(), 1);
        // Touch enough distinct lines to overflow L1 (8 lines capacity).
        for i in 0..16u64 {
            c.load_latency(0, i * 4);
        }
        // The first line was evicted from L1 but lives in L2.
        let lat = c.load_latency(0, 0);
        assert_eq!(lat, 7, "expected an L2 hit");
    }

    #[test]
    fn per_core_l1s_are_private() {
        let mut c = CacheModel::new(tiny_config(), 2);
        c.load_latency(0, 8);
        // Core 1 misses L1 but hits the shared L2.
        assert_eq!(c.load_latency(1, 8), 7);
    }

    #[test]
    fn stores_install_lines() {
        let mut c = CacheModel::new(tiny_config(), 1);
        c.store(0, 40);
        assert_eq!(c.load_latency(0, 41), 2);
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = CacheModel::new(tiny_config(), 1);
        c.load_latency(0, 0);
        c.load_latency(0, 0);
        let s = c.stats()[0];
        assert!((s.l1_miss_rate() - 0.5).abs() < 1e-9);
    }
}
