//! Offline cache-sharing analysis of multi-core memory traces.
//!
//! The paper's simulator "did not model the cost of coherence protocol"; to
//! validate that omission the authors "replayed the memory accesses from
//! the traces in an invalidation-based coherence model offline" and
//! inspected the false sharing it revealed (Section 4.2, including the
//! 256.bzip2 `bslive` global). This module reproduces that methodology.
//!
//! [`analyze`] replays a merged trace against a simple MESI-like
//! invalidation model at line granularity and classifies every
//! invalidation as **true sharing** (another core touched the same word)
//! or **false sharing** (same line, different words).

use std::collections::HashMap;

/// One memory access in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Issuing core.
    pub core: usize,
    /// Cycle of issue (trace must be cycle-sorted).
    pub cycle: u64,
    /// Word address.
    pub addr: u64,
    /// Whether the access writes.
    pub write: bool,
}

/// Result of the offline sharing analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SharingReport {
    /// Invalidations caused by a write to a word another core had cached
    /// (same word → genuine communication).
    pub true_sharing_invalidations: u64,
    /// Invalidations where the cores touched *different* words of one line.
    pub false_sharing_invalidations: u64,
    /// Total line invalidations.
    pub invalidations: u64,
    /// Lines responsible for false sharing, with event counts (worst
    /// offenders first is up to the caller; the map is by line address).
    pub false_sharing_lines: HashMap<u64, u64>,
}

impl SharingReport {
    /// Whether the trace exhibits any false sharing.
    pub fn has_false_sharing(&self) -> bool {
        self.false_sharing_invalidations > 0
    }
}

/// Replays `trace` (cycle-sorted) through an invalidation-based coherence
/// model with `line_words`-word lines across `cores` cores.
pub fn analyze(trace: &[Access], line_words: usize, cores: usize) -> SharingReport {
    assert!(line_words > 0);
    // Per line: which cores hold it, and per (line, core) the set of words
    // that core touched since it (re)gained the line.
    let mut holders: HashMap<u64, Vec<bool>> = HashMap::new();
    let mut touched: HashMap<(u64, usize), Vec<u64>> = HashMap::new();
    let mut report = SharingReport::default();

    for a in trace {
        let line = a.addr / line_words as u64;
        let entry = holders.entry(line).or_insert_with(|| vec![false; cores]);
        if a.write {
            // Invalidate every other holder.
            for (other, held) in entry.iter_mut().enumerate() {
                if other != a.core && *held {
                    *held = false;
                    report.invalidations += 1;
                    let words = touched.remove(&(line, other)).unwrap_or_default();
                    if words.contains(&a.addr) {
                        report.true_sharing_invalidations += 1;
                    } else {
                        report.false_sharing_invalidations += 1;
                        *report.false_sharing_lines.entry(line).or_insert(0) += 1;
                    }
                }
            }
        }
        entry[a.core] = true;
        touched.entry((line, a.core)).or_default().push(a.addr);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(core: usize, cycle: u64, addr: u64, write: bool) -> Access {
        Access {
            core,
            cycle,
            addr,
            write,
        }
    }

    #[test]
    fn disjoint_lines_share_nothing() {
        let t = vec![
            acc(0, 0, 0, true),
            acc(1, 1, 100, true),
            acc(0, 2, 1, false),
        ];
        let r = analyze(&t, 8, 2);
        assert_eq!(r.invalidations, 0);
        assert!(!r.has_false_sharing());
    }

    #[test]
    fn same_word_write_is_true_sharing() {
        let t = vec![acc(0, 0, 5, false), acc(1, 1, 5, true)];
        let r = analyze(&t, 8, 2);
        assert_eq!(r.invalidations, 1);
        assert_eq!(r.true_sharing_invalidations, 1);
        assert_eq!(r.false_sharing_invalidations, 0);
    }

    #[test]
    fn different_words_same_line_is_false_sharing() {
        // The bzip2 `bslive` pattern: core 0 reads word 0, core 1 writes
        // word 3 of the same line.
        let t = vec![acc(0, 0, 0, false), acc(1, 1, 3, true)];
        let r = analyze(&t, 8, 2);
        assert_eq!(r.invalidations, 1);
        assert_eq!(r.false_sharing_invalidations, 1);
        assert!(r.has_false_sharing());
        assert_eq!(r.false_sharing_lines.get(&0), Some(&1));
    }

    #[test]
    fn regaining_a_line_resets_touched_words() {
        let t = vec![
            acc(0, 0, 5, false), // core 0 holds line, touched word 5
            acc(1, 1, 6, true),  // false sharing (word 6 ≠ 5), core 0 loses line
            acc(0, 2, 6, false), // core 0 regains, touches word 6
            acc(1, 3, 6, true),  // true sharing now
        ];
        let r = analyze(&t, 8, 2);
        assert_eq!(r.false_sharing_invalidations, 1);
        assert_eq!(r.true_sharing_invalidations, 1);
    }
}
