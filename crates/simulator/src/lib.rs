//! A deterministic chip-multiprocessor model for the DSWP reproduction.
//!
//! Two execution engines over `dswp-ir` programs:
//!
//! * [`functional::Executor`] — exact multi-context semantics with
//!   unbounded queues and deadlock detection; the fast correctness oracle;
//! * [`machine::Machine`] — the cycle-level timing model: in-order
//!   multi-issue cores (Itanium 2-flavored), a two-level cache model, and
//!   the blocking *synchronization array* queues of the paper (Rangan et
//!   al.'s mechanism, Section 2.1/4.2), with per-cycle occupancy statistics
//!   for the paper's Figures 7 and 8.
//!
//! Everything is single-OS-thread and deterministic: simulated hardware
//! contexts are data structures, not OS threads.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod config;
pub mod functional;
pub mod machine;
pub mod sharing;

pub use cache::{CacheModel, CacheStats};
pub use config::{CacheConfig, MachineConfig};
pub use functional::{ExecError, ExecResult, Executor};
pub use machine::{CoreStats, Machine, OccupancyStats, SimError, SimResult};
