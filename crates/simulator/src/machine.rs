//! The cycle-level CMP timing model.
//!
//! A deterministic, cycle-driven simulation of `N` in-order multi-issue
//! cores (one per program hardware context) connected through the
//! synchronization array (Section 2.1 / 4.2 of the paper):
//!
//! * per-cycle in-order issue of up to `issue_width` instructions, at most
//!   `m_ports` of them M-type (memory or queue), gated by a register
//!   scoreboard;
//! * per-opcode latencies from the [`LatencyTable`](dswp_ir::LatencyTable), with load latency from
//!   the cache model when enabled;
//! * `produce` blocks while its queue holds `queue_capacity` entries and
//!   makes the value visible `comm_latency` cycles later; `consume` blocks
//!   while no visible entry exists and delivers in one cycle — the paper's
//!   blocking-queue semantics;
//! * control transfers pay a front-end redirect bubble.
//!
//! Execution is *execute-at-issue*: values are computed functionally when
//! an instruction issues; timing constraints (scoreboard + queue
//! visibility) guarantee cross-core ordering matches the dependences, so
//! the simulation is also a correct functional execution.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use dswp_ir::interp::{eval_binary, eval_cmp, eval_unary};
use dswp_ir::{FuncId, Function, LatencyClass, Op, Operand, Program};

use crate::cache::{CacheModel, CacheStats};
use crate::config::MachineConfig;
use crate::sharing::Access;

/// Errors raised by the timing model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// Out-of-bounds memory access.
    MemoryOutOfBounds {
        /// Faulting word address.
        address: i64,
        /// Memory size in words.
        size: usize,
    },
    /// Invalid indirect call target.
    BadIndirectTarget(i64),
    /// No core made progress for a long window — a queue deadlock.
    Deadlock {
        /// Cycle at which the deadlock was declared.
        cycle: u64,
    },
    /// The configured cycle limit was reached.
    CycleLimit(u64),
    /// `ret` with an empty call stack.
    ReturnFromEntry(usize),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MemoryOutOfBounds { address, size } => {
                write!(
                    f,
                    "memory access at word {address} out of bounds (size {size})"
                )
            }
            SimError::BadIndirectTarget(v) => {
                write!(f, "indirect call target {v} is not a valid function id")
            }
            SimError::Deadlock { cycle } => write!(f, "deadlock detected at cycle {cycle}"),
            SimError::CycleLimit(c) => write!(f, "cycle limit of {c} reached"),
            SimError::ReturnFromEntry(t) => {
                write!(f, "core {t} returned from its entry function")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Why a core issued nothing in a given cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StallReason {
    /// Waiting on a source register (scoreboard).
    Data,
    /// Blocked consuming from an empty queue.
    QueueEmpty,
    /// Blocked producing to a full queue.
    QueueFull,
    /// Front-end redirect bubble.
    FrontEnd,
    /// Structural (M-port) conflict.
    Structural,
}

/// Per-core statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// All retired instructions.
    pub retired: u64,
    /// Retired `produce`/`consume`/token instructions.
    pub queue_ops: u64,
    /// Cycles in which nothing issued, waiting on a source register.
    pub stall_data: u64,
    /// Cycles blocked on an empty queue.
    pub stall_queue_empty: u64,
    /// Cycles blocked on a full queue.
    pub stall_queue_full: u64,
    /// Front-end bubble cycles.
    pub stall_frontend: u64,
    /// Structural-hazard cycles.
    pub stall_structural: u64,
    /// Cycles before this core halted.
    pub active_cycles: u64,
}

impl CoreStats {
    /// Instructions (excluding queue operations) per cycle over the whole
    /// run, the metric of Figure 6(b) ("these IPC numbers do not include
    /// the produce and consume instructions inserted by DSWP").
    pub fn ipc(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            (self.retired - self.queue_ops) as f64 / cycles as f64
        }
    }
}

/// Per-cycle classification of the synchronization array, the categories of
/// the paper's Figure 8.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OccupancyClasses {
    /// Some queue full and its producer stalled on it.
    pub full_producer_stalled: u64,
    /// All relevant queues empty and a consumer stalled.
    pub empty_consumer_stalled: u64,
    /// Queues empty but both/all cores made progress.
    pub empty_both_active: u64,
    /// Data buffered and both/all cores made progress.
    pub balanced_both_active: u64,
}

/// Synchronization-array occupancy statistics.
#[derive(Clone, Debug, Default)]
pub struct OccupancyStats {
    /// Cycle-count histogram keyed by total buffered entries.
    pub histogram: BTreeMap<usize, u64>,
    /// Periodic samples `(cycle, total occupancy)` for trace plots
    /// (Figure 7).
    pub timeline: Vec<(u64, usize)>,
    /// Figure 8 classification.
    pub classes: OccupancyClasses,
}

impl OccupancyStats {
    /// Mean total occupancy over the run.
    pub fn mean(&self) -> f64 {
        let (mut sum, mut n) = (0f64, 0f64);
        for (&occ, &cycles) in &self.histogram {
            sum += occ as f64 * cycles as f64;
            n += cycles as f64;
        }
        if n == 0.0 {
            0.0
        } else {
            sum / n
        }
    }

    /// Maximum observed total occupancy.
    pub fn max(&self) -> usize {
        self.histogram.keys().next_back().copied().unwrap_or(0)
    }
}

/// The result of a timing-model run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Cycles until the main core halted.
    pub cycles: u64,
    /// Final shared memory.
    pub memory: Vec<i64>,
    /// Main core's entry-frame registers at halt.
    pub entry_regs: Vec<i64>,
    /// Per-core statistics.
    pub cores: Vec<CoreStats>,
    /// Queue occupancy statistics.
    pub occupancy: OccupancyStats,
    /// Per-core cache statistics (empty when the cache model is disabled).
    pub cache: Vec<CacheStats>,
    /// Memory trace (empty unless `record_mem_trace` was set).
    pub mem_trace: Vec<Access>,
}

struct TFrame {
    func: FuncId,
    regs: Vec<i64>,
    ready: Vec<u64>,
    block: dswp_ir::BlockId,
    index: usize,
}

struct Core {
    stack: Vec<TFrame>,
    halted: bool,
    next_issue: u64,
    stats: CoreStats,
}

struct QueueState {
    entries: VecDeque<(i64, u64)>,
}

/// The CMP timing model.
#[derive(Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    config: MachineConfig,
}

impl<'p> Machine<'p> {
    /// Creates a machine for `program` under `config`.
    pub fn new(program: &'p Program, config: MachineConfig) -> Self {
        Machine { program, config }
    }

    /// Runs the program to completion (main core halt).
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(&self) -> Result<SimResult, SimError> {
        let program = self.program;
        let cfg = &self.config;
        let num_cores = program.num_threads();
        let mut memory = program.initial_memory.clone();
        let mut queues: Vec<QueueState> = (0..program.num_queues)
            .map(|_| QueueState {
                entries: VecDeque::new(),
            })
            .collect();
        let mut cache = cfg.cache.map(|cc| CacheModel::new(cc, num_cores));
        let mut cores: Vec<Core> = program
            .thread_entries()
            .iter()
            .map(|&e| Core {
                stack: vec![new_frame(program.function(e), e)],
                halted: false,
                next_issue: 0,
                stats: CoreStats::default(),
            })
            .collect();

        let mut occupancy = OccupancyStats::default();
        let mut mem_trace: Vec<Access> = Vec::new();
        let mut cycle: u64 = 0;
        let mut last_progress: u64 = 0;
        let deadlock_window: u64 = 50_000 + cfg.comm_latency * 64;

        while !cores.iter().all(|c| c.halted) {
            if cycle >= cfg.max_cycles {
                return Err(SimError::CycleLimit(cfg.max_cycles));
            }
            if cycle.saturating_sub(last_progress) > deadlock_window {
                if cores[0].halted {
                    // Remaining cores are parked on empty queues with no
                    // producer left; the program is done.
                    break;
                }
                return Err(SimError::Deadlock { cycle });
            }

            let mut stall_flags = [false; 3]; // [full-stall, empty-stall, any-issue]
            for (c, core) in cores.iter_mut().enumerate().take(num_cores) {
                if core.halted {
                    continue;
                }
                core.stats.active_cycles += 1;
                match issue_cycle(
                    program,
                    cfg,
                    core,
                    &mut memory,
                    &mut queues,
                    cache.as_mut(),
                    if cfg.record_mem_trace {
                        Some(&mut mem_trace)
                    } else {
                        None
                    },
                    c,
                    cycle,
                )? {
                    CycleOutcome::Issued(n) => {
                        debug_assert!(n > 0);
                        stall_flags[2] = true;
                        last_progress = cycle;
                    }
                    CycleOutcome::Stalled(StallReason::QueueFull) => {
                        core.stats.stall_queue_full += 1;
                        stall_flags[0] = true;
                    }
                    CycleOutcome::Stalled(StallReason::QueueEmpty) => {
                        core.stats.stall_queue_empty += 1;
                        stall_flags[1] = true;
                    }
                    CycleOutcome::Stalled(r) => {
                        match r {
                            StallReason::Data => core.stats.stall_data += 1,
                            StallReason::FrontEnd => core.stats.stall_frontend += 1,
                            StallReason::Structural => core.stats.stall_structural += 1,
                            _ => unreachable!(),
                        }
                        stall_flags[2] = true; // making forward progress soon
                    }
                }
            }

            // Occupancy bookkeeping.
            let occ: usize = queues.iter().map(|q| q.entries.len()).sum();
            *occupancy.histogram.entry(occ).or_insert(0) += 1;
            if cycle.is_multiple_of(cfg.occupancy_sample_period) {
                occupancy.timeline.push((cycle, occ));
            }
            let cls = &mut occupancy.classes;
            if stall_flags[0] {
                cls.full_producer_stalled += 1;
            } else if stall_flags[1] {
                cls.empty_consumer_stalled += 1;
            } else if occ == 0 {
                cls.empty_both_active += 1;
            } else {
                cls.balanced_both_active += 1;
            }

            cycle += 1;
        }

        let entry_regs = cores[0]
            .stack
            .first()
            .map(|f| f.regs.clone())
            .unwrap_or_default();
        Ok(SimResult {
            cycles: cycle,
            memory,
            entry_regs,
            cores: cores.into_iter().map(|c| c.stats).collect(),
            occupancy,
            cache: cache.map(|c| c.stats().to_vec()).unwrap_or_default(),
            mem_trace,
        })
    }
}

enum CycleOutcome {
    Issued(usize),
    Stalled(StallReason),
}

fn new_frame(f: &Function, id: FuncId) -> TFrame {
    TFrame {
        func: id,
        regs: vec![0; f.num_regs() as usize],
        ready: vec![0; f.num_regs() as usize],
        block: f.entry(),
        index: 0,
    }
}

/// Issues as many instructions as the cycle allows on one core.
#[allow(clippy::too_many_arguments)]
fn issue_cycle(
    program: &Program,
    cfg: &MachineConfig,
    core: &mut Core,
    memory: &mut [i64],
    queues: &mut [QueueState],
    mut cache: Option<&mut CacheModel>,
    mut trace: Option<&mut Vec<Access>>,
    core_id: usize,
    cycle: u64,
) -> Result<CycleOutcome, SimError> {
    if cycle < core.next_issue {
        return Ok(CycleOutcome::Stalled(StallReason::FrontEnd));
    }
    let mut issued = 0usize;
    let mut m_used = 0usize;
    let mut first_block: Option<StallReason> = None;

    'issue: while issued < cfg.issue_width {
        let frame = core.stack.last_mut().expect("live core has a frame");
        let func = program.function(frame.func);
        let instr = func.block(frame.block).instrs()[frame.index];
        let op = func.op(instr);

        // Structural: M-port limit.
        if op.is_m_type() && m_used >= cfg.m_ports {
            first_block.get_or_insert(StallReason::Structural);
            break 'issue;
        }
        // Scoreboard: all sources ready.
        for u in op.uses() {
            if frame.ready[u.index()] > cycle {
                first_block.get_or_insert(StallReason::Data);
                break 'issue;
            }
        }
        // Queue availability.
        match op {
            Op::Consume { queue, .. } | Op::ConsumeToken { queue } => {
                let q = &queues[queue.index()];
                let visible = q
                    .entries
                    .front()
                    .map(|&(_, vis)| vis <= cycle)
                    .unwrap_or(false);
                if !visible {
                    first_block.get_or_insert(StallReason::QueueEmpty);
                    break 'issue;
                }
            }
            Op::Produce { queue, .. } | Op::ProduceToken { queue }
                if queues[queue.index()].entries.len() >= cfg.queue_capacity =>
            {
                first_block.get_or_insert(StallReason::QueueFull);
                break 'issue;
            }
            _ => {}
        }

        // ---- issue: execute functionally, assign latency ----
        let read = |o: Operand, regs: &[i64]| -> i64 {
            match o {
                Operand::Reg(r) => regs[r.index()],
                Operand::Imm(v) => v,
            }
        };
        let lat = cfg.latency.op(op);
        let mut redirect = false;
        match *op {
            Op::Const { dst, value } => {
                frame.regs[dst.index()] = value;
                frame.ready[dst.index()] = cycle + lat;
                frame.index += 1;
            }
            Op::Unary { dst, op: uop, src } => {
                let v = read(src, &frame.regs);
                frame.regs[dst.index()] = eval_unary(uop, v);
                frame.ready[dst.index()] = cycle + lat;
                frame.index += 1;
            }
            Op::Binary {
                dst,
                op: bop,
                lhs,
                rhs,
            } => {
                let (a, b) = (read(lhs, &frame.regs), read(rhs, &frame.regs));
                frame.regs[dst.index()] = eval_binary(bop, a, b);
                frame.ready[dst.index()] = cycle + lat;
                frame.index += 1;
            }
            Op::Cmp {
                dst,
                op: cop,
                lhs,
                rhs,
            } => {
                let (a, b) = (read(lhs, &frame.regs), read(rhs, &frame.regs));
                frame.regs[dst.index()] = eval_cmp(cop, a, b);
                frame.ready[dst.index()] = cycle + lat;
                frame.index += 1;
            }
            Op::Load {
                dst, addr, offset, ..
            } => {
                let a = frame.regs[addr.index()].wrapping_add(offset);
                let v = usize::try_from(a)
                    .ok()
                    .and_then(|x| memory.get(x).copied())
                    .ok_or(SimError::MemoryOutOfBounds {
                        address: a,
                        size: memory.len(),
                    })?;
                let lat = match cache.as_deref_mut() {
                    Some(c) => c.load_latency(core_id, a as u64),
                    None => lat,
                };
                if let Some(t) = trace.as_deref_mut() {
                    t.push(Access {
                        core: core_id,
                        cycle,
                        addr: a as u64,
                        write: false,
                    });
                }
                frame.regs[dst.index()] = v;
                frame.ready[dst.index()] = cycle + lat;
                frame.index += 1;
            }
            Op::Store {
                src, addr, offset, ..
            } => {
                let v = read(src, &frame.regs);
                let a = frame.regs[addr.index()].wrapping_add(offset);
                let size = memory.len();
                let slot = usize::try_from(a)
                    .ok()
                    .and_then(|x| memory.get_mut(x))
                    .ok_or(SimError::MemoryOutOfBounds { address: a, size })?;
                *slot = v;
                if let Some(c) = cache.as_deref_mut() {
                    c.store(core_id, a as u64);
                }
                if let Some(t) = trace.as_deref_mut() {
                    t.push(Access {
                        core: core_id,
                        cycle,
                        addr: a as u64,
                        write: true,
                    });
                }
                frame.index += 1;
            }
            Op::Call { callee } => {
                frame.index += 1;
                core.stack.push(new_frame(program.function(callee), callee));
                redirect = true;
            }
            Op::CallInd { target } => {
                let v = frame.regs[target.index()];
                if v < 0 {
                    core.halted = true;
                    core.stats.retired += 1;
                    issued += 1;
                    break 'issue;
                }
                let idx = usize::try_from(v)
                    .ok()
                    .filter(|&i| i < program.functions().len())
                    .ok_or(SimError::BadIndirectTarget(v))?;
                frame.index += 1;
                let callee = FuncId::from_index(idx);
                core.stack.push(new_frame(program.function(callee), callee));
                redirect = true;
            }
            Op::Br { cond, then_, else_ } => {
                frame.block = if frame.regs[cond.index()] != 0 {
                    then_
                } else {
                    else_
                };
                frame.index = 0;
                redirect = true;
            }
            Op::Jump { target } => {
                frame.block = target;
                frame.index = 0;
                redirect = true;
            }
            Op::Ret => {
                if core.stack.len() == 1 {
                    return Err(SimError::ReturnFromEntry(core_id));
                }
                core.stack.pop();
                redirect = true;
            }
            Op::Halt => {
                core.halted = true;
                core.stats.retired += 1;
                issued += 1;
                break 'issue;
            }
            Op::Produce { queue, src } => {
                let v = read(src, &frame.regs);
                queues[queue.index()]
                    .entries
                    .push_back((v, cycle + cfg.comm_latency));
                core.stats.queue_ops += 1;
                frame.index += 1;
            }
            Op::Consume { queue, dst } => {
                let (v, _) = queues[queue.index()]
                    .entries
                    .pop_front()
                    .expect("availability checked");
                frame.regs[dst.index()] = v;
                frame.ready[dst.index()] = cycle + cfg.latency.queue;
                core.stats.queue_ops += 1;
                frame.index += 1;
            }
            Op::ProduceToken { queue } => {
                queues[queue.index()]
                    .entries
                    .push_back((0, cycle + cfg.comm_latency));
                core.stats.queue_ops += 1;
                frame.index += 1;
            }
            Op::ConsumeToken { queue } => {
                queues[queue.index()]
                    .entries
                    .pop_front()
                    .expect("availability checked");
                core.stats.queue_ops += 1;
                frame.index += 1;
            }
            Op::QueueDepth { dst, queue } => {
                // Occupancy as visible to this core: entries whose
                // communication latency has elapsed by this cycle.
                let depth = queues[queue.index()]
                    .entries
                    .iter()
                    .filter(|&&(_, vis)| vis <= cycle)
                    .count();
                frame.regs[dst.index()] = depth as i64;
                frame.ready[dst.index()] = cycle + lat;
                frame.index += 1;
            }
            Op::Nop => {
                frame.index += 1;
            }
        }
        if op.is_m_type() {
            m_used += 1;
        }
        core.stats.retired += 1;
        issued += 1;
        if redirect {
            core.next_issue = cycle + 1 + cfg.taken_branch_bubble;
            break 'issue;
        }
        let _ = LatencyClass::Nop; // (silence unused-import lint paths)
    }

    if issued > 0 {
        Ok(CycleOutcome::Issued(issued))
    } else {
        Ok(CycleOutcome::Stalled(
            first_block.unwrap_or(StallReason::Data),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::Executor;
    use dswp_ir::{ProgramBuilder, QueueId};

    fn sum_loop(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let header = f.block("header");
        let body = f.block("body");
        let exit = f.block("exit");
        let (i, sum, lim, done, base) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(i, 0);
        f.iconst(sum, 0);
        f.iconst(lim, n);
        f.iconst(base, 0);
        f.jump(header);
        f.switch_to(header);
        f.cmp_ge(done, i, lim);
        f.br(done, exit, body);
        f.switch_to(body);
        f.add(sum, sum, i);
        f.add(i, i, 1);
        f.jump(header);
        f.switch_to(exit);
        f.store(sum, base, 0);
        f.halt();
        let main = f.finish();
        pb.finish(main, 1)
    }

    #[test]
    fn timing_model_matches_functional_semantics() {
        let p = sum_loop(200);
        let sim = Machine::new(&p, MachineConfig::full_width()).run().unwrap();
        let fun = Executor::new(&p).run().unwrap();
        assert_eq!(sim.memory, fun.memory);
        assert!(sim.cycles > 0);
        assert!(sim.cores[0].retired > 0);
    }

    #[test]
    fn narrower_core_takes_more_cycles() {
        let p = sum_loop(500);
        let full = Machine::new(&p, MachineConfig::full_width()).run().unwrap();
        let half = Machine::new(&p, MachineConfig::half_width()).run().unwrap();
        assert!(half.cycles >= full.cycles);
    }

    #[test]
    fn ipc_excludes_queue_ops() {
        let stats = CoreStats {
            retired: 100,
            queue_ops: 40,
            ..CoreStats::default()
        };
        assert!((stats.ipc(60) - 1.0).abs() < 1e-9);
    }

    fn queued_pair(capacity: usize, comm: u64) -> (Program, MachineConfig) {
        // Thread 0 produces 1000 values; thread 1 consumes with a slow body.
        let mut pb = ProgramBuilder::new();
        let q = QueueId(0);

        let mut f = pb.function("producer");
        let e = f.entry_block();
        let header = f.block("header");
        let body = f.block("body");
        let exit = f.block("exit");
        let (i, lim, done) = (f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(i, 0);
        f.iconst(lim, 1000);
        f.jump(header);
        f.switch_to(header);
        f.cmp_ge(done, i, lim);
        f.br(done, exit, body);
        f.switch_to(body);
        f.produce(q, i);
        f.add(i, i, 1);
        f.jump(header);
        f.switch_to(exit);
        f.halt();
        let producer = f.finish();

        let mut g = pb.function("consumer");
        let e2 = g.entry_block();
        let header2 = g.block("header2");
        let body2 = g.block("body2");
        let exit2 = g.block("exit2");
        let (j, lim2, done2, v, acc, base) = (g.reg(), g.reg(), g.reg(), g.reg(), g.reg(), g.reg());
        g.switch_to(e2);
        g.iconst(j, 0);
        g.iconst(lim2, 1000);
        g.iconst(acc, 0);
        g.iconst(base, 0);
        g.jump(header2);
        g.switch_to(header2);
        g.cmp_ge(done2, j, lim2);
        g.br(done2, exit2, body2);
        g.switch_to(body2);
        g.consume(v, q);
        // Slow body: serial multiplies.
        g.mul(acc, acc, 3);
        g.mul(acc, acc, 5);
        g.add(acc, acc, v);
        g.add(j, j, 1);
        g.jump(header2);
        g.switch_to(exit2);
        g.store(acc, base, 0);
        g.halt();
        let consumer = g.finish();

        let mut p = pb.finish(producer, 1);
        p.num_queues = 1;
        p.add_thread(consumer);
        let cfg = MachineConfig::full_width()
            .with_queue_capacity(capacity)
            .with_comm_latency(comm);
        (p, cfg)
    }

    #[test]
    fn producer_stalls_on_full_queue() {
        let (p, cfg) = queued_pair(4, 1);
        // NB: main = producer halts first; run until then.
        let sim = Machine::new(&p, cfg).run().unwrap();
        assert!(sim.cores[0].stall_queue_full > 0, "{:?}", sim.cores[0]);
        assert!(sim.occupancy.classes.full_producer_stalled > 0);
        assert!(sim.occupancy.max() <= 4);
    }

    #[test]
    fn decoupling_grows_with_queue_capacity() {
        let (p, cfg_small) = queued_pair(4, 1);
        let small = Machine::new(&p, cfg_small).run().unwrap();
        let (p2, cfg_big) = queued_pair(128, 1);
        let big = Machine::new(&p2, cfg_big).run().unwrap();
        assert!(big.occupancy.max() > small.occupancy.max());
        // A fast producer in front of a slow consumer finishes earlier with
        // deeper queues.
        assert!(big.cycles <= small.cycles);
    }

    #[test]
    fn deadlock_detection_fires() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let r = f.reg();
        f.switch_to(e);
        f.consume(r, QueueId(0));
        f.halt();
        let main = f.finish();
        let mut p = pb.finish(main, 0);
        p.num_queues = 1;
        let err = Machine::new(&p, MachineConfig::full_width())
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::Deadlock { .. }));
    }

    #[test]
    fn comm_latency_delays_visibility() {
        let (p, cfg1) = queued_pair(32, 1);
        let r1 = Machine::new(&p, cfg1).run().unwrap();
        let (p2, cfg50) = queued_pair(32, 50);
        let r50 = Machine::new(&p2, cfg50).run().unwrap();
        // The producer (main core) is insensitive; it only fills queues.
        // But the consumer's first datum arrives 49 cycles later, which can
        // only stretch its execution, never shrink the producer's.
        assert!(r50.cycles >= r1.cycles);
    }
}

#[cfg(test)]
mod structural_tests {
    use super::*;
    use crate::config::MachineConfig;
    use dswp_ir::ProgramBuilder;

    /// Five independent loads in one block: with 4 M-ports at most four can
    /// issue per cycle, so structural stalls must appear at 2 M-ports.
    #[test]
    fn m_port_limit_binds() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let base = f.reg();
        f.switch_to(e);
        f.iconst(base, 0);
        for k in 0..8 {
            let d = f.reg();
            f.load(d, base, k);
        }
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 8);

        let mut full = MachineConfig::full_width();
        full.cache = None; // flat load latency; isolate the port effect
        let mut narrow = full.clone();
        narrow.m_ports = 1;
        let wide = Machine::new(&p, full).run().unwrap();
        let tight = Machine::new(&p, narrow).run().unwrap();
        assert!(
            tight.cycles > wide.cycles,
            "1 M-port {} !> 4 M-ports {}",
            tight.cycles,
            wide.cycles
        );
    }

    /// An indirect call through a register holding a function id runs the
    /// callee and returns.
    #[test]
    fn indirect_call_dispatches() {
        let mut pb = ProgramBuilder::new();
        let mut callee = pb.function("callee");
        let ce = callee.entry_block();
        let (b, v) = (callee.reg(), callee.reg());
        callee.switch_to(ce);
        callee.iconst(b, 0);
        callee.iconst(v, 99);
        callee.store(v, b, 0);
        callee.ret();
        let callee = callee.finish();

        let mut f = pb.function("main");
        let e = f.entry_block();
        let t = f.reg();
        f.switch_to(e);
        f.iconst(t, callee.index() as i64);
        f.call_ind(t);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 1);
        let r = Machine::new(&p, MachineConfig::full_width()).run().unwrap();
        assert_eq!(r.memory[0], 99);
    }

    /// A negative indirect-call target halts the context (the DSWP
    /// terminate sentinel).
    #[test]
    fn indirect_call_sentinel_halts() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let t = f.reg();
        f.switch_to(e);
        f.iconst(t, -1);
        f.call_ind(t);
        // Unreachable, but blocks need terminators.
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 0);
        let r = Machine::new(&p, MachineConfig::full_width()).run().unwrap();
        assert!(r.cycles < 10);
    }
}

impl SimResult {
    /// A multi-line human-readable summary of the run: cycles, per-core
    /// instruction counts, IPC and stall breakdowns, queue behavior and
    /// cache miss rates. Intended for logs and CLI output.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "cycles: {}", self.cycles);
        for (c, s) in self.cores.iter().enumerate() {
            let _ = writeln!(
                out,
                "core {c}: {} instrs ({} queue ops), IPC {:.2}; stalls: \
                 data {}, q-empty {}, q-full {}, frontend {}, structural {}",
                s.retired,
                s.queue_ops,
                s.ipc(self.cycles),
                s.stall_data,
                s.stall_queue_empty,
                s.stall_queue_full,
                s.stall_frontend,
                s.stall_structural,
            );
        }
        let cls = &self.occupancy.classes;
        let total = (cls.full_producer_stalled
            + cls.empty_consumer_stalled
            + cls.empty_both_active
            + cls.balanced_both_active)
            .max(1) as f64;
        let _ = writeln!(
            out,
            "queues: mean occupancy {:.1}, max {}; cycles {:.0}% balanced / \
             {:.0}% consumer-starved / {:.0}% producer-blocked",
            self.occupancy.mean(),
            self.occupancy.max(),
            100.0 * cls.balanced_both_active as f64 / total,
            100.0 * cls.empty_consumer_stalled as f64 / total,
            100.0 * cls.full_producer_stalled as f64 / total,
        );
        for (c, cs) in self.cache.iter().enumerate() {
            let _ = writeln!(
                out,
                "cache core {c}: {} loads, L1 miss rate {:.1}%",
                cs.accesses,
                100.0 * cs.l1_miss_rate()
            );
        }
        out
    }
}

#[cfg(test)]
mod summary_tests {
    use super::*;
    use crate::config::MachineConfig;
    use dswp_ir::ProgramBuilder;

    #[test]
    fn summary_mentions_every_section() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let (a, b) = (f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(a, 0);
        f.load(b, a, 0);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 1);
        let r = Machine::new(&p, MachineConfig::full_width()).run().unwrap();
        let s = r.summary();
        assert!(s.contains("cycles:"), "{s}");
        assert!(s.contains("core 0:"), "{s}");
        assert!(s.contains("queues:"), "{s}");
        assert!(s.contains("cache core 0:"), "{s}");
    }
}
