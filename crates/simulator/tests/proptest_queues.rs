//! Property tests for queue semantics and engine agreement: random
//! producer/consumer programs must preserve FIFO order, and the timing
//! model must compute exactly what the functional executor computes,
//! independent of queue capacity and communication latency.

use proptest::prelude::*;

use dswp_ir::{Program, ProgramBuilder, QueueId};
use dswp_sim::{Executor, Machine, MachineConfig};

/// Builds a two-thread program: thread 0 produces `values` on a queue (plus
/// a count header); thread 1 consumes them and stores each to memory in
/// order.
fn fifo_program(values: &[i64]) -> Program {
    let n = values.len() as i64;
    let q = QueueId(0);
    let mut pb = ProgramBuilder::new();

    let mut f = pb.function("producer");
    let e = f.entry_block();
    f.switch_to(e);
    let tmp = f.reg();
    for &v in values {
        f.iconst(tmp, v);
        f.produce(q, tmp);
    }
    f.halt();
    let producer = f.finish();

    let mut g = pb.function("consumer");
    let e2 = g.entry_block();
    let header = g.block("header");
    let body = g.block("body");
    let exit = g.block("exit");
    let (i, lim, done, v, addr) = (g.reg(), g.reg(), g.reg(), g.reg(), g.reg());
    g.switch_to(e2);
    g.iconst(i, 0);
    g.iconst(lim, n);
    g.jump(header);
    g.switch_to(header);
    g.cmp_ge(done, i, lim);
    g.br(done, exit, body);
    g.switch_to(body);
    g.consume(v, q);
    g.add(addr, i, 0);
    g.store(v, addr, 0);
    g.add(i, i, 1);
    g.jump(header);
    g.switch_to(exit);
    g.halt();
    let consumer = g.finish();

    let mut p = pb.finish(producer, values.len().max(1));
    p.num_queues = 1;
    p.add_thread(consumer);
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn queues_are_fifo_on_both_engines(values in prop::collection::vec(any::<i64>(), 1..40)) {
        let p = fifo_program(&values);

        let exec = Executor::new(&p).run().unwrap();
        prop_assert_eq!(&exec.memory[..values.len()], values.as_slice());

        let sim = Machine::new(&p, MachineConfig::full_width()).run().unwrap();
        prop_assert_eq!(&sim.memory[..values.len()], values.as_slice());
    }

    #[test]
    fn capacity_and_latency_never_change_results(
        values in prop::collection::vec(-1000i64..1000, 1..30),
        capacity in 1usize..64,
        latency in 1u64..40,
    ) {
        let p = fifo_program(&values);
        let cfg = MachineConfig::full_width()
            .with_queue_capacity(capacity)
            .with_comm_latency(latency);
        let sim = Machine::new(&p, cfg).run().unwrap();
        prop_assert_eq!(&sim.memory[..values.len()], values.as_slice());
        // Occupancy can never exceed the configured capacity.
        prop_assert!(sim.occupancy.max() <= capacity);
    }

    #[test]
    fn smaller_queues_and_longer_latencies_never_speed_things_up(
        values in prop::collection::vec(-10i64..10, 8..24),
    ) {
        let p = fifo_program(&values);
        let base = Machine::new(&p, MachineConfig::full_width().with_queue_capacity(64))
            .run()
            .unwrap();
        let tight = Machine::new(&p, MachineConfig::full_width().with_queue_capacity(1))
            .run()
            .unwrap();
        prop_assert!(tight.cycles >= base.cycles);
        let slow = Machine::new(&p, MachineConfig::full_width().with_comm_latency(30))
            .run()
            .unwrap();
        prop_assert!(slow.cycles >= base.cycles);
    }
}
