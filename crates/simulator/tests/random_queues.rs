//! Randomized tests for queue semantics and engine agreement: random
//! producer/consumer programs must preserve FIFO order, and the timing
//! model must compute exactly what the functional executor computes,
//! independent of queue capacity and communication latency.
//!
//! Cases are enumerated from deterministic seeds (see `dswp-testutil`), so
//! a failure is reproducible by its printed seed.

use dswp_ir::{Program, ProgramBuilder, QueueId};
use dswp_sim::{Executor, Machine, MachineConfig};
use dswp_testutil::{cases, Rng};

/// Builds a two-thread program: thread 0 produces `values` on a queue;
/// thread 1 consumes them and stores each to memory in order.
fn fifo_program(values: &[i64]) -> Program {
    let n = values.len() as i64;
    let q = QueueId(0);
    let mut pb = ProgramBuilder::new();

    let mut f = pb.function("producer");
    let e = f.entry_block();
    f.switch_to(e);
    let tmp = f.reg();
    for &v in values {
        f.iconst(tmp, v);
        f.produce(q, tmp);
    }
    f.halt();
    let producer = f.finish();

    let mut g = pb.function("consumer");
    let e2 = g.entry_block();
    let header = g.block("header");
    let body = g.block("body");
    let exit = g.block("exit");
    let (i, lim, done, v, addr) = (g.reg(), g.reg(), g.reg(), g.reg(), g.reg());
    g.switch_to(e2);
    g.iconst(i, 0);
    g.iconst(lim, n);
    g.jump(header);
    g.switch_to(header);
    g.cmp_ge(done, i, lim);
    g.br(done, exit, body);
    g.switch_to(body);
    g.consume(v, q);
    g.add(addr, i, 0);
    g.store(v, addr, 0);
    g.add(i, i, 1);
    g.jump(header);
    g.switch_to(exit);
    g.halt();
    let consumer = g.finish();

    let mut p = pb.finish(producer, values.len().max(1));
    p.num_queues = 1;
    p.add_thread(consumer);
    p
}

#[test]
fn queues_are_fifo_on_both_engines() {
    for seed in 0..cases(64) as u64 {
        let mut rng = Rng::new(seed);
        let len = rng.range(1, 40);
        let values = rng.vec(len, |r| r.next_u64() as i64);
        let p = fifo_program(&values);

        let exec = Executor::new(&p).run().unwrap();
        assert_eq!(
            &exec.memory[..values.len()],
            values.as_slice(),
            "seed {seed}"
        );

        let sim = Machine::new(&p, MachineConfig::full_width()).run().unwrap();
        assert_eq!(
            &sim.memory[..values.len()],
            values.as_slice(),
            "seed {seed}"
        );
    }
}

#[test]
fn capacity_and_latency_never_change_results() {
    for seed in 0..cases(64) as u64 {
        let mut rng = Rng::new(0x4361_7061 ^ seed);
        let len = rng.range(1, 30);
        let values = rng.vec(len, |r| r.range_i64(-1000, 1000));
        let capacity = rng.range(1, 64);
        let latency = rng.range(1, 40) as u64;

        let p = fifo_program(&values);
        let cfg = MachineConfig::full_width()
            .with_queue_capacity(capacity)
            .with_comm_latency(latency);
        let sim = Machine::new(&p, cfg).run().unwrap();
        assert_eq!(
            &sim.memory[..values.len()],
            values.as_slice(),
            "seed {seed}"
        );
        // Occupancy can never exceed the configured capacity.
        assert!(sim.occupancy.max() <= capacity, "seed {seed}");
    }
}

#[test]
fn smaller_queues_and_longer_latencies_never_speed_things_up() {
    for seed in 0..cases(32) as u64 {
        let mut rng = Rng::new(0x4C61_7465 ^ seed);
        let len = rng.range(8, 24);
        let values = rng.vec(len, |r| r.range_i64(-10, 10));

        let p = fifo_program(&values);
        let base = Machine::new(&p, MachineConfig::full_width().with_queue_capacity(64))
            .run()
            .unwrap();
        let tight = Machine::new(&p, MachineConfig::full_width().with_queue_capacity(1))
            .run()
            .unwrap();
        assert!(tight.cycles >= base.cycles, "seed {seed}");
        let slow = Machine::new(&p, MachineConfig::full_width().with_comm_latency(30))
            .run()
            .unwrap();
        assert!(slow.cycles >= base.cycles, "seed {seed}");
    }
}
