//! The paper's Figure 1 loop: `while (ptr = ptr->next) ptr->val += 1;`
//!
//! The minimal pointer-chasing example used to contrast DOACROSS (critical
//! path routed cross-core every iteration) with DSWP (critical path stays
//! on one core). Its body is straight-line, so it is eligible for both
//! transformations.

use dswp_ir::{BlockId, ProgramBuilder, RegionId};

use crate::{Size, Workload};

const NODE_BASE: usize = 8;
const STRIDE: usize = 2;

/// Builds the kernel for `size`.
pub fn build(size: Size) -> Workload {
    let nodes = size.n();

    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let exit = f.block("exit");

    let (ptr, done, v) = (f.reg(), f.reg(), f.reg());

    f.switch_to(e);
    f.iconst(ptr, NODE_BASE as i64);
    f.jump(header);

    f.switch_to(header);
    f.cmp_eq(done, ptr, 0);
    f.br(done, exit, body);

    f.switch_to(body);
    // ptr->val += 1 (field regions: next = 0, val = 1).
    f.load_region(v, ptr, 1, RegionId(1));
    f.add(v, v, 1);
    f.store_region(v, ptr, 1, RegionId(1));
    f.load_region(ptr, ptr, 0, RegionId(0));
    f.jump(header);

    f.switch_to(exit);
    f.halt();
    let main = f.finish();

    let mut mem = vec![0i64; NODE_BASE + nodes * STRIDE];
    let mut addr = NODE_BASE;
    for i in 0..nodes {
        let next = if i + 1 == nodes { 0 } else { addr + STRIDE };
        mem[addr] = next as i64;
        mem[addr + 1] = (i as i64 * 31) & 0xFF;
        addr += STRIDE;
    }
    Workload {
        name: "figure1",
        program: pb.finish_with_memory(main, mem),
        header: BlockId(1),
        doall: false,
    }
}

/// Plain-Rust reference: the final memory image.
pub fn reference(mem: &[i64]) -> Vec<i64> {
    let mut m = mem.to_vec();
    let mut ptr = NODE_BASE as i64;
    while ptr != 0 {
        m[ptr as usize + 1] += 1;
        ptr = m[ptr as usize];
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::interp::Interpreter;

    #[test]
    fn matches_reference() {
        let w = build(Size::Test);
        let expected = reference(&w.program.initial_memory);
        let r = Interpreter::new(&w.program).run().unwrap();
        assert_eq!(r.memory, expected);
    }
}
