//! 188.ammp — a molecular-dynamics force loop over a linked list of atoms.
//!
//! The recurrence is the atom-list pointer chase; the body is
//! floating-point heavy (squared distance, a high-latency divide, force
//! scaling) with a force store and a potential-energy accumulator — the
//! "pointer-chase feeding expensive FP" shape the paper selects from ammp.
//!
//! Atom layout (stride 8): `[next, x, y, z, force, _, _, _]` with
//! field-granular regions.

use dswp_ir::{BlockId, ProgramBuilder, RegionId, UnOp};

use crate::util::Rng64;
use crate::{Size, Workload};

const PE_AT: usize = 0;
const ATOM_BASE: usize = 16;
const STRIDE: usize = 8;

/// Builds the kernel for `size`.
pub fn build(size: Size) -> Workload {
    let atoms = size.n();

    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let exit = f.block("exit");

    let (ptr, done, base) = (f.reg(), f.reg(), f.reg());
    let (x, y, z, cx, cy, cz) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    let (dx, dy, dz, r2, t, inv, force, pe, kk, one) = (
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
    );

    f.switch_to(e);
    f.iconst(ptr, ATOM_BASE as i64);
    f.fconst(pe, 0.0);
    f.fconst(cx, 1.25);
    f.fconst(cy, -0.75);
    f.fconst(cz, 2.5);
    f.fconst(kk, 3.5);
    f.fconst(one, 1.0);
    f.iconst(base, 0);
    f.jump(header);

    f.switch_to(header);
    f.cmp_eq(done, ptr, 0);
    f.br(done, exit, body);

    f.switch_to(body);
    f.load_region(x, ptr, 1, RegionId(1));
    f.load_region(y, ptr, 2, RegionId(2));
    f.load_region(z, ptr, 3, RegionId(3));
    f.fsub(dx, x, cx);
    f.fsub(dy, y, cy);
    f.fsub(dz, z, cz);
    f.fmul(t, dx, dx);
    f.fmul(r2, dy, dy);
    f.fadd(r2, r2, t);
    f.fmul(t, dz, dz);
    f.fadd(r2, r2, t);
    f.fadd(r2, r2, one); // avoid division by ~0
    f.fdiv(inv, one, r2);
    f.fmul(force, inv, kk);
    f.store_region(force, ptr, 4, RegionId(4));
    f.fadd(pe, pe, force);
    f.load_region(ptr, ptr, 0, RegionId(0));
    f.jump(header);

    f.switch_to(exit);
    f.store(pe, base, PE_AT as i64);
    let as_int = f.reg();
    f.unary(as_int, UnOp::FloatToInt, pe);
    f.store(as_int, base, PE_AT as i64 + 1);
    f.halt();
    let main = f.finish();

    let mut mem = vec![0i64; ATOM_BASE + atoms * STRIDE];
    let mut rng = Rng64::new(0xa33b);
    let mut addr = ATOM_BASE;
    for i in 0..atoms {
        let next = if i + 1 == atoms { 0 } else { addr + STRIDE };
        mem[addr] = next as i64;
        for (k, slot) in [1usize, 2, 3].into_iter().enumerate() {
            let coord = (rng.below_i64(2000) as f64 - 1000.0) / 100.0 + k as f64;
            mem[addr + slot] = coord.to_bits() as i64;
        }
        addr += STRIDE;
    }
    Workload {
        name: "188.ammp",
        program: pb.finish_with_memory(main, mem),
        header: BlockId(1),
        doall: false,
    }
}

/// Plain-Rust reference; returns the final memory image.
pub fn reference(mem: &[i64]) -> Vec<i64> {
    let mut m = mem.to_vec();
    let (cx, cy, cz, kk) = (1.25f64, -0.75f64, 2.5f64, 3.5f64);
    let mut pe = 0.0f64;
    let mut ptr = ATOM_BASE as i64;
    while ptr != 0 {
        let p = ptr as usize;
        let x = f64::from_bits(m[p + 1] as u64);
        let y = f64::from_bits(m[p + 2] as u64);
        let z = f64::from_bits(m[p + 3] as u64);
        let (dx, dy, dz) = (x - cx, y - cy, z - cz);
        let r2 = dy * dy + dx * dx + dz * dz + 1.0;
        let force = (1.0 / r2) * kk;
        m[p + 4] = force.to_bits() as i64;
        pe += force;
        ptr = m[p];
    }
    m[PE_AT] = pe.to_bits() as i64;
    m[PE_AT + 1] = pe as i64;
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::interp::Interpreter;

    #[test]
    fn matches_reference() {
        let w = build(Size::Test);
        let expected = reference(&w.program.initial_memory);
        let r = Interpreter::new(&w.program).run().unwrap();
        assert_eq!(r.memory, expected);
        let pe = f64::from_bits(r.memory[PE_AT] as u64);
        assert!(pe.is_finite() && pe > 0.0);
    }
}
