//! jpegenc — a DOALL transform loop (forward-DCT flavored).
//!
//! The paper's jpegenc loop is DOALL (Section 4.1). The kernel processes
//! 8-sample blocks: each output mixes the sample with its butterfly partner
//! (`i ^ 1`) through per-position coefficients, quantizes, and stores — all
//! iteration-independent.

use dswp_ir::{BlockId, ProgramBuilder, RegionId};

use crate::util::Rng64;
use crate::{Size, Workload};

const COEF1_BASE: i64 = 16; // 8 entries
const COEF2_BASE: i64 = 24; // 8 entries
const IN_BASE: i64 = 32;

/// Builds the kernel for `size`.
pub fn build(size: Size) -> Workload {
    let n = (size.n() as i64 / 8) * 8;
    let out_base = IN_BASE + n;

    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let exit = f.block("exit");

    let (i, nn, done) = (f.reg(), f.reg(), f.reg());
    let (inb, outb, c1b, c2b) = (f.reg(), f.reg(), f.reg(), f.reg());
    let (pos, partner, a, b, c1, c2, t, q) = (
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
    );
    let (addr, k) = (f.reg(), f.reg());

    f.switch_to(e);
    f.iconst(i, 0);
    f.iconst(nn, n);
    f.iconst(inb, IN_BASE);
    f.iconst(outb, out_base);
    f.iconst(c1b, COEF1_BASE);
    f.iconst(c2b, COEF2_BASE);
    f.jump(header);

    f.switch_to(header);
    f.cmp_ge(done, i, nn);
    f.br(done, exit, body);

    f.switch_to(body);
    f.and(pos, i, 7);
    f.xor(partner, i, 1);
    f.add(addr, inb, i);
    f.load_region(a, addr, 0, RegionId(0));
    f.add(addr, inb, partner);
    f.load_region(b, addr, 0, RegionId(0));
    f.add(addr, c1b, pos);
    f.load_region(c1, addr, 0, RegionId(1));
    f.add(addr, c2b, pos);
    f.load_region(c2, addr, 0, RegionId(2));
    f.mul(t, a, c1);
    f.mul(k, b, c2);
    f.add(t, t, k);
    f.add(t, t, 128);
    f.shr(q, t, 8);
    f.add(addr, outb, i);
    f.store_region(q, addr, 0, RegionId(3));
    f.add(i, i, 1);
    f.jump(header);

    f.switch_to(exit);
    f.halt();
    let main = f.finish();

    let mut mem = vec![0i64; (out_base + n) as usize];
    let mut rng = Rng64::new(0x77e6);
    for k in 0..8 {
        mem[COEF1_BASE as usize + k] = 64 + rng.below_i64(192);
        mem[COEF2_BASE as usize + k] = rng.below_i64(128) - 64;
    }
    for k in 0..n as usize {
        mem[IN_BASE as usize + k] = rng.below_i64(256) - 128;
    }
    Workload {
        name: "jpegenc",
        program: pb.finish_with_memory(main, mem),
        header: BlockId(1),
        doall: true,
    }
}

/// Plain-Rust reference.
pub fn reference(input: &[i64], c1: &[i64], c2: &[i64]) -> Vec<i64> {
    (0..input.len())
        .map(|i| {
            let a = input[i];
            let b = input[i ^ 1];
            let pos = i & 7;
            (a.wrapping_mul(c1[pos]) + b.wrapping_mul(c2[pos]) + 128) >> 8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::interp::Interpreter;

    #[test]
    fn matches_reference() {
        let w = build(Size::Test);
        let n = (Size::Test.n() / 8) * 8;
        let mem = &w.program.initial_memory;
        let input = mem[IN_BASE as usize..IN_BASE as usize + n].to_vec();
        let c1 = mem[COEF1_BASE as usize..COEF1_BASE as usize + 8].to_vec();
        let c2 = mem[COEF2_BASE as usize..COEF2_BASE as usize + 8].to_vec();
        let r = Interpreter::new(&w.program).run().unwrap();
        let out_base = (IN_BASE as usize) + n;
        assert_eq!(
            &r.memory[out_base..out_base + n],
            reference(&input, &c1, &c2).as_slice()
        );
    }
}
