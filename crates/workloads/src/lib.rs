//! Synthetic IR kernels mirroring the MICRO 2005 DSWP benchmark loops.
//!
//! The paper evaluates DSWP on loops from SPEC-CPU2000 (29.compress¹,
//! 179.art, 181.mcf, 183.equake, 188.ammp, 256.bzip2), MediaBench
//! (adpcmdec, epicdec, jpegenc) and the Unix utility `wc`, plus a 164.gzip
//! case study. The original inputs and binaries are not reproducible here;
//! instead each module builds an IR kernel with the **same dependence
//! structure** as the paper's description of that loop — the property that
//! determines DSWP's behavior (SCC count, recurrence sizes, fraction of
//! work off the critical recurrence):
//!
//! * [`mcf`], [`ammp`] — pointer-chasing recurrences with sizable bodies;
//! * [`art`], [`equake`] — floating-point accumulation recurrences (art
//!   ships the accumulator-expansion ablation of Section 5.3);
//! * [`compress`], [`jpegenc`] — DOALL-shaped streaming loops (the paper
//!   notes these are DOALL, Section 4.1);
//! * [`bzip2`] — a serial bit-buffer recurrence with the `bslive` global
//!   of the false-sharing study (Section 4.2);
//! * [`adpcm`] — the serial-predictor loop with the predication ablation of
//!   Section 5.2;
//! * [`epic`] — the Figure 10 clamp loop with the memory-analysis and
//!   unrolling ablations of Section 5.1;
//! * [`wc`] — a byte-stream state machine;
//! * [`gzip`] — the serialized deflate window of Section 5.4 (DSWP must
//!   decline).
//!
//! ¹ The paper writes "29.compress"; the SPEC name is 129.compress
//!   (CPU95) / 256.bzip2-style CPU2000 naming — we keep the paper's label.
//!
//! Every kernel carries a plain-Rust reference implementation; unit tests
//! check the interpreter result against it word for word.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adpcm;
pub mod ammp;
pub mod art;
pub mod bzip2;
pub mod compress;
pub mod epic;
pub mod equake;
pub mod figure1;
pub mod gzip;
pub mod jpegenc;
pub mod mcf;
pub mod util;
pub mod wc;

use dswp_ir::{BlockId, Program};

/// A benchmark kernel: the program, its DSWP candidate loop, and metadata.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark label as the paper prints it.
    pub name: &'static str,
    /// The program (input data already in initial memory).
    pub program: Program,
    /// Header block of the DSWP candidate loop.
    pub header: BlockId,
    /// Whether the paper classifies the loop as DOALL (Section 4.1).
    pub doall: bool,
}

/// Problem sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Size {
    /// Small inputs for unit tests.
    Test,
    /// Larger inputs for the benchmark harness.
    Paper,
}

impl Size {
    /// A canonical iteration count for this size.
    pub fn n(self) -> usize {
        match self {
            Size::Test => 64,
            Size::Paper => 4096,
        }
    }
}

/// The paper's evaluated benchmark suite (Table 1 / Figures 6–9):
/// everything except the 164.gzip case study.
pub fn paper_suite(size: Size) -> Vec<Workload> {
    vec![
        compress::build(size),
        art::build(size, 1),
        mcf::build(size),
        equake::build(size),
        ammp::build(size),
        bzip2::build(size, true),
        adpcm::build(size, false),
        epic::build(size, 1),
        jpegenc::build(size),
        wc::build(size),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::interp::Interpreter;
    use dswp_ir::verify::verify_program;

    #[test]
    fn all_workloads_verify_and_run() {
        for w in paper_suite(Size::Test) {
            verify_program(&w.program).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let r = Interpreter::new(&w.program)
                .run()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(r.steps > 0, "{}", w.name);
            // The candidate loop must exist and be hot.
            let main = w.program.main();
            assert!(
                r.profile.weight(main, w.header) > 10,
                "{}: candidate loop barely executes",
                w.name
            );
        }
    }

    #[test]
    fn paper_suite_has_ten_benchmarks() {
        assert_eq!(paper_suite(Size::Test).len(), 10);
        let names: Vec<_> = paper_suite(Size::Test).iter().map(|w| w.name).collect();
        assert!(names.contains(&"181.mcf"));
        assert!(names.contains(&"wc"));
    }
}
