//! 181.mcf — the arc-list refresh loop (the paper's Figure 7 study).
//!
//! A linked-list traversal whose recurrence is the pointer chase, followed
//! by a multi-SCC body: three field loads feed a reduced-cost computation
//! (with a high-latency `rem`), a conditional flow update, an output store
//! and an accumulator. The resulting `DAG_SCC` is a chain of components of
//! varying sizes, which is exactly what makes mcf the paper's
//! load-balancing case study (Figure 7).
//!
//! Node layout (stride 8): `[next, cost, head_pot, tail_pot, flow, out, _, _]`,
//! each field in its own points-to region (field-sensitive analysis).

use dswp_ir::{BlockId, ProgramBuilder, RegionId};

use crate::util::Rng64;
use crate::{Size, Workload};

const SUM_AT: usize = 0;
const UPDATES_AT: usize = 1;
const NODE_BASE: usize = 16;
const STRIDE: usize = 8;

/// Builds the kernel for `size`.
pub fn build(size: Size) -> Workload {
    let nodes = size.n();

    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let upd = f.block("update");
    let join = f.block("join");
    let exit = f.block("exit");

    let (ptr, done, base) = (f.reg(), f.reg(), f.reg());
    let (cost, hp, tp, red, red2, red3, neg) = (
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
    );
    let (flow, sum, updates, t) = (f.reg(), f.reg(), f.reg(), f.reg());

    f.switch_to(e);
    f.iconst(ptr, NODE_BASE as i64);
    f.iconst(sum, 0);
    f.iconst(updates, 0);
    f.iconst(base, 0);
    f.jump(header);

    f.switch_to(header);
    f.cmp_eq(done, ptr, 0);
    f.br(done, exit, body);

    f.switch_to(body);
    f.load_region(cost, ptr, 1, RegionId(1));
    f.load_region(hp, ptr, 2, RegionId(2));
    f.load_region(tp, ptr, 3, RegionId(3));
    f.mul(red, cost, 13);
    f.add(red, red, hp);
    f.sub(red, red, tp);
    f.mul(red2, red, 3);
    f.shr(t, red, 2);
    f.add(red2, red2, t);
    f.rem(red3, red2, 997);
    f.store_region(red2, ptr, 5, RegionId(5));
    f.cmp_lt(neg, red3, 300);
    f.br(neg, upd, join);

    f.switch_to(upd);
    f.load_region(flow, ptr, 4, RegionId(4));
    f.add(flow, flow, 1);
    f.store_region(flow, ptr, 4, RegionId(4));
    f.add(updates, updates, 1);
    f.jump(join);

    f.switch_to(join);
    f.add(sum, sum, red3);
    f.load_region(ptr, ptr, 0, RegionId(0));
    f.jump(header);

    f.switch_to(exit);
    f.store(sum, base, SUM_AT as i64);
    f.store(updates, base, UPDATES_AT as i64);
    f.halt();
    let main = f.finish();

    let mut mem = vec![0i64; NODE_BASE + nodes * STRIDE];
    let mut rng = Rng64::new(0x3cf);
    let mut addr = NODE_BASE;
    for i in 0..nodes {
        let next = if i + 1 == nodes { 0 } else { addr + STRIDE };
        mem[addr] = next as i64;
        mem[addr + 1] = rng.below_i64(500);
        mem[addr + 2] = rng.below_i64(2000);
        mem[addr + 3] = rng.below_i64(2000);
        mem[addr + 4] = rng.below_i64(10);
        addr += STRIDE;
    }
    Workload {
        name: "181.mcf",
        program: pb.finish_with_memory(main, mem),
        header: BlockId(1),
        doall: false,
    }
}

/// Plain-Rust reference over the node array; returns `(sum, updates,
/// final_memory_image)`.
pub fn reference(mem: &[i64]) -> (i64, i64, Vec<i64>) {
    let mut m = mem.to_vec();
    let (mut sum, mut updates) = (0i64, 0i64);
    let mut ptr = NODE_BASE as i64;
    while ptr != 0 {
        let p = ptr as usize;
        let cost = m[p + 1];
        let hp = m[p + 2];
        let tp = m[p + 3];
        let red = cost.wrapping_mul(13) + hp - tp;
        let red2 = red.wrapping_mul(3) + (red >> 2);
        let red3 = if red2 == i64::MIN { 0 } else { red2 % 997 };
        m[p + 5] = red2;
        if red3 < 300 {
            m[p + 4] += 1;
            updates += 1;
        }
        sum += red3;
        ptr = m[p];
    }
    m[SUM_AT] = sum;
    m[UPDATES_AT] = updates;
    (sum, updates, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::interp::Interpreter;

    #[test]
    fn matches_reference() {
        let w = build(Size::Test);
        let (sum, updates, expected_mem) = reference(&w.program.initial_memory);
        let r = Interpreter::new(&w.program).run().unwrap();
        assert_eq!(r.memory[SUM_AT], sum);
        assert_eq!(r.memory[UPDATES_AT], updates);
        assert_eq!(r.memory, expected_mem);
        assert!(updates > 0, "conditional path must be exercised");
        assert!(updates < Size::Test.n() as i64, "both arms must run");
    }
}
