//! `wc` — the Unix word-count byte-stream state machine.
//!
//! Classifies each byte (newline / whitespace), maintains the in-word state
//! across iterations and three counters. The state and counter recurrences
//! are small SCCs fed by the load + classification pipeline — a canonical
//! DSWP shape.

use dswp_ir::{BlockId, ProgramBuilder, RegionId};

use crate::util::Rng64;
use crate::{Size, Workload};

const WORDS_AT: usize = 0;
const LINES_AT: usize = 1;
const CHARS_AT: usize = 2;
const BUF_BASE: i64 = 16;

/// Builds the kernel for `size`.
pub fn build(size: Size) -> Workload {
    let n = size.n() as i64;

    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let exit = f.block("exit");

    let (i, nn, done, bufb, base) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    let (c, is_nl, is_sp, is_tab, ws, addr) =
        (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    let (words, lines, chars, in_word, not_ws, start) =
        (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    let one_minus = f.reg();

    f.switch_to(e);
    f.iconst(i, 0);
    f.iconst(nn, n);
    f.iconst(bufb, BUF_BASE);
    f.iconst(base, 0);
    f.iconst(words, 0);
    f.iconst(lines, 0);
    f.iconst(chars, 0);
    f.iconst(in_word, 0);
    f.jump(header);

    f.switch_to(header);
    f.cmp_ge(done, i, nn);
    f.br(done, exit, body);

    f.switch_to(body);
    f.add(addr, bufb, i);
    f.load_region(c, addr, 0, RegionId(0));
    f.cmp_eq(is_nl, c, 10);
    f.cmp_eq(is_sp, c, 32);
    f.cmp_eq(is_tab, c, 9);
    f.or(ws, is_sp, is_tab);
    f.or(ws, ws, is_nl);
    f.add(lines, lines, is_nl);
    f.add(chars, chars, 1);
    f.sub(not_ws, 1, ws);
    f.sub(one_minus, 1, in_word);
    f.and(start, not_ws, one_minus);
    f.add(words, words, start);
    f.mov(in_word, not_ws);
    f.add(i, i, 1);
    f.jump(header);

    f.switch_to(exit);
    f.store(words, base, WORDS_AT as i64);
    f.store(lines, base, LINES_AT as i64);
    f.store(chars, base, CHARS_AT as i64);
    f.halt();
    let main = f.finish();

    let mut mem = vec![0i64; (BUF_BASE + n) as usize];
    let mut rng = Rng64::new(0x77c1);
    for k in 0..n as usize {
        // ~20% whitespace, ~5% newlines, rest letters.
        mem[BUF_BASE as usize + k] = match rng.below(20) {
            0 => 10,
            1..=3 => 32,
            4 => 9,
            _ => 97 + rng.below_i64(26),
        };
    }
    Workload {
        name: "wc",
        program: pb.finish_with_memory(main, mem),
        header: BlockId(1),
        doall: false,
    }
}

/// Plain-Rust reference: `(words, lines, chars)`.
pub fn reference(buf: &[i64]) -> (i64, i64, i64) {
    let (mut words, mut lines, mut chars) = (0, 0, 0);
    let mut in_word = false;
    for &c in buf {
        let ws = c == 10 || c == 32 || c == 9;
        if c == 10 {
            lines += 1;
        }
        chars += 1;
        if !ws && !in_word {
            words += 1;
        }
        in_word = !ws;
    }
    (words, lines, chars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::interp::Interpreter;

    #[test]
    fn matches_reference() {
        let w = build(Size::Test);
        let n = Size::Test.n();
        let buf = w.program.initial_memory[BUF_BASE as usize..BUF_BASE as usize + n].to_vec();
        let (words, lines, chars) = reference(&buf);
        let r = Interpreter::new(&w.program).run().unwrap();
        assert_eq!(r.memory[WORDS_AT], words);
        assert_eq!(r.memory[LINES_AT], lines);
        assert_eq!(r.memory[CHARS_AT], chars);
        assert!(words > 0 && lines > 0);
    }
}
