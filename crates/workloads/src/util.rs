//! Shared helpers for the workload builders.

/// A tiny deterministic PRNG (SplitMix64) for seeded input generation.
///
/// Workload inputs must be reproducible byte-for-byte across runs and
/// platforms; this avoids any dependence on external crates' stream
/// stability.
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Rng64 {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `i64` in `0..bound`.
    pub fn below_i64(&mut self, bound: i64) -> i64 {
        (self.next_u64() % bound as u64) as i64
    }

    /// A small "byte-like" value in 0..256.
    pub fn byte(&mut self) -> i64 {
        (self.next_u64() & 0xFF) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng64::new(7);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            let v = r.below_i64(100);
            assert!((0..100).contains(&v));
            assert!((0..256).contains(&r.byte()));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
