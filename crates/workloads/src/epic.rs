//! epicdec — the clamp loop of the paper's Figure 10 (Section 5.1):
//!
//! ```c
//! for (i = 0; i < x_size * y_size; i++) {
//!     dtemp = result[i] / scale_factor;
//!     if (dtemp < LOW)       result[i] = LOW;
//!     else if (dtemp > HIGH) result[i] = HIGH;
//!     else                   result[i] = dtemp + ROUND;
//! }
//! ```
//!
//! The case-study knobs are reproduced through the builder parameters:
//! `unroll` duplicates the body (the paper tries 2× and 8×), and the
//! loads/stores carry **affine annotations** so that
//! `AliasMode::Precise` (in `dswp-analysis`) can prove the
//! cross-iteration accesses independent — the "accurate memory analysis at
//! the assembly level" of the case study. Under conservative analysis the
//! loads and stores of `result[]` collapse into one SCC, exactly as the
//! paper reports.

use dswp_ir::op::MemInfo;
use dswp_ir::{BlockId, ProgramBuilder, RegionId};

use crate::util::Rng64;
use crate::{Size, Workload};

const RES_BASE: i64 = 16;
const SCALE: i64 = 7;
const LOW: i64 = 0;
const HIGH: i64 = 255;
const ROUND: i64 = 1;

/// Builds the kernel for `size`, duplicating the body `unroll` times per
/// iteration (`unroll` ∈ {1, 2, 8} in the paper's study).
pub fn build(size: Size, unroll: usize) -> Workload {
    assert!(unroll >= 1);
    let u = unroll as i64;
    let n = ((size.n() as i64) / u) * u;
    let iters = n / u;

    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let exit = f.block("exit");

    let (i, nn, done, resb) = (f.reg(), f.reg(), f.reg(), f.reg());

    f.switch_to(e);
    f.iconst(i, 0);
    f.iconst(nn, iters);
    f.iconst(resb, RES_BASE);
    f.jump(header);

    f.switch_to(header);
    f.cmp_ge(done, i, nn);
    // The body is emitted as a chain of blocks, one clamp diamond per
    // unrolled element.
    let mut entry_block = f.block("body0");
    f.br(done, exit, entry_block);

    let mut cur = entry_block;
    for k in 0..unroll {
        let (addr, v, dtemp, p_lo, p_hi, t) =
            (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
        let set_lo = f.block(format!("lo{k}"));
        let set_hi_test = f.block(format!("hitest{k}"));
        let set_hi = f.block(format!("hi{k}"));
        let set_mid = f.block(format!("mid{k}"));
        let join = f.block(format!("join{k}"));

        let mem = MemInfo::affine(RegionId(0), 0, u, k as i64);
        f.switch_to(cur);
        f.mul(addr, i, u);
        f.add(addr, addr, resb);
        f.load_mem(v, addr, k as i64, mem);
        f.div(dtemp, v, SCALE);
        f.cmp_lt(p_lo, dtemp, LOW);
        f.br(p_lo, set_lo, set_hi_test);

        f.switch_to(set_lo);
        f.store_mem(LOW, addr, k as i64, mem);
        f.jump(join);

        f.switch_to(set_hi_test);
        f.cmp_gt(p_hi, dtemp, HIGH);
        f.br(p_hi, set_hi, set_mid);

        f.switch_to(set_hi);
        f.store_mem(HIGH, addr, k as i64, mem);
        f.jump(join);

        f.switch_to(set_mid);
        f.add(t, dtemp, ROUND);
        f.store_mem(t, addr, k as i64, mem);
        f.jump(join);

        cur = join;
        if k + 1 < unroll {
            let next = f.block(format!("body{}", k + 1));
            f.switch_to(cur);
            f.jump(next);
            cur = next;
        }
    }
    f.switch_to(cur);
    f.add(i, i, 1);
    f.jump(header);

    f.switch_to(exit);
    f.halt();
    let main = f.finish();
    let _ = &mut entry_block;

    let mut mem = vec![0i64; (RES_BASE + n) as usize];
    let mut rng = Rng64::new(0xe91c);
    for k in 0..n as usize {
        mem[RES_BASE as usize + k] = rng.below_i64(4000) - 500;
    }
    Workload {
        name: "epicdec",
        program: pb.finish_with_memory(main, mem),
        header: BlockId(1),
        doall: false,
    }
}

/// Plain-Rust reference: the clamped array.
pub fn reference(result: &[i64]) -> Vec<i64> {
    result
        .iter()
        .map(|&v| {
            let dtemp = if SCALE == 0 { 0 } else { v / SCALE };
            if dtemp < LOW {
                LOW
            } else if dtemp > HIGH {
                HIGH
            } else {
                dtemp + ROUND
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::interp::Interpreter;

    fn check(unroll: usize) {
        let w = build(Size::Test, unroll);
        let n = ((Size::Test.n()) / unroll) * unroll;
        let input = w.program.initial_memory[RES_BASE as usize..RES_BASE as usize + n].to_vec();
        let r = Interpreter::new(&w.program).run().unwrap();
        assert_eq!(
            &r.memory[RES_BASE as usize..RES_BASE as usize + n],
            reference(&input).as_slice(),
            "unroll {unroll}"
        );
    }

    #[test]
    fn matches_reference_at_all_unrolls() {
        check(1);
        check(2);
        check(8);
    }

    #[test]
    fn exercises_all_three_clamp_arms() {
        let w = build(Size::Test, 1);
        let n = Size::Test.n();
        let input = &w.program.initial_memory[RES_BASE as usize..RES_BASE as usize + n];
        let out = reference(input);
        assert!(out.contains(&LOW));
        assert!(out.contains(&HIGH));
        assert!(out.iter().any(|&v| v != LOW && v != HIGH));
    }
}
