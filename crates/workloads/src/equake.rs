//! 183.equake — a sparse matrix-vector product inner loop.
//!
//! Each iteration gathers `v[col[j]]`, multiplies by the matrix entry
//! `a[j]` and accumulates — an FP-addition recurrence fed by a three-load,
//! one-multiply pipeline, the canonical scientific-code shape the paper
//! selects from equake.

use dswp_ir::{BlockId, ProgramBuilder, RegionId, UnOp};

use crate::util::Rng64;
use crate::{Size, Workload};

const OUT_AT: usize = 0;
const COL_BASE: i64 = 16;
const VEC_LEN: i64 = 256;

/// Builds the kernel for `size`.
pub fn build(size: Size) -> Workload {
    let nnz = size.n() as i64;
    let a_base = COL_BASE + nnz;
    let v_base = a_base + nnz;

    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let exit = f.block("exit");

    let (j, nn, done, colb, ab, vb, base) = (
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
    );
    let (addr, c, a, v, prod, acc) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());

    f.switch_to(e);
    f.iconst(j, 0);
    f.iconst(nn, nnz);
    f.iconst(colb, COL_BASE);
    f.iconst(ab, a_base);
    f.iconst(vb, v_base);
    f.iconst(base, 0);
    f.fconst(acc, 0.0);
    f.jump(header);

    f.switch_to(header);
    f.cmp_ge(done, j, nn);
    f.br(done, exit, body);

    f.switch_to(body);
    f.add(addr, colb, j);
    f.load_region(c, addr, 0, RegionId(0));
    f.add(addr, ab, j);
    f.load_region(a, addr, 0, RegionId(1));
    f.add(addr, vb, c);
    f.load_region(v, addr, 0, RegionId(2));
    f.fmul(prod, a, v);
    f.fadd(acc, acc, prod);
    f.add(j, j, 1);
    f.jump(header);

    f.switch_to(exit);
    f.store(acc, base, OUT_AT as i64);
    let as_int = f.reg();
    f.unary(as_int, UnOp::FloatToInt, acc);
    f.store(as_int, base, OUT_AT as i64 + 1);
    f.halt();
    let main = f.finish();

    let mut mem = vec![0i64; (v_base + VEC_LEN) as usize];
    let mut rng = Rng64::new(0xe9ae);
    for k in 0..nnz as usize {
        mem[COL_BASE as usize + k] = rng.below_i64(VEC_LEN);
        let a = (rng.below_i64(2000) as f64 - 1000.0) / 500.0;
        mem[a_base as usize + k] = a.to_bits() as i64;
    }
    for k in 0..VEC_LEN as usize {
        let v = (rng.below_i64(1000) as f64) / 333.0;
        mem[v_base as usize + k] = v.to_bits() as i64;
    }
    Workload {
        name: "183.equake",
        program: pb.finish_with_memory(main, mem),
        header: BlockId(1),
        doall: false,
    }
}

/// Plain-Rust reference.
pub fn reference(col: &[i64], a: &[i64], v: &[i64]) -> f64 {
    let mut acc = 0.0f64;
    for j in 0..col.len() {
        let av = f64::from_bits(a[j] as u64);
        let vv = f64::from_bits(v[col[j] as usize] as u64);
        acc += av * vv;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::interp::Interpreter;

    #[test]
    fn matches_reference() {
        let w = build(Size::Test);
        let nnz = Size::Test.n();
        let mem = &w.program.initial_memory;
        let col = mem[COL_BASE as usize..COL_BASE as usize + nnz].to_vec();
        let a_base = COL_BASE as usize + nnz;
        let a = mem[a_base..a_base + nnz].to_vec();
        let v_base = a_base + nnz;
        let v = mem[v_base..v_base + VEC_LEN as usize].to_vec();
        let expected = reference(&col, &a, &v);
        let r = Interpreter::new(&w.program).run().unwrap();
        assert_eq!(r.memory[OUT_AT], expected.to_bits() as i64);
    }
}
