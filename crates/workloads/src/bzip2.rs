//! 256.bzip2 — the bit-stream packing loop with the `bslive` global of the
//! paper's false-sharing study (Section 4.2).
//!
//! Each iteration shifts a byte into the bit buffer (`bsbuff`) and flushes
//! 16-bit chunks to the output when enough bits accumulate. The bit-buffer
//! state is a serial recurrence; the loads, the flush stores and the output
//! cursor form separate SCCs.
//!
//! `promote_globals` reproduces the paper's fix: with `false`, `bsbuff` and
//! `bslive` live in memory words adjacent to the output array (same cache
//! line) and are loaded/stored every iteration, which the offline sharing
//! analysis flags as false sharing once DSWP splits the loop; with `true`
//! they are promoted to registers ("We promoted this global variable to a
//! register and used the modified version of 256.bzip2 for all
//! experiments").

use dswp_ir::{BlockId, ProgramBuilder, Reg, RegionId};

use crate::util::Rng64;
use crate::{Size, Workload};

const OUTPOS_AT: usize = 0;
/// A constant flush mask the consumer-side code reads every flush; it lives
/// in the same cache line as `bsbuff`/`bslive`, which is precisely what
/// makes the producer's global writes false-share with the consumer
/// (Section 4.2 of the paper).
pub const FLUSH_MASK_AT: usize = 1;
/// `bsbuff` global (used when `promote_globals == false`).
pub const BSBUFF_AT: usize = 2;
/// `bslive` global (used when `promote_globals == false`).
pub const BSLIVE_AT: usize = 3;
/// Output array base — deliberately in the same cache line as the globals.
pub const OUT_BASE: i64 = 4;

/// Builds the kernel; `promote_globals` keeps the bit-buffer state in
/// registers instead of memory.
pub fn build(size: Size, promote_globals: bool) -> Workload {
    let n = size.n() as i64;
    let in_base = OUT_BASE + n; // output needs at most n/2 words

    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let flush = f.block("flush");
    let join = f.block("join");
    let exit = f.block("exit");

    let (i, nn, done, base, inb, outb) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    let (v, bsbuff, bslive, outpos, enough, chunk, sh, addr, mask) = (
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
    );

    // Helpers to read/update the bit-buffer state in either mode.
    let glob_region = RegionId(9);
    let load_state = |f: &mut dswp_ir::FunctionBuilder, base: Reg, bsbuff: Reg, bslive: Reg| {
        if !promote_globals {
            f.load_region(bsbuff, base, BSBUFF_AT as i64, glob_region);
            f.load_region(bslive, base, BSLIVE_AT as i64, glob_region);
        }
    };
    let store_state = |f: &mut dswp_ir::FunctionBuilder, base: Reg, bsbuff: Reg, bslive: Reg| {
        if !promote_globals {
            f.store_region(bsbuff, base, BSBUFF_AT as i64, glob_region);
            f.store_region(bslive, base, BSLIVE_AT as i64, glob_region);
        }
    };

    f.switch_to(e);
    f.iconst(i, 0);
    f.iconst(nn, n);
    f.iconst(base, 0);
    f.iconst(inb, in_base);
    f.iconst(outb, OUT_BASE);
    f.iconst(bsbuff, 0);
    f.iconst(bslive, 0);
    f.iconst(outpos, 0);
    store_state(&mut f, base, bsbuff, bslive);
    f.jump(header);

    f.switch_to(header);
    f.cmp_ge(done, i, nn);
    f.br(done, exit, body);

    f.switch_to(body);
    f.add(addr, inb, i);
    f.load_region(v, addr, 0, RegionId(0));
    f.and(v, v, 0xFF);
    load_state(&mut f, base, bsbuff, bslive);
    f.shl(bsbuff, bsbuff, 8);
    f.or(bsbuff, bsbuff, v);
    f.add(bslive, bslive, 8);
    f.cmp_ge(enough, bslive, 16);
    store_state(&mut f, base, bsbuff, bslive);
    f.br(enough, flush, join);

    f.switch_to(flush);
    load_state(&mut f, base, bsbuff, bslive);
    f.sub(sh, bslive, 16);
    f.shr(chunk, bsbuff, sh);
    f.load_region(mask, base, FLUSH_MASK_AT as i64, RegionId(10));
    f.and(chunk, chunk, mask);
    f.add(addr, outb, outpos);
    f.store_region(chunk, addr, 0, RegionId(1));
    f.add(outpos, outpos, 1);
    f.sub(bslive, bslive, 16);
    store_state(&mut f, base, bsbuff, bslive);
    f.jump(join);

    f.switch_to(join);
    f.add(i, i, 1);
    f.jump(header);

    f.switch_to(exit);
    f.store(outpos, base, OUTPOS_AT as i64);
    if promote_globals {
        // Keep the final state observable in both modes.
        f.store_region(bsbuff, base, BSBUFF_AT as i64, glob_region);
        f.store_region(bslive, base, BSLIVE_AT as i64, glob_region);
    }
    f.halt();
    let main = f.finish();

    let mut mem = vec![0i64; (in_base + n) as usize];
    mem[FLUSH_MASK_AT] = 0xFFFF;
    let mut rng = Rng64::new(0xb21f);
    for k in 0..n as usize {
        mem[in_base as usize + k] = rng.byte();
    }
    Workload {
        name: "256.bzip2",
        program: pb.finish_with_memory(main, mem),
        header: BlockId(1),
        doall: false,
    }
}

/// Plain-Rust reference: `(outpos, out_words, bsbuff, bslive)`.
pub fn reference(input: &[i64]) -> (i64, Vec<i64>, i64, i64) {
    let (mut bsbuff, mut bslive) = (0i64, 0i64);
    let mut out = Vec::new();
    for &b in input {
        bsbuff = (bsbuff << 8) | (b & 0xFF);
        bslive += 8;
        if bslive >= 16 {
            out.push((bsbuff >> (bslive - 16)) & 0xFFFF);
            bslive -= 16;
        }
    }
    (out.len() as i64, out, bsbuff, bslive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::interp::Interpreter;

    fn check(promote: bool) {
        let w = build(Size::Test, promote);
        let n = Size::Test.n();
        let in_base = (OUT_BASE as usize) + n;
        let input = w.program.initial_memory[in_base..in_base + n].to_vec();
        let (outpos, out, bsbuff, bslive) = reference(&input);
        let r = Interpreter::new(&w.program).run().unwrap();
        assert_eq!(r.memory[OUTPOS_AT], outpos, "promote={promote}");
        assert_eq!(
            &r.memory[OUT_BASE as usize..OUT_BASE as usize + out.len()],
            out.as_slice()
        );
        assert_eq!(r.memory[BSBUFF_AT], bsbuff);
        assert_eq!(r.memory[BSLIVE_AT], bslive);
    }

    #[test]
    fn matches_reference_in_both_modes() {
        check(true);
        check(false);
    }
}
