//! 164.gzip — the serialized `deflate_fast` window of the paper's
//! Section 5.4.
//!
//! "Sometimes, like in the deflate fast loop of 164.gzip, computation of
//! [the loop termination] condition may be highly serialized resulting in
//! one huge SCC, making it unfit for DSWP."
//!
//! The kernel advances the scan position by a *data-dependent* amount: the
//! hash-head lookup feeds the match length, which feeds the next position —
//! so the position recurrence swallows the loads, the hash computation and
//! the hash-table update (same-region store ↔ load), leaving one dominant
//! SCC. The DSWP driver must decline this loop (single SCC or
//! not-profitable).

use dswp_ir::{BlockId, ProgramBuilder, RegionId};

use crate::util::Rng64;
use crate::{Size, Workload};

const SUM_AT: usize = 0;
const HEAD_BASE: i64 = 16; // 64-entry hash table
const HMASK: i64 = 63;
const BUF_BASE: i64 = 96;

/// Builds the kernel for `size`.
pub fn build(size: Size) -> Workload {
    let n = size.n() as i64;

    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let exit = f.block("exit");

    let (pos, nn, done, headb, bufb, base) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    let (c, h, m, len, sum, addr, t) = (
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
    );

    f.switch_to(e);
    f.iconst(pos, 0);
    f.iconst(nn, n);
    f.iconst(headb, HEAD_BASE);
    f.iconst(bufb, BUF_BASE);
    f.iconst(base, 0);
    f.iconst(h, 0);
    f.iconst(sum, 0);
    f.jump(header);

    f.switch_to(header);
    f.cmp_ge(done, pos, nn);
    f.br(done, exit, body);

    f.switch_to(body);
    f.add(addr, bufb, pos);
    f.load_region(c, addr, 0, RegionId(0));
    f.shl(t, h, 5);
    f.xor(h, t, c);
    f.and(h, h, HMASK);
    f.add(addr, headb, h);
    f.load_region(m, addr, 0, RegionId(1));
    f.store_region(pos, addr, 0, RegionId(1));
    f.sub(len, pos, m);
    f.and(len, len, 3);
    f.add(sum, sum, len);
    // The critical serialization: the next position depends on the match.
    f.add(pos, pos, 1);
    f.add(pos, pos, len);
    f.jump(header);

    f.switch_to(exit);
    f.store(sum, base, SUM_AT as i64);
    f.store(pos, base, SUM_AT as i64 + 1);
    f.halt();
    let main = f.finish();

    let mut mem = vec![0i64; (BUF_BASE + n + 8) as usize];
    let mut rng = Rng64::new(0x621f);
    for k in 0..(n + 8) as usize {
        mem[BUF_BASE as usize + k] = rng.below_i64(64);
    }
    Workload {
        name: "164.gzip",
        program: pb.finish_with_memory(main, mem),
        header: BlockId(1),
        doall: false,
    }
}

/// Plain-Rust reference: `(sum, final_pos)`.
pub fn reference(buf: &[i64], n: i64) -> (i64, i64) {
    let mut head = [0i64; 64];
    let (mut pos, mut h, mut sum) = (0i64, 0i64, 0i64);
    while pos < n {
        let c = buf[pos as usize];
        h = ((h << 5) ^ c) & HMASK;
        let m = head[h as usize];
        head[h as usize] = pos;
        let len = (pos - m) & 3;
        sum += len;
        pos += 1 + len;
    }
    (sum, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::interp::Interpreter;

    #[test]
    fn matches_reference() {
        let w = build(Size::Test);
        let n = Size::Test.n() as i64;
        let buf = w.program.initial_memory[BUF_BASE as usize..].to_vec();
        let (sum, pos) = reference(&buf, n);
        let r = Interpreter::new(&w.program).run().unwrap();
        assert_eq!(r.memory[SUM_AT], sum);
        assert_eq!(r.memory[SUM_AT + 1], pos);
    }
}
