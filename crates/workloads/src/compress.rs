//! 29.compress — a DOALL-shaped streaming/hashing loop.
//!
//! The paper notes the selected compress loop is actually DOALL
//! (Section 4.1): every iteration reads `in[i]`, computes a hash-like
//! value, and writes `out[i]`, with no cross-iteration dependence beyond
//! the induction variable. DSWP still applies (induction SCC → load →
//! compute → store pipeline).

use dswp_ir::{BlockId, ProgramBuilder, RegionId};

use crate::util::Rng64;
use crate::{Size, Workload};

const IN_BASE: i64 = 16;

/// Builds the kernel for `size`.
pub fn build(size: Size) -> Workload {
    let n = size.n() as i64;
    let out_base: i64 = IN_BASE + n;

    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let exit = f.block("exit");

    let (i, nn, done) = (f.reg(), f.reg(), f.reg());
    let (inb, outb, a_in, a_out) = (f.reg(), f.reg(), f.reg(), f.reg());
    let (c, t1, t2, h, t3, t4) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());

    f.switch_to(e);
    f.iconst(i, 0);
    f.iconst(nn, n);
    f.iconst(inb, IN_BASE);
    f.iconst(outb, out_base);
    f.jump(header);

    f.switch_to(header);
    f.cmp_ge(done, i, nn);
    f.br(done, exit, body);

    f.switch_to(body);
    f.add(a_in, inb, i);
    f.load_region(c, a_in, 0, RegionId(0));
    f.mul(t1, c, 33);
    f.shr(t2, c, 3);
    f.xor(h, t1, t2);
    f.and(h, h, 0xFFFF);
    f.shr(t3, h, 5);
    f.add(t4, h, t3);
    f.mul(t4, t4, 17);
    f.and(t4, t4, 0xFFFF);
    f.add(a_out, outb, i);
    f.store_region(t4, a_out, 0, RegionId(1));
    f.add(i, i, 1);
    f.jump(header);

    f.switch_to(exit);
    f.halt();
    let main = f.finish();

    let mut mem = vec![0i64; (out_base + n) as usize];
    let mut rng = Rng64::new(0x29c0);
    for k in 0..n as usize {
        mem[IN_BASE as usize + k] = rng.byte();
    }
    Workload {
        name: "29.compress",
        program: pb.finish_with_memory(main, mem),
        header: BlockId(1),
        doall: true,
    }
}

/// Plain-Rust reference of the kernel's computation.
pub fn reference(input: &[i64]) -> Vec<i64> {
    input
        .iter()
        .map(|&c| {
            let h = (c.wrapping_mul(33) ^ (c >> 3)) & 0xFFFF;
            ((h + (h >> 5)).wrapping_mul(17)) & 0xFFFF
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::interp::Interpreter;

    #[test]
    fn matches_reference() {
        let w = build(Size::Test);
        let n = Size::Test.n();
        let r = Interpreter::new(&w.program).run().unwrap();
        let input = &w.program.initial_memory[IN_BASE as usize..IN_BASE as usize + n];
        let expected = reference(input);
        let out_base = IN_BASE as usize + n;
        assert_eq!(&r.memory[out_base..out_base + n], expected.as_slice());
    }

    #[test]
    fn is_marked_doall() {
        assert!(build(Size::Test).doall);
    }
}
