//! 179.art — the neural-network accumulation loop of the paper's Figure 11
//! (Section 5.3):
//!
//! ```c
//! for (ti = 0; ti < numf; ti++)
//!     Y[tj].y += f_layer[ti].p * bus[ti][tj];
//! ```
//!
//! The summation is a floating-point recurrence; the `accumulators`
//! parameter performs the case study's **accumulator expansion**: the body
//! is unrolled that many times with one private accumulator each (summed
//! after the loop), splitting the single addition recurrence into several
//! smaller SCCs.

use dswp_ir::{BlockId, ProgramBuilder, Reg, RegionId, UnOp};

use crate::util::Rng64;
use crate::{Size, Workload};

const OUT_AT: usize = 0;
const P_BASE: i64 = 16;

/// Builds the kernel with `accumulators` parallel partial sums (1 = the
/// original code, 4 = the paper's expansion).
pub fn build(size: Size, accumulators: usize) -> Workload {
    assert!(accumulators >= 1);
    let k = accumulators as i64;
    let n = ((size.n() as i64) / k) * k;
    let bus_base = P_BASE + n;
    let iters = n / k;

    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let exit = f.block("exit");

    let (ti, nn, done, pb_reg, bb_reg, base) =
        (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    let accs: Vec<Reg> = (0..accumulators).map(|_| f.reg()).collect();

    f.switch_to(e);
    f.iconst(ti, 0);
    f.iconst(nn, iters);
    f.iconst(pb_reg, P_BASE);
    f.iconst(bb_reg, bus_base);
    f.iconst(base, 0);
    for &a in &accs {
        f.fconst(a, 0.0);
    }
    f.jump(header);

    f.switch_to(header);
    f.cmp_ge(done, ti, nn);
    f.br(done, exit, body);

    f.switch_to(body);
    for (j, &acc) in accs.iter().enumerate() {
        let (idx, addr, p, b, prod) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
        f.mul(idx, ti, k);
        f.add(idx, idx, j as i64);
        f.add(addr, pb_reg, idx);
        f.load_region(p, addr, 0, RegionId(0));
        f.add(addr, bb_reg, idx);
        f.load_region(b, addr, 0, RegionId(1));
        f.fmul(prod, p, b);
        f.fadd(acc, acc, prod);
    }
    f.add(ti, ti, 1);
    f.jump(header);

    f.switch_to(exit);
    // Sum the partial accumulators and store both the f64 bit pattern and a
    // truncated integer form.
    let total = f.reg();
    f.mov(total, accs[0]);
    for &a in &accs[1..] {
        f.fadd(total, total, a);
    }
    f.store(total, base, OUT_AT as i64);
    let as_int = f.reg();
    f.unary(as_int, UnOp::FloatToInt, total);
    f.store(as_int, base, OUT_AT as i64 + 1);
    f.halt();
    let main = f.finish();

    let mut mem = vec![0i64; (bus_base + n) as usize];
    let mut rng = Rng64::new(0xa27);
    for idx in 0..n as usize {
        let p = (rng.below_i64(1000) as f64) / 250.0;
        let b = (rng.below_i64(1000) as f64 - 500.0) / 125.0;
        mem[P_BASE as usize + idx] = p.to_bits() as i64;
        mem[bus_base as usize + idx] = b.to_bits() as i64;
    }
    Workload {
        name: "179.art",
        program: pb.finish_with_memory(main, mem),
        header: BlockId(1),
        doall: true, // the paper classifies art's loop as DOALL-parallelizable
    }
}

/// Plain-Rust reference with the same association order as the IR kernel.
pub fn reference(p: &[i64], bus: &[i64], accumulators: usize) -> f64 {
    let k = accumulators;
    let mut accs = vec![0.0f64; k];
    let iters = p.len() / k;
    for ti in 0..iters {
        for (j, acc) in accs.iter_mut().enumerate() {
            let idx = ti * k + j;
            let pv = f64::from_bits(p[idx] as u64);
            let bv = f64::from_bits(bus[idx] as u64);
            *acc += pv * bv;
        }
    }
    let mut total = accs[0];
    for &a in &accs[1..] {
        total += a;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::interp::Interpreter;

    fn check(k: usize) {
        let w = build(Size::Test, k);
        let n = (Size::Test.n() / k) * k;
        let mem = &w.program.initial_memory;
        let p = mem[P_BASE as usize..P_BASE as usize + n].to_vec();
        let bus_base = P_BASE as usize + n;
        let bus = mem[bus_base..bus_base + n].to_vec();
        let expected = reference(&p, &bus, k);
        let r = Interpreter::new(&w.program).run().unwrap();
        assert_eq!(
            r.memory[OUT_AT],
            expected.to_bits() as i64,
            "bit-exact FP mismatch at k={k}"
        );
        assert_eq!(r.memory[OUT_AT + 1], expected as i64);
    }

    #[test]
    fn matches_reference_with_and_without_expansion() {
        check(1);
        check(4);
    }

    #[test]
    fn expansion_changes_association_but_stays_finite() {
        let w1 = build(Size::Test, 1);
        let w4 = build(Size::Test, 4);
        let r1 = Interpreter::new(&w1.program).run().unwrap();
        let r4 = Interpreter::new(&w4.program).run().unwrap();
        let v1 = f64::from_bits(r1.memory[OUT_AT] as u64);
        let v4 = f64::from_bits(r4.memory[OUT_AT] as u64);
        assert!(v1.is_finite() && v4.is_finite());
        // Same data, so the totals are numerically close.
        assert!((v1 - v4).abs() < 1e-6 * v1.abs().max(1.0));
    }
}
