//! Structural assertions tying each kernel to the paper's description of
//! its loop: which recurrences exist, what dominates the `DAG_SCC`, and
//! which benchmarks are DOALL.

use dswp::{analyze_loop, loop_stats};
use dswp_analysis::AliasMode;
use dswp_workloads::{adpcm, ammp, art, bzip2, equake, gzip, mcf, paper_suite, wc, Size};

#[test]
fn mcf_has_a_small_pointer_chase_scc_and_a_chain_behind_it() {
    // Figure 7: the mcf DAG is a chain of SCCs; the pointer chase is small
    // and everything else hangs off it.
    let w = mcf::build(Size::Test);
    let a = analyze_loop(&w.program, w.program.main(), w.header, AliasMode::Region).unwrap();
    // SCC 0 (topologically first, reachable to all) is the chase:
    // cmp + br + load of `next`.
    let first = &a.dag.sccs[0];
    assert!(first.len() <= 4, "chase SCC is small, got {}", first.len());
    // It reaches every other component.
    let mut reachable = vec![false; a.dag.len()];
    reachable[0] = true;
    for _ in 0..a.dag.len() {
        for &(x, y) in &a.dag.arcs {
            if reachable[x] {
                reachable[y] = true;
            }
        }
    }
    let unreached = reachable.iter().filter(|&&r| !r).count();
    assert!(
        unreached <= 2,
        "almost everything depends on the chase (unreached: {unreached})"
    );
}

#[test]
fn accumulation_kernels_have_singleton_fp_recurrences() {
    // art and equake end in an `fadd acc, acc, prod` self-recurrence.
    for w in [art::build(Size::Test, 1), equake::build(Size::Test)] {
        let a = analyze_loop(&w.program, w.program.main(), w.header, AliasMode::Region).unwrap();
        let f = a.normalized.function(a.normalized.main());
        let acc_sccs = a
            .dag
            .sccs
            .iter()
            .filter(|comp| {
                comp.len() == 1
                    && a.pdg
                        .instr_of(comp[0])
                        .map(|i| {
                            f.op(i).to_string().starts_with("r")
                                && f.op(i).to_string().contains("fadd")
                        })
                        .unwrap_or(false)
            })
            .count();
        assert!(acc_sccs >= 1, "{}: no fadd accumulator SCC found", w.name);
    }
}

#[test]
fn wc_state_machine_keeps_counters_in_separate_components() {
    let w = wc::build(Size::Test);
    let stats = loop_stats(&w.program, w.program.main(), w.header, AliasMode::Region).unwrap();
    // words/lines/chars counters + in_word state + classification chain +
    // load + induction: well past a handful of components.
    assert!(stats.sccs >= 8, "{}", stats.sccs);
    assert!(stats.largest_scc <= 4, "{}", stats.largest_scc);
}

#[test]
fn bzip2_register_variant_keeps_the_bit_buffer_serial() {
    let w = bzip2::build(Size::Test, true);
    let a = analyze_loop(&w.program, w.program.main(), w.header, AliasMode::Region).unwrap();
    // There must exist a multi-instruction SCC containing the shift-or
    // bit-buffer recurrence.
    let has_serial = a.dag.sccs.iter().any(|c| c.len() >= 3);
    assert!(has_serial);
}

#[test]
fn gzip_is_dominated_by_one_scc() {
    let w = gzip::build(Size::Test);
    let stats = loop_stats(&w.program, w.program.main(), w.header, AliasMode::Region).unwrap();
    let share = stats.largest_scc as f64 / stats.instrs as f64;
    assert!(share > 0.8, "dominant SCC share {share:.2}");
}

#[test]
fn adpcm_variants_differ_exactly_as_section_5_2_describes() {
    let hb = adpcm::build(Size::Test, true);
    let nohb = adpcm::build(Size::Test, false);
    let s_hb = loop_stats(&hb.program, hb.program.main(), hb.header, AliasMode::Region).unwrap();
    let s_no = loop_stats(
        &nohb.program,
        nohb.program.main(),
        nohb.header,
        AliasMode::Region,
    )
    .unwrap();
    // Paper: 4 SCCs (94% in one) vs 38 SCCs (largest 10%).
    assert_eq!(s_hb.sccs, 4);
    assert!(s_hb.largest_scc as f64 / s_hb.instrs as f64 > 0.9);
    assert!(s_no.sccs >= 30, "{}", s_no.sccs);
    assert!(s_no.largest_scc as f64 / s_no.instrs as f64 <= 0.12);
}

#[test]
fn doall_flags_match_the_papers_classification() {
    // Paper Section 4.1: "three of the selected loops are actually DOALL,
    // namely the ones from 29.compress, 179.art, and jpegenc."
    for w in paper_suite(Size::Test) {
        let expected = matches!(w.name, "29.compress" | "179.art" | "jpegenc");
        assert_eq!(w.doall, expected, "{}", w.name);
    }
}

#[test]
fn pointer_chasers_resist_precise_analysis() {
    // mcf and ammp addresses come from loads: no amount of affine analysis
    // may split their chase recurrences.
    for w in [mcf::build(Size::Test), ammp::build(Size::Test)] {
        let region = loop_stats(&w.program, w.program.main(), w.header, AliasMode::Region).unwrap();
        let precise =
            loop_stats(&w.program, w.program.main(), w.header, AliasMode::Precise).unwrap();
        assert_eq!(region.sccs, precise.sccs, "{}", w.name);
    }
}
