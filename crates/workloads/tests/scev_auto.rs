//! The automated "accurate memory analysis" (scalar evolution) must
//! recover what the epicdec kernel's hand-written affine annotations
//! assert: stripping every annotation and re-deriving them yields the same
//! SCC structure, and DSWP on the auto-annotated program stays correct.

use dswp::{annotate_loop_affine, dswp_loop, loop_stats, DswpOptions};
use dswp_analysis::AliasMode;
use dswp_ir::interp::Interpreter;
use dswp_ir::op::MemInfo;
use dswp_ir::{Op, Program};
use dswp_sim::Executor;
use dswp_workloads::{epic, Size};

/// Removes every memory annotation (region and affine) from `p`.
fn strip_annotations(p: &mut Program) {
    for fi in 0..p.functions().len() {
        let f = p.function_mut(dswp_ir::FuncId::from_index(fi));
        for i in 0..f.num_instr_slots() {
            let id = dswp_ir::InstrId::from_index(i);
            match f.op_mut(id) {
                Op::Load { mem, .. } | Op::Store { mem, .. } => *mem = MemInfo::UNKNOWN,
                _ => {}
            }
        }
    }
}

#[test]
fn scev_recovers_epicdec_manual_annotations() {
    for unroll in [1usize, 2] {
        let w = epic::build(Size::Test, unroll);
        let main = w.program.main();

        // Reference: the hand-annotated kernel under Precise.
        let manual = loop_stats(&w.program, main, w.header, AliasMode::Precise).unwrap();

        // Strip everything; Precise now has nothing to work with...
        let mut stripped = w.program.clone();
        strip_annotations(&mut stripped);
        let blind = loop_stats(&stripped, main, w.header, AliasMode::Precise).unwrap();
        assert!(
            blind.sccs < manual.sccs,
            "unroll {unroll}: stripping must lose precision ({} !< {})",
            blind.sccs,
            manual.sccs
        );

        // ...until scalar evolution re-derives the affine facts.
        let stats = annotate_loop_affine(&mut stripped, main, w.header).unwrap();
        assert!(stats.annotated > 0, "unroll {unroll}: {stats:?}");
        let derived = loop_stats(&stripped, main, w.header, AliasMode::Precise).unwrap();
        assert_eq!(
            derived.sccs, manual.sccs,
            "unroll {unroll}: derived precision must match the manual annotations"
        );
        assert_eq!(derived.largest_scc, manual.largest_scc);
    }
}

#[test]
fn dswp_on_auto_annotated_epicdec_is_correct_and_partitionable() {
    let w = epic::build(Size::Test, 1);
    let main = w.program.main();
    let baseline = Interpreter::new(&w.program).run().unwrap();

    let mut p = w.program.clone();
    strip_annotations(&mut p);
    annotate_loop_affine(&mut p, main, w.header).unwrap();

    let opts = DswpOptions {
        alias: AliasMode::Precise,
        min_speedup: 0.0,
        ..DswpOptions::default()
    };
    let report = dswp_loop(&mut p, main, w.header, &baseline.profile, &opts).unwrap();
    assert!(report.num_sccs >= 10, "auto-derived facts split the SCCs");
    let exec = Executor::new(&p).run().unwrap();
    assert_eq!(exec.memory, baseline.memory);
}

#[test]
fn scev_never_claims_facts_on_pointer_chases() {
    // mcf's addresses come from loads — nothing must be annotated, and
    // Precise must not suddenly split the pointer-chase recurrence.
    let w = dswp_workloads::mcf::build(Size::Test);
    let main = w.program.main();
    let before = loop_stats(&w.program, main, w.header, AliasMode::Precise).unwrap();
    let mut p = w.program.clone();
    strip_annotations(&mut p);
    let stats = annotate_loop_affine(&mut p, main, w.header).unwrap();
    assert_eq!(stats.annotated, 0, "{stats:?}");
    // The stripped + derived program is *less* precise than the
    // field-region-annotated original, never more.
    let after = loop_stats(&p, main, w.header, AliasMode::Precise).unwrap();
    assert!(after.sccs <= before.sccs);
}
