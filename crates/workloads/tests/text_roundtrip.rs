//! Text-format round-trip over every benchmark kernel: serialize, parse,
//! re-serialize (fixed point) and re-execute (identical result) — including
//! DSWP-transformed programs with their queue instructions.

use dswp::{dswp_loop, DswpOptions};
use dswp_ir::interp::Interpreter;
use dswp_ir::verify::verify_program;
use dswp_ir::{parse_program, to_text};
use dswp_sim::Executor;
use dswp_workloads::{paper_suite, Size};

#[test]
fn every_workload_round_trips_through_text() {
    for w in paper_suite(Size::Test) {
        let text = to_text(&w.program);
        let parsed = parse_program(&text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        verify_program(&parsed).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(to_text(&parsed), text, "{}: not a fixed point", w.name);

        let a = Interpreter::new(&w.program).run().unwrap();
        let b = Interpreter::new(&parsed).run().unwrap();
        assert_eq!(a.memory, b.memory, "{}", w.name);
        assert_eq!(a.steps, b.steps, "{}", w.name);
    }
}

#[test]
fn transformed_programs_round_trip_through_text() {
    for w in paper_suite(Size::Test) {
        let baseline = Interpreter::new(&w.program).run().unwrap();
        let mut p = w.program.clone();
        let main = p.main();
        if dswp_loop(
            &mut p,
            main,
            w.header,
            &baseline.profile,
            &DswpOptions::default(),
        )
        .is_err()
        {
            continue;
        }
        let text = to_text(&p);
        let parsed = parse_program(&text).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(to_text(&parsed), text, "{}", w.name);
        let exec = Executor::new(&parsed).run().unwrap();
        assert_eq!(exec.memory, baseline.memory, "{}", w.name);
    }
}
