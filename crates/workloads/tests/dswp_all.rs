//! End-to-end integration: apply automatic DSWP to every benchmark kernel
//! and check observational equivalence on both executors, plus the
//! case-study behaviors (gzip bail-out, epicdec alias sensitivity).

use dswp::{dswp_loop, DswpError, DswpOptions};
use dswp_analysis::AliasMode;
use dswp_ir::interp::Interpreter;
use dswp_ir::verify::verify_program;
use dswp_sim::{Executor, Machine, MachineConfig};
use dswp_workloads::{adpcm, epic, gzip, paper_suite, Size, Workload};

fn opts() -> DswpOptions {
    DswpOptions {
        alias: AliasMode::Region,
        ..DswpOptions::default()
    }
}

fn transform_and_check(w: &Workload, opts: &DswpOptions) -> dswp::DswpReport {
    let baseline = Interpreter::new(&w.program)
        .run()
        .unwrap_or_else(|e| panic!("{}: baseline: {e}", w.name));
    let mut p = w.program.clone();
    let main = p.main();
    let report = dswp_loop(&mut p, main, w.header, &baseline.profile, opts)
        .unwrap_or_else(|e| panic!("{}: dswp: {e}", w.name));
    verify_program(&p).unwrap_or_else(|e| panic!("{}: verify: {e}", w.name));

    let exec = Executor::new(&p)
        .run()
        .unwrap_or_else(|e| panic!("{}: functional: {e}", w.name));
    assert_eq!(
        exec.memory, baseline.memory,
        "{}: functional memory",
        w.name
    );

    let sim = Machine::new(&p, MachineConfig::full_width())
        .run()
        .unwrap_or_else(|e| panic!("{}: timing: {e}", w.name));
    assert_eq!(sim.memory, baseline.memory, "{}: timing memory", w.name);
    report
}

#[test]
fn dswp_transforms_every_paper_benchmark_correctly() {
    for w in paper_suite(Size::Test) {
        let report = transform_and_check(&w, &opts());
        assert_eq!(report.partitioning.num_threads, 2, "{}", w.name);
        assert!(report.num_sccs > 1, "{}", w.name);
    }
}

#[test]
fn gzip_case_study_is_declined() {
    let w = gzip::build(Size::Test);
    let baseline = Interpreter::new(&w.program).run().unwrap();
    let mut p = w.program.clone();
    let main = p.main();
    let err = dswp_loop(&mut p, main, w.header, &baseline.profile, &opts()).unwrap_err();
    assert!(
        matches!(err, DswpError::SingleScc | DswpError::NotProfitable),
        "gzip should be unfit for DSWP, got {err}"
    );
}

#[test]
fn epicdec_alias_precision_changes_scc_structure() {
    // Section 5.1: conservative analysis merges the loads and stores of
    // result[] into one SCC; precise (affine) analysis splits them.
    let w = epic::build(Size::Test, 1);
    let conservative = dswp::loop_stats(
        &w.program,
        w.program.main(),
        w.header,
        AliasMode::Conservative,
    )
    .unwrap();
    let precise =
        dswp::loop_stats(&w.program, w.program.main(), w.header, AliasMode::Precise).unwrap();
    assert!(
        precise.sccs > conservative.sccs,
        "precise {} vs conservative {}",
        precise.sccs,
        conservative.sccs
    );
    assert!(precise.largest_scc < conservative.largest_scc);
}

#[test]
fn epicdec_transforms_correctly_at_every_precision_and_unroll() {
    for unroll in [1usize, 2, 8] {
        for alias in [
            AliasMode::Conservative,
            AliasMode::Region,
            AliasMode::Precise,
        ] {
            let w = epic::build(Size::Test, unroll);
            let baseline = Interpreter::new(&w.program).run().unwrap();
            let mut p = w.program.clone();
            let main = p.main();
            let o = DswpOptions {
                alias,
                min_speedup: 0.0,
                ..DswpOptions::default()
            };
            match dswp_loop(&mut p, main, w.header, &baseline.profile, &o) {
                Ok(_) => {
                    let exec = Executor::new(&p)
                        .run()
                        .unwrap_or_else(|e| panic!("epic unroll={unroll} alias={alias:?}: {e}"));
                    assert_eq!(
                        exec.memory, baseline.memory,
                        "epic unroll={unroll} alias={alias:?}"
                    );
                }
                Err(DswpError::SingleScc | DswpError::NotProfitable) => {
                    // Acceptable only for the conservative configurations.
                    assert_eq!(
                        alias,
                        AliasMode::Conservative,
                        "unexpected bail at {alias:?}"
                    );
                }
                Err(e) => panic!("epic unroll={unroll} alias={alias:?}: {e}"),
            }
        }
    }
}

#[test]
fn adpcm_hyperblock_variant_has_denser_recurrences() {
    // Section 5.2: the predicated build has fewer SCCs with a dominant one.
    let hb = adpcm::build(Size::Test, true);
    let cfg = adpcm::build(Size::Test, false);
    let s_hb =
        dswp::loop_stats(&hb.program, hb.program.main(), hb.header, AliasMode::Region).unwrap();
    let s_cfg = dswp::loop_stats(
        &cfg.program,
        cfg.program.main(),
        cfg.header,
        AliasMode::Region,
    )
    .unwrap();
    let frac_hb = s_hb.largest_scc as f64 / s_hb.instrs as f64;
    let frac_cfg = s_cfg.largest_scc as f64 / s_cfg.instrs as f64;
    assert!(
        frac_hb > frac_cfg,
        "hyperblock largest-SCC share {frac_hb:.2} should exceed CFG {frac_cfg:.2}"
    );
}

#[test]
fn dswp_beats_baseline_on_most_benchmarks() {
    // The Figure 6(a) shape at test scale: count wins. Absolute factors are
    // checked in the benchmark harness at Paper size.
    let mut wins = 0;
    let mut total = 0;
    for w in paper_suite(Size::Test) {
        let base = Machine::new(&w.program, MachineConfig::full_width())
            .run()
            .unwrap();
        let baseline = Interpreter::new(&w.program).run().unwrap();
        let mut p = w.program.clone();
        let main = p.main();
        if dswp_loop(&mut p, main, w.header, &baseline.profile, &opts()).is_ok() {
            let sim = Machine::new(&p, MachineConfig::full_width()).run().unwrap();
            total += 1;
            if sim.cycles < base.cycles {
                wins += 1;
            }
        }
    }
    assert!(total >= 8, "most benchmarks should partition ({total})");
    assert!(
        wins * 2 > total,
        "DSWP should win on most benchmarks even at test size ({wins}/{total})"
    );
}
