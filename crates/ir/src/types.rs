//! Newtype identifiers used throughout the IR.
//!
//! All identifiers are plain `u32` indices wrapped in newtypes
//! (C-NEWTYPE) so that a register can never be confused with a block or a
//! queue at a call site.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index of this identifier.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an identifier from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in a `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("identifier index overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// A virtual register local to one [`Function`](crate::Function).
    ///
    /// Registers hold 64-bit words. Floating-point opcodes reinterpret the
    /// word as an `f64` bit pattern.
    Reg,
    "r"
);

id_newtype!(
    /// A basic block within one [`Function`](crate::Function).
    BlockId,
    "bb"
);

id_newtype!(
    /// An instruction within one [`Function`](crate::Function).
    ///
    /// Instruction identifiers are stable across CFG edits: an instruction
    /// keeps its id when blocks are reordered, so analyses can use
    /// `InstrId`-indexed side tables.
    InstrId,
    "i"
);

id_newtype!(
    /// A function within a [`Program`](crate::Program).
    FuncId,
    "fn"
);

id_newtype!(
    /// A synchronization-array queue (Section 2.1 of the paper).
    ///
    /// `produce [q] = r` / `consume r = [q]` pairs are matched in FIFO order
    /// per queue.
    QueueId,
    "q"
);

id_newtype!(
    /// A memory region used by the region-based alias analysis.
    ///
    /// Workloads annotate loads and stores with the region (array /
    /// allocation site) they access; two accesses to different regions can
    /// never alias. Accesses without a region are handled conservatively.
    RegionId,
    "mem"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(InstrId(12).to_string(), "i12");
        assert_eq!(FuncId(1).to_string(), "fn1");
        assert_eq!(QueueId(7).to_string(), "q7");
        assert_eq!(RegionId(2).to_string(), "mem2");
    }

    #[test]
    fn index_round_trips() {
        let r = Reg::from_index(42);
        assert_eq!(r, Reg(42));
        assert_eq!(r.index(), 42);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Reg(1));
        set.insert(Reg(1));
        set.insert(Reg(2));
        assert_eq!(set.len(), 2);
        assert!(BlockId(1) < BlockId(2));
    }
}
