//! Whole programs: functions, shared memory and thread entry points.

use crate::function::Function;
use crate::types::{FuncId, QueueId};

/// Sentinel "function address" that terminates the auxiliary thread's master
/// loop (the paper's NULL function pointer, Section 3).
pub const TERMINATE_SENTINEL: i64 = -1;

/// A whole program: a set of functions, an initial shared-memory image, and
/// one entry function per hardware context (core).
///
/// Context 0 runs the main thread. DSWP-transformed programs add one
/// auxiliary context per extra pipeline stage, each entering a *master*
/// function that loops consuming function ids from its master queue
/// (Section 3 of the paper).
#[derive(Clone, Debug)]
pub struct Program {
    functions: Vec<Function>,
    /// Initial contents of the word-addressed shared memory.
    pub initial_memory: Vec<i64>,
    /// Number of synchronization-array queues addressable by the program.
    pub num_queues: u32,
    thread_entries: Vec<FuncId>,
}

impl Program {
    /// Creates a single-threaded program with `main` as the only context.
    pub fn new(functions: Vec<Function>, main: FuncId, initial_memory: Vec<i64>) -> Self {
        Program {
            functions,
            initial_memory,
            num_queues: 0,
            thread_entries: vec![main],
        }
    }

    /// The functions of the program, indexed by [`FuncId`].
    #[inline]
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Returns a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId::from_index(self.functions.len());
        self.functions.push(f);
        id
    }

    /// The entry function of each hardware context; context 0 is the main
    /// thread.
    #[inline]
    pub fn thread_entries(&self) -> &[FuncId] {
        &self.thread_entries
    }

    /// Number of hardware contexts this program expects.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.thread_entries.len()
    }

    /// The main thread's entry function.
    #[inline]
    pub fn main(&self) -> FuncId {
        self.thread_entries[0]
    }

    /// Registers an additional hardware context entering `entry`.
    pub fn add_thread(&mut self, entry: FuncId) {
        self.thread_entries.push(entry);
    }

    /// Allocates a fresh queue id.
    pub fn new_queue(&mut self) -> QueueId {
        let q = QueueId(self.num_queues);
        self.num_queues += 1;
        q
    }

    /// Total live instruction count across all functions.
    pub fn num_instrs(&self) -> usize {
        self.functions.iter().map(Function::num_instrs).sum()
    }

    /// Looks up a function by name (first match).
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::from_index)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;

    #[test]
    fn thread_and_queue_management() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.switch_to(e);
        f.halt();
        let main = f.finish();
        let mut p = pb.finish(main, 8);

        assert_eq!(p.num_threads(), 1);
        assert_eq!(p.main(), main);

        let q0 = p.new_queue();
        let q1 = p.new_queue();
        assert_ne!(q0, q1);
        assert_eq!(p.num_queues, 2);

        let mut pb2 = ProgramBuilder::new();
        let mut aux = pb2.function("aux");
        let e2 = aux.entry_block();
        aux.switch_to(e2);
        aux.halt();
        let auxf = aux.finish_into(&mut p);
        let _ = pb2;
        p.add_thread(auxf);
        assert_eq!(p.num_threads(), 2);
        assert_eq!(p.function(auxf).name, "aux");
    }

    #[test]
    fn function_by_name_finds_first_match() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.switch_to(e);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 0);
        assert_eq!(p.function_by_name("main"), Some(main));
        assert_eq!(p.function_by_name("nope"), None);
    }
}
