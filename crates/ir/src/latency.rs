//! Per-opcode latency assignments.
//!
//! A [`LatencyTable`] maps each [`LatencyClass`] to a cycle count. It is
//! consumed both by the DSWP thread-partitioning heuristic (which weighs
//! each SCC by "instruction latency and its execution profile weight",
//! Section 2.2.2 of the paper) and by the cycle-level simulator.
//!
//! The default values approximate an Itanium 2 core: single-cycle integer
//! ALU, pipelined FP at 4 cycles, L1D-hit loads at 2 cycles (the cache model
//! adds miss penalties on top), and 1-cycle queue access (the
//! synchronization array's read latency, Section 4.2).

use crate::op::{LatencyClass, Op};

/// Cycle latencies per [`LatencyClass`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyTable {
    /// Simple integer ALU operations.
    pub int_alu: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide / remainder.
    pub int_div: u64,
    /// Floating-point add/sub/convert/compare.
    pub fp_alu: u64,
    /// Floating-point multiply.
    pub fp_mul: u64,
    /// Floating-point divide.
    pub fp_div: u64,
    /// Load hit latency (cache misses add penalties in the simulator).
    pub load: u64,
    /// Store occupancy.
    pub store: u64,
    /// Branch / jump.
    pub branch: u64,
    /// Call / return overhead.
    pub call: u64,
    /// `produce`/`consume` access latency.
    pub queue: u64,
    /// Nop / halt.
    pub nop: u64,
}

impl Default for LatencyTable {
    fn default() -> Self {
        LatencyTable {
            int_alu: 1,
            int_mul: 3,
            int_div: 18,
            fp_alu: 4,
            fp_mul: 4,
            fp_div: 24,
            load: 2,
            store: 1,
            branch: 1,
            call: 2,
            queue: 1,
            nop: 1,
        }
    }
}

impl LatencyTable {
    /// The latency of a latency class.
    pub fn class(&self, class: LatencyClass) -> u64 {
        match class {
            LatencyClass::IntAlu => self.int_alu,
            LatencyClass::IntMul => self.int_mul,
            LatencyClass::IntDiv => self.int_div,
            LatencyClass::FpAlu => self.fp_alu,
            LatencyClass::FpMul => self.fp_mul,
            LatencyClass::FpDiv => self.fp_div,
            LatencyClass::Load => self.load,
            LatencyClass::Store => self.store,
            LatencyClass::Branch => self.branch,
            LatencyClass::Call => self.call,
            LatencyClass::Queue => self.queue,
            LatencyClass::Nop => self.nop,
        }
    }

    /// The latency of an instruction.
    pub fn op(&self, op: &Op) -> u64 {
        self.class(op.latency_class())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BinOp, Operand};
    use crate::types::Reg;

    #[test]
    fn default_table_is_itanium_flavored() {
        let t = LatencyTable::default();
        assert_eq!(t.class(LatencyClass::IntAlu), 1);
        assert!(t.class(LatencyClass::FpDiv) > t.class(LatencyClass::FpMul));
        assert!(t.class(LatencyClass::IntDiv) > t.class(LatencyClass::IntMul));
    }

    #[test]
    fn op_latency_dispatches_by_class() {
        let t = LatencyTable::default();
        let mul = Op::Binary {
            dst: Reg(0),
            op: BinOp::Mul,
            lhs: Operand::Imm(1),
            rhs: Operand::Imm(2),
        };
        assert_eq!(t.op(&mul), t.int_mul);
    }
}
