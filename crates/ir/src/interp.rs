//! A single-context functional interpreter.
//!
//! The interpreter executes one hardware context (thread) with exact,
//! deterministic semantics and no timing model. It is used for
//!
//! * running baseline (un-transformed) programs,
//! * collecting the block-frequency [`Profile`] the DSWP partitioning
//!   heuristic consumes (the paper uses IMPACT's profiling tools,
//!   Section 2.2.2),
//! * serving as the correctness oracle against which DSWP-transformed
//!   programs are compared.
//!
//! Queue instructions cannot execute in a single context and yield
//! [`InterpError::QueueOpInSingleThread`]; transformed programs run on the
//! multi-context executor in the `dswp-sim` crate, which shares the exact
//! value semantics via [`eval_unary`], [`eval_binary`] and [`eval_cmp`].

use std::fmt;

use crate::exec::{checked_read, checked_write, new_frame, read_operand};
use crate::op::{BinOp, CmpOp, Op, UnOp};
use crate::program::Program;
use crate::types::{BlockId, FuncId, InstrId};

/// Default maximum number of executed instructions before
/// [`InterpError::StepLimit`] is raised.
pub const DEFAULT_STEP_LIMIT: u64 = 200_000_000;

/// Errors raised during interpretation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// A load or store addressed a word outside the program memory.
    MemoryOutOfBounds {
        /// The faulting word address.
        address: i64,
        /// The memory size in words.
        size: usize,
    },
    /// A queue instruction was executed in a single-context interpreter.
    QueueOpInSingleThread(InstrId),
    /// An indirect call's target register did not hold a valid function id.
    BadIndirectTarget(i64),
    /// The configured step limit was exceeded (runaway loop guard).
    StepLimit(u64),
    /// `ret` executed with an empty call stack in a context whose entry
    /// function is expected to `halt`.
    ReturnFromEntry,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::MemoryOutOfBounds { address, size } => {
                write!(
                    f,
                    "memory access at word {address} out of bounds (size {size})"
                )
            }
            InterpError::QueueOpInSingleThread(i) => {
                write!(
                    f,
                    "queue instruction {i} executed in a single-context interpreter"
                )
            }
            InterpError::BadIndirectTarget(v) => {
                write!(f, "indirect call target {v} is not a valid function id")
            }
            InterpError::StepLimit(n) => write!(f, "step limit of {n} instructions exceeded"),
            InterpError::ReturnFromEntry => write!(f, "ret executed with an empty call stack"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Exact value semantics of unary operations.
pub fn eval_unary(op: UnOp, v: i64) -> i64 {
    match op {
        UnOp::Mov => v,
        UnOp::Neg => v.wrapping_neg(),
        UnOp::Not => !v,
        UnOp::IntToFloat => (v as f64).to_bits() as i64,
        UnOp::FloatToInt => {
            let x = f64::from_bits(v as u64);
            if x.is_nan() {
                0
            } else {
                x as i64
            }
        }
    }
}

/// Exact value semantics of binary operations (wrapping; division by zero
/// yields 0).
pub fn eval_binary(op: BinOp, a: i64, b: i64) -> i64 {
    let fa = || f64::from_bits(a as u64);
    let fb = || f64::from_bits(b as u64);
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Shr => a.wrapping_shr(b as u32 & 63),
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
        BinOp::FAdd => (fa() + fb()).to_bits() as i64,
        BinOp::FSub => (fa() - fb()).to_bits() as i64,
        BinOp::FMul => (fa() * fb()).to_bits() as i64,
        BinOp::FDiv => (fa() / fb()).to_bits() as i64,
    }
}

/// Exact value semantics of comparisons (result is 0 or 1).
pub fn eval_cmp(op: CmpOp, a: i64, b: i64) -> i64 {
    let r = match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::FLt => f64::from_bits(a as u64) < f64::from_bits(b as u64),
    };
    r as i64
}

/// Block execution frequencies collected by a profiling run.
///
/// This is the analogue of the paper's edge/block profile weights used by
/// the load-balance heuristic (Section 2.2.2).
#[derive(Clone, Debug, Default)]
pub struct Profile {
    weights: Vec<Vec<u64>>,
}

impl Profile {
    /// Creates an all-zero profile shaped like `program`.
    pub fn zeroed(program: &Program) -> Self {
        Profile {
            weights: program
                .functions()
                .iter()
                .map(|f| vec![0; f.num_blocks()])
                .collect(),
        }
    }

    /// The number of times `block` of `func` executed.
    pub fn weight(&self, func: FuncId, block: BlockId) -> u64 {
        self.weights
            .get(func.index())
            .and_then(|w| w.get(block.index()))
            .copied()
            .unwrap_or(0)
    }

    fn bump(&mut self, func: FuncId, block: BlockId) {
        self.weights[func.index()][block.index()] += 1;
    }

    /// Merges another profile into this one by summing weights.
    pub fn merge(&mut self, other: &Profile) {
        for (fs, fo) in self.weights.iter_mut().zip(&other.weights) {
            for (ws, wo) in fs.iter_mut().zip(fo) {
                *ws += wo;
            }
        }
    }
}

/// The observable result of a completed run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Final shared memory image.
    pub memory: Vec<i64>,
    /// Registers of the entry (bottom) frame at halt.
    pub entry_regs: Vec<i64>,
    /// Number of instructions executed.
    pub steps: u64,
    /// Block-frequency profile of the run.
    pub profile: Profile,
}

/// Single-context functional interpreter over a [`Program`].
#[derive(Debug)]
pub struct Interpreter<'p> {
    program: &'p Program,
    step_limit: u64,
}

impl<'p> Interpreter<'p> {
    /// Creates an interpreter for `program` with the default step limit.
    pub fn new(program: &'p Program) -> Self {
        Interpreter {
            program,
            step_limit: DEFAULT_STEP_LIMIT,
        }
    }

    /// Overrides the step limit (runaway guard).
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Runs the program's main thread to `halt`.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] on memory faults, queue instructions,
    /// invalid indirect calls or step-limit exhaustion.
    pub fn run(&self) -> Result<RunResult, InterpError> {
        let program = self.program;
        let mut memory = program.initial_memory.clone();
        let mut profile = Profile::zeroed(program);
        let mut steps: u64 = 0;

        let entry = program.main();
        let mut stack = vec![new_frame(program.function(entry), entry)];
        profile.bump(entry, program.function(entry).entry());

        loop {
            if steps >= self.step_limit {
                return Err(InterpError::StepLimit(self.step_limit));
            }
            let frame = stack.last_mut().expect("non-empty call stack");
            let func = program.function(frame.func);
            let instr = func.block(frame.block).instrs()[frame.index];
            let op = func.op(instr);
            steps += 1;

            match *op {
                Op::Const { dst, value } => {
                    frame.regs[dst.index()] = value;
                    frame.index += 1;
                }
                Op::Unary { dst, op, src } => {
                    let v = read_operand(src, &frame.regs);
                    frame.regs[dst.index()] = eval_unary(op, v);
                    frame.index += 1;
                }
                Op::Binary { dst, op, lhs, rhs } => {
                    let a = read_operand(lhs, &frame.regs);
                    let b = read_operand(rhs, &frame.regs);
                    frame.regs[dst.index()] = eval_binary(op, a, b);
                    frame.index += 1;
                }
                Op::Cmp { dst, op, lhs, rhs } => {
                    let a = read_operand(lhs, &frame.regs);
                    let b = read_operand(rhs, &frame.regs);
                    frame.regs[dst.index()] = eval_cmp(op, a, b);
                    frame.index += 1;
                }
                Op::Load {
                    dst, addr, offset, ..
                } => {
                    let a = frame.regs[addr.index()].wrapping_add(offset);
                    let v = mem_read(&memory, a)?;
                    frame.regs[dst.index()] = v;
                    frame.index += 1;
                }
                Op::Store {
                    src, addr, offset, ..
                } => {
                    let v = read_operand(src, &frame.regs);
                    let a = frame.regs[addr.index()].wrapping_add(offset);
                    mem_write(&mut memory, a, v)?;
                    frame.index += 1;
                }
                Op::Call { callee } => {
                    frame.index += 1;
                    let callee_fn = program.function(callee);
                    profile.bump(callee, callee_fn.entry());
                    stack.push(new_frame(callee_fn, callee));
                }
                Op::CallInd { target } => {
                    let v = frame.regs[target.index()];
                    if v < 0 {
                        // Sentinel: halt this context (master-loop protocol).
                        break;
                    }
                    let idx = usize::try_from(v)
                        .ok()
                        .filter(|&i| i < program.functions().len());
                    let Some(idx) = idx else {
                        return Err(InterpError::BadIndirectTarget(v));
                    };
                    frame.index += 1;
                    let callee = FuncId::from_index(idx);
                    let callee_fn = program.function(callee);
                    profile.bump(callee, callee_fn.entry());
                    stack.push(new_frame(callee_fn, callee));
                }
                Op::Br { cond, then_, else_ } => {
                    let t = if frame.regs[cond.index()] != 0 {
                        then_
                    } else {
                        else_
                    };
                    frame.block = t;
                    frame.index = 0;
                    let fid = frame.func;
                    profile.bump(fid, t);
                }
                Op::Jump { target } => {
                    frame.block = target;
                    frame.index = 0;
                    let fid = frame.func;
                    profile.bump(fid, target);
                }
                Op::Ret => {
                    if stack.len() == 1 {
                        return Err(InterpError::ReturnFromEntry);
                    }
                    stack.pop();
                }
                Op::Halt => break,
                Op::Produce { .. }
                | Op::Consume { .. }
                | Op::ProduceToken { .. }
                | Op::ConsumeToken { .. }
                | Op::QueueDepth { .. } => {
                    return Err(InterpError::QueueOpInSingleThread(instr));
                }
                Op::Nop => {
                    frame.index += 1;
                }
            }
        }

        let entry_regs = stack.first().map(|f| f.regs.clone()).unwrap_or_default();
        Ok(RunResult {
            memory,
            entry_regs,
            steps,
            profile,
        })
    }
}

fn mem_read(memory: &[i64], addr: i64) -> Result<i64, InterpError> {
    checked_read(memory, addr).ok_or(InterpError::MemoryOutOfBounds {
        address: addr,
        size: memory.len(),
    })
}

fn mem_write(memory: &mut [i64], addr: i64, value: i64) -> Result<(), InterpError> {
    if checked_write(memory, addr, value) {
        Ok(())
    } else {
        Err(InterpError::MemoryOutOfBounds {
            address: addr,
            size: memory.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn sum_loop(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let header = f.block("header");
        let body = f.block("body");
        let exit = f.block("exit");
        let (i, sum, limit, base, done) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(i, 0);
        f.iconst(sum, 0);
        f.iconst(limit, n);
        f.iconst(base, 0);
        f.jump(header);
        f.switch_to(header);
        f.cmp_ge(done, i, limit);
        f.br(done, exit, body);
        f.switch_to(body);
        f.add(sum, sum, i);
        f.add(i, i, 1);
        f.jump(header);
        f.switch_to(exit);
        f.store(sum, base, 0);
        f.halt();
        let main = f.finish();
        pb.finish(main, 4)
    }

    #[test]
    fn computes_triangular_numbers() {
        let p = sum_loop(100);
        let r = Interpreter::new(&p).run().unwrap();
        assert_eq!(r.memory[0], 4950);
    }

    #[test]
    fn profile_counts_block_frequencies() {
        let p = sum_loop(10);
        let r = Interpreter::new(&p).run().unwrap();
        let main = p.main();
        // header executes 11 times (10 body iterations + exit test).
        assert_eq!(r.profile.weight(main, BlockId(1)), 11);
        assert_eq!(r.profile.weight(main, BlockId(2)), 10);
        assert_eq!(r.profile.weight(main, BlockId(0)), 1);
        assert_eq!(r.profile.weight(main, BlockId(3)), 1);
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.switch_to(e);
        f.jump(e);
        let main = f.finish();
        let p = pb.finish(main, 0);
        let err = Interpreter::new(&p)
            .with_step_limit(1000)
            .run()
            .unwrap_err();
        assert_eq!(err, InterpError::StepLimit(1000));
    }

    #[test]
    fn memory_fault_is_reported() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let (a, v) = (f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(a, 100);
        f.load(v, a, 0);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 4);
        let err = Interpreter::new(&p).run().unwrap_err();
        assert!(matches!(
            err,
            InterpError::MemoryOutOfBounds { address: 100, .. }
        ));
    }

    #[test]
    fn calls_use_fresh_frames_and_return() {
        let mut pb = ProgramBuilder::new();

        let mut callee = pb.function("callee");
        let ce = callee.entry_block();
        let (a, v) = (callee.reg(), callee.reg());
        callee.switch_to(ce);
        callee.iconst(a, 0);
        callee.iconst(v, 7);
        callee.store(v, a, 1);
        callee.ret();
        let callee = callee.finish();

        let mut f = pb.function("main");
        let e = f.entry_block();
        let x = f.reg();
        f.switch_to(e);
        f.iconst(x, 3);
        f.call(callee);
        // x survives the call (callee has its own frame).
        let base = f.reg();
        f.iconst(base, 0);
        f.store(x, base, 0);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 4);
        let r = Interpreter::new(&p).run().unwrap();
        assert_eq!(r.memory[0], 3);
        assert_eq!(r.memory[1], 7);
    }

    #[test]
    fn float_ops_round_trip() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let (a, b, c, base, i) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.fconst(a, 1.5);
        f.fconst(b, 2.25);
        f.fmul(c, a, b);
        f.unary(i, UnOp::FloatToInt, c);
        f.iconst(base, 0);
        f.store(i, base, 0);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 1);
        let r = Interpreter::new(&p).run().unwrap();
        assert_eq!(r.memory[0], 3); // 1.5 * 2.25 = 3.375 -> 3
    }

    #[test]
    fn queue_op_rejected() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.switch_to(e);
        let r = f.reg();
        f.produce(crate::types::QueueId(0), r);
        f.halt();
        let main = f.finish();
        let mut p = pb.finish(main, 0);
        p.num_queues = 1;
        let err = Interpreter::new(&p).run().unwrap_err();
        assert!(matches!(err, InterpError::QueueOpInSingleThread(_)));
    }

    #[test]
    fn eval_semantics_edge_cases() {
        assert_eq!(eval_binary(BinOp::Div, 5, 0), 0);
        assert_eq!(eval_binary(BinOp::Rem, 5, 0), 0);
        assert_eq!(eval_binary(BinOp::Add, i64::MAX, 1), i64::MIN);
        assert_eq!(eval_binary(BinOp::Div, i64::MIN, -1), i64::MIN); // wrapping
        assert_eq!(eval_unary(UnOp::Neg, i64::MIN), i64::MIN);
        assert_eq!(eval_cmp(CmpOp::Lt, -1, 0), 1);
        assert_eq!(eval_unary(UnOp::FloatToInt, f64::NAN.to_bits() as i64), 0);
        assert_eq!(eval_binary(BinOp::Shl, 1, 64), 1); // shift modulo 64
    }
}
