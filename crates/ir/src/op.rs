//! Instruction opcodes and operands.
//!
//! The instruction set is a minimal RISC-like register machine extended with
//! the paper's `produce`/`consume` queue instructions (Section 2.1). All
//! values are 64-bit words; floating-point opcodes reinterpret the word as an
//! `f64` bit pattern. Arithmetic is wrapping and division by zero yields
//! zero, so every program has a total, deterministic semantics — a property
//! the DSWP equivalence oracle relies on.

use crate::types::{BlockId, FuncId, QueueId, Reg, RegionId};

/// An instruction source operand: either a register or an immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read a virtual register.
    Reg(Reg),
    /// A 64-bit immediate constant.
    Imm(i64),
}

impl Operand {
    /// Returns the register read by this operand, if any.
    #[inline]
    pub fn as_reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

/// Binary arithmetic and logical operations.
///
/// Integer operations wrap on overflow; `Div`/`Rem` by zero yield zero.
/// The `F`-prefixed operations treat their operands as `f64` bit patterns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping integer addition.
    Add,
    /// Wrapping integer subtraction.
    Sub,
    /// Wrapping integer multiplication.
    Mul,
    /// Integer division (0 when the divisor is 0, wrapping on overflow).
    Div,
    /// Integer remainder (0 when the divisor is 0).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (shift amount taken modulo 64).
    Shl,
    /// Arithmetic shift right (shift amount taken modulo 64).
    Shr,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Floating-point addition.
    FAdd,
    /// Floating-point subtraction.
    FSub,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point division.
    FDiv,
}

impl BinOp {
    /// Whether this is one of the floating-point operations.
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }
}

/// Unary operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Register-to-register copy.
    Mov,
    /// Wrapping integer negation.
    Neg,
    /// Bitwise complement.
    Not,
    /// Convert an integer word to the `f64` bit pattern of the same value.
    IntToFloat,
    /// Truncate an `f64` bit pattern to an integer word (0 for NaN/overflow).
    FloatToInt,
}

/// Signed integer comparison predicates. Results are 0 or 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Floating-point less-than on `f64` bit patterns.
    FLt,
}

/// Coarse latency classes used by the timing model to assign per-opcode
/// latencies (the paper's heuristic weighs SCCs by instruction latency,
/// Section 2.2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LatencyClass {
    /// Simple integer ALU operation.
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder.
    IntDiv,
    /// Floating-point add/sub/convert/compare.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide.
    FpDiv,
    /// Memory load (base latency; the cache model adds miss penalties).
    Load,
    /// Memory store.
    Store,
    /// Branch or jump.
    Branch,
    /// Call / return overhead.
    Call,
    /// `produce`/`consume` queue access.
    Queue,
    /// Zero-work instruction.
    Nop,
}

/// An affine address annotation: within the annotated loop, the access
/// touches word `stride * i + phase` of its region on iteration `i` of the
/// induction variable labeled `iv`.
///
/// This is the reproduction's stand-in for IMPACT's accurate memory analysis
/// (the epicdec case study, Section 5.1 of the paper): two accesses to the
/// same region that are affine in the same induction variable with the same
/// stride can be disambiguated exactly (same phase → intra-iteration only;
/// phases that never coincide → independent).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Affine {
    /// Workload-chosen label identifying the induction variable.
    pub iv: u32,
    /// Words advanced per iteration.
    pub stride: i64,
    /// Constant word offset within the stride pattern.
    pub phase: i64,
}

/// Memory-analysis facts attached to a load or store.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct MemInfo {
    /// Points-to region (array / allocation site), if known.
    pub region: Option<RegionId>,
    /// Affine address pattern, if known.
    pub affine: Option<Affine>,
}

impl MemInfo {
    /// No facts: the access is analyzed fully conservatively.
    pub const UNKNOWN: MemInfo = MemInfo {
        region: None,
        affine: None,
    };

    /// Region-only annotation.
    pub fn region(region: RegionId) -> Self {
        MemInfo {
            region: Some(region),
            affine: None,
        }
    }

    /// Region plus affine pattern.
    pub fn affine(region: RegionId, iv: u32, stride: i64, phase: i64) -> Self {
        MemInfo {
            region: Some(region),
            affine: Some(Affine { iv, stride, phase }),
        }
    }
}

/// An IR instruction.
///
/// `Br`, `Jump`, `Ret` and `Halt` are *terminators* and may only appear as
/// the last instruction of a block; every block ends with exactly one
/// terminator (enforced by [`verify_program`](crate::verify::verify_program)).
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// `dst = value`.
    Const {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = op src`.
    Unary {
        /// Destination register.
        dst: Reg,
        /// Operation.
        op: UnOp,
        /// Source operand.
        src: Operand,
    },
    /// `dst = lhs op rhs`.
    Binary {
        /// Destination register.
        dst: Reg,
        /// Operation.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = (lhs op rhs) ? 1 : 0`.
    Cmp {
        /// Destination register (receives 0 or 1).
        dst: Reg,
        /// Comparison predicate.
        op: CmpOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = memory[addr + offset]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base address register (word index).
        addr: Reg,
        /// Constant word offset.
        offset: i64,
        /// Memory-analysis facts (region / affine pattern).
        mem: MemInfo,
    },
    /// `memory[addr + offset] = src`.
    Store {
        /// Value to store.
        src: Operand,
        /// Base address register (word index).
        addr: Reg,
        /// Constant word offset.
        offset: i64,
        /// Memory-analysis facts (region / affine pattern).
        mem: MemInfo,
    },
    /// Direct call of a void, zero-argument function.
    ///
    /// The callee runs in a fresh register frame (all registers zero);
    /// communication happens through memory and queues. Calls act as
    /// memory-dependence barriers in the PDG.
    Call {
        /// The called function.
        callee: FuncId,
    },
    /// Indirect call through a register holding a [`FuncId`] index.
    ///
    /// Used by the DSWP runtime master loop (Section 3 of the paper): the
    /// auxiliary thread consumes a function "address" from the master queue
    /// and calls it. A negative value halts the thread.
    CallInd {
        /// Register holding the callee's function index.
        target: Reg,
    },
    /// Conditional branch: to `then_` if `cond != 0`, else to `else_`.
    Br {
        /// Condition register.
        cond: Reg,
        /// Taken target.
        then_: BlockId,
        /// Fall-through target.
        else_: BlockId,
    },
    /// Unconditional jump.
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// Return from the current function (or halt the thread if the call
    /// stack is empty).
    Ret,
    /// Halt the executing hardware context.
    Halt,
    /// Send `src` on queue `queue` (blocks while the queue is full).
    Produce {
        /// Destination queue.
        queue: QueueId,
        /// Value to send.
        src: Operand,
    },
    /// Receive into `dst` from queue `queue` (blocks while empty).
    Consume {
        /// Source queue.
        queue: QueueId,
        /// Destination register.
        dst: Reg,
    },
    /// Send a valueless synchronization token (memory/sync flows,
    /// Section 2.2.4 category 3).
    ProduceToken {
        /// Destination queue.
        queue: QueueId,
    },
    /// Receive and discard a synchronization token.
    ConsumeToken {
        /// Source queue.
        queue: QueueId,
    },
    /// `dst = ` current occupancy of queue `queue` (never blocks).
    ///
    /// A load-feedback probe for scheduling decisions, not a queue access:
    /// it reads how many produced values have not yet been consumed, as
    /// visible to the executing context. The work-stealing scatter of a
    /// replicated stage uses it to route each iteration to the least-loaded
    /// replica. The value is advisory — on the native runtime it is a racy
    /// snapshot — so correctness must never depend on it, only routing.
    /// Deliberately *not* an [`is_queue_op`](Op::is_queue_op) instruction:
    /// it imposes no ordering and neither produces nor consumes.
    QueueDepth {
        /// Destination register (receives the occupancy).
        dst: Reg,
        /// The probed queue.
        queue: QueueId,
    },
    /// No operation.
    Nop,
}

impl Op {
    /// The register defined by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Op::Const { dst, .. }
            | Op::Unary { dst, .. }
            | Op::Binary { dst, .. }
            | Op::Cmp { dst, .. }
            | Op::Load { dst, .. }
            | Op::Consume { dst, .. }
            | Op::QueueDepth { dst, .. } => Some(dst),
            _ => None,
        }
    }

    /// The registers read by this instruction, in operand order.
    pub fn uses(&self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(2);
        let mut push = |o: Operand| {
            if let Operand::Reg(r) = o {
                out.push(r);
            }
        };
        match *self {
            Op::Unary { src, .. } => push(src),
            Op::Binary { lhs, rhs, .. } | Op::Cmp { lhs, rhs, .. } => {
                push(lhs);
                push(rhs);
            }
            Op::Load { addr, .. } => out.push(addr),
            Op::Store { src, addr, .. } => {
                push(src);
                out.push(addr);
            }
            Op::Br { cond, .. } => out.push(cond),
            Op::CallInd { target } => out.push(target),
            Op::Produce { src, .. } => push(src),
            Op::Const { .. }
            | Op::Call { .. }
            | Op::Jump { .. }
            | Op::Ret
            | Op::Halt
            | Op::Consume { .. }
            | Op::ProduceToken { .. }
            | Op::ConsumeToken { .. }
            | Op::QueueDepth { .. }
            | Op::Nop => {}
        }
        out
    }

    /// Rewrites every register mentioned by this instruction through `f`.
    ///
    /// Used by code duplication (loop splitting renames auxiliary-thread
    /// registers into a fresh frame).
    pub fn map_regs(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        let map_op = |o: &mut Operand, f: &mut dyn FnMut(Reg) -> Reg| {
            if let Operand::Reg(r) = o {
                *r = f(*r);
            }
        };
        match self {
            Op::Const { dst, .. } => *dst = f(*dst),
            Op::Unary { dst, src, .. } => {
                map_op(src, &mut f);
                *dst = f(*dst);
            }
            Op::Binary { dst, lhs, rhs, .. } | Op::Cmp { dst, lhs, rhs, .. } => {
                map_op(lhs, &mut f);
                map_op(rhs, &mut f);
                *dst = f(*dst);
            }
            Op::Load { dst, addr, .. } => {
                *addr = f(*addr);
                *dst = f(*dst);
            }
            Op::Store { src, addr, .. } => {
                map_op(src, &mut f);
                *addr = f(*addr);
            }
            Op::Br { cond, .. } => *cond = f(*cond),
            Op::CallInd { target } => *target = f(*target),
            Op::Produce { src, .. } => map_op(src, &mut f),
            Op::Consume { dst, .. } | Op::QueueDepth { dst, .. } => *dst = f(*dst),
            Op::Call { .. }
            | Op::Jump { .. }
            | Op::Ret
            | Op::Halt
            | Op::ProduceToken { .. }
            | Op::ConsumeToken { .. }
            | Op::Nop => {}
        }
    }

    /// Whether this instruction must terminate a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Br { .. } | Op::Jump { .. } | Op::Ret | Op::Halt)
    }

    /// Whether this is a conditional or unconditional branch (has CFG
    /// successors within the function).
    pub fn is_branch(&self) -> bool {
        matches!(self, Op::Br { .. } | Op::Jump { .. })
    }

    /// Successor blocks of a terminator (empty for `Ret`/`Halt`).
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Op::Br { then_, else_, .. } => {
                if then_ == else_ {
                    vec![then_]
                } else {
                    vec![then_, else_]
                }
            }
            Op::Jump { target } => vec![target],
            _ => Vec::new(),
        }
    }

    /// Rewrites the successor blocks of a terminator through `f`.
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Op::Br { then_, else_, .. } => {
                *then_ = f(*then_);
                *else_ = f(*else_);
            }
            Op::Jump { target } => *target = f(*target),
            _ => {}
        }
    }

    /// Whether this instruction reads memory.
    pub fn is_mem_read(&self) -> bool {
        matches!(self, Op::Load { .. })
    }

    /// Whether this instruction writes memory.
    pub fn is_mem_write(&self) -> bool {
        matches!(self, Op::Store { .. })
    }

    /// Whether this instruction has unanalyzable side effects (calls): a
    /// memory-dependence barrier in the PDG.
    pub fn is_barrier(&self) -> bool {
        matches!(self, Op::Call { .. } | Op::CallInd { .. })
    }

    /// Whether this instruction accesses a synchronization-array queue.
    pub fn is_queue_op(&self) -> bool {
        matches!(
            self,
            Op::Produce { .. }
                | Op::Consume { .. }
                | Op::ProduceToken { .. }
                | Op::ConsumeToken { .. }
        )
    }

    /// Whether this instruction occupies an M-type issue slot (memory or
    /// queue port). The paper's model issues at most 4 M-type instructions
    /// per cycle on a full-width Itanium 2 core (Section 4.2).
    pub fn is_m_type(&self) -> bool {
        self.is_mem_read() || self.is_mem_write() || self.is_queue_op()
    }

    /// The latency class of this instruction.
    pub fn latency_class(&self) -> LatencyClass {
        match self {
            Op::Const { .. } | Op::Unary { .. } | Op::QueueDepth { .. } => LatencyClass::IntAlu,
            Op::Binary { op, .. } => match op {
                BinOp::Mul => LatencyClass::IntMul,
                BinOp::Div | BinOp::Rem => LatencyClass::IntDiv,
                BinOp::FAdd | BinOp::FSub => LatencyClass::FpAlu,
                BinOp::FMul => LatencyClass::FpMul,
                BinOp::FDiv => LatencyClass::FpDiv,
                _ => LatencyClass::IntAlu,
            },
            Op::Cmp { op, .. } => {
                if matches!(op, CmpOp::FLt) {
                    LatencyClass::FpAlu
                } else {
                    LatencyClass::IntAlu
                }
            }
            Op::Load { .. } => LatencyClass::Load,
            Op::Store { .. } => LatencyClass::Store,
            Op::Call { .. } | Op::CallInd { .. } | Op::Ret => LatencyClass::Call,
            Op::Br { .. } | Op::Jump { .. } => LatencyClass::Branch,
            Op::Halt | Op::Nop => LatencyClass::Nop,
            Op::Produce { .. }
            | Op::Consume { .. }
            | Op::ProduceToken { .. }
            | Op::ConsumeToken { .. } => LatencyClass::Queue,
        }
    }

    /// The queue referenced by this instruction, if any (queue operations
    /// plus the non-blocking [`QueueDepth`](Op::QueueDepth) probe).
    pub fn queue(&self) -> Option<QueueId> {
        match *self {
            Op::Produce { queue, .. }
            | Op::Consume { queue, .. }
            | Op::ProduceToken { queue }
            | Op::ConsumeToken { queue }
            | Op::QueueDepth { queue, .. } => Some(queue),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> Reg {
        Reg(n)
    }

    #[test]
    fn def_and_uses() {
        let op = Op::Binary {
            dst: r(0),
            op: BinOp::Add,
            lhs: Operand::Reg(r(1)),
            rhs: Operand::Imm(3),
        };
        assert_eq!(op.def(), Some(r(0)));
        assert_eq!(op.uses(), vec![r(1)]);

        let st = Op::Store {
            src: Operand::Reg(r(2)),
            addr: r(3),
            offset: 4,
            mem: MemInfo::UNKNOWN,
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![r(2), r(3)]);
    }

    #[test]
    fn consume_defines_its_destination() {
        let c = Op::Consume {
            queue: QueueId(1),
            dst: r(5),
        };
        assert_eq!(c.def(), Some(r(5)));
        assert!(c.uses().is_empty());
        assert!(c.is_queue_op());
        assert!(c.is_m_type());
        assert_eq!(c.queue(), Some(QueueId(1)));
    }

    #[test]
    fn terminators_and_successors() {
        let br = Op::Br {
            cond: r(0),
            then_: BlockId(1),
            else_: BlockId(2),
        };
        assert!(br.is_terminator());
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);

        let same = Op::Br {
            cond: r(0),
            then_: BlockId(3),
            else_: BlockId(3),
        };
        assert_eq!(same.successors(), vec![BlockId(3)]);

        assert!(Op::Ret.is_terminator());
        assert!(Op::Ret.successors().is_empty());
        assert!(!Op::Nop.is_terminator());
    }

    #[test]
    fn map_regs_renames_everything() {
        let mut op = Op::Binary {
            dst: r(0),
            op: BinOp::Add,
            lhs: Operand::Reg(r(1)),
            rhs: Operand::Reg(r(2)),
        };
        op.map_regs(|x| Reg(x.0 + 10));
        assert_eq!(op.def(), Some(r(10)));
        assert_eq!(op.uses(), vec![r(11), r(12)]);
    }

    #[test]
    fn latency_classes() {
        assert_eq!(
            Op::Binary {
                dst: r(0),
                op: BinOp::FMul,
                lhs: Operand::Imm(0),
                rhs: Operand::Imm(0)
            }
            .latency_class(),
            LatencyClass::FpMul
        );
        assert_eq!(
            Op::Load {
                dst: r(0),
                addr: r(1),
                offset: 0,
                mem: MemInfo::UNKNOWN
            }
            .latency_class(),
            LatencyClass::Load
        );
    }

    #[test]
    fn m_type_covers_memory_and_queues() {
        assert!(Op::Load {
            dst: r(0),
            addr: r(1),
            offset: 0,
            mem: MemInfo::UNKNOWN
        }
        .is_m_type());
        assert!(Op::ProduceToken { queue: QueueId(0) }.is_m_type());
        assert!(!Op::Nop.is_m_type());
    }
}
