//! Structural verification of IR programs.
//!
//! The verifier enforces the invariants the analyses and the DSWP
//! transformation rely on:
//!
//! * every block ends with exactly one terminator, and terminators appear
//!   nowhere else;
//! * every branch target, register, function, queue and instruction id is in
//!   range;
//! * no instruction slot appears in more than one block;
//! * every thread entry is a valid function.

use std::fmt;

use crate::function::Function;
use crate::op::Op;
use crate::program::Program;
use crate::types::{BlockId, FuncId, InstrId};

/// A structural error found by the verifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the error occurred, if attributable.
    pub function: Option<FuncId>,
    /// Block in which the error occurred, if attributable.
    pub block: Option<BlockId>,
    /// Offending instruction, if attributable.
    pub instr: Option<InstrId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error")?;
        if let Some(func) = self.function {
            write!(f, " in {func}")?;
        }
        if let Some(b) = self.block {
            write!(f, " at {b}")?;
        }
        if let Some(i) = self.instr {
            write!(f, " ({i})")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

fn err(
    function: Option<FuncId>,
    block: Option<BlockId>,
    instr: Option<InstrId>,
    message: impl Into<String>,
) -> VerifyError {
    VerifyError {
        function,
        block,
        instr,
        message: message.into(),
    }
}

/// Verifies a single function. `num_funcs` and `num_queues` bound call and
/// queue references (pass `u32::MAX` for `num_queues` to skip queue checks).
///
/// # Errors
///
/// Returns the first structural violation found.
pub fn verify_function(
    f: &Function,
    fid: FuncId,
    num_funcs: usize,
    num_queues: u32,
) -> Result<(), VerifyError> {
    if f.num_blocks() == 0 {
        return Err(err(Some(fid), None, None, "function has no blocks"));
    }
    if f.entry().index() >= f.num_blocks() {
        return Err(err(Some(fid), None, None, "entry block out of range"));
    }

    let mut seen = vec![false; f.num_instr_slots()];
    for b in f.block_ids() {
        let block = f.block(b);
        if block.instrs().is_empty() {
            return Err(err(Some(fid), Some(b), None, "empty block"));
        }
        for (idx, &i) in block.instrs().iter().enumerate() {
            if i.index() >= f.num_instr_slots() {
                return Err(err(
                    Some(fid),
                    Some(b),
                    Some(i),
                    "instruction id out of range",
                ));
            }
            if seen[i.index()] {
                return Err(err(
                    Some(fid),
                    Some(b),
                    Some(i),
                    "instruction appears in more than one position",
                ));
            }
            seen[i.index()] = true;

            let op = f.op(i);
            let is_last = idx + 1 == block.instrs().len();
            if op.is_terminator() != is_last {
                let what = if is_last {
                    "block does not end with a terminator"
                } else {
                    "terminator in the middle of a block"
                };
                return Err(err(Some(fid), Some(b), Some(i), what));
            }

            if let Some(d) = op.def() {
                if d.0 >= f.num_regs() {
                    return Err(err(
                        Some(fid),
                        Some(b),
                        Some(i),
                        format!("defined register {d} out of range"),
                    ));
                }
            }
            for u in op.uses() {
                if u.0 >= f.num_regs() {
                    return Err(err(
                        Some(fid),
                        Some(b),
                        Some(i),
                        format!("used register {u} out of range"),
                    ));
                }
            }
            for s in op.successors() {
                if s.index() >= f.num_blocks() {
                    return Err(err(
                        Some(fid),
                        Some(b),
                        Some(i),
                        format!("branch target {s} out of range"),
                    ));
                }
            }
            if let Op::Call { callee } = *op {
                if callee.index() >= num_funcs {
                    return Err(err(Some(fid), Some(b), Some(i), "call target out of range"));
                }
            }
            if let Some(q) = op.queue() {
                if q.0 >= num_queues {
                    return Err(err(
                        Some(fid),
                        Some(b),
                        Some(i),
                        format!("queue {q} out of range"),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Verifies a whole program.
///
/// # Errors
///
/// Returns the first structural violation found in any function or thread
/// entry.
pub fn verify_program(p: &Program) -> Result<(), VerifyError> {
    if p.thread_entries().is_empty() {
        return Err(err(None, None, None, "program has no thread entries"));
    }
    for &entry in p.thread_entries() {
        if entry.index() >= p.functions().len() {
            return Err(err(None, None, None, "thread entry out of range"));
        }
    }
    let num_queues = if p.num_queues == 0 { 0 } else { p.num_queues };
    for (idx, f) in p.functions().iter().enumerate() {
        verify_function(f, FuncId::from_index(idx), p.functions().len(), num_queues)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::op::Op;
    use crate::types::{QueueId, Reg};

    fn good_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let x = f.reg();
        f.switch_to(e);
        f.iconst(x, 1);
        f.halt();
        let main = f.finish();
        pb.finish(main, 0)
    }

    #[test]
    fn accepts_valid_program() {
        assert!(verify_program(&good_program()).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut p = good_program();
        let main = p.main();
        let f = p.function_mut(main);
        let b = f.add_block("loose");
        let r = Reg(0);
        f.append_op(b, Op::Const { dst: r, value: 0 });
        let e = verify_program(&p).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn rejects_out_of_range_register() {
        let mut p = good_program();
        let main = p.main();
        let f = p.function_mut(main);
        let entry = f.entry();
        f.insert_before_terminator(
            entry,
            Op::Const {
                dst: Reg(99),
                value: 0,
            },
        );
        let e = verify_program(&p).unwrap_err();
        assert!(e.message.contains("register"), "{e}");
    }

    #[test]
    fn rejects_bad_queue() {
        let mut p = good_program();
        let main = p.main();
        let f = p.function_mut(main);
        let entry = f.entry();
        f.insert_before_terminator(entry, Op::ProduceToken { queue: QueueId(5) });
        let e = verify_program(&p).unwrap_err();
        assert!(e.message.contains("queue"), "{e}");
    }

    #[test]
    fn rejects_duplicated_instruction_slot() {
        let mut p = good_program();
        let main = p.main();
        let f = p.function_mut(main);
        let entry = f.entry();
        let dup = f.block(entry).instrs()[0];
        f.insert_instr(entry, 0, dup);
        let e = verify_program(&p).unwrap_err();
        assert!(e.message.contains("more than one"), "{e}");
    }

    #[test]
    fn rejects_mid_block_terminator() {
        let mut p = good_program();
        let main = p.main();
        let f = p.function_mut(main);
        let entry = f.entry();
        let halt = f.add_instr(Op::Halt);
        f.insert_instr(entry, 0, halt);
        let e = verify_program(&p).unwrap_err();
        assert!(e.message.contains("middle"), "{e}");
    }

    #[test]
    fn error_display_mentions_location() {
        let mut p = good_program();
        let main = p.main();
        let f = p.function_mut(main);
        let b = f.add_block("loose");
        f.append_op(b, Op::Nop);
        let e = verify_program(&p).unwrap_err();
        let s = e.to_string();
        assert!(s.contains("fn0") && s.contains("bb1"), "{s}");
    }
}
