//! Shared execution-context machinery for the three execution engines.
//!
//! The single-context [`Interpreter`](crate::interp::Interpreter), the
//! round-robin functional executor (`dswp-sim`) and the native
//! multi-threaded runtime (`dswp-rt`) all interpret the same IR with the
//! same call/frame discipline. This module holds the pieces they share —
//! the register frame, operand reads and bounds-checked memory access —
//! so the three engines cannot drift apart on value semantics. The exact
//! arithmetic lives next door in [`interp::eval_unary`](crate::interp::eval_unary),
//! [`eval_binary`](crate::interp::eval_binary) and
//! [`eval_cmp`](crate::interp::eval_cmp).

use crate::function::Function;
use crate::op::Operand;
use crate::types::{BlockId, FuncId};

/// One call-stack entry of an executing hardware context: the function, its
/// register file, and the program counter (block + index within block).
#[derive(Clone, Debug)]
pub struct Frame {
    /// The executing function.
    pub func: FuncId,
    /// The function's register file (all registers start at zero).
    pub regs: Vec<i64>,
    /// Current basic block.
    pub block: BlockId,
    /// Index of the next instruction within `block`.
    pub index: usize,
}

/// Creates a fresh frame for `f`: registers zeroed, control at the entry
/// block.
pub fn new_frame(f: &Function, id: FuncId) -> Frame {
    Frame {
        func: id,
        regs: vec![0; f.num_regs() as usize],
        block: f.entry(),
        index: 0,
    }
}

/// Reads an operand against a register file.
#[inline]
pub fn read_operand(o: Operand, regs: &[i64]) -> i64 {
    match o {
        Operand::Reg(r) => regs[r.index()],
        Operand::Imm(v) => v,
    }
}

/// A bounds-checked memory read. Returns `None` when `addr` is negative or
/// past the end of memory; engines map that to their own fault type.
#[inline]
pub fn checked_read(memory: &[i64], addr: i64) -> Option<i64> {
    usize::try_from(addr)
        .ok()
        .and_then(|a| memory.get(a).copied())
}

/// A bounds-checked memory write. Returns `false` when `addr` is out of
/// bounds.
#[inline]
pub fn checked_write(memory: &mut [i64], addr: i64, value: i64) -> bool {
    match usize::try_from(addr).ok().and_then(|a| memory.get_mut(a)) {
        Some(slot) => {
            *slot = value;
            true
        }
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::Reg;

    #[test]
    fn frames_start_zeroed_at_entry() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let r = f.reg();
        f.switch_to(e);
        f.iconst(r, 1);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 0);
        let frame = new_frame(p.function(main), main);
        assert_eq!(frame.regs, vec![0]);
        assert_eq!(frame.block, p.function(main).entry());
        assert_eq!(frame.index, 0);
    }

    #[test]
    fn operand_reads() {
        let regs = vec![7, 9];
        assert_eq!(read_operand(Operand::Reg(Reg(1)), &regs), 9);
        assert_eq!(read_operand(Operand::Imm(-3), &regs), -3);
    }

    #[test]
    fn checked_memory_access() {
        let mut mem = vec![1, 2, 3];
        assert_eq!(checked_read(&mem, 2), Some(3));
        assert_eq!(checked_read(&mem, 3), None);
        assert_eq!(checked_read(&mem, -1), None);
        assert!(checked_write(&mut mem, 0, 42));
        assert_eq!(mem[0], 42);
        assert!(!checked_write(&mut mem, 99, 0));
    }
}
