//! Functions and basic blocks.
//!
//! A [`Function`] owns a pool of instructions indexed by stable
//! [`InstrId`]s and a list of [`Block`]s, each an ordered sequence of
//! instruction ids. Instruction ids never move when blocks are edited, so
//! analyses (dependence graphs, partitions) can index side tables by
//! `InstrId` while the DSWP transformation rewrites the CFG.

use crate::op::Op;
use crate::types::{BlockId, InstrId, Reg};

/// A basic block: a named, ordered list of instructions ending in a
/// terminator.
#[derive(Clone, Debug)]
pub struct Block {
    /// Human-readable block label (for printing and debugging).
    pub name: String,
    instrs: Vec<InstrId>,
}

impl Block {
    /// The instructions of this block, in program order.
    #[inline]
    pub fn instrs(&self) -> &[InstrId] {
        &self.instrs
    }
}

/// A function: an entry block plus a CFG of basic blocks over a private
/// virtual-register space.
///
/// Functions take no arguments and return no values; threads communicate
/// through the shared memory and the synchronization-array queues, matching
/// the paper's auxiliary-thread protocol (Section 3).
#[derive(Clone, Debug)]
pub struct Function {
    /// Function name (for printing and debugging).
    pub name: String,
    entry: BlockId,
    blocks: Vec<Block>,
    instrs: Vec<Op>,
    num_regs: u32,
}

impl Function {
    /// Creates an empty function with no blocks.
    ///
    /// The caller must add at least one block and point the entry at it
    /// (via [`add_block`](Self::add_block) / [`set_entry`](Self::set_entry))
    /// before the function can verify. Used by program transformations that
    /// assemble functions directly; prefer
    /// [`ProgramBuilder::function`](crate::ProgramBuilder::function) for
    /// ordinary construction.
    pub fn new(name: impl Into<String>) -> Self {
        Function {
            name: name.into(),
            entry: BlockId(0),
            blocks: Vec::new(),
            instrs: Vec::new(),
            num_regs: 0,
        }
    }

    pub(crate) fn from_parts(
        name: String,
        entry: BlockId,
        blocks: Vec<Block>,
        instrs: Vec<Op>,
        num_regs: u32,
    ) -> Self {
        Function {
            name,
            entry,
            blocks,
            instrs,
            num_regs,
        }
    }

    /// The entry block.
    #[inline]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of basic blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of virtual registers (registers are `Reg(0)..Reg(num_regs)`).
    #[inline]
    pub fn num_regs(&self) -> u32 {
        self.num_regs
    }

    /// Number of instruction slots (some may be dead after transformation).
    #[inline]
    pub fn num_instr_slots(&self) -> usize {
        self.instrs.len()
    }

    /// Iterates over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId::from_index)
    }

    /// Returns a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Returns the opcode of an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn op(&self, id: InstrId) -> &Op {
        &self.instrs[id.index()]
    }

    /// Mutable access to the opcode of an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn op_mut(&mut self, id: InstrId) -> &mut Op {
        &mut self.instrs[id.index()]
    }

    /// The terminator instruction of a block.
    ///
    /// # Panics
    ///
    /// Panics if the block is empty (unverified function).
    pub fn terminator(&self, id: BlockId) -> &Op {
        let last = *self
            .block(id)
            .instrs
            .last()
            .expect("block has no terminator");
        self.op(last)
    }

    /// CFG successors of a block.
    pub fn successors(&self, id: BlockId) -> Vec<BlockId> {
        self.terminator(id).successors()
    }

    /// Computes the CFG predecessor lists for all blocks.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.successors(b) {
                preds[s.index()].push(b);
            }
        }
        preds
    }

    /// Iterates over `(BlockId, InstrId)` for every instruction in block
    /// order.
    pub fn instr_ids(&self) -> impl Iterator<Item = (BlockId, InstrId)> + '_ {
        self.block_ids()
            .flat_map(move |b| self.block(b).instrs.iter().copied().map(move |i| (b, i)))
    }

    /// Total number of live (block-resident) instructions.
    pub fn num_instrs(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// The block containing each instruction, as an `InstrId`-indexed table
    /// (`None` for instruction slots not currently in any block).
    pub fn instr_blocks(&self) -> Vec<Option<BlockId>> {
        let mut table = vec![None; self.instrs.len()];
        for (b, i) in self.instr_ids() {
            table[i.index()] = Some(b);
        }
        table
    }

    // ---- mutation API (used by the builder and the DSWP transformation) ----

    /// Allocates a fresh virtual register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.num_regs);
        self.num_regs += 1;
        r
    }

    /// Ensures the register space covers `reg` (used when copying code
    /// between functions).
    pub fn ensure_reg(&mut self, reg: Reg) {
        self.num_regs = self.num_regs.max(reg.0 + 1);
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(Block {
            name: name.into(),
            instrs: Vec::new(),
        });
        id
    }

    /// Allocates a new instruction slot holding `op` (not yet in any block).
    pub fn add_instr(&mut self, op: Op) -> InstrId {
        let id = InstrId::from_index(self.instrs.len());
        self.instrs.push(op);
        id
    }

    /// Appends an existing instruction to the end of a block.
    pub fn push_instr(&mut self, block: BlockId, instr: InstrId) {
        self.blocks[block.index()].instrs.push(instr);
    }

    /// Inserts an instruction at `index` within a block.
    ///
    /// # Panics
    ///
    /// Panics if `index > block.len()`.
    pub fn insert_instr(&mut self, block: BlockId, index: usize, instr: InstrId) {
        self.blocks[block.index()].instrs.insert(index, instr);
    }

    /// Replaces the entire instruction list of a block.
    pub fn set_block_instrs(&mut self, block: BlockId, instrs: Vec<InstrId>) {
        self.blocks[block.index()].instrs = instrs;
    }

    /// Changes the entry block.
    pub fn set_entry(&mut self, entry: BlockId) {
        self.entry = entry;
    }

    /// Convenience: allocates and appends `op` at the end of `block`,
    /// before nothing (the caller is responsible for terminator ordering).
    pub fn append_op(&mut self, block: BlockId, op: Op) -> InstrId {
        let id = self.add_instr(op);
        self.push_instr(block, id);
        id
    }

    /// Convenience: allocates `op` and inserts it just before the block's
    /// terminator.
    ///
    /// # Panics
    ///
    /// Panics if the block has no terminator yet.
    pub fn insert_before_terminator(&mut self, block: BlockId, op: Op) -> InstrId {
        let len = self.blocks[block.index()].instrs.len();
        assert!(len > 0, "block {block} has no terminator");
        let id = self.add_instr(op);
        self.insert_instr(block, len - 1, id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Op, Operand};
    use crate::types::Reg;

    fn tiny() -> Function {
        let mut f = Function::from_parts("t".into(), BlockId(0), Vec::new(), Vec::new(), 0);
        let b0 = f.add_block("entry");
        let b1 = f.add_block("exit");
        let r0 = f.new_reg();
        f.append_op(b0, Op::Const { dst: r0, value: 1 });
        f.append_op(b0, Op::Jump { target: b1 });
        f.append_op(b1, Op::Halt);
        f
    }

    #[test]
    fn successors_and_predecessors() {
        let f = tiny();
        assert_eq!(f.successors(BlockId(0)), vec![BlockId(1)]);
        let preds = f.predecessors();
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn instr_blocks_table() {
        let f = tiny();
        let table = f.instr_blocks();
        assert_eq!(table[0], Some(BlockId(0)));
        assert_eq!(table[2], Some(BlockId(1)));
        assert_eq!(f.num_instrs(), 3);
    }

    #[test]
    fn insert_before_terminator_keeps_terminator_last() {
        let mut f = tiny();
        let r = f.new_reg();
        f.insert_before_terminator(
            BlockId(1),
            Op::Unary {
                dst: r,
                op: crate::op::UnOp::Mov,
                src: Operand::Imm(7),
            },
        );
        let last = *f.block(BlockId(1)).instrs().last().unwrap();
        assert!(f.op(last).is_terminator());
        assert_eq!(f.block(BlockId(1)).instrs().len(), 2);
    }

    #[test]
    fn ensure_reg_grows_register_space() {
        let mut f = tiny();
        f.ensure_reg(Reg(40));
        assert_eq!(f.num_regs(), 41);
        f.ensure_reg(Reg(3));
        assert_eq!(f.num_regs(), 41);
    }
}
