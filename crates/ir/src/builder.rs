//! Fluent builders for constructing IR programs.
//!
//! [`ProgramBuilder`] collects functions; [`FunctionBuilder`] provides an
//! emit-into-current-block API with one method per opcode. Every emitter
//! returns the new [`InstrId`] so tests and analyses can refer to specific
//! instructions.

use crate::function::Function;
use crate::op::{BinOp, CmpOp, MemInfo, Op, Operand, UnOp};
use crate::program::Program;
use crate::types::{BlockId, FuncId, InstrId, QueueId, Reg, RegionId};

/// Builds a [`Program`] from a set of functions.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<Function>,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts building a new function. The function's entry block is created
    /// automatically; retrieve it with [`FunctionBuilder::entry_block`].
    pub fn function(&mut self, name: impl Into<String>) -> FunctionBuilder<'_> {
        let mut func = Function::from_parts(name.into(), BlockId(0), Vec::new(), Vec::new(), 0);
        let entry = func.add_block("entry");
        func.set_entry(entry);
        FunctionBuilder {
            pb: self,
            func: Some(func),
            current: None,
        }
    }

    fn register(&mut self, f: Function) -> FuncId {
        let id = FuncId::from_index(self.functions.len());
        self.functions.push(f);
        id
    }

    /// Finishes the program with a zero-initialized memory of `mem_words`
    /// words.
    pub fn finish(self, main: FuncId, mem_words: usize) -> Program {
        Program::new(self.functions, main, vec![0; mem_words])
    }

    /// Finishes the program with an explicit initial memory image.
    pub fn finish_with_memory(self, main: FuncId, memory: Vec<i64>) -> Program {
        Program::new(self.functions, main, memory)
    }
}

/// Builds one [`Function`], emitting instructions into a *current block*.
///
/// # Panics
///
/// Emitter methods panic if called before [`switch_to`](Self::switch_to)
/// selects a current block.
#[derive(Debug)]
pub struct FunctionBuilder<'p> {
    pb: &'p mut ProgramBuilder,
    func: Option<Function>,
    current: Option<BlockId>,
}

impl FunctionBuilder<'_> {
    fn f(&mut self) -> &mut Function {
        self.func.as_mut().expect("function already finished")
    }

    /// The entry block created when this builder was opened.
    pub fn entry_block(&self) -> BlockId {
        self.func
            .as_ref()
            .expect("function already finished")
            .entry()
    }

    /// Creates a new (empty) basic block.
    pub fn block(&mut self, name: impl Into<String>) -> BlockId {
        self.f().add_block(name)
    }

    /// Allocates a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        self.f().new_reg()
    }

    /// Selects the block subsequent emitters append to.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = Some(block);
    }

    /// Emits a raw opcode into the current block.
    pub fn emit(&mut self, op: Op) -> InstrId {
        let cur = self
            .current
            .expect("no current block: call switch_to first");
        self.f().append_op(cur, op)
    }

    // ---- moves and constants ----

    /// `dst = value`.
    pub fn iconst(&mut self, dst: Reg, value: i64) -> InstrId {
        self.emit(Op::Const { dst, value })
    }

    /// `dst = value` as an `f64` bit pattern.
    pub fn fconst(&mut self, dst: Reg, value: f64) -> InstrId {
        self.emit(Op::Const {
            dst,
            value: value.to_bits() as i64,
        })
    }

    /// `dst = src`.
    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) -> InstrId {
        self.emit(Op::Unary {
            dst,
            op: UnOp::Mov,
            src: src.into(),
        })
    }

    /// `dst = op src`.
    pub fn unary(&mut self, dst: Reg, op: UnOp, src: impl Into<Operand>) -> InstrId {
        self.emit(Op::Unary {
            dst,
            op,
            src: src.into(),
        })
    }

    // ---- arithmetic ----

    /// `dst = lhs op rhs`.
    pub fn binary(
        &mut self,
        dst: Reg,
        op: BinOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> InstrId {
        self.emit(Op::Binary {
            dst,
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        })
    }

    /// `dst = (lhs op rhs) ? 1 : 0`.
    pub fn cmp(
        &mut self,
        dst: Reg,
        op: CmpOp,
        lhs: impl Into<Operand>,
        rhs: impl Into<Operand>,
    ) -> InstrId {
        self.emit(Op::Cmp {
            dst,
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        })
    }

    // ---- memory ----

    /// `dst = memory[addr + offset]` with no memory annotation
    /// (conservatively analyzed).
    pub fn load(&mut self, dst: Reg, addr: Reg, offset: i64) -> InstrId {
        self.load_mem(dst, addr, offset, MemInfo::UNKNOWN)
    }

    /// `dst = memory[addr + offset]`, annotated as accessing `region`.
    pub fn load_region(&mut self, dst: Reg, addr: Reg, offset: i64, region: RegionId) -> InstrId {
        self.load_mem(dst, addr, offset, MemInfo::region(region))
    }

    /// `dst = memory[addr + offset]` with explicit memory-analysis facts.
    pub fn load_mem(&mut self, dst: Reg, addr: Reg, offset: i64, mem: MemInfo) -> InstrId {
        self.emit(Op::Load {
            dst,
            addr,
            offset,
            mem,
        })
    }

    /// `memory[addr + offset] = src` with no memory annotation.
    pub fn store(&mut self, src: impl Into<Operand>, addr: Reg, offset: i64) -> InstrId {
        self.store_mem(src, addr, offset, MemInfo::UNKNOWN)
    }

    /// `memory[addr + offset] = src`, annotated as accessing `region`.
    pub fn store_region(
        &mut self,
        src: impl Into<Operand>,
        addr: Reg,
        offset: i64,
        region: RegionId,
    ) -> InstrId {
        self.store_mem(src, addr, offset, MemInfo::region(region))
    }

    /// `memory[addr + offset] = src` with explicit memory-analysis facts.
    pub fn store_mem(
        &mut self,
        src: impl Into<Operand>,
        addr: Reg,
        offset: i64,
        mem: MemInfo,
    ) -> InstrId {
        self.emit(Op::Store {
            src: src.into(),
            addr,
            offset,
            mem,
        })
    }

    // ---- control ----

    /// Conditional branch on `cond != 0`.
    pub fn br(&mut self, cond: Reg, then_: BlockId, else_: BlockId) -> InstrId {
        self.emit(Op::Br { cond, then_, else_ })
    }

    /// Unconditional jump.
    pub fn jump(&mut self, target: BlockId) -> InstrId {
        self.emit(Op::Jump { target })
    }

    /// Return from the function.
    pub fn ret(&mut self) -> InstrId {
        self.emit(Op::Ret)
    }

    /// Halt the executing context.
    pub fn halt(&mut self) -> InstrId {
        self.emit(Op::Halt)
    }

    /// Direct call.
    pub fn call(&mut self, callee: FuncId) -> InstrId {
        self.emit(Op::Call { callee })
    }

    /// Indirect call through `target`.
    pub fn call_ind(&mut self, target: Reg) -> InstrId {
        self.emit(Op::CallInd { target })
    }

    // ---- queues ----

    /// `produce [queue] = src`.
    pub fn produce(&mut self, queue: QueueId, src: impl Into<Operand>) -> InstrId {
        self.emit(Op::Produce {
            queue,
            src: src.into(),
        })
    }

    /// `consume dst = [queue]`.
    pub fn consume(&mut self, dst: Reg, queue: QueueId) -> InstrId {
        self.emit(Op::Consume { queue, dst })
    }

    /// `produce.token [queue]`.
    pub fn produce_token(&mut self, queue: QueueId) -> InstrId {
        self.emit(Op::ProduceToken { queue })
    }

    /// `consume.token [queue]`.
    pub fn consume_token(&mut self, queue: QueueId) -> InstrId {
        self.emit(Op::ConsumeToken { queue })
    }

    /// `dst = DEPTH [queue]` — non-blocking queue-occupancy probe.
    pub fn queue_depth(&mut self, dst: Reg, queue: QueueId) -> InstrId {
        self.emit(Op::QueueDepth { queue, dst })
    }

    /// Nop.
    pub fn nop(&mut self) -> InstrId {
        self.emit(Op::Nop)
    }

    /// Finishes the function, registering it with the owning
    /// [`ProgramBuilder`] and returning its id.
    pub fn finish(mut self) -> FuncId {
        let f = self.func.take().expect("function already finished");
        self.pb.register(f)
    }

    /// Finishes the function into an already-built [`Program`] instead of
    /// the owning builder (used when extending a program after the fact).
    pub fn finish_into(mut self, program: &mut Program) -> FuncId {
        let f = self.func.take().expect("function already finished");
        program.add_function(f)
    }
}

macro_rules! binop_shorthand {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl FunctionBuilder<'_> {
            $(
                $(#[$doc])*
                pub fn $name(
                    &mut self,
                    dst: Reg,
                    lhs: impl Into<Operand>,
                    rhs: impl Into<Operand>,
                ) -> InstrId {
                    self.binary(dst, BinOp::$op, lhs, rhs)
                }
            )*
        }
    };
}

binop_shorthand! {
    /// `dst = lhs + rhs` (wrapping).
    add => Add,
    /// `dst = lhs - rhs` (wrapping).
    sub => Sub,
    /// `dst = lhs * rhs` (wrapping).
    mul => Mul,
    /// `dst = lhs / rhs` (0 on division by zero).
    div => Div,
    /// `dst = lhs % rhs` (0 on division by zero).
    rem => Rem,
    /// `dst = lhs & rhs`.
    and => And,
    /// `dst = lhs | rhs`.
    or => Or,
    /// `dst = lhs ^ rhs`.
    xor => Xor,
    /// `dst = lhs << rhs` (shift modulo 64).
    shl => Shl,
    /// `dst = lhs >> rhs` (arithmetic, shift modulo 64).
    shr => Shr,
    /// `dst = min(lhs, rhs)` (signed).
    min => Min,
    /// `dst = max(lhs, rhs)` (signed).
    max => Max,
    /// `dst = lhs + rhs` (f64).
    fadd => FAdd,
    /// `dst = lhs - rhs` (f64).
    fsub => FSub,
    /// `dst = lhs * rhs` (f64).
    fmul => FMul,
    /// `dst = lhs / rhs` (f64).
    fdiv => FDiv,
}

macro_rules! cmp_shorthand {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl FunctionBuilder<'_> {
            $(
                $(#[$doc])*
                pub fn $name(
                    &mut self,
                    dst: Reg,
                    lhs: impl Into<Operand>,
                    rhs: impl Into<Operand>,
                ) -> InstrId {
                    self.cmp(dst, CmpOp::$op, lhs, rhs)
                }
            )*
        }
    };
}

cmp_shorthand! {
    /// `dst = (lhs == rhs)`.
    cmp_eq => Eq,
    /// `dst = (lhs != rhs)`.
    cmp_ne => Ne,
    /// `dst = (lhs < rhs)` signed.
    cmp_lt => Lt,
    /// `dst = (lhs <= rhs)` signed.
    cmp_le => Le,
    /// `dst = (lhs > rhs)` signed.
    cmp_gt => Gt,
    /// `dst = (lhs >= rhs)` signed.
    cmp_ge => Ge,
    /// `dst = (lhs < rhs)` on f64 bit patterns.
    cmp_flt => FLt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_two_block_function() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let x = f.reg();
        let exit = f.block("exit");
        f.switch_to(e);
        f.iconst(x, 3);
        f.jump(exit);
        f.switch_to(exit);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 4);
        assert_eq!(p.function(main).num_blocks(), 2);
        assert_eq!(p.function(main).num_instrs(), 3);
        assert_eq!(p.initial_memory.len(), 4);
    }

    #[test]
    #[should_panic(expected = "no current block")]
    fn emitting_without_block_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("bad");
        let r = f.reg();
        f.iconst(r, 0);
    }

    #[test]
    fn operand_conversions() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.switch_to(e);
        let (a, b) = (f.reg(), f.reg());
        f.iconst(a, 1);
        f.add(b, a, 41); // Reg and i64 both convert to Operand
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 0);
        assert_eq!(p.function(main).num_instrs(), 3);
    }
}
