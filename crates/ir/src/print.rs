//! Human-readable printing of functions and programs.
//!
//! The format intentionally mirrors the paper's assembly-flavored listings
//! (Figure 2): one instruction per line, `PRODUCE [q2] = r2` /
//! `CONSUME r2 = [q2]` for flows, labeled basic blocks.

use std::fmt;

use crate::function::Function;
use crate::op::{BinOp, CmpOp, Op, Operand, UnOp};
use crate::program::Program;

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        };
        f.write_str(s)
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Mov => "mov",
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::IntToFloat => "itof",
            UnOp::FloatToInt => "ftoi",
        };
        f.write_str(s)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::FLt => "<f",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Const { dst, value } => write!(f, "{dst} = {value}"),
            Op::Unary { dst, op, src } => write!(f, "{dst} = {op} {src}"),
            Op::Binary { dst, op, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            Op::Cmp { dst, op, lhs, rhs } => write!(f, "{dst} = ({lhs} {op} {rhs})"),
            Op::Load {
                dst,
                addr,
                offset,
                mem,
            } => {
                write!(f, "{dst} = M[{addr}{offset:+}]")?;
                if let Some(r) = mem.region {
                    write!(f, " !{r}")?;
                }
                Ok(())
            }
            Op::Store {
                src,
                addr,
                offset,
                mem,
            } => {
                write!(f, "M[{addr}{offset:+}] = {src}")?;
                if let Some(r) = mem.region {
                    write!(f, " !{r}")?;
                }
                Ok(())
            }
            Op::Call { callee } => write!(f, "call {callee}"),
            Op::CallInd { target } => write!(f, "call.ind {target}"),
            Op::Br { cond, then_, else_ } => write!(f, "br {cond}, {then_}, {else_}"),
            Op::Jump { target } => write!(f, "jump {target}"),
            Op::Ret => f.write_str("ret"),
            Op::Halt => f.write_str("halt"),
            Op::Produce { queue, src } => write!(f, "PRODUCE [{queue}] = {src}"),
            Op::Consume { queue, dst } => write!(f, "CONSUME {dst} = [{queue}]"),
            Op::ProduceToken { queue } => write!(f, "PRODUCE.token [{queue}]"),
            Op::ConsumeToken { queue } => write!(f, "CONSUME.token [{queue}]"),
            Op::QueueDepth { dst, queue } => write!(f, "{dst} = DEPTH [{queue}]"),
            Op::Nop => f.write_str("nop"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "func {} (entry {}):", self.name, self.entry())?;
        for b in self.block_ids() {
            let block = self.block(b);
            writeln!(f, "{b} ({}):", block.name)?;
            for &i in block.instrs() {
                writeln!(f, "  {:<5} {}", format!("{i}:"), self.op(i))?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program: {} function(s), {} thread(s), {} queue(s), {} memory words",
            self.functions().len(),
            self.num_threads(),
            self.num_queues,
            self.initial_memory.len()
        )?;
        for (idx, entry) in self.thread_entries().iter().enumerate() {
            writeln!(f, "thread {idx} enters {entry}")?;
        }
        for func in self.functions() {
            writeln!(f)?;
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::{QueueId, Reg, RegionId};

    #[test]
    fn op_formats_match_paper_style() {
        let p = Op::Produce {
            queue: QueueId(2),
            src: Operand::Reg(Reg(2)),
        };
        assert_eq!(p.to_string(), "PRODUCE [q2] = r2");
        let c = Op::Consume {
            queue: QueueId(2),
            dst: Reg(2),
        };
        assert_eq!(c.to_string(), "CONSUME r2 = [q2]");
        let l = Op::Load {
            dst: Reg(3),
            addr: Reg(1),
            offset: 2,
            mem: crate::op::MemInfo::region(RegionId(0)),
        };
        assert_eq!(l.to_string(), "r3 = M[r1+2] !mem0");
    }

    #[test]
    fn function_display_contains_blocks_and_instrs() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let x = f.reg();
        f.switch_to(e);
        f.iconst(x, 5);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 0);
        let s = p.to_string();
        assert!(s.contains("func main"), "{s}");
        assert!(s.contains("r0 = 5"), "{s}");
        assert!(s.contains("halt"), "{s}");
    }
}
