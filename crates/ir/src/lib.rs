//! A small register-machine intermediate representation (IR) for the
//! Decoupled Software Pipelining (DSWP) reproduction.
//!
//! The MICRO 2005 DSWP paper operates inside the IMPACT compiler back-end on
//! predicated IA-64 assembly. This crate provides the equivalent substrate:
//! a RISC-like IR with
//!
//! * virtual registers holding 64-bit words (integers, or `f64` bit patterns
//!   for the floating-point opcodes),
//! * a control-flow graph of basic blocks per [`Function`],
//! * a flat, word-addressed shared memory per [`Program`],
//! * the paper's ISA extension: [`Op::Produce`] / [`Op::Consume`] (and their
//!   token forms) operating on the *synchronization array* queues
//!   (Section 2.1 of the paper).
//!
//! The crate also ships a [`FunctionBuilder`]/[`ProgramBuilder`] pair for
//! constructing programs, a structural [`verify_program`](verify::verify_program)
//! pass, a pretty-printer, and a single-context functional
//! [`Interpreter`](interp::Interpreter) used for baseline execution,
//! correctness oracles and block-frequency profiling.
//!
//! # Example
//!
//! ```
//! use dswp_ir::ProgramBuilder;
//!
//! // sum = 0; for i in 0..10 { sum += i }; mem[0] = sum
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main");
//! let (i, sum, limit, one) = (f.reg(), f.reg(), f.reg(), f.reg());
//! let entry = f.entry_block();
//! let header = f.block("header");
//! let body = f.block("body");
//! let exit = f.block("exit");
//!
//! f.switch_to(entry);
//! f.iconst(i, 0);
//! f.iconst(sum, 0);
//! f.iconst(limit, 10);
//! f.iconst(one, 1);
//! f.jump(header);
//!
//! f.switch_to(header);
//! let done = f.reg();
//! f.cmp_ge(done, i, limit);
//! f.br(done, exit, body);
//!
//! f.switch_to(body);
//! f.add(sum, sum, i);
//! f.add(i, i, one);
//! f.jump(header);
//!
//! f.switch_to(exit);
//! let base = f.reg();
//! f.iconst(base, 0);
//! f.store(sum, base, 0);
//! f.halt();
//! let main = f.finish();
//!
//! let program = pb.finish(main, 16);
//! let result = dswp_ir::interp::Interpreter::new(&program).run().unwrap();
//! assert_eq!(result.memory[0], 45);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod exec;
pub mod function;
pub mod interp;
pub mod latency;
pub mod op;
pub mod print;
pub mod program;
pub mod text;
pub mod types;
pub mod verify;

pub use builder::{FunctionBuilder, ProgramBuilder};
pub use function::{Block, Function};
pub use latency::LatencyTable;
pub use op::{BinOp, CmpOp, LatencyClass, Op, Operand, UnOp};
pub use program::Program;
pub use text::{parse_program, to_text, ParseError};
pub use types::{BlockId, FuncId, InstrId, QueueId, Reg, RegionId};
