//! Text serialization of whole programs: a readable assembler format that
//! round-trips through [`parse_program`].
//!
//! The format extends the [`Display`](std::fmt::Display) output with the
//! pieces a program needs to be reconstructed: the program header (threads,
//! queues, memory size), a sparse `memory` section, and affine
//! memory-analysis annotations. Example:
//!
//! ```text
//! program 1 threads 1 queues 0 memory 16
//! thread 0 = fn0
//!
//! memory {
//!   1: 42
//! }
//!
//! func main entry bb0 regs 3 {
//! bb0 entry:
//!   r0 = 1
//!   r1 = M[r0+0] !mem0 @affine(0, 1, 0)
//!   r2 = add r1, 41
//!   halt
//! }
//! ```

use std::fmt;
use std::fmt::Write as _;

use crate::function::Function;
use crate::op::{Affine, BinOp, CmpOp, MemInfo, Op, Operand, UnOp};
use crate::program::Program;
use crate::types::{BlockId, FuncId, QueueId, Reg, RegionId};

/// A parse failure, with 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending text.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serializes `program` to the round-trippable text format.
pub fn to_text(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "program {} threads {} queues {} memory {}",
        program.functions().len(),
        program.num_threads(),
        program.num_queues,
        program.initial_memory.len()
    );
    for (t, entry) in program.thread_entries().iter().enumerate() {
        let _ = writeln!(out, "thread {t} = {entry}");
    }

    let nonzero: Vec<(usize, i64)> = program
        .initial_memory
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v != 0)
        .map(|(a, &v)| (a, v))
        .collect();
    if !nonzero.is_empty() {
        let _ = writeln!(out, "\nmemory {{");
        for (a, v) in nonzero {
            let _ = writeln!(out, "  {a}: {v}");
        }
        let _ = writeln!(out, "}}");
    }

    for f in program.functions() {
        let _ = writeln!(
            out,
            "\nfunc {} entry {} regs {} {{",
            f.name,
            f.entry(),
            f.num_regs()
        );
        for b in f.block_ids() {
            let _ = writeln!(out, "{b} {}:", f.block(b).name);
            for &i in f.block(b).instrs() {
                let _ = writeln!(out, "  {}", op_to_text(f.op(i)));
            }
        }
        let _ = writeln!(out, "}}");
    }
    out
}

fn mem_suffix(mem: &MemInfo) -> String {
    let mut s = String::new();
    if let Some(r) = mem.region {
        let _ = write!(s, " !{r}");
    }
    if let Some(a) = mem.affine {
        let _ = write!(s, " @affine({}, {}, {})", a.iv, a.stride, a.phase);
    }
    s
}

fn op_to_text(op: &Op) -> String {
    match op {
        Op::Load {
            dst,
            addr,
            offset,
            mem,
        } => format!("{dst} = M[{addr}{offset:+}]{}", mem_suffix(mem)),
        Op::Store {
            src,
            addr,
            offset,
            mem,
        } => format!("M[{addr}{offset:+}] = {src}{}", mem_suffix(mem)),
        other => other.to_string(),
    }
}

/// Parses a program previously produced by [`to_text`] (or hand-written in
/// the same format).
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the offending line.
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    Parser::new(text).parse()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(n, l)| (n + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#') && !l.starts_with("//"))
            .collect();
        Parser { lines, pos: 0 }
    }

    fn err<T>(&self, line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line,
            message: msg.into(),
        })
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next_line(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn parse(mut self) -> Result<Program, ParseError> {
        // Header.
        let (ln, header) = self.next_line().ok_or(ParseError {
            line: 0,
            message: "empty input".into(),
        })?;
        let toks: Vec<&str> = header.split_whitespace().collect();
        let [_, nfuncs, _, nthreads, _, nqueues, _, nmem] = toks.as_slice() else {
            return self.err(ln, "expected `program N threads N queues N memory N`");
        };
        if toks[0] != "program" {
            return self.err(ln, "expected `program` header");
        }
        let nfuncs: usize = self.num(ln, nfuncs)?;
        let nthreads: usize = self.num(ln, nthreads)?;
        let nqueues: u32 = self.num(ln, nqueues)?;
        let nmem: usize = self.num(ln, nmem)?;

        // Thread entries.
        let mut entries = Vec::with_capacity(nthreads);
        for t in 0..nthreads {
            let (ln, line) = self.expect_line("thread entry")?;
            let toks: Vec<&str> = line.split_whitespace().collect();
            let [kw, idx, eq, f] = toks.as_slice() else {
                return self.err(ln, "expected `thread T = fnN`");
            };
            if *kw != "thread" || *eq != "=" || self.num::<usize>(ln, idx)? != t {
                return self.err(ln, "expected `thread T = fnN` in order");
            }
            entries.push(self.func_id(ln, f)?);
        }

        // Optional memory section.
        let mut memory = vec![0i64; nmem];
        if let Some((_, l)) = self.peek() {
            if l == "memory {" {
                self.pos += 1;
                loop {
                    let (ln, l) = self.expect_line("memory entry or `}`")?;
                    if l == "}" {
                        break;
                    }
                    let Some((a, v)) = l.split_once(':') else {
                        return self.err(ln, "expected `addr: value`");
                    };
                    let a: usize = self.num(ln, a.trim())?;
                    let v: i64 = self.num(ln, v.trim())?;
                    if a >= memory.len() {
                        return self.err(ln, format!("address {a} beyond memory size {nmem}"));
                    }
                    memory[a] = v;
                }
            }
        }

        // Functions.
        let mut functions = Vec::with_capacity(nfuncs);
        for _ in 0..nfuncs {
            functions.push(self.parse_function()?);
        }
        if let Some((ln, l)) = self.peek() {
            return self.err(ln, format!("unexpected trailing content `{l}`"));
        }

        let Some((&first, rest)) = entries.split_first() else {
            return self.err(0, "program needs at least one thread");
        };
        let mut p = Program::new(functions, first, memory);
        p.num_queues = nqueues;
        for &e in rest {
            p.add_thread(e);
        }
        Ok(p)
    }

    fn parse_function(&mut self) -> Result<Function, ParseError> {
        let (ln, line) = self.expect_line("function header")?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        let [kw, name, _entry_kw, entry, _regs_kw, regs, brace] = toks.as_slice() else {
            return self.err(ln, "expected `func NAME entry bbN regs N {`");
        };
        if *kw != "func" || *brace != "{" {
            return self.err(ln, "expected `func NAME entry bbN regs N {`");
        }
        let entry = self.block_id(ln, entry)?;
        let regs: u32 = self.num(ln, regs)?;
        let mut f = Function::new(*name);
        f.ensure_reg(Reg(regs.saturating_sub(1)));

        let mut current: Option<BlockId> = None;
        loop {
            let (ln, l) = self.expect_line("block, instruction, or `}`")?;
            if l == "}" {
                break;
            }
            if let Some(rest) = l.strip_prefix("bb") {
                // Block header: `bbN name:`
                let Some(stripped) = rest.strip_suffix(':') else {
                    return self.err(ln, "expected block header `bbN name:`");
                };
                let (idx, name) = match stripped.split_once(' ') {
                    Some((i, n)) => (i, n.trim()),
                    None => (stripped, ""),
                };
                let idx: usize = self.num(ln, idx)?;
                if idx != f.num_blocks() {
                    return self.err(
                        ln,
                        format!("blocks must appear in order; expected bb{}", f.num_blocks()),
                    );
                }
                current = Some(f.add_block(name));
                continue;
            }
            let Some(block) = current else {
                return self.err(ln, "instruction before any block header");
            };
            let op = self.parse_op(ln, l)?;
            f.append_op(block, op);
        }
        if entry.index() >= f.num_blocks() {
            return self.err(ln, "entry block out of range");
        }
        f.set_entry(entry);
        Ok(f)
    }

    fn parse_op(&self, ln: usize, l: &str) -> Result<Op, ParseError> {
        // Strip an optional leading `iN:` tag (Display output carries one).
        let l = match l.split_once(':') {
            Some((tag, rest))
                if tag.starts_with('i') && tag[1..].chars().all(|c| c.is_ascii_digit()) =>
            {
                rest.trim()
            }
            _ => l,
        };

        // Keyword-led forms first.
        if l == "ret" {
            return Ok(Op::Ret);
        }
        if l == "halt" {
            return Ok(Op::Halt);
        }
        if l == "nop" {
            return Ok(Op::Nop);
        }
        if let Some(rest) = l.strip_prefix("jump ") {
            return Ok(Op::Jump {
                target: self.block_id(ln, rest.trim())?,
            });
        }
        if let Some(rest) = l.strip_prefix("br ") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            let [c, t, e] = parts.as_slice() else {
                return self.err(ln, "expected `br rC, bbT, bbE`");
            };
            return Ok(Op::Br {
                cond: self.reg(ln, c)?,
                then_: self.block_id(ln, t)?,
                else_: self.block_id(ln, e)?,
            });
        }
        if let Some(rest) = l.strip_prefix("call.ind ") {
            return Ok(Op::CallInd {
                target: self.reg(ln, rest.trim())?,
            });
        }
        if let Some(rest) = l.strip_prefix("call ") {
            return Ok(Op::Call {
                callee: self.func_id(ln, rest.trim())?,
            });
        }
        if let Some(rest) = l.strip_prefix("PRODUCE.token ") {
            return Ok(Op::ProduceToken {
                queue: self.queue(ln, rest.trim())?,
            });
        }
        if let Some(rest) = l.strip_prefix("CONSUME.token ") {
            return Ok(Op::ConsumeToken {
                queue: self.queue(ln, rest.trim())?,
            });
        }
        if let Some(rest) = l.strip_prefix("PRODUCE ") {
            let Some((q, src)) = rest.split_once('=') else {
                return self.err(ln, "expected `PRODUCE [qN] = src`");
            };
            return Ok(Op::Produce {
                queue: self.queue(ln, q.trim())?,
                src: self.operand(ln, src.trim())?,
            });
        }
        if let Some(rest) = l.strip_prefix("CONSUME ") {
            let Some((dst, q)) = rest.split_once('=') else {
                return self.err(ln, "expected `CONSUME rN = [qN]`");
            };
            return Ok(Op::Consume {
                queue: self.queue(ln, q.trim())?,
                dst: self.reg(ln, dst.trim())?,
            });
        }

        // Store: `M[rA+O] = src [!memR] [@affine(..)]`.
        if l.starts_with("M[") {
            let Some((lhs, rhs)) = l.split_once('=') else {
                return self.err(ln, "expected `M[rA+O] = src`");
            };
            let (addr, offset) = self.mem_ref(ln, lhs.trim())?;
            let (src, mem) = self.value_and_mem(ln, rhs.trim())?;
            return Ok(Op::Store {
                src,
                addr,
                offset,
                mem,
            });
        }

        // Everything else: `rD = ...`.
        let Some((dst, rhs)) = l.split_once('=') else {
            return self.err(ln, format!("unrecognized instruction `{l}`"));
        };
        let dst = self.reg(ln, dst.trim())?;
        let rhs = rhs.trim();

        if rhs.starts_with("M[") {
            let (mem_part, info) = self.split_mem_suffix(ln, rhs)?;
            let (addr, offset) = self.mem_ref(ln, mem_part)?;
            return Ok(Op::Load {
                dst,
                addr,
                offset,
                mem: info,
            });
        }
        if let Some(q) = rhs.strip_prefix("DEPTH ") {
            return Ok(Op::QueueDepth {
                dst,
                queue: self.queue(ln, q.trim())?,
            });
        }
        if rhs.starts_with('(') && rhs.ends_with(')') {
            // Cmp: `(a <op> b)`.
            let inner = &rhs[1..rhs.len() - 1];
            for (sym, op) in [
                ("==", CmpOp::Eq),
                ("!=", CmpOp::Ne),
                ("<=", CmpOp::Le),
                (">=", CmpOp::Ge),
                ("<f", CmpOp::FLt),
                ("<", CmpOp::Lt),
                (">", CmpOp::Gt),
            ] {
                if let Some((a, b)) = inner.split_once(&format!(" {sym} ")) {
                    return Ok(Op::Cmp {
                        dst,
                        op,
                        lhs: self.operand(ln, a.trim())?,
                        rhs: self.operand(ln, b.trim())?,
                    });
                }
            }
            return self.err(ln, format!("unrecognized comparison `{rhs}`"));
        }
        let toks: Vec<&str> = rhs.split_whitespace().collect();
        match toks.as_slice() {
            [v] => {
                // Const or bare mov of an operand.
                match self.operand(ln, v)? {
                    Operand::Imm(value) => Ok(Op::Const { dst, value }),
                    src @ Operand::Reg(_) => Ok(Op::Unary {
                        dst,
                        op: UnOp::Mov,
                        src,
                    }),
                }
            }
            [un, src] => {
                let op = match *un {
                    "mov" => UnOp::Mov,
                    "neg" => UnOp::Neg,
                    "not" => UnOp::Not,
                    "itof" => UnOp::IntToFloat,
                    "ftoi" => UnOp::FloatToInt,
                    other => return self.err(ln, format!("unknown unary op `{other}`")),
                };
                Ok(Op::Unary {
                    dst,
                    op,
                    src: self.operand(ln, src)?,
                })
            }
            [bin, a, b] => {
                let a = a.trim_end_matches(',');
                let op = match *bin {
                    "add" => BinOp::Add,
                    "sub" => BinOp::Sub,
                    "mul" => BinOp::Mul,
                    "div" => BinOp::Div,
                    "rem" => BinOp::Rem,
                    "and" => BinOp::And,
                    "or" => BinOp::Or,
                    "xor" => BinOp::Xor,
                    "shl" => BinOp::Shl,
                    "shr" => BinOp::Shr,
                    "min" => BinOp::Min,
                    "max" => BinOp::Max,
                    "fadd" => BinOp::FAdd,
                    "fsub" => BinOp::FSub,
                    "fmul" => BinOp::FMul,
                    "fdiv" => BinOp::FDiv,
                    other => return self.err(ln, format!("unknown binary op `{other}`")),
                };
                Ok(Op::Binary {
                    dst,
                    op,
                    lhs: self.operand(ln, a)?,
                    rhs: self.operand(ln, b)?,
                })
            }
            _ => self.err(ln, format!("unrecognized instruction `{l}`")),
        }
    }

    /// Parses the `!memR @affine(..)` annotation tail.
    fn parse_annotations(&self, ln: usize, rest: &str) -> Result<MemInfo, ParseError> {
        let mut info = MemInfo::UNKNOWN;
        // `@affine(a, b, c)` contains spaces; re-join its pieces.
        let normalized = rest.replace(", ", ",");
        for tok in normalized.split_whitespace() {
            if let Some(r) = tok.strip_prefix("!mem") {
                info.region = Some(RegionId(self.num(ln, r)?));
            } else if let Some(a) = tok.strip_prefix("@affine(") {
                let a = a.trim_end_matches(')');
                let parts: Vec<&str> = a.split(',').map(str::trim).collect();
                let [iv, stride, phase] = parts.as_slice() else {
                    return self.err(ln, "expected `@affine(iv, stride, phase)`");
                };
                info.affine = Some(Affine {
                    iv: self.num(ln, iv)?,
                    stride: self.num(ln, stride)?,
                    phase: self.num(ln, phase)?,
                });
            } else {
                return self.err(ln, format!("unknown memory annotation `{tok}`"));
            }
        }
        Ok(info)
    }

    /// Splits `M[...] !memR @affine(..)` into the `M[...]` part and the
    /// parsed annotations.
    fn split_mem_suffix<'b>(
        &self,
        ln: usize,
        s: &'b str,
    ) -> Result<(&'b str, MemInfo), ParseError> {
        let (mem_part, rest) = match s.find(']') {
            Some(k) => (&s[..=k], s[k + 1..].trim()),
            None => return self.err(ln, "missing `]` in memory operand"),
        };
        Ok((mem_part, self.parse_annotations(ln, rest)?))
    }

    /// Parses `M[rA+O]` / `M[rA-O]`.
    fn mem_ref(&self, ln: usize, s: &str) -> Result<(Reg, i64), ParseError> {
        let inner = s
            .strip_prefix("M[")
            .and_then(|x| x.strip_suffix(']'))
            .ok_or(ParseError {
                line: ln,
                message: format!("expected `M[rA±O]`, found `{s}`"),
            })?;
        let split = inner
            .char_indices()
            .skip(1)
            .find(|&(_, c)| c == '+' || c == '-')
            .map(|(k, _)| k);
        let Some(k) = split else {
            return self.err(ln, "memory operand needs a signed offset");
        };
        let addr = self.reg(ln, &inner[..k])?;
        let offset: i64 = self.num(ln, &inner[k..])?;
        Ok((addr, offset))
    }

    /// Parses `src !memR @affine(..)` for stores.
    fn value_and_mem(&self, ln: usize, s: &str) -> Result<(Operand, MemInfo), ParseError> {
        let mut it = s.splitn(2, char::is_whitespace);
        let v = it.next().ok_or(ParseError {
            line: ln,
            message: "missing store value".into(),
        })?;
        let info = self.parse_annotations(ln, it.next().unwrap_or(""))?;
        Ok((self.operand(ln, v)?, info))
    }

    fn expect_line(&mut self, what: &str) -> Result<(usize, &'a str), ParseError> {
        // On EOF, point at the last line of input rather than a
        // nonsense sentinel: truncated files are a common hand-editing
        // mistake and the report should say where the text stopped.
        let last = self.lines.last().map_or(0, |&(n, _)| n);
        self.next_line().ok_or(ParseError {
            line: last,
            message: format!("unexpected end of input, expected {what}"),
        })
    }

    fn num<T: std::str::FromStr>(&self, ln: usize, s: &str) -> Result<T, ParseError> {
        s.parse().map_err(|_| ParseError {
            line: ln,
            message: format!("expected a number, found `{s}`"),
        })
    }

    fn reg(&self, ln: usize, s: &str) -> Result<Reg, ParseError> {
        s.strip_prefix('r')
            .and_then(|x| x.parse().ok())
            .map(Reg)
            .ok_or(ParseError {
                line: ln,
                message: format!("expected a register `rN`, found `{s}`"),
            })
    }

    fn operand(&self, ln: usize, s: &str) -> Result<Operand, ParseError> {
        let s = s.trim_end_matches(',');
        if s.starts_with('r') && s[1..].chars().all(|c| c.is_ascii_digit()) {
            Ok(Operand::Reg(self.reg(ln, s)?))
        } else {
            Ok(Operand::Imm(self.num(ln, s)?))
        }
    }

    fn block_id(&self, ln: usize, s: &str) -> Result<BlockId, ParseError> {
        s.strip_prefix("bb")
            .and_then(|x| x.parse().ok())
            .map(BlockId)
            .ok_or(ParseError {
                line: ln,
                message: format!("expected a block `bbN`, found `{s}`"),
            })
    }

    fn func_id(&self, ln: usize, s: &str) -> Result<FuncId, ParseError> {
        s.strip_prefix("fn")
            .and_then(|x| x.parse().ok())
            .map(FuncId)
            .ok_or(ParseError {
                line: ln,
                message: format!("expected a function `fnN`, found `{s}`"),
            })
    }

    fn queue(&self, ln: usize, s: &str) -> Result<QueueId, ParseError> {
        s.strip_prefix("[q")
            .and_then(|x| x.strip_suffix(']'))
            .or_else(|| s.strip_prefix('q'))
            .and_then(|x| x.parse().ok())
            .map(QueueId)
            .ok_or(ParseError {
                line: ln,
                message: format!("expected a queue `[qN]`, found `{s}`"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::verify::verify_program;

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let h = f.block("header");
        let x = f.block("exit");
        let (i, n, done, v, base) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(i, 0);
        f.iconst(n, 5);
        f.iconst(base, 0);
        f.jump(h);
        f.switch_to(h);
        f.cmp_ge(done, i, n);
        f.load_mem(v, i, 8, MemInfo::affine(RegionId(0), 0, 1, 0));
        f.add(v, v, 1);
        f.store_region(v, i, 8, RegionId(0));
        f.add(i, i, 1);
        f.br(done, x, h);
        f.switch_to(x);
        f.store(i, base, 0);
        f.halt();
        let main = f.finish();
        let mut mem = vec![0i64; 16];
        for (k, slot) in mem.iter_mut().enumerate().take(13).skip(8) {
            *slot = k as i64;
        }
        pb.finish_with_memory(main, mem)
    }

    #[test]
    fn round_trip_preserves_text_and_semantics() {
        let p = sample();
        let text = to_text(&p);
        let q = parse_program(&text).unwrap();
        verify_program(&q).unwrap();
        assert_eq!(to_text(&q), text, "text fixed point");
        let a = crate::interp::Interpreter::new(&p).run().unwrap();
        let b = crate::interp::Interpreter::new(&q).run().unwrap();
        assert_eq!(a.memory, b.memory);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn parses_hand_written_program() {
        let text = "\
program 1 threads 1 queues 0 memory 4
thread 0 = fn0
memory {
  1: 40
}
func main entry bb0 regs 3 {
bb0 entry:
  r0 = 1
  r1 = M[r0+0]
  r2 = add r1, 2
  M[r0+1] = r2
  halt
}
";
        let p = parse_program(text).unwrap();
        verify_program(&p).unwrap();
        let r = crate::interp::Interpreter::new(&p).run().unwrap();
        assert_eq!(r.memory[2], 42);
    }

    #[test]
    fn queue_instructions_round_trip() {
        let text = "\
program 2 threads 2 queues 2 memory 2
thread 0 = fn0
thread 1 = fn1
func producer entry bb0 regs 1 {
bb0 entry:
  r0 = 7
  PRODUCE [q0] = r0
  PRODUCE.token [q1]
  halt
}
func consumer entry bb0 regs 2 {
bb0 entry:
  CONSUME r0 = [q0]
  CONSUME.token [q1]
  r1 = 0
  M[r1+0] = r0
  halt
}
";
        let p = parse_program(text).unwrap();
        verify_program(&p).unwrap();
        let rt = parse_program(&to_text(&p)).unwrap();
        assert_eq!(to_text(&rt), to_text(&p));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "\
program 1 threads 1 queues 0 memory 0
thread 0 = fn0
func main entry bb0 regs 1 {
bb0 entry:
  r0 = frobnicate r0
  halt
}
";
        let err = parse_program(text).unwrap_err();
        assert_eq!(err.line, 5);
        assert!(err.message.contains("frobnicate"), "{err}");
    }

    #[test]
    fn truncated_input_reports_last_line() {
        let text = "\
program 1 threads 1 queues 0 memory 0
thread 0 = fn0
func main entry bb0 regs 1 {
bb0 entry:
  r0 = 1
";
        let err = parse_program(text).unwrap_err();
        assert!(err.message.contains("end of input"), "{err}");
        assert_eq!(err.line, 5, "points at the last line, not a sentinel");
    }

    #[test]
    fn rejects_out_of_order_blocks() {
        let text = "\
program 1 threads 1 queues 0 memory 0
thread 0 = fn0
func main entry bb0 regs 1 {
bb1 entry:
  halt
}
";
        let err = parse_program(text).unwrap_err();
        assert!(err.message.contains("order"), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\
# a comment
program 1 threads 1 queues 0 memory 1

// another comment
thread 0 = fn0
func main entry bb0 regs 1 {
bb0 entry:
  r0 = 9
  M[r0-9] = r0
  halt
}
";
        let p = parse_program(text).unwrap();
        let r = crate::interp::Interpreter::new(&p).run().unwrap();
        assert_eq!(r.memory[0], 9);
    }
}
