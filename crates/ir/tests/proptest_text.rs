//! Property tests for the text format: serialize → parse → serialize must
//! be a fixed point, and the parsed program must behave identically, for
//! randomly generated programs covering every opcode family.

use proptest::prelude::*;

use dswp_ir::interp::Interpreter;
use dswp_ir::op::MemInfo;
use dswp_ir::verify::verify_program;
use dswp_ir::{parse_program, to_text, BinOp, CmpOp, Program, ProgramBuilder, RegionId, UnOp};

const REGS: usize = 5;
const MEM: usize = 24;

#[derive(Clone, Debug)]
enum GenOp {
    Const { d: u8, v: i64 },
    Un { d: u8, a: u8, k: u8 },
    Bin { d: u8, a: u8, b: u8, k: u8 },
    BinImm { d: u8, a: u8, imm: i64, k: u8 },
    Cmp { d: u8, a: u8, b: u8, k: u8 },
    Load { d: u8, off: u8, region: Option<u8>, affine: bool },
    Store { s: u8, off: u8, region: Option<u8> },
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    let r = 0u8..REGS as u8;
    prop_oneof![
        (r.clone(), -100i64..100).prop_map(|(d, v)| GenOp::Const { d, v }),
        (r.clone(), r.clone(), 0u8..5).prop_map(|(d, a, k)| GenOp::Un { d, a, k }),
        (r.clone(), r.clone(), r.clone(), 0u8..16)
            .prop_map(|(d, a, b, k)| GenOp::Bin { d, a, b, k }),
        (r.clone(), r.clone(), -9i64..9, 0u8..16)
            .prop_map(|(d, a, imm, k)| GenOp::BinImm { d, a, imm, k }),
        (r.clone(), r.clone(), r.clone(), 0u8..7)
            .prop_map(|(d, a, b, k)| GenOp::Cmp { d, a, b, k }),
        (r.clone(), 0u8..8, prop::option::of(0u8..3), any::<bool>())
            .prop_map(|(d, off, region, affine)| GenOp::Load { d, off, region, affine }),
        (r, 0u8..8, prop::option::of(0u8..3))
            .prop_map(|(s, off, region)| GenOp::Store { s, off, region }),
    ]
}

fn build(ops: &[GenOp], mem_seed: &[i64]) -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let tail = f.block("tail");
    let regs: Vec<_> = (0..REGS).map(|_| f.reg()).collect();
    let base = f.reg();
    f.switch_to(e);
    f.iconst(base, 8);
    for (k, &r) in regs.iter().enumerate() {
        f.iconst(r, k as i64);
    }
    for op in ops {
        match *op {
            GenOp::Const { d, v } => {
                f.iconst(regs[d as usize], v);
            }
            GenOp::Un { d, a, k } => {
                let uns = [UnOp::Mov, UnOp::Neg, UnOp::Not, UnOp::IntToFloat, UnOp::FloatToInt];
                f.unary(regs[d as usize], uns[k as usize % 5], regs[a as usize]);
            }
            GenOp::Bin { d, a, b, k } => {
                use BinOp::*;
                let bins = [
                    Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Min, Max, FAdd, FSub,
                    FMul, FDiv,
                ];
                f.binary(
                    regs[d as usize],
                    bins[k as usize % bins.len()],
                    regs[a as usize],
                    regs[b as usize],
                );
            }
            GenOp::BinImm { d, a, imm, k } => {
                use BinOp::*;
                let bins = [
                    Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Min, Max, FAdd, FSub,
                    FMul, FDiv,
                ];
                f.binary(
                    regs[d as usize],
                    bins[k as usize % bins.len()],
                    regs[a as usize],
                    imm,
                );
            }
            GenOp::Cmp { d, a, b, k } => {
                use CmpOp::*;
                let cmps = [Eq, Ne, Lt, Le, Gt, Ge, FLt];
                f.cmp(
                    regs[d as usize],
                    cmps[k as usize % cmps.len()],
                    regs[a as usize],
                    regs[b as usize],
                );
            }
            GenOp::Load { d, off, region, affine } => {
                let mem = MemInfo {
                    region: region.map(|r| RegionId(r as u32)),
                    affine: affine.then_some(dswp_ir::op::Affine {
                        iv: 0,
                        stride: 1,
                        phase: off as i64,
                    }),
                };
                f.load_mem(regs[d as usize], base, off as i64, mem);
            }
            GenOp::Store { s, off, region } => {
                let mem = MemInfo {
                    region: region.map(|r| RegionId(r as u32)),
                    affine: None,
                };
                f.store_mem(regs[s as usize], base, off as i64, mem);
            }
        }
    }
    f.jump(tail);
    f.switch_to(tail);
    let out = f.reg();
    f.iconst(out, 0);
    for (k, &r) in regs.iter().enumerate() {
        f.store(r, out, k as i64);
    }
    f.halt();
    let main = f.finish();
    let mut memory = vec![0i64; MEM];
    for (k, slot) in memory.iter_mut().enumerate().skip(8) {
        *slot = mem_seed[k % mem_seed.len()];
    }
    pb.finish_with_memory(main, memory)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn text_round_trip_is_a_fixed_point_and_preserves_behavior(
        ops in prop::collection::vec(gen_op(), 1..24),
        mem_seed in prop::collection::vec(-1000i64..1000, 1..6),
    ) {
        let p = build(&ops, &mem_seed);
        verify_program(&p).expect("generated program verifies");
        let text = to_text(&p);
        let q = parse_program(&text).expect("round-trip parses");
        verify_program(&q).expect("parsed program verifies");
        prop_assert_eq!(to_text(&q), text, "fixed point");

        let a = Interpreter::new(&p).run().expect("original runs");
        let b = Interpreter::new(&q).run().expect("reparsed runs");
        prop_assert_eq!(a.memory, b.memory);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.entry_regs, b.entry_regs);
    }
}
