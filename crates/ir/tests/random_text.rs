//! Randomized tests for the text format: serialize → parse → serialize must
//! be a fixed point, and the parsed program must behave identically, for
//! randomly generated programs covering every opcode family.
//!
//! Cases are enumerated from deterministic seeds (see `dswp-testutil`).

use dswp_ir::interp::Interpreter;
use dswp_ir::op::MemInfo;
use dswp_ir::verify::verify_program;
use dswp_ir::{parse_program, to_text, BinOp, CmpOp, Program, ProgramBuilder, RegionId, UnOp};
use dswp_testutil::{cases, Rng};

const REGS: usize = 5;
const MEM: usize = 24;

#[derive(Clone, Debug)]
enum GenOp {
    Const {
        d: u8,
        v: i64,
    },
    Un {
        d: u8,
        a: u8,
        k: u8,
    },
    Bin {
        d: u8,
        a: u8,
        b: u8,
        k: u8,
    },
    BinImm {
        d: u8,
        a: u8,
        imm: i64,
        k: u8,
    },
    Cmp {
        d: u8,
        a: u8,
        b: u8,
        k: u8,
    },
    Load {
        d: u8,
        off: u8,
        region: Option<u8>,
        affine: bool,
    },
    Store {
        s: u8,
        off: u8,
        region: Option<u8>,
    },
}

fn gen_op(rng: &mut Rng) -> GenOp {
    let r = |rng: &mut Rng| rng.below(REGS) as u8;
    match rng.below(7) {
        0 => GenOp::Const {
            d: r(rng),
            v: rng.range_i64(-100, 100),
        },
        1 => GenOp::Un {
            d: r(rng),
            a: r(rng),
            k: rng.below(5) as u8,
        },
        2 => GenOp::Bin {
            d: r(rng),
            a: r(rng),
            b: r(rng),
            k: rng.below(16) as u8,
        },
        3 => GenOp::BinImm {
            d: r(rng),
            a: r(rng),
            imm: rng.range_i64(-9, 9),
            k: rng.below(16) as u8,
        },
        4 => GenOp::Cmp {
            d: r(rng),
            a: r(rng),
            b: r(rng),
            k: rng.below(7) as u8,
        },
        5 => GenOp::Load {
            d: r(rng),
            off: rng.below(8) as u8,
            region: rng.bool().then(|| rng.below(3) as u8),
            affine: rng.bool(),
        },
        _ => GenOp::Store {
            s: r(rng),
            off: rng.below(8) as u8,
            region: rng.bool().then(|| rng.below(3) as u8),
        },
    }
}

fn build(ops: &[GenOp], mem_seed: &[i64]) -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let tail = f.block("tail");
    let regs: Vec<_> = (0..REGS).map(|_| f.reg()).collect();
    let base = f.reg();
    f.switch_to(e);
    f.iconst(base, 8);
    for (k, &r) in regs.iter().enumerate() {
        f.iconst(r, k as i64);
    }
    for op in ops {
        match *op {
            GenOp::Const { d, v } => {
                f.iconst(regs[d as usize], v);
            }
            GenOp::Un { d, a, k } => {
                let uns = [
                    UnOp::Mov,
                    UnOp::Neg,
                    UnOp::Not,
                    UnOp::IntToFloat,
                    UnOp::FloatToInt,
                ];
                f.unary(regs[d as usize], uns[k as usize % 5], regs[a as usize]);
            }
            GenOp::Bin { d, a, b, k } => {
                use BinOp::*;
                let bins = [
                    Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Min, Max, FAdd, FSub, FMul,
                    FDiv,
                ];
                f.binary(
                    regs[d as usize],
                    bins[k as usize % bins.len()],
                    regs[a as usize],
                    regs[b as usize],
                );
            }
            GenOp::BinImm { d, a, imm, k } => {
                use BinOp::*;
                let bins = [
                    Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr, Min, Max, FAdd, FSub, FMul,
                    FDiv,
                ];
                f.binary(
                    regs[d as usize],
                    bins[k as usize % bins.len()],
                    regs[a as usize],
                    imm,
                );
            }
            GenOp::Cmp { d, a, b, k } => {
                use CmpOp::*;
                let cmps = [Eq, Ne, Lt, Le, Gt, Ge, FLt];
                f.cmp(
                    regs[d as usize],
                    cmps[k as usize % cmps.len()],
                    regs[a as usize],
                    regs[b as usize],
                );
            }
            GenOp::Load {
                d,
                off,
                region,
                affine,
            } => {
                let mem = MemInfo {
                    region: region.map(|r| RegionId(r as u32)),
                    affine: affine.then_some(dswp_ir::op::Affine {
                        iv: 0,
                        stride: 1,
                        phase: off as i64,
                    }),
                };
                f.load_mem(regs[d as usize], base, off as i64, mem);
            }
            GenOp::Store { s, off, region } => {
                let mem = MemInfo {
                    region: region.map(|r| RegionId(r as u32)),
                    affine: None,
                };
                f.store_mem(regs[s as usize], base, off as i64, mem);
            }
        }
    }
    f.jump(tail);
    f.switch_to(tail);
    let out = f.reg();
    f.iconst(out, 0);
    for (k, &r) in regs.iter().enumerate() {
        f.store(r, out, k as i64);
    }
    f.halt();
    let main = f.finish();
    let mut memory = vec![0i64; MEM];
    for (k, slot) in memory.iter_mut().enumerate().skip(8) {
        *slot = mem_seed[k % mem_seed.len()];
    }
    pb.finish_with_memory(main, memory)
}

#[test]
fn text_round_trip_is_a_fixed_point_and_preserves_behavior() {
    for seed in 0..cases(96) as u64 {
        let mut rng = Rng::new(seed);
        let nops = rng.range(1, 24);
        let ops = rng.vec(nops, gen_op);
        let nseed = rng.range(1, 6);
        let mem_seed = rng.vec(nseed, |r| r.range_i64(-1000, 1000));

        let p = build(&ops, &mem_seed);
        verify_program(&p).expect("generated program verifies");
        let text = to_text(&p);
        let q = parse_program(&text).expect("round-trip parses");
        verify_program(&q).expect("parsed program verifies");
        assert_eq!(to_text(&q), text, "fixed point (seed {seed})");

        let a = Interpreter::new(&p).run().expect("original runs");
        let b = Interpreter::new(&q).run().expect("reparsed runs");
        assert_eq!(a.memory, b.memory, "seed {seed}");
        assert_eq!(a.steps, b.steps, "seed {seed}");
        assert_eq!(a.entry_regs, b.entry_regs, "seed {seed}");
    }
}
