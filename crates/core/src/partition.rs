//! Thread partitioning of the `DAG_SCC` — step 2 of the DSWP algorithm.
//!
//! Implements
//!
//! * [`Partitioning`] with the validity conditions of **Definition 1**
//!   (Section 2.2.2 of the paper): at most `t` threads, every SCC in exactly
//!   one partition, and every `DAG_SCC` arc flowing forward;
//! * the **TPP load-balance heuristic**: repeatedly pick, among SCCs whose
//!   predecessors are all assigned, the one with the largest estimated
//!   cycles, breaking ties toward candidates that reduce the current
//!   partition's outgoing dependences; close a partition when it reaches
//!   `total / threads`;
//! * the **profitability gate**: reject partitionings whose estimated
//!   pipeline time (including produce/consume costs) does not beat
//!   single-threaded execution;
//! * an exhaustive **two-thread enumerator** over down-sets of the
//!   `DAG_SCC`, used for the paper's "best manually directed partition"
//!   bars (Figure 6(a)).

use dswp_analysis::DagScc;

use crate::error::DswpError;
use crate::estimate::SccCosts;

/// An assignment of every `DAG_SCC` component to a pipeline stage (thread).
///
/// Stage 0 is the main thread (the paper's `P1`); stages must respect
/// Definition 1, checked by [`Partitioning::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partitioning {
    /// `assignment[scc_index] = thread`.
    pub assignment: Vec<usize>,
    /// Number of threads (= number of pipeline stages).
    pub num_threads: usize,
}

impl Partitioning {
    /// Builds a partitioning from per-SCC thread indices.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` mentions a thread ≥ `num_threads`.
    pub fn new(assignment: Vec<usize>, num_threads: usize) -> Self {
        assert!(
            assignment.iter().all(|&t| t < num_threads),
            "assignment mentions an out-of-range thread"
        );
        Partitioning {
            assignment,
            num_threads,
        }
    }

    /// The single-threaded (identity) partitioning.
    pub fn single(num_sccs: usize) -> Self {
        Partitioning {
            assignment: vec![0; num_sccs],
            num_threads: 1,
        }
    }

    /// SCC indices assigned to `thread`.
    pub fn sccs_of(&self, thread: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t == thread)
            .map(|(i, _)| i)
            .collect()
    }

    /// Checks Definition 1 against `dag` for a machine with
    /// `available_threads` hardware contexts.
    ///
    /// # Errors
    ///
    /// Returns [`DswpError::TooManyThreads`] or
    /// [`DswpError::InvalidPartition`] on violation.
    pub fn validate(&self, dag: &DagScc, available_threads: usize) -> Result<(), DswpError> {
        if self.num_threads > available_threads {
            return Err(DswpError::TooManyThreads {
                requested: self.num_threads,
                available: available_threads,
            });
        }
        if self.assignment.len() != dag.len() {
            return Err(DswpError::InvalidPartition(format!(
                "assignment covers {} SCCs, DAG has {}",
                self.assignment.len(),
                dag.len()
            )));
        }
        for t in 0..self.num_threads {
            if !self.assignment.contains(&t) {
                return Err(DswpError::InvalidPartition(format!("thread {t} is empty")));
            }
        }
        for &(a, b) in &dag.arcs {
            if self.assignment[a] > self.assignment[b] {
                return Err(DswpError::InvalidPartition(format!(
                    "arc {a} → {b} flows backward (thread {} → {})",
                    self.assignment[a], self.assignment[b]
                )));
            }
        }
        Ok(())
    }
}

/// Options for the TPP heuristic.
#[derive(Clone, Copy, Debug)]
pub struct TppOptions {
    /// Maximum number of threads the target can execute simultaneously
    /// (the paper evaluates 2).
    pub max_threads: usize,
    /// Minimum estimated speedup for a partitioning to be considered
    /// profitable.
    pub min_speedup: f64,
}

impl Default for TppOptions {
    fn default() -> Self {
        TppOptions {
            max_threads: 2,
            min_speedup: 1.01,
        }
    }
}

/// The TPP load-balance heuristic of Section 2.2.2.
///
/// Returns a partitioning into up to `opts.max_threads` stages. The caller
/// applies the profitability gate (the heuristic itself only balances).
/// Returns a single-stage partitioning when the DAG cannot be split (e.g. a
/// single SCC).
pub fn tpp_heuristic(dag: &DagScc, costs: &SccCosts, opts: &TppOptions) -> Partitioning {
    let n = dag.len();
    if n == 0 {
        return Partitioning::single(0);
    }
    if n == 1 || opts.max_threads < 2 {
        return Partitioning::single(n);
    }

    let target = costs.total / opts.max_threads as f64;
    let mut assignment = vec![usize::MAX; n];
    let mut unassigned = n;
    let mut pred_count: Vec<usize> = (0..n).map(|c| dag.preds(c).count()).collect();
    let mut candidates: Vec<usize> = (0..n).filter(|&c| pred_count[c] == 0).collect();

    let mut thread = 0usize;
    let mut current_cycles = 0.0f64;

    while unassigned > 0 {
        // Pick the candidate with the largest estimated cycles; break ties
        // toward the candidate that most reduces the current partition's
        // outgoing dependence count.
        let &best = candidates
            .iter()
            .max_by(|&&a, &&b| {
                let ca = costs.cycles[a];
                let cb = costs.cycles[b];
                ca.partial_cmp(&cb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| {
                        // Lower outgoing-delta is better, so compare reversed.
                        outgoing_delta(dag, &assignment, thread, b).cmp(&outgoing_delta(
                            dag,
                            &assignment,
                            thread,
                            a,
                        ))
                    })
            })
            .expect("DAG with unassigned nodes has a candidate");

        // "When the total estimated cycles assigned to the current
        // partition gets close to the overall estimated cycles divided by
        // the desired number of threads, the algorithm finishes partition
        // P_i" — close *before* adding when adding would overshoot the
        // target by more than stopping undershoots it.
        let can_close = thread + 1 < opts.max_threads && current_cycles > 0.0;
        if can_close {
            let if_added = current_cycles + costs.cycles[best];
            let overshoot = if_added - target;
            let undershoot = target - current_cycles;
            if overshoot > 0.0 && overshoot > undershoot {
                thread += 1;
                current_cycles = 0.0;
            }
        }

        assignment[best] = thread;
        current_cycles += costs.cycles[best];
        unassigned -= 1;
        candidates.retain(|&c| c != best);
        for s in dag.succs(best) {
            pred_count[s] -= 1;
            if pred_count[s] == 0 {
                candidates.push(s);
            }
        }

        // Close on reaching the share exactly, too.
        if thread + 1 < opts.max_threads && current_cycles >= target && unassigned > 0 {
            thread += 1;
            current_cycles = 0.0;
        }
    }

    let num_threads = thread + 1;
    Partitioning::new(assignment, num_threads)
}

/// Change in the number of arcs leaving the current partition if `cand` is
/// added to `thread`: new outgoing arcs from `cand`, minus arcs from the
/// current partition into `cand` that stop being outgoing.
fn outgoing_delta(dag: &DagScc, assignment: &[usize], thread: usize, cand: usize) -> i64 {
    let out = dag.succs(cand).count() as i64;
    let resolved = dag.preds(cand).filter(|&p| assignment[p] == thread).count() as i64;
    out - resolved
}

/// Enumerates all valid two-thread partitionings (non-trivial down-sets of
/// the `DAG_SCC`), up to `cap` results.
///
/// This is the mechanized version of the paper's iterative "best manually
/// directed" search (Figure 6(a)): a valid 2-partitioning is exactly a
/// topological cut, i.e. `P1` is a down-set.
pub fn enumerate_two_thread(dag: &DagScc, cap: usize) -> Vec<Partitioning> {
    let n = dag.len();
    let mut out = Vec::new();
    if n < 2 {
        return out;
    }
    // DFS over components in topological order: at step i decide whether
    // component i joins the down-set; allowed only if all its predecessors
    // did. Components are already topologically ordered in `DagScc`.
    let mut in_set = vec![false; n];
    fn rec(
        dag: &DagScc,
        i: usize,
        in_set: &mut Vec<bool>,
        out: &mut Vec<Partitioning>,
        cap: usize,
    ) {
        if out.len() >= cap {
            return;
        }
        if i == dag.len() {
            let count = in_set.iter().filter(|&&b| b).count();
            if count > 0 && count < dag.len() {
                let assignment = in_set.iter().map(|&b| usize::from(!b)).collect();
                out.push(Partitioning::new(assignment, 2));
            }
            return;
        }
        // Exclude i.
        rec(dag, i + 1, in_set, out, cap);
        // Include i if permitted.
        if dag.preds(i).all(|p| in_set[p]) {
            in_set[i] = true;
            rec(dag, i + 1, in_set, out, cap);
            in_set[i] = false;
        }
    }
    rec(dag, 0, &mut in_set, &mut out, cap);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_analysis::Graph;

    fn chain_dag(costs: &[f64]) -> (DagScc, SccCosts) {
        let n = costs.len();
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        let dag = DagScc::compute(&g);
        let total = costs.iter().sum();
        (
            dag,
            SccCosts {
                cycles: costs.to_vec(),
                total,
            },
        )
    }

    #[test]
    fn heuristic_balances_a_chain() {
        let (dag, costs) = chain_dag(&[10.0, 10.0, 10.0, 10.0]);
        let p = tpp_heuristic(&dag, &costs, &TppOptions::default());
        assert_eq!(p.num_threads, 2);
        assert_eq!(p.assignment, vec![0, 0, 1, 1]);
        p.validate(&dag, 2).unwrap();
    }

    #[test]
    fn heuristic_handles_single_scc() {
        let (dag, costs) = chain_dag(&[100.0]);
        let p = tpp_heuristic(&dag, &costs, &TppOptions::default());
        assert_eq!(p.num_threads, 1);
    }

    #[test]
    fn heuristic_respects_heavy_head() {
        // One huge SCC followed by small ones: the huge one alone fills
        // stage 0.
        let (dag, costs) = chain_dag(&[100.0, 5.0, 5.0, 5.0]);
        let p = tpp_heuristic(&dag, &costs, &TppOptions::default());
        assert_eq!(p.assignment[0], 0);
        assert_eq!(&p.assignment[1..], &[1, 1, 1]);
    }

    #[test]
    fn validate_rejects_backward_arcs() {
        let (dag, _) = chain_dag(&[1.0, 1.0]);
        let bad = Partitioning::new(vec![1, 0], 2);
        let err = bad.validate(&dag, 2).unwrap_err();
        assert!(matches!(err, DswpError::InvalidPartition(_)));
    }

    #[test]
    fn validate_rejects_empty_thread_and_too_many_threads() {
        let (dag, _) = chain_dag(&[1.0, 1.0]);
        let p = Partitioning::new(vec![0, 0], 1);
        p.validate(&dag, 2).unwrap();
        let empty = Partitioning {
            assignment: vec![0, 0],
            num_threads: 2,
        };
        assert!(matches!(
            empty.validate(&dag, 2),
            Err(DswpError::InvalidPartition(_))
        ));
        let wide = Partitioning::new(vec![0, 1], 2);
        assert!(matches!(
            wide.validate(&dag, 1),
            Err(DswpError::TooManyThreads { .. })
        ));
    }

    #[test]
    fn enumerator_finds_all_chain_cuts() {
        let (dag, _) = chain_dag(&[1.0, 1.0, 1.0, 1.0]);
        let all = enumerate_two_thread(&dag, 1000);
        // A 4-chain has exactly 3 non-trivial cuts.
        assert_eq!(all.len(), 3);
        for p in &all {
            p.validate(&dag, 2).unwrap();
        }
    }

    #[test]
    fn enumerator_counts_diamond_downsets() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3: down-sets are {}, {0}, {0,1},
        // {0,2}, {0,1,2}, {0,1,2,3} → 4 non-trivial.
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        let dag = DagScc::compute(&g);
        let all = enumerate_two_thread(&dag, 1000);
        assert_eq!(all.len(), 4);
        for p in &all {
            p.validate(&dag, 2).unwrap();
        }
    }

    #[test]
    fn enumerator_honors_cap() {
        let (dag, _) = chain_dag(&[1.0; 12]);
        let all = enumerate_two_thread(&dag, 5);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn tie_break_prefers_fewer_outgoing_deps() {
        // 0 and 1 are both sources with equal cost; 0 has two successors,
        // 1 has none. The tie-break should pick 1 first (delta 0 vs 2).
        let mut g = Graph::new(4);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        let dag = DagScc::compute(&g);
        // Equal costs everywhere.
        let costs = SccCosts {
            cycles: vec![1.0; 4],
            total: 4.0,
        };
        let p = tpp_heuristic(&dag, &costs, &TppOptions::default());
        p.validate(&dag, 2).unwrap();
        // The first two picks fill thread 0 (target = 2.0); the childless
        // SCC must be among them.
        let childless = (0..4)
            .find(|&c| dag.succs(c).count() == 0 && dag.preds(c).count() == 0)
            .unwrap();
        assert_eq!(p.assignment[childless], 0);
    }
}
