//! Generic loop unrolling.
//!
//! The paper's epicdec and art case studies (Sections 5.1, 5.3) apply
//! IMPACT's unroller before DSWP: replicating the body multiplies the
//! off-recurrence work per iteration, improving pipeline balance and — with
//! precise memory analysis — multiplying the number of partitionable SCCs.
//!
//! This is *test-preserving* unrolling: every replica keeps the loop's exit
//! tests, so it is correct for any trip count (no prologue/epilogue or
//! counted-loop assumption needed). The body blocks are cloned `factor`
//! times; each replica's back edges jump to the next replica's header, and
//! the last replica's back edges return to the first. Registers need no
//! renaming — replicas execute sequentially on one thread.

use std::collections::BTreeMap;

use dswp_ir::{BlockId, FuncId, Function, Program};

use dswp_analysis::{find_loops, NaturalLoop};

use crate::error::DswpError;

/// Unrolls the loop with `header` in `func` by `factor` (≥ 2), in place.
///
/// Returns the header of the unrolled loop (unchanged: the original blocks
/// serve as replica 0).
///
/// # Errors
///
/// Returns [`DswpError::NoCandidateLoop`] if no natural loop with that
/// header exists, or [`DswpError::InvalidProgram`] if the program fails
/// structural verification.
///
/// # Panics
///
/// Panics if `factor < 2`.
pub fn unroll_loop(
    program: &mut Program,
    func: FuncId,
    header: BlockId,
    factor: usize,
) -> Result<BlockId, DswpError> {
    assert!(factor >= 2, "unroll factor must be at least 2");
    dswp_ir::verify::verify_program(program)
        .map_err(|e| DswpError::InvalidProgram(e.to_string()))?;
    let l = find_loops(program.function(func))
        .into_iter()
        .find(|l| l.header == header)
        .ok_or(DswpError::NoCandidateLoop)?;

    let f = program.function_mut(func);
    let src = f.clone();

    // Create factor-1 replicas of every loop block.
    // copies[k][&b] = block of replica k+1 corresponding to b.
    let mut copies: Vec<BTreeMap<BlockId, BlockId>> = Vec::with_capacity(factor - 1);
    for k in 1..factor {
        let mut map = BTreeMap::new();
        for &b in &l.blocks {
            let nb = f.add_block(format!("u{k}.{}", src.block(b).name));
            map.insert(b, nb);
        }
        copies.push(map);
    }

    // Fill the replicas: body instructions are cloned; terminators are
    // remapped within the replica, except back edges, which advance to the
    // next replica (wrapping to the original blocks).
    for (k, map) in copies.iter().enumerate() {
        let next: Option<&BTreeMap<BlockId, BlockId>> = copies.get(k + 1);
        for &b in &l.blocks {
            let nb = map[&b];
            for &i in src.block(b).instrs() {
                let mut op = src.op(i).clone();
                if op.is_terminator() {
                    op.map_successors(|s| {
                        if s == l.header {
                            // Back edge: wrap to replica k+2 or to replica 0.
                            match next {
                                Some(n) => n[&l.header],
                                None => l.header,
                            }
                        } else if let Some(&c) = map.get(&s) {
                            c // stay within this replica
                        } else {
                            s // exit edge: leave the loop
                        }
                    });
                }
                f.append_op(nb, op);
            }
        }
    }

    // Redirect replica 0's back edges into replica 1.
    let first = &copies[0];
    for &b in &l.blocks {
        let term = *f.block(b).instrs().last().expect("terminator");
        f.op_mut(term).map_successors(|s| {
            if s == l.header && l.latches.contains(&b) {
                first[&l.header]
            } else {
                s
            }
        });
    }
    Ok(header)
}

/// Unrolls a **counted** loop by `factor`, eliding the intermediate exit
/// tests (classic unrolling with a remainder loop) — the form that exposes
/// cross-iteration ILP to the list scheduler, as IMPACT's unroller does for
/// the paper's baselines.
///
/// The loop must match the canonical counted shape
///
/// ```text
/// header:  done = (i >= n)        // n loop-invariant (register or imm)
///          br done, exit, body
/// body...: ...                    // no exits other than the header's
///          i = add i, C           // the only definition of i, C > 0
/// latch:   jump header
/// ```
///
/// A fast loop runs `factor` back-to-back test-free iterations while
/// `i + C·(factor−1) < n`; the original loop remains as the remainder.
///
/// # Errors
///
/// [`DswpError::NoCandidateLoop`] if no loop with that header exists;
/// [`DswpError::IneligibleForDoacross`] is *not* used here — shape
/// violations return [`DswpError::InvalidPartition`] with a description.
///
/// # Panics
///
/// Panics if `factor < 2`.
pub fn unroll_counted(
    program: &mut Program,
    func: FuncId,
    header: BlockId,
    factor: usize,
) -> Result<(), DswpError> {
    use dswp_ir::{Op, Operand};

    assert!(factor >= 2, "unroll factor must be at least 2");
    let l = find_loops(program.function(func))
        .into_iter()
        .find(|l| l.header == header)
        .ok_or(DswpError::NoCandidateLoop)?;
    let shape_err = |m: &str| DswpError::InvalidPartition(format!("counted unroll: {m}"));

    let src = program.function(func).clone();

    // ---- shape checks ----
    let h_instrs = src.block(header).instrs();
    if h_instrs.len() != 2 {
        return Err(shape_err("header must contain exactly the test and branch"));
    }
    let (i_reg, n_op, done_reg) = match src.op(h_instrs[0]) {
        Op::Cmp {
            dst,
            op: dswp_ir::CmpOp::Ge,
            lhs: Operand::Reg(i),
            rhs,
        } => (*i, *rhs, *dst),
        _ => return Err(shape_err("header test must be `done = (i >= n)`")),
    };
    let body_entry = match src.op(h_instrs[1]) {
        Op::Br { cond, then_, else_ } if *cond == done_reg && !l.contains(*then_) => {
            if !l.contains(*else_) {
                return Err(shape_err("branch must continue into the loop"));
            }
            *else_
        }
        _ => return Err(shape_err("header branch must exit on the test")),
    };
    if l.exit_edges.iter().any(|&(from, _)| from != header) {
        return Err(shape_err("body must have no exits of its own"));
    }
    // The only definition of i is `i = add i, C`, C > 0; n and done are not
    // otherwise defined in the loop.
    let mut stride: Option<i64> = None;
    for &b in &l.blocks {
        for &ins in src.block(b).instrs() {
            let op = src.op(ins);
            if op.def() == Some(i_reg) {
                match op {
                    Op::Binary {
                        op: dswp_ir::BinOp::Add,
                        lhs: Operand::Reg(x),
                        rhs: Operand::Imm(c),
                        ..
                    } if *x == i_reg && *c > 0 && stride.is_none() => stride = Some(*c),
                    _ => return Err(shape_err("i must have a single `i = add i, C` definition")),
                }
            }
            if b != header && op.def() == Some(done_reg) {
                return Err(shape_err("the test register is redefined in the body"));
            }
            if let Operand::Reg(n) = n_op {
                if op.def() == Some(n) {
                    return Err(shape_err("the bound is redefined in the body"));
                }
            }
        }
    }
    let stride = stride.ok_or_else(|| shape_err("no induction increment found"))?;

    // ---- build the fast loop ----
    let f = program.function_mut(func);
    let fast_h = f.add_block("unroll.fast_header");
    let t = f.new_reg();
    let fd = f.new_reg();
    {
        let lead = f.add_instr(Op::Binary {
            dst: t,
            op: dswp_ir::BinOp::Add,
            lhs: Operand::Reg(i_reg),
            rhs: Operand::Imm(stride * (factor as i64 - 1)),
        });
        f.push_instr(fast_h, lead);
        let cmp = f.add_instr(Op::Cmp {
            dst: fd,
            op: dswp_ir::CmpOp::Ge,
            lhs: Operand::Reg(t),
            rhs: n_op,
        });
        f.push_instr(fast_h, cmp);
    }

    // Registers that can be privatized per replica: defined in the body,
    // not live into the body (always written before read) and not live into
    // the remainder header. Without this renaming, anti/output dependences
    // on the body's temporaries would serialize the replicas and defeat the
    // point of eliding the tests.
    let renameable: Vec<dswp_ir::Reg> = {
        let liveness = dswp_analysis::Liveness::compute(&src);
        let live_entry = liveness.live_in(body_entry);
        let live_header = liveness.live_in(header);
        let mut defined = std::collections::BTreeSet::new();
        for &b in &l.blocks {
            if b == header {
                continue;
            }
            for &ins in src.block(b).instrs() {
                if let Some(d) = src.op(ins).def() {
                    defined.insert(d);
                }
            }
        }
        defined
            .into_iter()
            .filter(|r| !live_entry.contains(r) && !live_header.contains(r))
            .collect()
    };

    // Replicas of the body (all loop blocks except the header).
    let body_blocks: Vec<BlockId> = l.blocks.iter().copied().filter(|&b| b != header).collect();
    let mut replica_entries = Vec::with_capacity(factor);
    let mut maps: Vec<BTreeMap<BlockId, BlockId>> = Vec::with_capacity(factor);
    for k in 0..factor {
        let mut map = BTreeMap::new();
        for &b in &body_blocks {
            let nb = f.add_block(format!("uc{k}.{}", src.block(b).name));
            map.insert(b, nb);
        }
        replica_entries.push(map[&body_entry]);
        maps.push(map);
    }
    for (k, map) in maps.iter().enumerate() {
        let next_entry = if k + 1 < factor {
            replica_entries[k + 1]
        } else {
            fast_h
        };
        // Fresh names for this replica's private temporaries (replica 0
        // keeps the originals).
        let rename: BTreeMap<dswp_ir::Reg, dswp_ir::Reg> = if k == 0 {
            BTreeMap::new()
        } else {
            renameable.iter().map(|&r| (r, f.new_reg())).collect()
        };
        for &b in &body_blocks {
            let nb = map[&b];
            for &ins in src.block(b).instrs() {
                let mut op = src.op(ins).clone();
                op.map_regs(|r| rename.get(&r).copied().unwrap_or(r));
                if op.is_terminator() {
                    op.map_successors(|s| if s == header { next_entry } else { map[&s] });
                }
                f.append_op(nb, op);
            }
        }
    }
    // Fast-header branch: remainder loop when close to the bound.
    {
        let br = f.add_instr(Op::Br {
            cond: fd,
            then_: header,
            else_: replica_entries[0],
        });
        f.push_instr(fast_h, br);
    }

    // Retarget outside entries into the fast header.
    let outside: Vec<BlockId> = f.predecessors()[header.index()]
        .iter()
        .copied()
        .filter(|&p| !l.contains(p) && p != fast_h)
        .collect();
    for p in outside {
        let term = *f.block(p).instrs().last().expect("terminator");
        f.op_mut(term)
            .map_successors(|s| if s == header { fast_h } else { s });
    }
    if f.entry() == header {
        f.set_entry(fast_h);
    }
    Ok(())
}

/// Convenience used by ablation studies: returns how many times the loop
/// body now appears (1 for a never-unrolled loop).
pub fn replica_count(program: &Program, func: FuncId, header: BlockId) -> usize {
    find_loops(program.function(func))
        .into_iter()
        .find(|l| l.header == header)
        .map(|l| count_headers(program.function(func), &l))
        .unwrap_or(0)
}

fn count_headers(f: &Function, l: &NaturalLoop) -> usize {
    // Replica headers were named "u<k>.<original header name>".
    let base = &f.block(l.header).name;
    l.blocks
        .iter()
        .filter(|&&b| {
            let n = &f.block(b).name;
            n == base || (n.starts_with('u') && n.ends_with(base.as_str()))
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::interp::Interpreter;
    use dswp_ir::verify::verify_program;
    use dswp_ir::{ProgramBuilder, RegionId};

    /// sum of a[0..n] with an if/else in the body (uneven trip counts
    /// exercise the test-preserving property).
    fn kernel(n: i64) -> (dswp_ir::Program, BlockId) {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let header = f.block("header");
        let body = f.block("body");
        let odd = f.block("odd");
        let even = f.block("even");
        let join = f.block("join");
        let exit = f.block("exit");
        let (i, nn, done, a, sum, par, base, addr) = (
            f.reg(),
            f.reg(),
            f.reg(),
            f.reg(),
            f.reg(),
            f.reg(),
            f.reg(),
            f.reg(),
        );
        f.switch_to(e);
        f.iconst(i, 0);
        f.iconst(nn, n);
        f.iconst(sum, 0);
        f.iconst(base, 0);
        f.jump(header);
        f.switch_to(header);
        f.cmp_ge(done, i, nn);
        f.br(done, exit, body);
        f.switch_to(body);
        f.add(addr, i, 8);
        f.load_region(a, addr, 0, RegionId(0));
        f.and(par, a, 1);
        f.br(par, odd, even);
        f.switch_to(odd);
        f.mul(a, a, 3);
        f.jump(join);
        f.switch_to(even);
        f.add(a, a, 1);
        f.jump(join);
        f.switch_to(join);
        f.add(sum, sum, a);
        f.add(i, i, 1);
        f.jump(header);
        f.switch_to(exit);
        f.store(sum, base, 0);
        f.halt();
        let main = f.finish();
        let mut mem = vec![0i64; 8 + n.max(1) as usize];
        for k in 0..n as usize {
            mem[8 + k] = (k as i64 * 13) % 37;
        }
        (pb.finish_with_memory(main, mem), BlockId(1))
    }

    #[test]
    fn unrolling_preserves_semantics_at_any_trip_count() {
        for n in [0i64, 1, 2, 3, 7, 16, 33] {
            for factor in [2usize, 3, 4] {
                let (p, header) = kernel(n);
                let before = Interpreter::new(&p).run().unwrap();
                let mut u = p.clone();
                let main = u.main();
                unroll_loop(&mut u, main, header, factor).unwrap();
                verify_program(&u).unwrap();
                let after = Interpreter::new(&u).run().unwrap();
                assert_eq!(before.memory, after.memory, "n={n} factor={factor}");
            }
        }
    }

    #[test]
    fn replica_count_reflects_the_factor() {
        let (mut p, header) = kernel(12);
        let main = p.main();
        assert_eq!(replica_count(&p, main, header), 1);
        unroll_loop(&mut p, main, header, 3).unwrap();
        assert_eq!(replica_count(&p, main, header), 3);
    }

    #[test]
    fn unrolled_loop_still_dswps_correctly() {
        let (p, header) = kernel(40);
        let before = Interpreter::new(&p).run().unwrap();
        let mut u = p.clone();
        let main = u.main();
        unroll_loop(&mut u, main, header, 2).unwrap();
        let profile = Interpreter::new(&u).run().unwrap().profile;
        let opts = crate::DswpOptions {
            min_speedup: 0.0,
            ..crate::DswpOptions::default()
        };
        crate::dswp_loop(&mut u, main, header, &profile, &opts).unwrap();
        verify_program(&u).unwrap();
        let exec = dswp_sim::Executor::new(&u).run().unwrap();
        assert_eq!(exec.memory, before.memory);
    }

    #[test]
    fn counted_unrolling_preserves_semantics() {
        for n in [0i64, 1, 2, 3, 7, 16, 33] {
            for factor in [2usize, 3, 4] {
                let (p, header) = kernel(n);
                let before = Interpreter::new(&p).run().unwrap();
                let mut u = p.clone();
                let main = u.main();
                unroll_counted(&mut u, main, header, factor).unwrap();
                verify_program(&u).unwrap();
                let after = Interpreter::new(&u).run().unwrap();
                assert_eq!(before.memory, after.memory, "n={n} factor={factor}");
                // The fast path actually executes (fewer header tests).
                if n >= factor as i64 * 2 {
                    let hdr_weight = after.profile.weight(main, header);
                    let orig_weight = before.profile.weight(main, header);
                    assert!(
                        hdr_weight < orig_weight,
                        "n={n} factor={factor}: {hdr_weight} !< {orig_weight}"
                    );
                }
            }
        }
    }

    #[test]
    fn counted_unrolling_rejects_pointer_chases() {
        // A while(ptr) loop is not counted: the test is an equality against
        // zero... build one and check it is rejected.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let h = f.block("h");
        let body = f.block("body");
        let exit = f.block("exit");
        let (ptr, done) = (f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(ptr, 8);
        f.jump(h);
        f.switch_to(h);
        f.cmp_eq(done, ptr, 0);
        f.br(done, exit, body);
        f.switch_to(body);
        f.load(ptr, ptr, 0);
        f.jump(h);
        f.switch_to(exit);
        f.halt();
        let main = f.finish();
        let mut p = pb.finish(main, 16);
        let err = unroll_counted(&mut p, main, BlockId(1), 2).unwrap_err();
        assert!(matches!(err, DswpError::InvalidPartition(_)), "{err}");
    }

    #[test]
    fn counted_unroll_then_merge_then_schedule_speeds_up_doall() {
        // The full ILP-preparation pipeline on a DOALL-ish loop.
        let (p, header) = kernel(64);
        let base = dswp_sim::Machine::new(&p, dswp_sim::MachineConfig::full_width())
            .run()
            .unwrap();
        let mut u = p.clone();
        let main = u.main();
        unroll_counted(&mut u, main, header, 4).unwrap();
        crate::cleanup::merge_blocks_program(&mut u);
        crate::schedule::schedule_program(
            &mut u,
            &dswp_ir::LatencyTable::default(),
            dswp_analysis::AliasMode::Region,
        );
        verify_program(&u).unwrap();
        let fast = dswp_sim::Machine::new(&u, dswp_sim::MachineConfig::full_width())
            .run()
            .unwrap();
        assert_eq!(fast.memory, base.memory);
        assert!(
            fast.cycles < base.cycles,
            "ILP prep should win: {} vs {}",
            fast.cycles,
            base.cycles
        );
    }

    #[test]
    fn missing_loop_is_reported() {
        let (mut p, _) = kernel(4);
        let main = p.main();
        let err = unroll_loop(&mut p, main, BlockId(0), 2).unwrap_err();
        assert_eq!(err, DswpError::NoCandidateLoop);
    }
}
