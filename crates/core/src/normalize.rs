//! Loop-shape normalization ahead of the DSWP transformation.
//!
//! DSWP inserts *initial flows* just before the loop and *final flows* just
//! after it (Section 2.2.4). To give those flows well-defined insertion
//! points, the driver first normalizes the candidate loop:
//!
//! * a dedicated **preheader** — a block whose only job is to jump to the
//!   header, carrying every entry edge from outside the loop;
//! * a dedicated **exit landing** block — a block all exit edges are
//!   retargeted to, which jumps to the original (single) exit target.
//!
//! Loops whose exit edges lead to more than one outside block are rejected
//! ([`DswpError::MultipleExitTargets`]).

use dswp_ir::{BlockId, Function, Op};

use dswp_analysis::NaturalLoop;

use crate::error::DswpError;

/// The normalized shape of a candidate loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NormalizedLoop {
    /// The loop header (unchanged by normalization).
    pub header: BlockId,
    /// The dedicated preheader.
    pub preheader: BlockId,
    /// The dedicated exit landing block (inside neither the loop nor the
    /// original exit target).
    pub landing: BlockId,
    /// The original exit target the landing jumps to.
    pub exit_target: BlockId,
}

/// Normalizes loop `l` of `f` in place.
///
/// After this call the CFG has changed; loop analyses must be recomputed
/// before building the PDG.
///
/// # Errors
///
/// Returns [`DswpError::MultipleExitTargets`] when the loop exits to more
/// than one distinct outside block.
pub fn normalize_loop(f: &mut Function, l: &NaturalLoop) -> Result<NormalizedLoop, DswpError> {
    let targets = l.exit_targets();
    let &[exit_target] = targets.as_slice() else {
        return Err(DswpError::MultipleExitTargets(targets));
    };

    // --- preheader ---
    let preheader = f.add_block("dswp.preheader");
    {
        let jump = f.add_instr(Op::Jump { target: l.header });
        f.push_instr(preheader, jump);
    }
    // Retarget every entry edge (predecessor of the header outside the loop).
    let outside_preds: Vec<BlockId> = f.predecessors()[l.header.index()]
        .iter()
        .copied()
        .filter(|&p| !l.contains(p) && p != preheader)
        .collect();
    for p in outside_preds {
        let term = *f.block(p).instrs().last().expect("terminator");
        f.op_mut(term)
            .map_successors(|t| if t == l.header { preheader } else { t });
    }
    // If the header is the function entry, the preheader becomes the entry.
    if f.entry() == l.header {
        f.set_entry(preheader);
    }

    // --- exit landing ---
    let landing = f.add_block("dswp.landing");
    {
        let jump = f.add_instr(Op::Jump {
            target: exit_target,
        });
        f.push_instr(landing, jump);
    }
    for &(from, _) in &l.exit_edges {
        let term = *f.block(from).instrs().last().expect("terminator");
        f.op_mut(term)
            .map_successors(|t| if t == exit_target { landing } else { t });
    }

    Ok(NormalizedLoop {
        header: l.header,
        preheader,
        landing,
        exit_target,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_analysis::find_loops;
    use dswp_ir::interp::Interpreter;
    use dswp_ir::{verify::verify_program, Program, ProgramBuilder};

    fn counting_loop() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let header = f.block("header");
        let body = f.block("body");
        let exit = f.block("exit");
        let (i, n, done, base) = (f.reg(), f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(i, 0);
        f.iconst(n, 7);
        f.iconst(base, 0);
        f.jump(header);
        f.switch_to(header);
        f.cmp_ge(done, i, n);
        f.br(done, exit, body);
        f.switch_to(body);
        f.add(i, i, 1);
        f.jump(header);
        f.switch_to(exit);
        f.store(i, base, 0);
        f.halt();
        let main = f.finish();
        pb.finish(main, 1)
    }

    #[test]
    fn normalization_preserves_semantics_and_verifies() {
        let mut p = counting_loop();
        let main = p.main();
        let before = Interpreter::new(&p).run().unwrap();

        let l = find_loops(p.function(main))[0].clone();
        let norm = normalize_loop(p.function_mut(main), &l).unwrap();
        verify_program(&p).unwrap();

        let after = Interpreter::new(&p).run().unwrap();
        assert_eq!(before.memory, after.memory);

        // The preheader is now the unique outside predecessor of the header.
        let f = p.function(main);
        let preds = f.predecessors();
        let outside: Vec<_> = preds[norm.header.index()]
            .iter()
            .filter(|&&b| !l.contains(b))
            .collect();
        assert_eq!(outside, vec![&norm.preheader]);
        // All exit edges now land on the landing block.
        assert_eq!(f.successors(norm.landing), vec![norm.exit_target]);
        let relooped = find_loops(f);
        let l2 = relooped
            .iter()
            .find(|x| x.header == norm.header)
            .expect("loop survives");
        assert_eq!(l2.exit_targets(), vec![norm.landing]);
    }

    #[test]
    fn multiple_exit_targets_are_rejected() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let header = f.block("header");
        let body = f.block("body");
        let exit1 = f.block("exit1");
        let exit2 = f.block("exit2");
        let (c1, c2) = (f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(c1, 0);
        f.iconst(c2, 1);
        f.jump(header);
        f.switch_to(header);
        f.br(c1, exit1, body);
        f.switch_to(body);
        f.br(c2, header, exit2);
        f.switch_to(exit1);
        f.halt();
        f.switch_to(exit2);
        f.halt();
        let main = f.finish();
        let mut p = pb.finish(main, 0);
        let l = find_loops(p.function(main))[0].clone();
        let err = normalize_loop(p.function_mut(main), &l).unwrap_err();
        assert!(matches!(err, DswpError::MultipleExitTargets(_)));
    }

    #[test]
    fn header_as_function_entry_is_handled() {
        // A loop whose header is the entry block: normalization must move
        // the entry to the preheader.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let header = f.entry_block();
        let exit = f.block("exit");
        let c = f.reg();
        f.switch_to(header);
        f.add(c, c, 1);
        let done = f.reg();
        f.cmp_ge(done, c, 3);
        f.br(done, exit, header);
        f.switch_to(exit);
        f.halt();
        let main = f.finish();
        let mut p = pb.finish(main, 0);
        let l = find_loops(p.function(main))[0].clone();
        let norm = normalize_loop(p.function_mut(main), &l).unwrap();
        assert_eq!(p.function(main).entry(), norm.preheader);
        verify_program(&p).unwrap();
        Interpreter::new(&p).run().unwrap();
    }
}
