//! A DOACROSS comparator for the motivation experiment of Figure 1.
//!
//! DOACROSS parallelism assigns whole iterations to cores round-robin and
//! forwards loop-carried values from core to core each iteration — which
//! routes the loop's critical-path recurrence through the inter-core
//! network, so the recurrence grows by the communication latency every
//! iteration (the left half of Figure 1). DSWP's entire point is to avoid
//! that; this module implements DOACROSS so the contrast can be measured.
//!
//! The implementation targets two cores and, per classic DOACROSS
//! restrictions the paper cites (Section 2, "such transformations require
//! loops ... to have simple (or even no) control flow"), accepts only loops
//! whose body is straight-line: every loop block has exactly one in-loop
//! successor.
//!
//! Protocol: cores alternate iterations. At each iteration boundary the
//! running core sends `(continue=1, state…)` to the other core on a single
//! queue; on loop exit it sends `(0, state…)`. The state is the carried
//! register set (loop-carried values, redefined live-ins, live-outs);
//! loop-invariant live-ins are sent once up front. The boundary message
//! also serializes memory, satisfying loop-carried memory dependences. The
//! auxiliary core reuses DSWP's master-thread runtime (Section 3).

use std::collections::BTreeSet;

use dswp_ir::program::TERMINATE_SENTINEL;
use dswp_ir::{BlockId, FuncId, Function, Op, Operand, Program, Reg};

use dswp_analysis::{find_loops, loop_dataflow, Liveness};

use crate::error::DswpError;
use crate::normalize::normalize_loop;

/// The result of a successful DOACROSS transformation.
#[derive(Clone, Debug)]
pub struct DoacrossReport {
    /// Registers transferred at every iteration boundary.
    pub state_regs: Vec<Reg>,
    /// Loop-invariant live-ins sent once.
    pub invariant_regs: Vec<Reg>,
    /// The auxiliary loop function.
    pub aux_function: FuncId,
    /// The master function entering the auxiliary hardware context.
    pub master_function: FuncId,
}

/// Applies DOACROSS to the loop with `header` in `func` (two cores).
///
/// # Errors
///
/// * [`DswpError::NoCandidateLoop`] — no loop with that header;
/// * [`DswpError::MultipleExitTargets`] — unsupported loop shape;
/// * [`DswpError::IneligibleForDoacross`] — the body has internal control
///   flow.
pub fn doacross(
    program: &mut Program,
    func: FuncId,
    header: BlockId,
) -> Result<DoacrossReport, DswpError> {
    let l = find_loops(program.function(func))
        .into_iter()
        .find(|l| l.header == header)
        .ok_or(DswpError::NoCandidateLoop)?;
    let norm = normalize_loop(program.function_mut(func), &l)?;
    let l = find_loops(program.function(func))
        .into_iter()
        .find(|l| l.header == header)
        .ok_or(DswpError::NoCandidateLoop)?;

    let src = program.function(func).clone();
    let pre_existing_funcs = program.functions().len();

    // ---- eligibility: straight-line body ----
    let mut order = vec![l.header];
    {
        let mut cur = l.header;
        loop {
            let in_loop: Vec<BlockId> = src
                .successors(cur)
                .into_iter()
                .filter(|&s| l.contains(s))
                .collect();
            if in_loop.len() != 1 {
                return Err(DswpError::IneligibleForDoacross(format!(
                    "block {cur} has {} in-loop successors",
                    in_loop.len()
                )));
            }
            if in_loop[0] == l.header {
                break;
            }
            cur = in_loop[0];
            order.push(cur);
            if order.len() > l.blocks.len() {
                return Err(DswpError::IneligibleForDoacross(
                    "loop body is not a simple cycle".into(),
                ));
            }
        }
    }
    if order.len() != l.blocks.len() {
        return Err(DswpError::IneligibleForDoacross(
            "loop contains blocks off the main chain".into(),
        ));
    }

    // ---- register sets ----
    let liveness = Liveness::compute(&src);
    let df = loop_dataflow(&src, &l, &liveness);
    let defined: BTreeSet<Reg> = l
        .blocks
        .iter()
        .flat_map(|&b| src.block(b).instrs())
        .filter_map(|&i| src.op(i).def())
        .collect();
    let mut state: BTreeSet<Reg> = BTreeSet::new();
    for d in &df.reg_deps {
        if d.carried {
            state.insert(d.reg);
        }
    }
    for &r in &df.live_outs {
        state.insert(r);
    }
    for &r in &df.live_ins {
        if defined.contains(&r) {
            state.insert(r);
        }
    }
    let invariants: Vec<Reg> = df
        .live_ins
        .iter()
        .copied()
        .filter(|r| !defined.contains(r))
        .collect();
    let state: Vec<Reg> = state.into_iter().collect();

    // ---- queues ----
    let mq = program.new_queue();
    let q01 = program.new_queue(); // main → aux (invariants, boundaries)
    let q10 = program.new_queue(); // aux → main (boundaries)

    // ---- emit both copies ----
    let mut aux = Function::new(format!("{}.doacross", src.name));
    aux.ensure_reg(Reg(src.num_regs().saturating_sub(1)));
    let aux_entry = aux.add_block("entry");
    aux.set_entry(aux_entry);

    for core in 0..2usize {
        let (q_out, q_in) = if core == 0 { (q01, q10) } else { (q10, q01) };
        // Plan block ids.
        let (boundary, recv, recv_state, remote_exit, own_exit);
        let mut copies: Vec<BlockId> = Vec::new();
        {
            let dst: &mut Function = if core == 0 {
                program.function_mut(func)
            } else {
                &mut aux
            };
            for &b in &order {
                copies.push(dst.add_block(format!("dx{core}.{}", src.block(b).name)));
            }
            boundary = dst.add_block(format!("dx{core}.boundary"));
            recv = dst.add_block(format!("dx{core}.recv"));
            recv_state = dst.add_block(format!("dx{core}.recv_state"));
            remote_exit = dst.add_block(format!("dx{core}.remote_exit"));
            own_exit = dst.add_block(format!("dx{core}.own_exit"));
        }
        let copy_of = |b: BlockId| -> BlockId {
            copies[order.iter().position(|&x| x == b).expect("chain block")]
        };

        let dst: &mut Function = if core == 0 {
            program.function_mut(func)
        } else {
            &mut aux
        };

        // Loop body copies with remapped terminators.
        for (&b, &nb) in order.iter().zip(&copies) {
            for &i in src.block(b).instrs() {
                let mut op = src.op(i).clone();
                if op.is_terminator() {
                    op.map_successors(|s| {
                        if s == l.header {
                            boundary
                        } else if s == norm.landing {
                            own_exit
                        } else {
                            copy_of(s)
                        }
                    });
                }
                dst.append_op(nb, op);
            }
        }
        // Boundary: hand the next iteration to the other core.
        dst.append_op(
            boundary,
            Op::Produce {
                queue: q_out,
                src: Operand::Imm(1),
            },
        );
        for &r in &state {
            dst.append_op(
                boundary,
                Op::Produce {
                    queue: q_out,
                    src: Operand::Reg(r),
                },
            );
        }
        dst.append_op(boundary, Op::Jump { target: recv });
        // Receive: continue flag, then state.
        let cont = dst.new_reg();
        dst.append_op(
            recv,
            Op::Consume {
                queue: q_in,
                dst: cont,
            },
        );
        dst.append_op(
            recv,
            Op::Br {
                cond: cont,
                then_: recv_state,
                else_: remote_exit,
            },
        );
        for &r in &state {
            dst.append_op(
                recv_state,
                Op::Consume {
                    queue: q_in,
                    dst: r,
                },
            );
        }
        dst.append_op(recv_state, Op::Jump { target: copies[0] });
        // Own exit: notify the peer (with state) and finish.
        dst.append_op(
            own_exit,
            Op::Produce {
                queue: q_out,
                src: Operand::Imm(0),
            },
        );
        for &r in &state {
            dst.append_op(
                own_exit,
                Op::Produce {
                    queue: q_out,
                    src: Operand::Reg(r),
                },
            );
        }
        // Remote exit: adopt the peer's final state.
        for &r in &state {
            dst.append_op(
                remote_exit,
                Op::Consume {
                    queue: q_in,
                    dst: r,
                },
            );
        }
        if core == 0 {
            dst.append_op(
                own_exit,
                Op::Jump {
                    target: norm.landing,
                },
            );
            dst.append_op(
                remote_exit,
                Op::Jump {
                    target: norm.landing,
                },
            );
            // Preheader: wake the aux thread, send invariants, start at the
            // first iteration (core 0 owns iteration 0).
            let mut at = 0usize;
            let aux_id_placeholder = pre_existing_funcs as i64; // aux is next
            let id = dst.add_instr(Op::Produce {
                queue: mq,
                src: Operand::Imm(aux_id_placeholder),
            });
            dst.insert_instr(norm.preheader, at, id);
            at += 1;
            for &r in &invariants {
                let id = dst.add_instr(Op::Produce {
                    queue: q01,
                    src: Operand::Reg(r),
                });
                dst.insert_instr(norm.preheader, at, id);
                at += 1;
            }
            let pre_term = *dst.block(norm.preheader).instrs().last().unwrap();
            dst.op_mut(pre_term)
                .map_successors(|s| if s == l.header { copies[0] } else { s });
        } else {
            dst.append_op(own_exit, Op::Ret);
            dst.append_op(remote_exit, Op::Ret);
            // Aux entry: invariants, then wait for the first boundary.
            for &r in &invariants {
                dst.append_op(aux_entry, Op::Consume { queue: q01, dst: r });
            }
            dst.append_op(aux_entry, Op::Jump { target: recv });
        }
    }

    let aux_function = program.add_function(aux);
    debug_assert_eq!(aux_function.index(), pre_existing_funcs);

    // Master runtime (shared shape with DSWP, Section 3).
    let mut mf = Function::new("doacross.master");
    let bb = mf.add_block("loop");
    mf.set_entry(bb);
    let target = mf.new_reg();
    mf.append_op(
        bb,
        Op::Consume {
            queue: mq,
            dst: target,
        },
    );
    mf.append_op(bb, Op::CallInd { target });
    mf.append_op(bb, Op::Jump { target: bb });
    let master_function = program.add_function(mf);
    program.add_thread(master_function);

    for fi in 0..pre_existing_funcs {
        let fid = FuncId::from_index(fi);
        let halts: Vec<(BlockId, usize)> = {
            let f = program.function(fid);
            f.block_ids()
                .flat_map(|b| {
                    f.block(b)
                        .instrs()
                        .iter()
                        .enumerate()
                        .filter(|(_, &i)| matches!(f.op(i), Op::Halt))
                        .map(|(pos, _)| (b, pos))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let f = program.function_mut(fid);
        for (b, pos) in halts {
            let id = f.add_instr(Op::Produce {
                queue: mq,
                src: Operand::Imm(TERMINATE_SENTINEL),
            });
            f.insert_instr(b, pos, id);
        }
    }

    Ok(DoacrossReport {
        state_regs: state,
        invariant_regs: invariants,
        aux_function,
        master_function,
    })
}
