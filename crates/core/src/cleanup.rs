//! CFG cleanup: straight-line block merging (jump threading).
//!
//! After unrolling, replicas are chained through unconditional jumps; the
//! in-order core breaks its issue group at every control transfer, so those
//! jumps cost real cycles and wall off the list scheduler. This pass folds
//! `A: ...; jump B` into `A: ...; <B's body>` whenever `A` is `B`'s only
//! predecessor, repeatedly, leaving maximal basic blocks.

use std::collections::BTreeMap;

use dswp_ir::{BlockId, FuncId, Function, Op, Program};

/// Statistics from a merge run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Number of `jump`-connected block pairs folded.
    pub merges: usize,
}

/// Merges straight-line block chains in every function of `program`.
pub fn merge_blocks_program(program: &mut Program) -> MergeStats {
    let mut stats = MergeStats::default();
    for fi in 0..program.functions().len() {
        stats.merges += merge_blocks(program.function_mut(FuncId::from_index(fi))).merges;
    }
    stats
}

/// Merges straight-line block chains in `f`.
///
/// Blocks absorbed into their predecessor are left in place but become
/// unreachable (block ids are stable; the verifier does not require
/// reachability). Their instruction lists are replaced by a lone
/// terminator jumping to the absorbing block, so the function still
/// verifies.
pub fn merge_blocks(f: &mut Function) -> MergeStats {
    let mut stats = MergeStats::default();
    loop {
        // Count predecessors.
        let mut pred_count: BTreeMap<BlockId, usize> = BTreeMap::new();
        for b in f.block_ids() {
            for s in f.successors(b) {
                *pred_count.entry(s).or_insert(0) += 1;
            }
        }
        // Find a mergeable pair: A ends in `jump B`, B has exactly one
        // predecessor and is not the entry.
        let mut pair: Option<(BlockId, BlockId)> = None;
        for a in f.block_ids() {
            if let Op::Jump { target } = f.terminator(a) {
                let b = *target;
                if b != a && b != f.entry() && pred_count.get(&b) == Some(&1) {
                    pair = Some((a, b));
                    break;
                }
            }
        }
        let Some((a, b)) = pair else { break };

        // Move B's instructions into A, dropping A's jump.
        let mut a_instrs = f.block(a).instrs().to_vec();
        a_instrs.pop(); // the jump
        let b_instrs = f.block(b).instrs().to_vec();
        a_instrs.extend(&b_instrs);
        f.set_block_instrs(a, a_instrs);
        // Leave a valid, unreachable husk behind (a `halt` has no
        // successors, so it cannot create phantom CFG edges).
        let husk = f.add_instr(Op::Halt);
        f.set_block_instrs(b, vec![husk]);
        stats.merges += 1;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::interp::Interpreter;
    use dswp_ir::verify::verify_program;
    use dswp_ir::ProgramBuilder;

    #[test]
    fn merges_a_jump_chain() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let b1 = f.block("b1");
        let b2 = f.block("b2");
        let (x, base) = (f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(x, 1);
        f.jump(b1);
        f.switch_to(b1);
        f.add(x, x, 2);
        f.jump(b2);
        f.switch_to(b2);
        f.iconst(base, 0);
        f.store(x, base, 0);
        f.halt();
        let main = f.finish();
        let mut p = pb.finish(main, 1);

        let before = Interpreter::new(&p).run().unwrap();
        let stats = merge_blocks_program(&mut p);
        assert_eq!(stats.merges, 2);
        verify_program(&p).unwrap();
        let after = Interpreter::new(&p).run().unwrap();
        assert_eq!(before.memory, after.memory);
        // Everything now lives in the entry block.
        let f = p.function(main);
        assert_eq!(f.block(f.entry()).instrs().len(), 5);
    }

    #[test]
    fn does_not_merge_join_points() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let t = f.block("t");
        let u = f.block("u");
        let join = f.block("join");
        let c = f.reg();
        f.switch_to(e);
        f.iconst(c, 1);
        f.br(c, t, u);
        f.switch_to(t);
        f.jump(join);
        f.switch_to(u);
        f.jump(join);
        f.switch_to(join);
        f.halt();
        let main = f.finish();
        let mut p = pb.finish(main, 0);
        let stats = merge_blocks_program(&mut p);
        // join has two predecessors: nothing to merge.
        assert_eq!(stats.merges, 0);
        verify_program(&p).unwrap();
    }

    #[test]
    fn loop_back_edges_are_preserved() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let h = f.block("h");
        let body = f.block("body");
        let exit = f.block("exit");
        let (i, n, done, base) = (f.reg(), f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(i, 0);
        f.iconst(n, 5);
        f.iconst(base, 0);
        f.jump(h);
        f.switch_to(h);
        f.cmp_ge(done, i, n);
        f.br(done, exit, body);
        f.switch_to(body);
        f.add(i, i, 1);
        f.jump(h); // back edge: h has 2 preds, must not merge
        f.switch_to(exit);
        f.store(i, base, 0);
        f.halt();
        let main = f.finish();
        let mut p = pb.finish(main, 1);
        let before = Interpreter::new(&p).run().unwrap();
        merge_blocks_program(&mut p);
        verify_program(&p).unwrap();
        let after = Interpreter::new(&p).run().unwrap();
        assert_eq!(before.memory, after.memory);
        assert_eq!(after.memory[0], 5);
    }
}
