//! Parallel-stage replication: running a dependence-free pipeline stage on
//! several worker threads at once.
//!
//! DSWP's throughput is bounded by its slowest stage (the load-balance
//! heuristic of Section 2.2.2 exists precisely to shrink that bound). A
//! stage whose SCCs carry **no** loop-carried dependence internal to the
//! stage — the situation in the paper's DOALL loops `compress` and
//! `jpegenc` (Section 4.1) — can legally execute many iterations
//! concurrently. This module replicates such a stage `N` ways *after* the
//! ordinary DSWP split:
//!
//! * a **scatter** function takes over the replicated stage's original
//!   hardware context, consuming the stage's upstream queues in iteration
//!   order and forwarding each iteration's values to a per-replica
//!   *instance* of every queue — round-robin by default, or to the
//!   least-loaded replica under [`ScatterPolicy::WorkStealing`] (queue-depth
//!   feedback through the non-blocking `DEPTH` probe, with the bounded
//!   instance queues themselves providing per-replica backlog limits);
//! * `N` **replica** functions (clones of the stage's auxiliary loop
//!   function with queue ids remapped to their instance) run on `N` fresh
//!   contexts;
//! * an optional **gather** function restores iteration order on the
//!   stage's downstream queues, driven by an iteration-tag control queue
//!   fed by the scatter (`r + 1` = the iteration was dispatched to replica
//!   `r`, `0` = the loop exited), so downstream stages observe *exactly*
//!   the value streams of the unreplicated pipeline no matter how
//!   iterations were routed.
//!
//! Because the scatter runs every iteration sequentially it can also carry
//! values across the back edge on behalf of the replicas: a register that
//! the stage consumes mid-iteration but *uses before that point* (an
//! upward-exposed consume, e.g. the induction variable feeding address
//! arithmetic in `compress`) is additionally delivered at the top of each
//! replica iteration from a scatter-held copy of the previous iteration's
//! value. A replica therefore never depends on its own frame surviving
//! from one of *its* iterations to the next — which would be wrong, since
//! replica `r` only executes iterations `r, r+N, r+2N, …`.
//!
//! Every queue in the replicated pipeline — instances included — keeps
//! exactly one producer thread and one consumer thread, so the native
//! runtime's SPSC rings, its batching, and the deadlock monitor's
//! `WaitSet` reasoning stay exact without modification, and the executor /
//! interpreter equivalence argument carries over unchanged.

use std::collections::BTreeMap;

use dswp_analysis::{alias_query, AliasMode, DagScc, Pdg};
use dswp_ir::program::TERMINATE_SENTINEL;
use dswp_ir::{
    BinOp, BlockId, CmpOp, FuncId, Function, InstrId, Op, Operand, Program, QueueId, Reg,
};

use crate::normalize::NormalizedLoop;
use crate::partition::Partitioning;

/// Replication request, carried in
/// [`DswpOptions`](crate::pipeline::DswpOptions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Replicate {
    /// No replication (the default).
    #[default]
    Off,
    /// Replicate *every* replicable stage exactly this many ways (values
    /// below 2 are a no-op).
    Fixed(usize),
    /// Distribute a total-core budget across every replicable stage with
    /// the stage-time estimate (greedy water-filling: the stage with the
    /// worst per-replica time gets the next core), stopping once no
    /// replicable stage is the pipeline bottleneck. `cores` caps the total
    /// replica count (`None` = detect with
    /// [`std::thread::available_parallelism`]).
    Auto {
        /// Hardware threads assumed available, if overriding detection.
        cores: Option<usize>,
    },
}

/// How a replicated stage's scatter routes iterations to replicas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScatterPolicy {
    /// Iteration `j` goes to replica `j mod n` (the default): fully
    /// deterministic, ideal when every iteration costs about the same.
    #[default]
    RoundRobin,
    /// Each iteration goes to the replica whose pending-input backlog is
    /// currently smallest (queue-depth feedback via
    /// [`Op::QueueDepth`]; ties break to the
    /// lowest replica index). The iteration-tagged gather restores output
    /// order, so results stay bit-identical to round-robin — only the
    /// iteration→replica assignment changes. Wins when per-iteration cost
    /// is skewed.
    WorkStealing,
}

/// What replication did, reported in
/// [`DswpReport`](crate::pipeline::DswpReport).
#[derive(Clone, Debug)]
pub struct ReplicationInfo {
    /// The replicated stage (thread index in the unreplicated pipeline).
    pub stage: usize,
    /// Number of replicas.
    pub replicas: usize,
    /// How the scatter routes iterations to replicas.
    pub policy: ScatterPolicy,
    /// The scatter function (runs on the stage's original context).
    pub scatter: FuncId,
    /// The gather function, if the stage produces downstream values.
    pub gather: Option<FuncId>,
    /// The replica loop functions, in round-robin order.
    pub replica_functions: Vec<FuncId>,
    /// Queues allocated by replication (instances, control, masters).
    pub new_queues: usize,
    /// Hardware contexts added (replica masters + optional gather master).
    pub new_threads: usize,
}

/// Marks each pipeline stage as replicable or not.
///
/// A stage is replicable when its iterations are mutually independent:
///
/// * no loop-carried PDG arc has **both** endpoints in the stage (no true
///   recurrence — register, control, or memory — internal to it);
/// * it defines no loop live-out (the epilogue's final value would race
///   between replicas);
/// * none of its stores may collide with *itself* across iterations under
///   the alias analysis ([`build_pdg`](dswp_analysis::build_pdg) never
///   pairs an access with itself, so a lone store's cross-iteration output
///   dependence is invisible in the arc set and must be queried here);
/// * it contains no calls (a call is an opaque memory barrier and would
///   self-conflict across iterations for the same reason).
///
/// Stage 0 stays with the loop control recurrence on the main thread and
/// is never replicable.
pub fn replicable_stages(
    f: &Function,
    pdg: &Pdg,
    dag: &DagScc,
    partitioning: &Partitioning,
    alias: AliasMode,
) -> Vec<bool> {
    let n = partitioning.num_threads;
    let stage_of_node = |node: usize| -> Option<usize> {
        (node < pdg.num_instr_nodes()).then(|| partitioning.assignment[dag.node_scc[node]])
    };
    let stage_of_instr =
        |instr: InstrId| -> Option<usize> { pdg.node_of(instr).and_then(stage_of_node) };

    let mut ok = vec![true; n];
    ok[0] = false;
    for a in pdg.arcs() {
        if !a.carried {
            continue;
        }
        if let (Some(s), Some(d)) = (stage_of_node(a.src), stage_of_node(a.dst)) {
            if s == d {
                ok[s] = false;
            }
        }
    }
    for &(_, instr) in &pdg.dataflow.live_out_defs {
        if let Some(s) = stage_of_instr(instr) {
            ok[s] = false;
        }
    }
    for (_, id) in f.instr_ids() {
        let Some(s) = stage_of_instr(id) else {
            continue;
        };
        match f.op(id) {
            Op::Store { mem, .. } => {
                let r = alias_query(mem, mem, alias);
                if r.carried_forward || r.carried_backward {
                    ok[s] = false;
                }
            }
            Op::Call { .. } | Op::CallInd { .. } => ok[s] = false,
            _ => {}
        }
    }
    ok
}

/// The discovered structure of a stage's auxiliary loop function, as
/// emitted by [`apply_dswp`](crate::transform::apply_dswp). Replication
/// refuses (returns `None`) on any shape it does not fully understand.
struct AuxShape {
    /// Loop body blocks in execution (jump-chain) order.
    body: Vec<BlockId>,
    /// Whether the header branch exits the loop when the flag is non-zero.
    exit_on_true: bool,
    flag_queue: QueueId,
    /// Initial-value (live-in) queues consumed in the prologue, with their
    /// destination registers, in prologue order.
    init_queues: Vec<(QueueId, Reg)>,
    completion_queue: QueueId,
    /// Value queues consumed once per iteration, in body order. `carried`
    /// marks an upward-exposed consume: the destination register is read
    /// earlier in the iteration than it is consumed, i.e. those reads see
    /// the *previous* iteration's value.
    in_data: Vec<InQueue>,
    /// Token queues consumed once per iteration, in body order.
    in_tok: Vec<QueueId>,
    /// Value queues produced once per iteration, in body order.
    out_data: Vec<QueueId>,
    /// Token queues produced once per iteration, in body order.
    out_tok: Vec<QueueId>,
}

struct InQueue {
    queue: QueueId,
    dst: Reg,
    carried: bool,
}

fn discover(af: &Function) -> Option<AuxShape> {
    // Prologue: initial consumes, then a jump into the loop header copy.
    let entry = af.entry();
    let eb = af.block(entry).instrs();
    let (&last, init) = eb.split_last()?;
    let mut init_queues = Vec::new();
    for &i in init {
        match *af.op(i) {
            Op::Consume { queue, dst } => init_queues.push((queue, dst)),
            _ => return None,
        }
    }
    let header = match *af.op(last) {
        Op::Jump { target } => target,
        _ => return None,
    };

    // Header copy: exactly the duplicated exit branch and its flag consume.
    let hb = af.block(header).instrs();
    if hb.len() != 2 {
        return None;
    }
    let (flag_queue, flag_reg) = match *af.op(hb[0]) {
        Op::Consume { queue, dst } => (queue, dst),
        _ => return None,
    };
    let (cond, then_, else_) = match *af.op(hb[1]) {
        Op::Br { cond, then_, else_ } => (cond, then_, else_),
        _ => return None,
    };
    if cond != flag_reg || then_ == else_ {
        return None;
    }

    // Epilogue: exactly the completion token and the return to the master.
    let is_epilogue = |b: BlockId| {
        let ib = af.block(b).instrs();
        ib.len() == 2
            && matches!(af.op(ib[0]), Op::ProduceToken { .. })
            && matches!(af.op(ib[1]), Op::Ret)
    };
    let (epilogue, body_head, exit_on_true) = if is_epilogue(then_) {
        (then_, else_, true)
    } else if is_epilogue(else_) {
        (else_, then_, false)
    } else {
        return None;
    };
    let completion_queue = match *af.op(af.block(epilogue).instrs()[0]) {
        Op::ProduceToken { queue } => queue,
        _ => return None,
    };

    // Body: a single jump chain back to the header covering every
    // remaining block, so each in-loop queue is touched exactly once per
    // non-exit iteration.
    let mut body = Vec::new();
    let mut cur = body_head;
    while cur != header {
        if cur == entry || cur == epilogue || body.contains(&cur) {
            return None;
        }
        body.push(cur);
        cur = match *af.op(*af.block(cur).instrs().last()?) {
            Op::Jump { target } => target,
            _ => return None,
        };
    }
    if af.num_blocks() != body.len() + 3 {
        return None;
    }

    // Classify the per-iteration queue traffic and find upward-exposed
    // consumes (first touch of the destination register is a read).
    let mut in_data: Vec<InQueue> = Vec::new();
    let mut in_tok = Vec::new();
    let mut out_data = Vec::new();
    let mut out_tok = Vec::new();
    let mut first_touch: BTreeMap<Reg, bool> = BTreeMap::new(); // reg → first touch was a read
    let mut last_def: BTreeMap<Reg, usize> = BTreeMap::new(); // reg → body position of last def
    let mut consume_pos: Vec<usize> = Vec::new(); // body position of each in_data consume
    let mut pos = 0usize;
    for &b in &body {
        let ib = af.block(b).instrs();
        for (k, &i) in ib.iter().enumerate() {
            let op = af.op(i);
            for r in op.uses() {
                first_touch.entry(r).or_insert(true);
            }
            match *op {
                Op::Consume { queue, dst } => {
                    let carried = *first_touch.entry(dst).or_insert(false);
                    in_data.push(InQueue {
                        queue,
                        dst,
                        carried,
                    });
                    consume_pos.push(pos);
                }
                Op::ConsumeToken { queue } => in_tok.push(queue),
                Op::Produce { queue, .. } => out_data.push(queue),
                Op::ProduceToken { queue } => out_tok.push(queue),
                Op::Call { .. } | Op::CallInd { .. } | Op::Br { .. } | Op::Ret | Op::Halt => {
                    return None
                }
                Op::Jump { .. } if k + 1 != ib.len() => return None,
                Op::Jump { .. } => {}
                _ => {}
            }
            if let Some(d) = op.def() {
                first_touch.entry(d).or_insert(false);
                last_def.insert(d, pos);
            }
            pos += 1;
        }
    }
    // A carried (upward-exposed) consume reads the value the *last* write
    // of the previous iteration left behind, and the scatter replays the
    // consume's own stream shifted by one — that only matches when the
    // consume is the final def of its register in the body. Non-carried
    // consumes may freely share a destination register (the stage just
    // clobbers it locally between them).
    for (q, &p) in in_data.iter().zip(&consume_pos) {
        if q.carried && last_def.get(&q.dst) != Some(&p) {
            return None;
        }
    }
    let mut all: Vec<QueueId> = in_data.iter().map(|q| q.queue).collect();
    all.extend(&in_tok);
    all.extend(&out_data);
    all.extend(&out_tok);
    all.push(flag_queue);
    all.extend(init_queues.iter().map(|&(q, _)| q));
    all.push(completion_queue);
    let mut uniq = all.clone();
    uniq.sort_unstable();
    uniq.dedup();
    if uniq.len() != all.len() {
        return None;
    }

    Some(AuxShape {
        body,
        exit_on_true,
        flag_queue,
        init_queues,
        completion_queue,
        in_data,
        in_tok,
        out_data,
        out_tok,
    })
}

/// Rewrites every queue id mentioned by `f` through `map` (ids absent from
/// the map are left alone).
fn remap_queues(f: &mut Function, map: &BTreeMap<QueueId, QueueId>) {
    for slot in 0..f.num_instr_slots() {
        match f.op_mut(InstrId(slot as u32)) {
            Op::Produce { queue, .. }
            | Op::Consume { queue, .. }
            | Op::ProduceToken { queue }
            | Op::ConsumeToken { queue } => {
                if let Some(&q) = map.get(queue) {
                    *queue = q;
                }
            }
            _ => {}
        }
    }
}

/// Builds a `dswp.master`-style trampoline (consume a function index,
/// call it, repeat) on a fresh context.
fn add_master(program: &mut Program, name: String, mq: QueueId) -> FuncId {
    let mut mf = Function::new(name);
    let bb = mf.add_block("loop");
    mf.set_entry(bb);
    let target = mf.new_reg();
    mf.append_op(
        bb,
        Op::Consume {
            queue: mq,
            dst: target,
        },
    );
    mf.append_op(bb, Op::CallInd { target });
    mf.append_op(bb, Op::Jump { target: bb });
    let fid = program.add_function(mf);
    program.add_thread(fid);
    fid
}

/// Replicates pipeline `stage` (whose auxiliary loop function is
/// `aux_fid`) `replicas` ways, in place, after [`apply_dswp`] has run.
/// `policy` selects how the scatter routes iterations (round-robin or
/// work-stealing); routing never changes observable results, only which
/// replica runs which iteration.
///
/// Legality must have been established with [`replicable_stages`] first;
/// this function additionally verifies the *structural* preconditions on
/// the emitted code (see the private `AuxShape` discovery) and returns `None` — leaving the
/// program untouched — if the stage's shape is not one it can prove
/// correct. `replicas < 2` is also a no-op.
///
/// Calls compose: replicating stage `t1` and then stage `t2` of the same
/// pipeline touches disjoint auxiliary functions, so every legal DOALL
/// stage of a pipeline can be replicated in one pass by applying this
/// function once per stage.
///
/// [`apply_dswp`]: crate::transform::apply_dswp
pub fn replicate_stage(
    program: &mut Program,
    func: FuncId,
    norm: &NormalizedLoop,
    aux_fid: FuncId,
    stage: usize,
    replicas: usize,
    policy: ScatterPolicy,
) -> Option<ReplicationInfo> {
    let n = replicas;
    if n < 2 {
        return None;
    }
    let shape = discover(program.function(aux_fid))?;

    // The preheader instruction that wakes the stage's master with the aux
    // function index; it will be retargeted at the scatter.
    let wake = {
        let f = program.function(func);
        let mut found = None;
        for &i in f.block(norm.preheader).instrs() {
            if let Op::Produce {
                src: Operand::Imm(v),
                ..
            } = *f.op(i)
            {
                if v == aux_fid.index() as i64 {
                    found = Some(i);
                    break;
                }
            }
        }
        found?
    };
    // The landing-block position of the stage's completion-token consume,
    // after which the extra replicas' completion consumes go.
    let completion_at = {
        let f = program.function(func);
        f.block(norm.landing).instrs().iter().position(
            |&i| matches!(*f.op(i), Op::ConsumeToken { queue } if queue == shape.completion_queue),
        )?
    };

    // Everything checks out: allocate queues and start rewriting. Only
    // functions that exist *now* can contain pre-existing halts needing
    // termination sentinels for the new master queues.
    let pre_existing_funcs = program.functions().len();
    let queues_before = program.num_queues;

    let flag_inst: Vec<QueueId> = (0..n).map(|_| program.new_queue()).collect();
    let in_data_inst: Vec<Vec<QueueId>> = shape
        .in_data
        .iter()
        .map(|_| (0..n).map(|_| program.new_queue()).collect())
        .collect();
    let in_tok_inst: Vec<Vec<QueueId>> = shape
        .in_tok
        .iter()
        .map(|_| (0..n).map(|_| program.new_queue()).collect())
        .collect();
    let has_gather = !(shape.out_data.is_empty() && shape.out_tok.is_empty());
    let out_data_inst: Vec<Vec<QueueId>> = shape
        .out_data
        .iter()
        .map(|_| (0..n).map(|_| program.new_queue()).collect())
        .collect();
    let out_tok_inst: Vec<Vec<QueueId>> = shape
        .out_tok
        .iter()
        .map(|_| (0..n).map(|_| program.new_queue()).collect())
        .collect();
    let ctl = has_gather.then(|| program.new_queue());
    // Replicas 1..n get fresh copies of the initial-value and completion
    // queues (replica 0 keeps the originals); the scatter gets its own
    // copy of the initial value of every upward-exposed consumed register,
    // to seed the carried value it holds for the replicas.
    let init_inst: Vec<Vec<QueueId>> = shape
        .init_queues
        .iter()
        .map(|_| (1..n).map(|_| program.new_queue()).collect())
        .collect();
    let completion_extra: Vec<QueueId> = (1..n).map(|_| program.new_queue()).collect();
    let scatter_init: Vec<Option<QueueId>> = shape
        .in_data
        .iter()
        .map(|q| {
            (q.carried && shape.init_queues.iter().any(|&(_, r)| r == q.dst))
                .then(|| program.new_queue())
        })
        .collect();
    let replica_mqs: Vec<QueueId> = (0..n).map(|_| program.new_queue()).collect();
    let gather_mq = has_gather.then(|| program.new_queue());

    // ---- replica loop functions ----
    // An upward-exposed consume also receives the previous iteration's
    // value at the top of every (non-exit) iteration, so reads that
    // precede the consume see what they would have seen had this replica
    // executed the previous iteration itself. The delivery goes at the
    // top of the first body block — not the header, which also runs on
    // the exit iteration, when the scatter sends only the flag.
    {
        let af = program.function_mut(aux_fid);
        let mut at = 0;
        for q in &shape.in_data {
            if q.carried {
                let id = af.add_instr(Op::Consume {
                    queue: q.queue,
                    dst: q.dst,
                });
                af.insert_instr(shape.body[0], at, id);
                at += 1;
            }
        }
    }
    let base_name = program.function(aux_fid).name.clone();
    let pristine = program.function(aux_fid).clone();
    let remap_for = |r: usize| -> BTreeMap<QueueId, QueueId> {
        let mut m = BTreeMap::new();
        m.insert(shape.flag_queue, flag_inst[r]);
        for (k, q) in shape.in_data.iter().enumerate() {
            m.insert(q.queue, in_data_inst[k][r]);
        }
        for (k, &q) in shape.in_tok.iter().enumerate() {
            m.insert(q, in_tok_inst[k][r]);
        }
        for (k, &q) in shape.out_data.iter().enumerate() {
            m.insert(q, out_data_inst[k][r]);
        }
        for (k, &q) in shape.out_tok.iter().enumerate() {
            m.insert(q, out_tok_inst[k][r]);
        }
        if r > 0 {
            for (k, &(q, _)) in shape.init_queues.iter().enumerate() {
                m.insert(q, init_inst[k][r - 1]);
            }
            m.insert(shape.completion_queue, completion_extra[r - 1]);
        }
        m
    };
    let mut replica_fids = vec![aux_fid];
    for r in 1..n {
        let mut c = pristine.clone();
        c.name = format!("{base_name}.r{r}");
        remap_queues(&mut c, &remap_for(r));
        replica_fids.push(program.add_function(c));
    }
    {
        let af = program.function_mut(aux_fid);
        af.name = format!("{base_name}.r0");
        remap_queues(af, &remap_for(0));
    }

    // ---- scatter ----
    let steal = policy == ScatterPolicy::WorkStealing;
    let scatter_fid = {
        let mut sf = Function::new(format!("dswp.scatter{stage}"));
        let c = sf.new_reg();
        let ctr = sf.new_reg();
        let t = sf.new_reg();
        let v = sf.new_reg();
        // Work-stealing scratch: the running minimum backlog and the
        // probed depth of the replica under consideration.
        let best = sf.new_reg();
        let d = sf.new_reg();
        let hold: Vec<Option<Reg>> = shape
            .in_data
            .iter()
            .map(|q| q.carried.then(|| sf.new_reg()))
            .collect();
        let b_entry = sf.add_block("entry");
        let b_head = sf.add_block("head");
        let b_step = sf.add_block("step");
        let b_exit = sf.add_block("exit");
        let disp: Vec<BlockId> = (0..n).map(|r| sf.add_block(format!("disp{r}"))).collect();
        let fwd: Vec<BlockId> = (0..n).map(|r| sf.add_block(format!("fwd{r}"))).collect();
        // Work-stealing pick chain: `pick` seeds the argmin scan with
        // replica 0, then `chk[r-1]`/`upd[r-1]` fold in replica r. Strict
        // less-than keeps ties on the lowest index, so the executor (whose
        // depths are deterministic) routes reproducibly.
        let (b_pick, chk, upd) = if steal {
            let pick = sf.add_block("pick");
            let chk: Vec<BlockId> = (1..n).map(|r| sf.add_block(format!("chk{r}"))).collect();
            let upd: Vec<BlockId> = (1..n).map(|r| sf.add_block(format!("upd{r}"))).collect();
            (Some(pick), chk, upd)
        } else {
            (None, Vec::new(), Vec::new())
        };
        sf.set_entry(b_entry);
        for (k, sq) in scatter_init.iter().enumerate() {
            if let Some(q) = sq {
                sf.append_op(
                    b_entry,
                    Op::Consume {
                        queue: *q,
                        dst: hold[k].unwrap(),
                    },
                );
            }
        }
        sf.append_op(b_entry, Op::Const { dst: ctr, value: 0 });
        sf.append_op(b_entry, Op::Jump { target: b_head });
        // Exit test mirrors the duplicated branch's polarity.
        sf.append_op(
            b_head,
            Op::Consume {
                queue: shape.flag_queue,
                dst: c,
            },
        );
        let exit_op = if shape.exit_on_true {
            CmpOp::Ne
        } else {
            CmpOp::Eq
        };
        sf.append_op(
            b_head,
            Op::Cmp {
                dst: t,
                op: exit_op,
                lhs: c.into(),
                rhs: 0.into(),
            },
        );
        sf.append_op(
            b_head,
            Op::Br {
                cond: t,
                then_: b_exit,
                else_: b_pick.unwrap_or(disp[0]),
            },
        );
        if let Some(b_pick) = b_pick {
            sf.append_op(
                b_pick,
                Op::QueueDepth {
                    dst: best,
                    queue: flag_inst[0],
                },
            );
            sf.append_op(b_pick, Op::Const { dst: ctr, value: 0 });
            sf.append_op(
                b_pick,
                Op::Jump {
                    target: *chk.first().unwrap_or(&disp[0]),
                },
            );
            for r in 1..n {
                let next = *chk.get(r).unwrap_or(&disp[0]);
                sf.append_op(
                    chk[r - 1],
                    Op::QueueDepth {
                        dst: d,
                        queue: flag_inst[r],
                    },
                );
                sf.append_op(
                    chk[r - 1],
                    Op::Cmp {
                        dst: t,
                        op: CmpOp::Lt,
                        lhs: d.into(),
                        rhs: best.into(),
                    },
                );
                sf.append_op(
                    chk[r - 1],
                    Op::Br {
                        cond: t,
                        then_: upd[r - 1],
                        else_: next,
                    },
                );
                sf.append_op(
                    upd[r - 1],
                    Op::Unary {
                        dst: best,
                        op: dswp_ir::UnOp::Mov,
                        src: d.into(),
                    },
                );
                sf.append_op(
                    upd[r - 1],
                    Op::Const {
                        dst: ctr,
                        value: r as i64,
                    },
                );
                sf.append_op(upd[r - 1], Op::Jump { target: next });
            }
        }
        for r in 0..n {
            if r + 1 < n {
                sf.append_op(
                    disp[r],
                    Op::Cmp {
                        dst: t,
                        op: CmpOp::Eq,
                        lhs: ctr.into(),
                        rhs: (r as i64).into(),
                    },
                );
                sf.append_op(
                    disp[r],
                    Op::Br {
                        cond: t,
                        then_: fwd[r],
                        else_: disp[r + 1],
                    },
                );
            } else {
                sf.append_op(disp[r], Op::Jump { target: fwd[r] });
            }
            sf.append_op(
                fwd[r],
                Op::Produce {
                    queue: flag_inst[r],
                    src: c.into(),
                },
            );
            for (k, q) in shape.in_data.iter().enumerate() {
                if let Some(h) = hold[k] {
                    // Previous value first (for the replica's top-of-
                    // iteration consume), then this iteration's.
                    sf.append_op(
                        fwd[r],
                        Op::Produce {
                            queue: in_data_inst[k][r],
                            src: h.into(),
                        },
                    );
                    sf.append_op(
                        fwd[r],
                        Op::Consume {
                            queue: q.queue,
                            dst: h,
                        },
                    );
                    sf.append_op(
                        fwd[r],
                        Op::Produce {
                            queue: in_data_inst[k][r],
                            src: h.into(),
                        },
                    );
                } else {
                    sf.append_op(
                        fwd[r],
                        Op::Consume {
                            queue: q.queue,
                            dst: v,
                        },
                    );
                    sf.append_op(
                        fwd[r],
                        Op::Produce {
                            queue: in_data_inst[k][r],
                            src: v.into(),
                        },
                    );
                }
            }
            for (k, &q) in shape.in_tok.iter().enumerate() {
                sf.append_op(fwd[r], Op::ConsumeToken { queue: q });
                sf.append_op(
                    fwd[r],
                    Op::ProduceToken {
                        queue: in_tok_inst[k][r],
                    },
                );
            }
            if let Some(ctl) = ctl {
                // Tag the control entry with the chosen replica (`r + 1`;
                // `0` is reserved for exit) so the gather can follow any
                // routing policy without re-deriving it.
                sf.append_op(
                    fwd[r],
                    Op::Produce {
                        queue: ctl,
                        src: (r as i64 + 1).into(),
                    },
                );
            }
            sf.append_op(fwd[r], Op::Jump { target: b_step });
        }
        if !steal {
            sf.append_op(
                b_step,
                Op::Binary {
                    dst: ctr,
                    op: BinOp::Add,
                    lhs: ctr.into(),
                    rhs: 1.into(),
                },
            );
            sf.append_op(
                b_step,
                Op::Binary {
                    dst: ctr,
                    op: BinOp::Rem,
                    lhs: ctr.into(),
                    rhs: (n as i64).into(),
                },
            );
        }
        sf.append_op(b_step, Op::Jump { target: b_head });
        for &q in &flag_inst {
            sf.append_op(
                b_exit,
                Op::Produce {
                    queue: q,
                    src: c.into(),
                },
            );
        }
        if let Some(ctl) = ctl {
            sf.append_op(
                b_exit,
                Op::Produce {
                    queue: ctl,
                    src: 0.into(),
                },
            );
        }
        sf.append_op(b_exit, Op::Ret);
        program.add_function(sf)
    };

    // ---- gather ----
    let gather_fid = if has_gather {
        let mut gf = Function::new(format!("dswp.gather{stage}"));
        let c = gf.new_reg();
        let ctr = gf.new_reg();
        let t = gf.new_reg();
        let v = gf.new_reg();
        let b_entry = gf.add_block("entry");
        let b_head = gf.add_block("head");
        let b_tag = gf.add_block("tag");
        let b_step = gf.add_block("step");
        let b_done = gf.add_block("done");
        let disp: Vec<BlockId> = (0..n).map(|r| gf.add_block(format!("disp{r}"))).collect();
        let fwd: Vec<BlockId> = (0..n).map(|r| gf.add_block(format!("fwd{r}"))).collect();
        gf.set_entry(b_entry);
        gf.append_op(b_entry, Op::Jump { target: b_head });
        gf.append_op(
            b_head,
            Op::Consume {
                queue: ctl.unwrap(),
                dst: c,
            },
        );
        gf.append_op(
            b_head,
            Op::Cmp {
                dst: t,
                op: CmpOp::Eq,
                lhs: c.into(),
                rhs: 0.into(),
            },
        );
        gf.append_op(
            b_head,
            Op::Br {
                cond: t,
                then_: b_done,
                else_: b_tag,
            },
        );
        // The control tag carries the scatter's routing decision: replica
        // index plus one. Decoding it here keeps the gather agnostic to
        // whether the scatter ran round-robin or work-stealing.
        gf.append_op(
            b_tag,
            Op::Binary {
                dst: ctr,
                op: BinOp::Sub,
                lhs: c.into(),
                rhs: 1.into(),
            },
        );
        gf.append_op(b_tag, Op::Jump { target: disp[0] });
        for r in 0..n {
            if r + 1 < n {
                gf.append_op(
                    disp[r],
                    Op::Cmp {
                        dst: t,
                        op: CmpOp::Eq,
                        lhs: ctr.into(),
                        rhs: (r as i64).into(),
                    },
                );
                gf.append_op(
                    disp[r],
                    Op::Br {
                        cond: t,
                        then_: fwd[r],
                        else_: disp[r + 1],
                    },
                );
            } else {
                gf.append_op(disp[r], Op::Jump { target: fwd[r] });
            }
            for (k, &q) in shape.out_data.iter().enumerate() {
                gf.append_op(
                    fwd[r],
                    Op::Consume {
                        queue: out_data_inst[k][r],
                        dst: v,
                    },
                );
                gf.append_op(
                    fwd[r],
                    Op::Produce {
                        queue: q,
                        src: v.into(),
                    },
                );
            }
            for (k, &q) in shape.out_tok.iter().enumerate() {
                gf.append_op(
                    fwd[r],
                    Op::ConsumeToken {
                        queue: out_tok_inst[k][r],
                    },
                );
                gf.append_op(fwd[r], Op::ProduceToken { queue: q });
            }
            gf.append_op(fwd[r], Op::Jump { target: b_step });
        }
        gf.append_op(b_step, Op::Jump { target: b_head });
        gf.append_op(b_done, Op::Ret);
        Some(program.add_function(gf))
    } else {
        None
    };

    // ---- masters (one fresh context per replica, plus the gather's) ----
    for (r, &mq) in replica_mqs.iter().enumerate() {
        add_master(program, format!("dswp.master{stage}.r{r}"), mq);
    }
    if let Some(gmq) = gather_mq {
        add_master(program, format!("dswp.master{stage}.g"), gmq);
    }

    // ---- main-thread preheader and landing ----
    {
        let f = program.function_mut(func);
        // The stage's original master now runs the scatter.
        if let Op::Produce { src, .. } = f.op_mut(wake) {
            *src = Operand::Imm(scatter_fid.index() as i64);
        }
        // Duplicate each initial-value produce for the extra replicas (and
        // the scatter's seed copies), right after the original.
        let inits: Vec<(usize, usize, Operand)> = f
            .block(norm.preheader)
            .instrs()
            .iter()
            .enumerate()
            .filter_map(|(pos, &i)| match *f.op(i) {
                Op::Produce { queue, src } => shape
                    .init_queues
                    .iter()
                    .position(|&(q, _)| q == queue)
                    .map(|k| (pos, k, src)),
                _ => None,
            })
            .collect();
        for &(pos, k, src) in inits.iter().rev() {
            let mut extra: Vec<QueueId> = init_inst[k].clone();
            let (_, reg) = shape.init_queues[k];
            extra.extend(
                shape
                    .in_data
                    .iter()
                    .enumerate()
                    .filter_map(|(j, q)| (q.dst == reg).then_some(scatter_init[j]).flatten()),
            );
            for (off, q) in extra.into_iter().enumerate() {
                let id = f.add_instr(Op::Produce { queue: q, src });
                f.insert_instr(norm.preheader, pos + 1 + off, id);
            }
        }
        // Wake the replica masters (and gather master) first thing.
        let mut at = 0;
        for (r, &mq) in replica_mqs.iter().enumerate() {
            let id = f.add_instr(Op::Produce {
                queue: mq,
                src: Operand::Imm(replica_fids[r].index() as i64),
            });
            f.insert_instr(norm.preheader, at, id);
            at += 1;
        }
        if let (Some(gmq), Some(gfid)) = (gather_mq, gather_fid) {
            let id = f.add_instr(Op::Produce {
                queue: gmq,
                src: Operand::Imm(gfid.index() as i64),
            });
            f.insert_instr(norm.preheader, at, id);
        }
        // Wait for every replica's completion token, not just replica 0's.
        for (off, &q) in completion_extra.iter().enumerate() {
            let id = f.add_instr(Op::ConsumeToken { queue: q });
            f.insert_instr(norm.landing, completion_at + 1 + off, id);
        }
    }

    // ---- termination sentinels for the new master queues ----
    let mut new_mqs = replica_mqs.clone();
    new_mqs.extend(gather_mq);
    for fi in 0..pre_existing_funcs {
        let fid = FuncId::from_index(fi);
        let halts: Vec<(BlockId, usize)> = {
            let f = program.function(fid);
            f.block_ids()
                .flat_map(|b| {
                    f.block(b)
                        .instrs()
                        .iter()
                        .enumerate()
                        .filter(|(_, &i)| matches!(f.op(i), Op::Halt))
                        .map(|(pos, _)| (b, pos))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let f = program.function_mut(fid);
        for (b, pos) in halts.into_iter().rev() {
            for (k, &mq) in new_mqs.iter().enumerate() {
                let id = f.add_instr(Op::Produce {
                    queue: mq,
                    src: Operand::Imm(TERMINATE_SENTINEL),
                });
                f.insert_instr(b, pos + k, id);
            }
        }
    }

    Some(ReplicationInfo {
        stage,
        replicas: n,
        policy,
        scatter: scatter_fid,
        gather: gather_fid,
        replica_functions: replica_fids,
        new_queues: (program.num_queues - queues_before) as usize,
        new_threads: n + usize::from(has_gather),
    })
}
