//! Decoupled Software Pipelining (DSWP) — automatic thread extraction.
//!
//! A faithful reproduction of the compiler algorithm of *"Automatic Thread
//! Extraction with Decoupled Software Pipelining"* (Ottoni, Rangan, Stoler,
//! August — MICRO 2005), implemented over the `dswp-ir` register IR and the
//! `dswp-analysis` dependence analyses.
//!
//! The algorithm (the paper's Figure 3):
//!
//! ```text
//! DSWP(loop L)
//!   (1) G        ← build dependence graph(L)        // dswp-analysis::pdg
//!   (2) SCCs     ← find strongly connected comps(G) // dswp-analysis::scc
//!   (3) if |SCCs| = 1 then return
//!   (4) DAG_SCC  ← coalesce SCCs(G, SCCs)
//!   (5) P        ← TPP algorithm(DAG_SCC, L)        // partition::tpp_heuristic
//!   (6) if |P| = 1 then return
//!   (7) split code into loops(L, P)                 // transform
//!   (8) insert necessary flows(L, P)                // transform
//! ```
//!
//! Entry points:
//!
//! * [`dswp_loop`] — run the full pipeline on a chosen loop;
//! * [`select_loop`] — pick the candidate loop the way the paper's
//!   evaluation does;
//! * [`loop_stats`] — Table 1-style structural statistics;
//! * [`enumerate_two_thread`] — the "best manually directed" search space
//!   of Figure 6(a);
//! * [`doacross()`](doacross::doacross) — the DOACROSS comparator of Figure 1.
//!
//! # Example
//!
//! ```
//! use dswp::{dswp_loop, select_loop, DswpOptions};
//! use dswp_ir::interp::Interpreter;
//! # use dswp_ir::ProgramBuilder;
//! # // Build a trivial pointer-chasing loop: sum += node.val over a list.
//! # let mut pb = ProgramBuilder::new();
//! # let mut f = pb.function("main");
//! # let e = f.entry_block();
//! # let h = f.block("h");
//! # let body = f.block("body");
//! # let exit = f.block("exit");
//! # let (ptr, sum, val, done, base) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
//! # f.switch_to(e);
//! # f.iconst(ptr, 1);
//! # f.iconst(sum, 0);
//! # f.iconst(base, 0);
//! # f.jump(h);
//! # f.switch_to(h);
//! # f.cmp_eq(done, ptr, 0);
//! # f.br(done, exit, body);
//! # f.switch_to(body);
//! # f.load(val, ptr, 1);
//! # f.add(sum, sum, val);
//! # f.load(ptr, ptr, 0);
//! # f.jump(h);
//! # f.switch_to(exit);
//! # f.store(sum, base, 0);
//! # f.halt();
//! # let main = f.finish();
//! # let mut mem = vec![0i64; 64];
//! # let mut addr = 1usize;
//! # for i in 0..12 { let next = if i == 11 { 0 } else { addr + 2 };
//! #   mem[addr] = next as i64; mem[addr + 1] = i as i64; addr += 2; }
//! # let mut program = pb.finish_with_memory(main, mem);
//! let profile = Interpreter::new(&program).run()?.profile;
//! let main = program.main();
//! if let Some(header) = select_loop(&program, main, &profile, 4.0) {
//!     let report = dswp_loop(&mut program, main, header, &profile, &DswpOptions::default())?;
//!     assert_eq!(report.partitioning.num_threads, 2);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cleanup;
pub mod doacross;
pub mod error;
pub mod estimate;
pub mod normalize;
pub mod partition;
pub mod pipeline;
pub mod replicate;
pub mod schedule;
pub mod stage_map;
pub mod transform;
pub mod unroll;

pub use cleanup::{merge_blocks, merge_blocks_program, MergeStats};
pub use doacross::{doacross, DoacrossReport};
pub use error::DswpError;
pub use estimate::{estimated_speedup, replicated_bottleneck, scc_costs, stage_times, SccCosts};
pub use normalize::{normalize_loop, NormalizedLoop};
pub use partition::{enumerate_two_thread, tpp_heuristic, Partitioning, TppOptions};
pub use pipeline::{
    analyze_loop, annotate_loop_affine, dswp_loop, loop_stats, select_loop, DswpOptions,
    DswpReport, LoopAnalysis, LoopStats,
};
pub use replicate::{
    replicable_stages, replicate_stage, Replicate, ReplicationInfo, ScatterPolicy,
};
pub use schedule::{schedule_function, schedule_program, ScheduleStats};
pub use stage_map::{
    PipelineMap, PipelineMapError, QueueEndpoints, QueueKind, ReplicaGroup, StageInfo, StageRole,
    Tuner,
};
pub use transform::{apply_dswp, DswpArtifacts, FlowStats};
pub use unroll::{unroll_counted, unroll_loop};
