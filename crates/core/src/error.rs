//! Errors reported by the DSWP transformation.

use std::fmt;

use dswp_ir::BlockId;

/// Reasons the DSWP transformation declines or fails to transform a loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DswpError {
    /// The dependence graph has a single SCC: the loop is one recurrence and
    /// cannot be pipelined (Figure 3 line 3; the 164.gzip case, Section 5.4).
    SingleScc,
    /// The partitioner found no profitable multi-thread partitioning
    /// (Figure 3 line 6).
    NotProfitable,
    /// The loop's exit edges target more than one outside block; this
    /// implementation requires a single exit target (workloads are built in
    /// this shape; see DESIGN.md).
    MultipleExitTargets(Vec<BlockId>),
    /// The requested partition is not valid per Definition 1.
    InvalidPartition(String),
    /// No loop satisfying the selection criteria was found.
    NoCandidateLoop,
    /// The loop shape is not eligible for the DOACROSS comparator
    /// (which requires a straight-line loop body).
    IneligibleForDoacross(String),
    /// The target machine cannot run the requested number of threads.
    TooManyThreads {
        /// Threads requested by the partitioning.
        requested: usize,
        /// Hardware contexts available.
        available: usize,
    },
    /// The input program failed structural verification (out-of-range
    /// registers/blocks/queues, empty or unterminated blocks, …). Raised at
    /// the public API boundary so malformed input surfaces as a typed error
    /// instead of an index panic deep inside the transformation.
    InvalidProgram(String),
}

impl fmt::Display for DswpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DswpError::SingleScc => {
                write!(
                    f,
                    "dependence graph has a single SCC; loop is not partitionable"
                )
            }
            DswpError::NotProfitable => {
                write!(f, "no profitable multi-thread partitioning was found")
            }
            DswpError::MultipleExitTargets(t) => {
                write!(
                    f,
                    "loop has multiple exit targets {t:?}; a single exit target is required"
                )
            }
            DswpError::InvalidPartition(msg) => write!(f, "invalid partitioning: {msg}"),
            DswpError::IneligibleForDoacross(msg) => {
                write!(f, "loop not eligible for DOACROSS: {msg}")
            }
            DswpError::NoCandidateLoop => write!(f, "no candidate loop found"),
            DswpError::TooManyThreads {
                requested,
                available,
            } => write!(
                f,
                "partitioning requests {requested} threads but only {available} are available"
            ),
            DswpError::InvalidProgram(msg) => write!(f, "invalid program: {msg}"),
        }
    }
}

impl std::error::Error for DswpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(DswpError::SingleScc.to_string().contains("single SCC"));
        assert!(DswpError::MultipleExitTargets(vec![BlockId(3)])
            .to_string()
            .contains("bb3"));
        let e = DswpError::TooManyThreads {
            requested: 4,
            available: 2,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('2'));
    }
}
