//! Local (basic-block) list scheduling.
//!
//! The paper's baseline is ILP-scheduled IMPACT code, and the compiler runs
//! "scheduling (which includes both traditional software pipelining and
//! acyclic list scheduling) and register allocation" after DSWP
//! (Section 3). This pass provides the acyclic list-scheduling half: within
//! each basic block, instructions are reordered by a critical-path priority
//! so that independent chains interleave and the in-order core can issue
//! them together.
//!
//! The schedule preserves, per block:
//!
//! * register flow, anti and output dependences (no renaming is performed);
//! * the relative order of possibly-aliasing memory operations (under the
//!   chosen [`AliasMode`]) and of calls (barriers);
//! * the relative order of all queue operations — `produce`/`consume` are
//!   blocking and their cross-thread matching must not be perturbed;
//! * the terminator's position (last).

use std::collections::BTreeMap;

use dswp_ir::{FuncId, Function, InstrId, LatencyTable, Op, Program};

use dswp_analysis::{alias_query, AliasMode};

/// Statistics from a scheduling run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Blocks whose instruction order changed.
    pub blocks_changed: usize,
    /// Blocks processed.
    pub blocks_total: usize,
}

/// List-schedules every block of every function in `program`.
pub fn schedule_program(
    program: &mut Program,
    latency: &LatencyTable,
    alias: AliasMode,
) -> ScheduleStats {
    let mut stats = ScheduleStats::default();
    for fi in 0..program.functions().len() {
        let s = schedule_function(program.function_mut(FuncId::from_index(fi)), latency, alias);
        stats.blocks_changed += s.blocks_changed;
        stats.blocks_total += s.blocks_total;
    }
    stats
}

/// List-schedules every block of `f`.
pub fn schedule_function(
    f: &mut Function,
    latency: &LatencyTable,
    alias: AliasMode,
) -> ScheduleStats {
    let mut stats = ScheduleStats::default();
    for b in f.block_ids().collect::<Vec<_>>() {
        let order = f.block(b).instrs().to_vec();
        let new_order = schedule_block(f, &order, latency, alias);
        stats.blocks_total += 1;
        if new_order != order {
            stats.blocks_changed += 1;
            f.set_block_instrs(b, new_order);
        }
    }
    stats
}

fn mem_info(op: &Op) -> dswp_ir::op::MemInfo {
    match op {
        Op::Load { mem, .. } | Op::Store { mem, .. } => *mem,
        _ => dswp_ir::op::MemInfo::UNKNOWN,
    }
}

/// Builds the intra-block dependence DAG and emits a latency-aware list
/// schedule. The terminator (if any) is pinned last.
fn schedule_block(
    f: &Function,
    instrs: &[InstrId],
    latency: &LatencyTable,
    alias: AliasMode,
) -> Vec<InstrId> {
    let n = instrs.len();
    if n <= 2 {
        return instrs.to_vec();
    }
    // preds[i] counts unscheduled predecessors; succs[i] lists dependents.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pred_count = vec![0usize; n];
    let add_edge =
        |succs: &mut Vec<Vec<usize>>, pred_count: &mut Vec<usize>, a: usize, b: usize| {
            if !succs[a].contains(&b) {
                succs[a].push(b);
                pred_count[b] += 1;
            }
        };

    let ops: Vec<&Op> = instrs.iter().map(|&i| f.op(i)).collect();
    for j in 1..n {
        for i in 0..j {
            let (a, b) = (ops[i], ops[j]);
            let mut dep = false;
            // Register: flow (def i, use j), anti (use i, def j),
            // output (def i, def j).
            if let Some(d) = a.def() {
                dep |= b.uses().contains(&d);
                dep |= b.def() == Some(d);
            }
            if let Some(d) = b.def() {
                dep |= a.uses().contains(&d);
            }
            // Memory / barriers.
            let bar = a.is_barrier() || b.is_barrier();
            let mem_pair = (a.is_mem_read() || a.is_mem_write())
                && (b.is_mem_read() || b.is_mem_write())
                && (a.is_mem_write() || b.is_mem_write());
            if bar
                && (b.is_mem_read()
                    || b.is_mem_write()
                    || b.is_barrier()
                    || a.is_mem_read()
                    || a.is_mem_write())
            {
                dep = true;
            }
            if mem_pair && alias_query(&mem_info(a), &mem_info(b), alias).intra {
                dep = true;
            }
            // Queue operations stay mutually ordered.
            if a.is_queue_op() && b.is_queue_op() {
                dep = true;
            }
            // Terminator last.
            if b.is_terminator() {
                dep = true;
            }
            if dep {
                add_edge(&mut succs, &mut pred_count, i, j);
            }
        }
    }

    // Critical-path priority: longest latency-weighted path to the end.
    let mut priority = vec![0u64; n];
    for i in (0..n).rev() {
        let lat = latency.op(ops[i]);
        let best_succ = succs[i].iter().map(|&s| priority[s]).max().unwrap_or(0);
        priority[i] = lat + best_succ;
    }

    // Greedy list schedule: among ready instructions, highest priority
    // first; break ties by original position (stability).
    let mut ready: BTreeMap<(u64, usize), usize> = BTreeMap::new();
    for i in 0..n {
        if pred_count[i] == 0 {
            ready.insert((u64::MAX - priority[i], i), i);
        }
    }
    let mut out = Vec::with_capacity(n);
    while let Some((_, i)) = ready.pop_first() {
        out.push(instrs[i]);
        for &s in &succs[i] {
            pred_count[s] -= 1;
            if pred_count[s] == 0 {
                ready.insert((u64::MAX - priority[s], s), s);
            }
        }
    }
    debug_assert_eq!(out.len(), n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::interp::Interpreter;
    use dswp_ir::verify::verify_program;
    use dswp_ir::{ProgramBuilder, RegionId};

    /// Two independent chains interleaved badly: chain A (serial muls) then
    /// chain B (serial muls). Scheduling should interleave them.
    fn two_chains() -> dswp_ir::Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let (a, b, base) = (f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(a, 3);
        f.mul(a, a, 5);
        f.mul(a, a, 7);
        f.mul(a, a, 11);
        f.iconst(b, 2);
        f.mul(b, b, 5);
        f.mul(b, b, 7);
        f.mul(b, b, 11);
        f.iconst(base, 0);
        f.store(a, base, 0);
        f.store(b, base, 1);
        f.halt();
        let main = f.finish();
        pb.finish(main, 2)
    }

    #[test]
    fn scheduling_preserves_semantics_and_interleaves() {
        let mut p = two_chains();
        let before = Interpreter::new(&p).run().unwrap();
        let lat = LatencyTable::default();
        let stats = schedule_program(&mut p, &lat, AliasMode::Region);
        assert!(stats.blocks_changed >= 1, "{stats:?}");
        verify_program(&p).unwrap();
        let after = Interpreter::new(&p).run().unwrap();
        assert_eq!(before.memory, after.memory);

        // The two mul chains should now alternate: find positions of the
        // first ops of each chain in the block.
        let f = p.function(p.main());
        let block = f.block(f.entry());
        let texts: Vec<String> = block
            .instrs()
            .iter()
            .map(|&i| f.op(i).to_string())
            .collect();
        let first_b = texts.iter().position(|t| t == "r1 = 2").unwrap();
        let last_a_mul = texts
            .iter()
            .rposition(|t| t.starts_with("r0 = mul"))
            .unwrap();
        assert!(
            first_b < last_a_mul,
            "chain B should start before chain A finishes: {texts:?}"
        );
    }

    #[test]
    fn scheduling_speeds_up_the_in_order_core() {
        let p = two_chains();
        let base = dswp_sim::Machine::new(&p, dswp_sim::MachineConfig::full_width())
            .run()
            .unwrap();
        let mut s = p.clone();
        schedule_program(&mut s, &LatencyTable::default(), AliasMode::Region);
        let sched = dswp_sim::Machine::new(&s, dswp_sim::MachineConfig::full_width())
            .run()
            .unwrap();
        assert_eq!(base.memory, sched.memory);
        assert!(
            sched.cycles < base.cycles,
            "scheduled {} vs unscheduled {}",
            sched.cycles,
            base.cycles
        );
    }

    #[test]
    fn aliasing_stores_keep_their_order() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let (base, v1, v2) = (f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(base, 0);
        f.iconst(v1, 1);
        f.iconst(v2, 2);
        f.store_region(v1, base, 0, RegionId(0));
        f.store_region(v2, base, 0, RegionId(0)); // same address: must stay last
        f.halt();
        let main = f.finish();
        let mut p = pb.finish(main, 1);
        schedule_program(&mut p, &LatencyTable::default(), AliasMode::Region);
        let r = Interpreter::new(&p).run().unwrap();
        assert_eq!(r.memory[0], 2);
    }

    #[test]
    fn queue_ops_keep_their_order() {
        use dswp_ir::QueueId;
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.switch_to(e);
        let t = f.reg();
        f.iconst(t, 1);
        f.produce(QueueId(0), t);
        f.produce(QueueId(1), 2);
        f.halt();
        let main = f.finish();
        let mut g = pb.function("aux");
        let e2 = g.entry_block();
        g.switch_to(e2);
        let (a, b, base) = (g.reg(), g.reg(), g.reg());
        g.consume(a, QueueId(0));
        g.consume(b, QueueId(1));
        g.iconst(base, 0);
        g.store(a, base, 0);
        g.store(b, base, 1);
        g.halt();
        let aux = g.finish();
        let mut p = pb.finish(main, 2);
        p.num_queues = 2;
        p.add_thread(aux);

        let mut s = p.clone();
        schedule_program(&mut s, &LatencyTable::default(), AliasMode::Region);
        // Queue ops must be in the same relative order in every block.
        for (fi, f) in s.functions().iter().enumerate() {
            let orig = p.function(dswp_ir::FuncId::from_index(fi));
            for b in f.block_ids() {
                let qs: Vec<String> = f
                    .block(b)
                    .instrs()
                    .iter()
                    .filter(|&&i| f.op(i).is_queue_op())
                    .map(|&i| f.op(i).to_string())
                    .collect();
                let orig_qs: Vec<String> = orig
                    .block(b)
                    .instrs()
                    .iter()
                    .filter(|&&i| orig.op(i).is_queue_op())
                    .map(|&i| orig.op(i).to_string())
                    .collect();
                assert_eq!(qs, orig_qs);
            }
        }
        let exec = dswp_sim::Executor::new(&s).run().unwrap();
        assert_eq!(exec.memory, vec![1, 2]);
    }
}
