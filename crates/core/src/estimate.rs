//! Cost estimation for thread partitioning.
//!
//! The TPP heuristic (Section 2.2.2 of the paper) weighs each SCC by "the
//! instruction latency and its execution profile weight"; the profitability
//! gate additionally prices the `produce`/`consume` instructions a
//! partitioning would insert. This module computes those estimates from the
//! interpreter-collected [`Profile`].

use std::collections::BTreeSet;

use dswp_ir::interp::Profile;
use dswp_ir::{FuncId, Function, LatencyTable};

use dswp_analysis::{DagScc, Pdg};

use crate::partition::Partitioning;

/// Per-SCC and total estimated cycles of a loop's `DAG_SCC`.
#[derive(Clone, Debug)]
pub struct SccCosts {
    /// Estimated cycles per SCC (indexed like `DagScc::sccs`).
    pub cycles: Vec<f64>,
    /// Sum of all SCC cycles (the single-thread estimate).
    pub total: f64,
}

/// Computes SCC costs: `Σ latency(op) × profile_weight(block(op))` per SCC.
pub fn scc_costs(
    f: &Function,
    fid: FuncId,
    pdg: &Pdg,
    dag: &DagScc,
    profile: &Profile,
    latency: &LatencyTable,
) -> SccCosts {
    let block_of = f.instr_blocks();
    let mut cycles = vec![0.0; dag.len()];
    for (ci, comp) in dag.sccs.iter().enumerate() {
        for &node in comp {
            let instr = pdg.instr_of(node).expect("scc node is an instruction");
            let block = block_of[instr.index()].expect("loop instruction has a block");
            let w = profile.weight(fid, block) as f64;
            cycles[ci] += latency.op(f.op(instr)) as f64 * w;
        }
    }
    let total = cycles.iter().sum();
    SccCosts { cycles, total }
}

/// Estimated execution time of each pipeline stage under `partitioning`,
/// including the queue-access cost of the flows it requires.
///
/// Flow counting mirrors redundant-flow elimination: one flow per distinct
/// `(source instruction, destination thread)` pair, priced at
/// `queue_cost × profile_weight(source block)` on both the producing and the
/// consuming stage.
#[allow(clippy::too_many_arguments)] // mirrors the analysis products a caller already holds
pub fn stage_times(
    f: &Function,
    fid: FuncId,
    pdg: &Pdg,
    dag: &DagScc,
    partitioning: &Partitioning,
    costs: &SccCosts,
    profile: &Profile,
    queue_cost: u64,
) -> Vec<f64> {
    let n = partitioning.num_threads;
    let mut times = vec![0.0; n];
    for (ci, &c) in costs.cycles.iter().enumerate() {
        times[partitioning.assignment[ci]] += c;
    }

    let block_of = f.instr_blocks();
    let mut flows: BTreeSet<(usize, usize)> = BTreeSet::new();
    for a in pdg.arcs() {
        if a.src >= pdg.num_instr_nodes() || a.dst >= pdg.num_instr_nodes() {
            continue; // initial/final flows execute once per invocation
        }
        let ts = partitioning.assignment[dag.node_scc[a.src]];
        let td = partitioning.assignment[dag.node_scc[a.dst]];
        if ts != td {
            flows.insert((a.src, td));
        }
    }
    for &(src, td) in &flows {
        let instr = pdg.instr_of(src).expect("flow source is an instruction");
        let block = block_of[instr.index()].expect("loop instruction has a block");
        let w = profile.weight(fid, block) as f64 * queue_cost as f64;
        let ts = partitioning.assignment[dag.node_scc[src]];
        times[ts] += w; // produce
        times[td] += w; // consume
    }
    times
}

/// Estimated speedup of `partitioning` over single-threaded execution
/// (`total / max stage time`).
#[allow(clippy::too_many_arguments)] // same signature as `stage_times`
pub fn estimated_speedup(
    f: &Function,
    fid: FuncId,
    pdg: &Pdg,
    dag: &DagScc,
    partitioning: &Partitioning,
    costs: &SccCosts,
    profile: &Profile,
    queue_cost: u64,
) -> f64 {
    let times = stage_times(f, fid, pdg, dag, partitioning, costs, profile, queue_cost);
    let bottleneck = times.iter().copied().fold(0.0f64, f64::max);
    if bottleneck <= 0.0 {
        return 1.0;
    }
    costs.total / bottleneck
}

/// Predicted pipeline bottleneck (slowest effective stage time) after
/// applying a replication `plan` of `(stage, replicas)` pairs: a stage
/// granted `k` replicas contributes `times[stage] / k`, everything else
/// contributes its raw time. This is the quantity the `--replicate auto`
/// water-filling in [`crate::stage_map::Tuner::replica_plans`] minimizes.
pub fn replicated_bottleneck(stage_times: &[f64], plan: &[(usize, usize)]) -> f64 {
    stage_times
        .iter()
        .enumerate()
        .map(|(t, &time)| {
            let k = plan
                .iter()
                .find(|&&(s, _)| s == t)
                .map(|&(_, k)| k.max(1))
                .unwrap_or(1);
            time / k as f64
        })
        .fold(0.0_f64, f64::max)
}

#[cfg(test)]
mod tests {
    // Exercised end-to-end through the partitioner tests in
    // `crate::partition` and the pipeline tests; unit-level checks here
    // cover the flow-counting rule.
    use super::*;
    use dswp_analysis::{build_pdg, find_loops, DagScc, Liveness, PdgOptions};
    use dswp_ir::interp::Interpreter;
    use dswp_ir::ProgramBuilder;

    #[test]
    fn costs_scale_with_profile_weight_and_latency() {
        // A loop with a mul (3 cycles) in the body executed 10 times.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let header = f.block("header");
        let body = f.block("body");
        let exit = f.block("exit");
        let (i, n, x, done, base) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(i, 0);
        f.iconst(n, 10);
        f.iconst(base, 0);
        f.jump(header);
        f.switch_to(header);
        f.cmp_ge(done, i, n);
        f.br(done, exit, body);
        f.switch_to(body);
        f.mul(x, i, 7);
        f.add(i, i, 1);
        f.jump(header);
        f.switch_to(exit);
        f.store(x, base, 0);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 1);
        let run = Interpreter::new(&p).run().unwrap();

        let func = p.function(main);
        let liveness = Liveness::compute(func);
        let l = &find_loops(func)[0];
        let pdg = build_pdg(func, l, &liveness, &PdgOptions::default());
        let dag = DagScc::compute(&pdg.instr_graph());
        let lat = LatencyTable::default();
        let costs = scc_costs(func, main, &pdg, &dag, &run.profile, &lat);
        assert_eq!(costs.cycles.len(), dag.len());
        assert!(costs.total > 0.0);
        // The mul alone contributes 3 * 10 = 30 cycles; the total must
        // exceed that.
        assert!(costs.total >= 30.0, "{}", costs.total);
    }
}
