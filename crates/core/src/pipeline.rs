//! The end-to-end DSWP driver: Figure 3 of the paper.
//!
//! [`dswp_loop`] runs the full pipeline on one candidate loop:
//!
//! 1. normalize the loop shape (dedicated preheader / exit landing);
//! 2. build the dependence graph (`dswp-analysis`);
//! 3. find SCCs and coalesce the `DAG_SCC`; bail out on a single SCC
//!    (Figure 3 line 3 — the 164.gzip case);
//! 4. partition with the TPP heuristic (or a caller-specified partitioning,
//!    used by the "best manually directed" search of Figure 6(a));
//!    bail out when not profitable (Figure 3 line 6);
//! 5. split the code and insert flows ([`apply_dswp`]).
//!
//! [`select_loop`] picks the candidate the way Section 4 describes: the most
//! important loop that iterates enough times per invocation.

use dswp_ir::interp::Profile;
use dswp_ir::verify::verify_program;
use dswp_ir::{BlockId, FuncId, LatencyTable, Program};

use dswp_analysis::{build_pdg, find_loops, AliasMode, DagScc, Liveness, PdgOptions};

use crate::error::DswpError;
use crate::estimate::{estimated_speedup, scc_costs, stage_times};
use crate::normalize::normalize_loop;
use crate::partition::{tpp_heuristic, Partitioning, TppOptions};
use crate::replicate::{
    replicable_stages, replicate_stage, Replicate, ReplicationInfo, ScatterPolicy,
};
use crate::stage_map::Tuner;
use crate::transform::{apply_dswp, DswpArtifacts};

/// Options for the DSWP driver.
#[derive(Clone, Debug)]
pub struct DswpOptions {
    /// Memory-analysis precision used for the PDG.
    pub alias: AliasMode,
    /// Number of hardware contexts to target (the paper uses 2).
    pub max_threads: usize,
    /// Profitability threshold (estimated speedup must exceed this).
    pub min_speedup: f64,
    /// Latency table for the cost estimates.
    pub latency: LatencyTable,
    /// Caller-specified partitioning, bypassing the heuristic and the
    /// profitability gate (used by the manual/iterative search).
    pub partitioning: Option<Partitioning>,
    /// Parallel-stage replication request (see [`crate::replicate`]).
    /// Every legal DOALL stage is replicated after the split —
    /// [`Replicate::Fixed`] gives each one the same replica count,
    /// [`Replicate::Auto`] distributes a total-core budget across them by
    /// water-filling on the stage-time estimate. When no stage is legal
    /// (or structurally eligible) the pipeline is left unreplicated and
    /// [`DswpReport::replication`] stays empty.
    ///
    /// ```
    /// use dswp::{DswpOptions, Replicate};
    ///
    /// // Replicate every DOALL stage 4 ways:
    /// let opts = DswpOptions {
    ///     replicate: Replicate::Fixed(4),
    ///     ..DswpOptions::default()
    /// };
    /// assert_eq!(opts.replicate, Replicate::Fixed(4));
    ///
    /// // Let the load model split 8 cores across the DOALL stages:
    /// let auto = DswpOptions {
    ///     replicate: Replicate::Auto { cores: Some(8) },
    ///     ..DswpOptions::default()
    /// };
    /// assert_eq!(auto.replicate, Replicate::Auto { cores: Some(8) });
    /// ```
    pub replicate: Replicate,
    /// How each replicated stage's scatter routes iterations to replicas:
    /// deterministic round-robin (default) or least-loaded work-stealing
    /// driven by queue-depth feedback.
    pub scatter: ScatterPolicy,
}

impl Default for DswpOptions {
    fn default() -> Self {
        DswpOptions {
            alias: AliasMode::Region,
            max_threads: 2,
            min_speedup: 1.01,
            latency: LatencyTable::default(),
            partitioning: None,
            replicate: Replicate::Off,
            scatter: ScatterPolicy::RoundRobin,
        }
    }
}

/// Report of a successful DSWP transformation.
#[derive(Clone, Debug)]
pub struct DswpReport {
    /// Header of the transformed loop (pre-normalization id).
    pub loop_header: BlockId,
    /// Number of basic blocks in the loop.
    pub loop_blocks: usize,
    /// Number of instructions in the loop.
    pub loop_instrs: usize,
    /// Number of SCCs in the dependence graph (Table 1).
    pub num_sccs: usize,
    /// The partitioning that was applied.
    pub partitioning: Partitioning,
    /// Estimated speedup from the static model.
    pub estimated_speedup: f64,
    /// Split artifacts: flow counts, auxiliary/master functions, queues.
    pub artifacts: DswpArtifacts,
    /// What parallel-stage replication did, one entry per replicated
    /// stage in pipeline order (empty when off, not legal, or not
    /// structurally eligible).
    pub replication: Vec<ReplicationInfo>,
}

/// Structural statistics of a candidate loop (without transforming it) —
/// the analysis half of the paper's Table 1.
#[derive(Clone, Debug)]
pub struct LoopStats {
    /// Loop header.
    pub header: BlockId,
    /// Nesting depth (1 = outermost).
    pub depth: usize,
    /// Basic blocks in the loop.
    pub blocks: usize,
    /// Instructions in the loop.
    pub instrs: usize,
    /// Function calls inside the loop.
    pub calls: usize,
    /// SCC count of the dependence graph.
    pub sccs: usize,
    /// Size of the largest SCC (instructions).
    pub largest_scc: usize,
}

/// Computes [`LoopStats`] for the loop with `header` in `func`.
///
/// # Errors
///
/// Returns [`DswpError::NoCandidateLoop`] if no such loop exists, or a
/// normalization error.
pub fn loop_stats(
    program: &Program,
    func: FuncId,
    header: BlockId,
    alias: AliasMode,
) -> Result<LoopStats, DswpError> {
    // Work on a clone: stats must not mutate the program.
    let mut scratch = program.clone();
    let (_pdg, dag, l) = analyze(&mut scratch, func, header, alias)?;
    let f = scratch.function(func);
    let calls = l
        .blocks
        .iter()
        .flat_map(|&b| f.block(b).instrs())
        .filter(|&&i| f.op(i).is_barrier())
        .count();
    Ok(LoopStats {
        header,
        depth: l.depth,
        blocks: l.blocks.len(),
        instrs: l.blocks.iter().map(|&b| f.block(b).instrs().len()).sum(),
        calls,
        sccs: dag.len(),
        largest_scc: dag.sccs.iter().map(Vec::len).max().unwrap_or(0),
    })
}

/// The analysis products of one candidate loop, computed on a normalized
/// clone of the program (the input program is untouched).
#[derive(Clone, Debug)]
pub struct LoopAnalysis {
    /// Clone of the program with the loop normalized.
    pub normalized: Program,
    /// The loop's program dependence graph.
    pub pdg: dswp_analysis::Pdg,
    /// The coalesced `DAG_SCC`.
    pub dag: DagScc,
    /// The (re-discovered, post-normalization) natural loop.
    pub loop_: dswp_analysis::NaturalLoop,
}

/// Analyzes the loop with `header` in `func` without transforming
/// `program`: normalization and PDG/SCC construction happen on an internal
/// clone, returned in [`LoopAnalysis::normalized`].
///
/// # Errors
///
/// Returns [`DswpError::NoCandidateLoop`] or a normalization error.
pub fn analyze_loop(
    program: &Program,
    func: FuncId,
    header: BlockId,
    alias: AliasMode,
) -> Result<LoopAnalysis, DswpError> {
    let mut scratch = program.clone();
    let (pdg, dag, l) = analyze(&mut scratch, func, header, alias)?;
    Ok(LoopAnalysis {
        normalized: scratch,
        pdg,
        dag,
        loop_: l,
    })
}

fn analyze(
    program: &mut Program,
    func: FuncId,
    header: BlockId,
    alias: AliasMode,
) -> Result<(dswp_analysis::Pdg, DagScc, dswp_analysis::NaturalLoop), DswpError> {
    check_program(program)?;
    let l = find_loops(program.function(func))
        .into_iter()
        .find(|l| l.header == header)
        .ok_or(DswpError::NoCandidateLoop)?;
    let _norm = normalize_loop(program.function_mut(func), &l)?;
    let l = find_loops(program.function(func))
        .into_iter()
        .find(|l| l.header == header)
        .ok_or(DswpError::NoCandidateLoop)?;
    let f = program.function(func);
    let liveness = Liveness::compute(f);
    let pdg = build_pdg(f, &l, &liveness, &PdgOptions { alias });
    let dag = DagScc::compute(&pdg.instr_graph());
    Ok((pdg, dag, l))
}

/// Structural-verification gate shared by the public loop-level entry
/// points: the transformation indexes registers, blocks, queues and call
/// targets without further checks, so malformed (e.g. hand-written and
/// mis-edited) programs must be turned away with a typed error here rather
/// than panicking mid-transformation.
fn check_program(program: &Program) -> Result<(), DswpError> {
    verify_program(program).map_err(|e| DswpError::InvalidProgram(e.to_string()))
}

/// Runs the full DSWP pipeline on the loop with `header` in `func`,
/// transforming `program` in place.
///
/// # Errors
///
/// * [`DswpError::NoCandidateLoop`] — no loop with that header;
/// * [`DswpError::MultipleExitTargets`] — unsupported loop shape;
/// * [`DswpError::SingleScc`] — the dependence graph is one recurrence;
/// * [`DswpError::NotProfitable`] — the heuristic declined (Figure 3
///   line 6);
/// * [`DswpError::InvalidPartition`] / [`DswpError::TooManyThreads`] — a
///   caller-specified partitioning is unusable;
/// * [`DswpError::InvalidProgram`] — the input fails structural
///   verification.
pub fn dswp_loop(
    program: &mut Program,
    func: FuncId,
    header: BlockId,
    profile: &Profile,
    opts: &DswpOptions,
) -> Result<DswpReport, DswpError> {
    check_program(program)?;
    // Normalize + analyze.
    let l = find_loops(program.function(func))
        .into_iter()
        .find(|l| l.header == header)
        .ok_or(DswpError::NoCandidateLoop)?;
    let norm = normalize_loop(program.function_mut(func), &l)?;
    let l = find_loops(program.function(func))
        .into_iter()
        .find(|l| l.header == header)
        .ok_or(DswpError::NoCandidateLoop)?;
    let f = program.function(func);
    let liveness = Liveness::compute(f);
    let pdg = build_pdg(f, &l, &liveness, &PdgOptions { alias: opts.alias });
    let dag = DagScc::compute(&pdg.instr_graph());
    if dag.len() <= 1 {
        return Err(DswpError::SingleScc);
    }

    // Partition.
    let costs = scc_costs(f, func, &pdg, &dag, profile, &opts.latency);
    let partitioning = match &opts.partitioning {
        Some(p) => {
            p.validate(&dag, opts.max_threads)?;
            p.clone()
        }
        None => {
            let p = tpp_heuristic(
                &dag,
                &costs,
                &TppOptions {
                    max_threads: opts.max_threads,
                    min_speedup: opts.min_speedup,
                },
            );
            if p.num_threads < 2 {
                return Err(DswpError::NotProfitable);
            }
            p.validate(&dag, opts.max_threads)?;
            p
        }
    };
    let est = estimated_speedup(
        f,
        func,
        &pdg,
        &dag,
        &partitioning,
        &costs,
        profile,
        opts.latency.queue,
    );
    if opts.partitioning.is_none() && est < opts.min_speedup {
        return Err(DswpError::NotProfitable);
    }

    // Replication plan (decided before the split mutates the function:
    // legality and the stage-time estimate both need the pre-split PDG).
    // One `(stage, replicas)` pair per stage to replicate, in stage order.
    let repl_plan: Vec<(usize, usize)> = match opts.replicate {
        Replicate::Off => Vec::new(),
        _ => {
            let replicable = replicable_stages(f, &pdg, &dag, &partitioning, opts.alias);
            let times = stage_times(
                f,
                func,
                &pdg,
                &dag,
                &partitioning,
                &costs,
                profile,
                opts.latency.queue,
            );
            match opts.replicate {
                Replicate::Off => Vec::new(),
                Replicate::Fixed(k) if k >= 2 => (0..partitioning.num_threads)
                    .filter(|&t| replicable[t])
                    .map(|t| (t, k))
                    .collect(),
                Replicate::Fixed(_) => Vec::new(),
                Replicate::Auto { cores } => {
                    let tuner = match cores {
                        Some(c) => Tuner::with_cores(c),
                        None => Tuner::detect(),
                    };
                    tuner.replica_plans(&times, &replicable)
                }
            }
        }
    };

    // Split.
    let loop_instrs: usize = l
        .blocks
        .iter()
        .map(|&b| program.function(func).block(b).instrs().len())
        .sum();
    let loop_blocks = l.blocks.len();
    let artifacts = apply_dswp(program, func, &norm, &l, &pdg, &dag, &partitioning)?;
    // Replicate each planned stage in turn. The calls compose: every call
    // only rewrites its own stage's auxiliary function and mints fresh
    // queues/functions, so earlier replications are never disturbed.
    let replication: Vec<ReplicationInfo> = repl_plan
        .into_iter()
        .filter_map(|(t, k)| {
            replicate_stage(
                program,
                func,
                &norm,
                artifacts.aux_functions[t - 1],
                t,
                k,
                opts.scatter,
            )
        })
        .collect();
    Ok(DswpReport {
        loop_header: header,
        loop_blocks,
        loop_instrs,
        num_sccs: dag.len(),
        partitioning,
        estimated_speedup: est,
        artifacts,
        replication,
    })
}

/// Runs the scalar-evolution pass over the loop with `header`, deriving
/// affine annotations for its memory accesses in place (see
/// [`dswp_analysis::scev`]). Run this before [`dswp_loop`] with
/// [`AliasMode::Precise`] when the program carries no hand-written affine
/// facts — the automated version of the paper's "accurate memory analysis"
/// (Section 5.1).
///
/// # Errors
///
/// Returns [`DswpError::NoCandidateLoop`] if no loop with that header
/// exists.
pub fn annotate_loop_affine(
    program: &mut Program,
    func: FuncId,
    header: BlockId,
) -> Result<dswp_analysis::ScevStats, DswpError> {
    let l = find_loops(program.function(func))
        .into_iter()
        .find(|l| l.header == header)
        .ok_or(DswpError::NoCandidateLoop)?;
    Ok(dswp_analysis::annotate_affine(
        program.function_mut(func),
        &l,
    ))
}

/// Selects the DSWP candidate loop of `func` the way Section 4 of the paper
/// does: the loop with the largest profiled execution weight among loops
/// that iterate at least `min_avg_iters` times per invocation on average.
pub fn select_loop(
    program: &Program,
    func: FuncId,
    profile: &Profile,
    min_avg_iters: f64,
) -> Option<BlockId> {
    let f = program.function(func);
    let loops = find_loops(f);
    let mut best: Option<(f64, BlockId)> = None;
    for l in &loops {
        let header_w = profile.weight(func, l.header) as f64;
        if header_w == 0.0 {
            continue;
        }
        // Entries ≈ header executions − back-edge traversals.
        let latch_w: f64 = l
            .latches
            .iter()
            .map(|&b| profile.weight(func, b) as f64)
            .sum();
        let entries = (header_w - latch_w).max(1.0);
        if header_w / entries < min_avg_iters {
            continue;
        }
        let weight: f64 = l
            .blocks
            .iter()
            .map(|&b| profile.weight(func, b) as f64 * f.block(b).instrs().len() as f64)
            .sum();
        if best.map(|(w, _)| weight > w).unwrap_or(true) {
            best = Some((weight, l.header));
        }
    }
    best.map(|(_, h)| h)
}
