//! Code splitting and flow insertion — steps 3 and 4 of the DSWP algorithm
//! (Figure 3, lines 7–8; Sections 2.2.3 and 2.2.4 of the paper).
//!
//! Given a validated partitioning of the loop's `DAG_SCC`, this module
//!
//! 1. computes each thread's **relevant basic blocks** (blocks holding its
//!    instructions, plus blocks holding sources of dependences entering the
//!    thread, closed over the control dependences that decide whether those
//!    blocks execute);
//! 2. **splits the code**: the first partition is rebuilt inside the
//!    original function, every other partition becomes a new auxiliary
//!    function; instructions keep their original relative order, and branch
//!    targets are remapped to the *closest relevant post-dominator*
//!    (Section 2.2.3 rule 4, e.g. the `BB3 → BB6` arc of Figure 2(d));
//!    branches a thread depends on but does not own are **duplicated**,
//!    driven by a consumed flag;
//! 3. inserts the **flows**: loop flows at the dependence source's position
//!    (data values, branch flags, memory tokens), initial flows of
//!    loop-invariant live-ins before the loop, and final flows of live-out
//!    values after it, with redundant-flow elimination (one queue per
//!    distinct `(source, destination-thread)` pair);
//! 4. materializes the paper's Section 3 **runtime**: one master function
//!    per auxiliary thread that blocks on a master queue, indirect-calls the
//!    auxiliary loop function whose id the main thread produces, and halts
//!    on a negative sentinel produced before every pre-existing `halt`.

use std::collections::{BTreeMap, BTreeSet};

use dswp_ir::program::TERMINATE_SENTINEL;
use dswp_ir::{BlockId, FuncId, Function, InstrId, Op, Operand, Program, QueueId, Reg};

use dswp_analysis::{loop_control_deps, DagScc, DepKind, NaturalLoop, Pdg, PostDomTree};

use crate::error::DswpError;
use crate::normalize::NormalizedLoop;
use crate::partition::Partitioning;

/// What a loop-flow queue carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum FlowKind {
    /// The value defined by the source instruction.
    Value(Reg),
    /// The branch condition of the source branch (drives a duplicated
    /// branch in the consumer).
    Flag(Reg),
    /// A valueless ordering token (memory / call ordering).
    Token,
}

/// Flow counts produced by the transformation, reported per the paper's
/// Table 1 categories.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Initial flows: loop-invariant live-ins delivered before the loop.
    pub initial: usize,
    /// Loop flows: produce/consume pairs inside the loop body.
    pub loop_flows: usize,
    /// Final flows: live-outs delivered after loop termination.
    pub final_flows: usize,
}

/// The result of a successful DSWP transformation.
#[derive(Clone, Debug)]
pub struct DswpArtifacts {
    /// Flow counts (Table 1).
    pub flows: FlowStats,
    /// The auxiliary loop functions, one per thread `1..n`.
    pub aux_functions: Vec<FuncId>,
    /// The master functions (thread entries), one per auxiliary thread.
    pub master_functions: Vec<FuncId>,
    /// Queues allocated by the transformation.
    pub queues_used: usize,
}

/// Applies the DSWP split to `loop_` of `program.function(func)` under
/// `partitioning`.
///
/// The loop must already be normalized (see
/// [`normalize_loop`](crate::normalize::normalize_loop)) and `pdg`/`dag`
/// computed on the normalized CFG. The partitioning must be valid for `dag`.
///
/// # Errors
///
/// Returns [`DswpError::InvalidPartition`] if the partitioning (or a
/// transitive control-flow requirement it induces) would need a backward
/// flow.
pub fn apply_dswp(
    program: &mut Program,
    func: FuncId,
    norm: &NormalizedLoop,
    loop_: &NaturalLoop,
    pdg: &Pdg,
    dag: &DagScc,
    partitioning: &Partitioning,
) -> Result<DswpArtifacts, DswpError> {
    let n = partitioning.num_threads;
    assert!(n >= 2, "apply_dswp requires at least two threads");
    let src = program.function(func).clone();
    let pre_existing_funcs = program.functions().len();

    // ---- thread assignment per instruction ----
    let thread_of = |i: InstrId| -> Option<usize> {
        pdg.node_of(i)
            .map(|node| partitioning.assignment[dag.node_scc[node]])
    };

    // ---- block-level control dependences of the (normalized) loop ----
    let block_ctrl = loop_control_deps(&src, loop_);
    let controllers_of = |b: BlockId| -> Vec<BlockId> {
        let mut v: Vec<BlockId> = block_ctrl
            .iter()
            .filter(|d| d.dependent == b)
            .map(|d| d.branch_block)
            .collect();
        v.sort();
        v.dedup();
        v
    };

    // ---- collect loop flows from PDG arcs crossing partitions ----
    // Key: (source instruction, destination thread).
    let mut flow_keys: BTreeMap<(InstrId, usize), FlowKind> = BTreeMap::new();
    for a in pdg.arcs() {
        let (Some(u), Some(v)) = (pdg.instr_of(a.src), pdg.instr_of(a.dst)) else {
            continue;
        };
        let (tu, tv) = (thread_of(u).unwrap(), thread_of(v).unwrap());
        if tu == tv {
            continue;
        }
        if tu > tv {
            return Err(DswpError::InvalidPartition(format!(
                "dependence {u} → {v} flows backward (thread {tu} → {tv})"
            )));
        }
        let kind = flow_kind_for(&src, u, a.kind)?;
        merge_flow_kind(&mut flow_keys, (u, tv), kind);
    }

    // ---- relevant blocks + transitive branch-flag closure per thread ----
    let mut relevant: Vec<BTreeSet<BlockId>> = vec![BTreeSet::new(); n];
    for rel in relevant.iter_mut() {
        rel.insert(loop_.header);
    }
    for &b in &loop_.blocks {
        for &i in src.block(b).instrs() {
            if let Some(t) = thread_of(i) {
                relevant[t].insert(b);
            }
        }
    }
    let block_of = src.instr_blocks();
    loop {
        let mut changed = false;
        // Sources of flows must be relevant in both producer and consumer.
        for (&(u, tv), _) in flow_keys.iter() {
            let b = block_of[u.index()].expect("flow source is in a block");
            changed |= relevant[tv].insert(b);
            let tu = thread_of(u).unwrap();
            changed |= relevant[tu].insert(b);
        }
        // Every relevant block's controlling branches must be available.
        let mut new_flags: Vec<(InstrId, usize)> = Vec::new();
        for (t, rel) in relevant.iter().enumerate() {
            for &b in rel.iter() {
                for c in controllers_of(b) {
                    let branch = *src.block(c).instrs().last().expect("terminator");
                    let tb = thread_of(branch).expect("loop branch has a thread");
                    if tb != t && !flow_keys.contains_key(&(branch, t)) {
                        new_flags.push((branch, t));
                    }
                }
            }
        }
        for (branch, t) in new_flags {
            let tb = thread_of(branch).unwrap();
            if tb > t {
                return Err(DswpError::InvalidPartition(format!(
                    "transitive control flow for {branch} would run backward (thread {tb} → {t})"
                )));
            }
            let cond = branch_cond(&src, branch)?;
            merge_flow_kind(&mut flow_keys, (branch, t), FlowKind::Flag(cond));
            changed = true;
        }
        if !changed {
            break;
        }
    }

    // ---- initial and final flows ----
    let df = &pdg.dataflow;
    // live_in_needs[t] = registers thread t must receive before the loop.
    let mut live_in_needs: Vec<BTreeSet<Reg>> = vec![BTreeSet::new(); n];
    for a in pdg.arcs() {
        let dswp_analysis::PdgNode::LiveIn(r) = pdg.nodes()[a.src] else {
            continue;
        };
        let Some(v) = pdg.instr_of(a.dst) else {
            continue;
        };
        let tv = thread_of(v).unwrap();
        if tv > 0 {
            live_in_needs[tv].insert(r);
        }
    }
    // final_defs[t] = live-out registers whose loop definitions live in t.
    let mut final_regs: Vec<BTreeSet<Reg>> = vec![BTreeSet::new(); n];
    for &(r, d) in &df.live_out_defs {
        let t = thread_of(d).expect("live-out def has a thread");
        final_regs[t].insert(r);
        // A conditionally-(re)defined live-out must start from the pre-loop
        // value so the producing thread's copy is correct on paths that
        // skip the definition (zero-trip or kill-free paths).
        if t > 0 && df.live_out_external.contains(&r) {
            live_in_needs[t].insert(r);
        }
    }
    for (r_set, t) in final_regs.iter().zip(0..) {
        for &r in r_set {
            // All defs of one live-out register share an SCC (Figure 5(b)),
            // so they cannot be spread over threads; detect violations.
            for &(r2, d2) in &df.live_out_defs {
                if r2 == r && thread_of(d2) != Some(t) {
                    return Err(DswpError::InvalidPartition(format!(
                        "live-out {r} defined in multiple threads"
                    )));
                }
            }
        }
    }

    // ---- queue allocation ----
    let mut master_queues: Vec<QueueId> = Vec::new();
    let mut init_queues: Vec<BTreeMap<Reg, QueueId>> = vec![BTreeMap::new(); n];
    let mut final_queues: Vec<BTreeMap<Reg, QueueId>> = vec![BTreeMap::new(); n];
    // One completion token per auxiliary thread: the main thread must not
    // run code after the loop until every stage has retired its last
    // iteration — post-loop code may read memory the auxiliary stages
    // write, and no register final flow exists to order that when the
    // loop's only outputs are stores.
    let mut completion_queues: Vec<QueueId> = Vec::new();
    for t in 1..n {
        master_queues.push(program.new_queue());
        for &r in &live_in_needs[t] {
            init_queues[t].insert(r, program.new_queue());
        }
        for &r in &final_regs[t] {
            final_queues[t].insert(r, program.new_queue());
        }
        completion_queues.push(program.new_queue());
    }
    let mut loop_queues: BTreeMap<(InstrId, usize), QueueId> = BTreeMap::new();
    for &key in flow_keys.keys() {
        loop_queues.insert(key, program.new_queue());
    }

    // ---- post-dominator map for branch retargeting (rule 4) ----
    let retarget = RetargetMap::new(&src, loop_, norm);

    // ---- emit each thread's loop copy ----
    let mut aux_functions = Vec::new();
    let mut aux_entries: Vec<(FuncId, QueueId)> = Vec::new();
    for t in 0..n {
        let mut aux = if t == 0 {
            None
        } else {
            let mut af = Function::new(format!("{}.dswp{}", src.name, t));
            af.ensure_reg(Reg(src.num_regs().saturating_sub(1)));
            Some(af)
        };

        // Create copies of relevant blocks.
        let mut copy: BTreeMap<BlockId, BlockId> = BTreeMap::new();
        {
            let dst: &mut Function = match aux.as_mut() {
                Some(a) => a,
                None => program.function_mut(func),
            };
            // Auxiliary prologue comes first so it is the entry.
            if t > 0 {
                let entry = dst.add_block("dswp.prologue");
                dst.set_entry(entry);
            }
            for &b in &loop_.blocks {
                if relevant[t].contains(&b) {
                    let nb = dst.add_block(format!("t{t}.{}", src.block(b).name));
                    copy.insert(b, nb);
                }
            }
            if t > 0 {
                let epi = dst.add_block("dswp.epilogue");
                copy.insert(norm.landing, epi);
            } else {
                copy.insert(norm.landing, norm.landing);
            }
        }

        // Map an original branch target to this thread's block.
        let map_target = |s: BlockId| -> BlockId {
            let mut cur = s;
            loop {
                if let Some(&c) = copy.get(&cur) {
                    return c;
                }
                cur = retarget.next(cur);
            }
        };

        // Emit instructions block by block.
        for &b in &loop_.blocks {
            if !relevant[t].contains(&b) {
                continue;
            }
            let nb = copy[&b];
            let instrs: Vec<InstrId> = src.block(b).instrs().to_vec();
            let dst: &mut Function = match aux.as_mut() {
                Some(a) => a,
                None => program.function_mut(func),
            };
            let mut terminated = false;
            for &i in &instrs {
                let op = src.op(i).clone();
                let ti = thread_of(i);
                let is_term = op.is_terminator();

                if !is_term {
                    // Consumes for flows sourced at i land at i's position.
                    if let Some(&q) = loop_queues.get(&(i, t)) {
                        match flow_keys[&(i, t)] {
                            FlowKind::Value(r) => {
                                dst.append_op(nb, Op::Consume { queue: q, dst: r });
                            }
                            FlowKind::Token => {
                                dst.append_op(nb, Op::ConsumeToken { queue: q });
                            }
                            FlowKind::Flag(_) => unreachable!("flag source is a terminator"),
                        }
                    }
                    if ti == Some(t) {
                        dst.append_op(nb, op.clone());
                        // Produces for flows sourced at i follow it.
                        for t2 in 0..n {
                            if t2 == t {
                                continue;
                            }
                            if let Some(&q) = loop_queues.get(&(i, t2)) {
                                match flow_keys[&(i, t2)] {
                                    FlowKind::Value(r) => {
                                        dst.append_op(
                                            nb,
                                            Op::Produce {
                                                queue: q,
                                                src: Operand::Reg(r),
                                            },
                                        );
                                    }
                                    FlowKind::Token => {
                                        dst.append_op(nb, Op::ProduceToken { queue: q });
                                    }
                                    FlowKind::Flag(_) => {
                                        unreachable!("flag source is a terminator")
                                    }
                                }
                            }
                        }
                    }
                    continue;
                }

                // ---- terminator handling ----
                if ti == Some(t) {
                    // Owned branch: produce any flags first, then branch with
                    // remapped targets.
                    for t2 in 0..n {
                        if t2 == t {
                            continue;
                        }
                        if let Some(&q) = loop_queues.get(&(i, t2)) {
                            match flow_keys[&(i, t2)] {
                                FlowKind::Flag(c) => {
                                    dst.append_op(
                                        nb,
                                        Op::Produce {
                                            queue: q,
                                            src: Operand::Reg(c),
                                        },
                                    );
                                }
                                FlowKind::Token => {
                                    dst.append_op(nb, Op::ProduceToken { queue: q });
                                }
                                FlowKind::Value(_) => {
                                    unreachable!("terminators define no value")
                                }
                            }
                        }
                    }
                    let mut new_op = op.clone();
                    new_op.map_successors(&mut |s| map_target(s));
                    dst.append_op(nb, new_op);
                } else if let Some(&q) = loop_queues.get(&(i, t)) {
                    // Duplicated branch: consume the flag, then branch.
                    let FlowKind::Flag(c) = flow_keys[&(i, t)] else {
                        return Err(DswpError::InvalidPartition(format!(
                            "terminator {i} flows a non-flag into thread {t}"
                        )));
                    };
                    dst.append_op(nb, Op::Consume { queue: q, dst: c });
                    let mut new_op = op.clone();
                    new_op.map_successors(&mut |s| map_target(s));
                    dst.append_op(nb, new_op);
                } else {
                    // Unowned, un-flagged terminator: both ways must lead to
                    // the same relevant block.
                    let succs = op.successors();
                    let mapped: Vec<BlockId> = succs.iter().map(|&s| map_target(s)).collect();
                    let first = mapped[0];
                    if mapped.iter().any(|&m| m != first) {
                        return Err(DswpError::InvalidPartition(format!(
                            "thread {t} needs the direction of {i} but receives no flag"
                        )));
                    }
                    dst.append_op(nb, Op::Jump { target: first });
                }
                terminated = true;
            }
            debug_assert!(terminated, "loop block without terminator");
        }

        if t == 0 {
            // Splice the rebuilt loop into the original function: the
            // preheader now jumps to the thread-0 header copy, and the
            // landing block receives the final-flow consumes.
            let dst = program.function_mut(func);
            let pre_term = *dst.block(norm.preheader).instrs().last().unwrap();
            dst.op_mut(pre_term).map_successors(|s| {
                if s == norm.header {
                    copy[&norm.header]
                } else {
                    s
                }
            });
            // Final consumes at the top of the landing block, in queue
            // order, then the completion tokens.
            let mut at = 0usize;
            for fq in final_queues.iter().take(n).skip(1) {
                for (&r, &q) in fq {
                    let id = dst.add_instr(Op::Consume { queue: q, dst: r });
                    dst.insert_instr(norm.landing, at, id);
                    at += 1;
                }
            }
            for &q in &completion_queues {
                let id = dst.add_instr(Op::ConsumeToken { queue: q });
                dst.insert_instr(norm.landing, at, id);
                at += 1;
            }
        } else {
            let af = aux.as_mut().expect("aux function for t > 0");
            // Prologue: initial consumes then jump into the loop copy.
            let entry = af.entry();
            for (&r, &q) in &init_queues[t] {
                af.append_op(entry, Op::Consume { queue: q, dst: r });
            }
            af.append_op(
                entry,
                Op::Jump {
                    target: copy[&loop_.header],
                },
            );
            // Epilogue: final produces, the completion token, then return
            // to the master loop.
            let epi = copy[&norm.landing];
            for (&r, &q) in &final_queues[t] {
                af.append_op(
                    epi,
                    Op::Produce {
                        queue: q,
                        src: Operand::Reg(r),
                    },
                );
            }
            af.append_op(
                epi,
                Op::ProduceToken {
                    queue: completion_queues[t - 1],
                },
            );
            af.append_op(epi, Op::Ret);
            let fid = program.add_function(aux.take().unwrap());
            aux_functions.push(fid);
            aux_entries.push((fid, master_queues[t - 1]));
        }
    }

    // ---- main-thread preheader: wake the auxiliary threads, send inits ----
    {
        let dst = program.function_mut(func);
        let mut at = 0usize;
        for &(fid, mq) in &aux_entries {
            let id = dst.add_instr(Op::Produce {
                queue: mq,
                src: Operand::Imm(fid.index() as i64),
            });
            dst.insert_instr(norm.preheader, at, id);
            at += 1;
        }
        for iq in init_queues.iter().take(n).skip(1) {
            for (&r, &q) in iq {
                let id = dst.add_instr(Op::Produce {
                    queue: q,
                    src: Operand::Reg(r),
                });
                dst.insert_instr(norm.preheader, at, id);
                at += 1;
            }
        }
    }

    // ---- master functions and termination sentinels (Section 3) ----
    let mut master_functions = Vec::new();
    for (idx, &mq) in master_queues.iter().enumerate() {
        let mut mf = Function::new(format!("dswp.master{}", idx + 1));
        let bb = mf.add_block("loop");
        mf.set_entry(bb);
        let target = mf.new_reg();
        mf.append_op(
            bb,
            Op::Consume {
                queue: mq,
                dst: target,
            },
        );
        mf.append_op(bb, Op::CallInd { target });
        mf.append_op(bb, Op::Jump { target: bb });
        let fid = program.add_function(mf);
        program.add_thread(fid);
        master_functions.push(fid);
    }
    // Send the terminate sentinel before every pre-existing halt.
    for fi in 0..pre_existing_funcs {
        let fid = FuncId::from_index(fi);
        let halts: Vec<(BlockId, usize)> = {
            let f = program.function(fid);
            f.block_ids()
                .flat_map(|b| {
                    f.block(b)
                        .instrs()
                        .iter()
                        .enumerate()
                        .filter(|(_, &i)| matches!(f.op(i), Op::Halt))
                        .map(|(pos, _)| (b, pos))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let f = program.function_mut(fid);
        for (b, pos) in halts.into_iter().rev() {
            for (k, &mq) in master_queues.iter().enumerate() {
                let id = f.add_instr(Op::Produce {
                    queue: mq,
                    src: Operand::Imm(TERMINATE_SENTINEL),
                });
                f.insert_instr(b, pos + k, id);
            }
        }
    }

    let flows = FlowStats {
        initial: init_queues.iter().map(|m| m.len()).sum(),
        loop_flows: loop_queues.len(),
        final_flows: final_queues.iter().map(|m| m.len()).sum(),
    };
    Ok(DswpArtifacts {
        flows,
        aux_functions,
        master_functions,
        queues_used: program.num_queues as usize,
    })
}

/// Resolves the queue kind of a flow sourced at `u` for a dependence of
/// kind `dep`.
fn flow_kind_for(f: &Function, u: InstrId, dep: DepKind) -> Result<FlowKind, DswpError> {
    match dep {
        DepKind::Data(_) | DepKind::Output => {
            let r = f.op(u).def().ok_or_else(|| {
                DswpError::InvalidPartition(format!("data flow source {u} defines nothing"))
            })?;
            Ok(FlowKind::Value(r))
        }
        DepKind::Control | DepKind::CondControl => Ok(FlowKind::Flag(branch_cond(f, u)?)),
        DepKind::Memory => Ok(FlowKind::Token),
    }
}

/// Merges a flow kind into the key map: a value dominates a token (the
/// value's arrival orders memory too); flags never mix with values because
/// branches define no registers.
fn merge_flow_kind(
    keys: &mut BTreeMap<(InstrId, usize), FlowKind>,
    key: (InstrId, usize),
    kind: FlowKind,
) {
    use std::collections::btree_map::Entry;
    match keys.entry(key) {
        Entry::Vacant(e) => {
            e.insert(kind);
        }
        Entry::Occupied(mut e) => {
            let merged = match (*e.get(), kind) {
                (FlowKind::Token, k) => k,
                (k, FlowKind::Token) => k,
                (a, b) => {
                    debug_assert_eq!(a, b, "conflicting flow kinds for one source");
                    a
                }
            };
            e.insert(merged);
        }
    }
}

fn branch_cond(f: &Function, branch: InstrId) -> Result<Reg, DswpError> {
    match f.op(branch) {
        Op::Br { cond, .. } => Ok(*cond),
        other => Err(DswpError::InvalidPartition(format!(
            "expected a conditional branch at {branch}, found `{other}`"
        ))),
    }
}

/// "Closest relevant post-dominator" lookups (splitting rule 4): walks the
/// post-dominator chain of the loop-plus-landing sub-CFG.
struct RetargetMap {
    /// ipdom per sub-CFG node, indexed by position in `nodes`.
    ipdom: Vec<Option<usize>>,
    nodes: Vec<BlockId>,
}

impl RetargetMap {
    fn new(f: &Function, loop_: &NaturalLoop, norm: &NormalizedLoop) -> Self {
        let mut nodes: Vec<BlockId> = loop_.blocks.clone();
        nodes.push(norm.landing);
        let index = |b: BlockId| nodes.iter().position(|&x| x == b);
        let mut g = dswp_analysis::Graph::new(nodes.len());
        for (i, &b) in loop_.blocks.iter().enumerate() {
            for s in f.successors(b) {
                if let Some(j) = index(s) {
                    g.add_edge(i, j);
                }
            }
        }
        // The landing block is the sink; every loop block reaches it.
        let pd = PostDomTree::compute(&g, &[]);
        let ipdom = (0..nodes.len()).map(|i| pd.ipdom(i)).collect();
        RetargetMap { ipdom, nodes }
    }

    /// The immediate post-dominator of `b` within the loop sub-CFG.
    ///
    /// # Panics
    ///
    /// Panics if `b` has no post-dominator (cannot happen for normalized
    /// loops: the landing post-dominates every block).
    fn next(&self, b: BlockId) -> BlockId {
        let i = self
            .nodes
            .iter()
            .position(|&x| x == b)
            .expect("block belongs to the loop sub-CFG");
        let p = self.ipdom[i].expect("landing post-dominates all loop blocks");
        self.nodes[p]
    }
}
