//! Stage/queue topology metadata for transformed programs.
//!
//! The DSWP transformation leaves behind a multi-threaded [`Program`] whose
//! structure — which functions each pipeline stage executes, and which
//! stage sits at each end of every synchronization-array queue — is
//! implicit in the code. The native runtime (`dswp-rt`) and its
//! differential tests need that structure explicitly: the runtime's SPSC
//! ring-buffer queues are only correct if every queue really has a single
//! producer stage and a single consumer stage.
//!
//! [`PipelineMap::infer`] recovers the topology statically:
//!
//! 1. each stage's function set is the closure of its thread entry over
//!    direct calls;
//! 2. indirect calls (the Section 3 master-loop protocol: the main thread
//!    produces a function id, the master function consumes it and
//!    `callind`s) are resolved by collecting the constant function ids
//!    produced onto the queue the `callind`'s register was consumed from,
//!    iterating to a fixpoint;
//! 3. queue endpoints are then the stages whose function sets contain a
//!    produce (resp. consume) on that queue.
//!
//! [`PipelineMap::validate`] checks the SPSC discipline and that no queue
//! is produced into but never consumed.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dswp_ir::{FuncId, Op, Operand, Program};

/// One pipeline stage (hardware context) of a transformed program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageInfo {
    /// The stage's thread-entry function.
    pub entry: FuncId,
    /// Every function the stage can execute (entry, direct-call closure,
    /// and resolved indirect-call targets), in ascending id order.
    pub functions: Vec<FuncId>,
}

/// What a queue carries, inferred from the instructions that touch it.
///
/// The distinction drives the native runtime's batching hints
/// ([`PipelineMap::batch_hints`]): data queues tolerate deep chunking
/// (values are consumed in bulk anyway), while token queues exist to
/// release a waiting peer — holding a chunk of tokens back only adds
/// latency, so their batch is capped low.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueueKind {
    /// No instruction touches the queue.
    #[default]
    Unused,
    /// Only `produce`/`consume` (value-carrying) instructions.
    Data,
    /// Only `produce.token`/`consume.token` (synchronization-only)
    /// instructions.
    Token,
    /// Both value-carrying and token instructions.
    Mixed,
}

impl QueueKind {
    fn merge(self, other: QueueKind) -> QueueKind {
        use QueueKind::*;
        match (self, other) {
            (Unused, k) | (k, Unused) => k,
            (Data, Data) => Data,
            (Token, Token) => Token,
            _ => Mixed,
        }
    }
}

/// The stages at the two ends of one queue.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueEndpoints {
    /// Stages containing a `produce`/`produce.token` on this queue.
    pub producers: Vec<usize>,
    /// Stages containing a `consume`/`consume.token` on this queue.
    pub consumers: Vec<usize>,
    /// What the queue carries (data values, tokens, or both).
    pub kind: QueueKind,
}

impl QueueEndpoints {
    /// Whether the queue appears in any stage at all.
    pub fn is_used(&self) -> bool {
        !self.producers.is_empty() || !self.consumers.is_empty()
    }
}

/// A violation of the pipeline discipline the native runtime assumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipelineMapError {
    /// More than one stage produces into the queue (violates SPSC).
    MultipleProducers {
        /// The offending queue.
        queue: usize,
        /// The producing stages.
        stages: Vec<usize>,
    },
    /// More than one stage consumes from the queue (violates SPSC).
    MultipleConsumers {
        /// The offending queue.
        queue: usize,
        /// The consuming stages.
        stages: Vec<usize>,
    },
    /// A stage produces into a queue no stage consumes: with bounded
    /// queues the producer eventually blocks forever.
    NoConsumer {
        /// The offending queue.
        queue: usize,
    },
    /// A stage consumes from a queue no stage produces into: the consumer
    /// blocks forever.
    NoProducer {
        /// The offending queue.
        queue: usize,
    },
}

impl fmt::Display for PipelineMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineMapError::MultipleProducers { queue, stages } => {
                write!(f, "queue {queue} has multiple producer stages {stages:?}")
            }
            PipelineMapError::MultipleConsumers { queue, stages } => {
                write!(f, "queue {queue} has multiple consumer stages {stages:?}")
            }
            PipelineMapError::NoConsumer { queue } => {
                write!(f, "queue {queue} is produced into but never consumed")
            }
            PipelineMapError::NoProducer { queue } => {
                write!(f, "queue {queue} is consumed from but never produced into")
            }
        }
    }
}

impl std::error::Error for PipelineMapError {}

/// The stage/queue topology of a (transformed) multi-threaded program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelineMap {
    /// One entry per hardware context, in thread order (stage 0 = main).
    pub stages: Vec<StageInfo>,
    /// One entry per queue id.
    pub queues: Vec<QueueEndpoints>,
}

/// Constant function ids produced onto each queue anywhere in the program
/// (the master-loop protocol produces `Operand::Imm(fid)`).
fn produced_fids_per_queue(program: &Program) -> BTreeMap<usize, BTreeSet<FuncId>> {
    let mut map: BTreeMap<usize, BTreeSet<FuncId>> = BTreeMap::new();
    for func in program.functions() {
        for (_, instr) in func.instr_ids() {
            if let Op::Produce {
                queue,
                src: Operand::Imm(v),
            } = *func.op(instr)
            {
                if let Ok(idx) = usize::try_from(v) {
                    if idx < program.functions().len() {
                        map.entry(queue.index())
                            .or_default()
                            .insert(FuncId::from_index(idx));
                    }
                }
            }
        }
    }
    map
}

/// Queues a function set consumes from via the `consume r, q; ...;
/// callind r` master pattern.
fn callind_source_queues(program: &Program, funcs: &BTreeSet<FuncId>) -> BTreeSet<usize> {
    let mut queues = BTreeSet::new();
    for &fid in funcs {
        let func = program.function(fid);
        if !func
            .instr_ids()
            .any(|(_, i)| matches!(func.op(i), Op::CallInd { .. }))
        {
            continue;
        }
        // Conservative: any queue this function consumes could feed the
        // indirect call's register.
        for (_, instr) in func.instr_ids() {
            if let Op::Consume { queue, .. } = func.op(instr) {
                queues.insert(queue.index());
            }
        }
    }
    queues
}

impl PipelineMap {
    /// Recovers the stage/queue topology of `program`.
    pub fn infer(program: &Program) -> Self {
        let num_queues = program.num_queues as usize;
        let fid_candidates = produced_fids_per_queue(program);

        // Per-stage function closure, to a fixpoint over indirect calls.
        let mut stage_funcs: Vec<BTreeSet<FuncId>> = program
            .thread_entries()
            .iter()
            .map(|&entry| {
                let mut set = BTreeSet::new();
                direct_closure(program, entry, &mut set);
                set
            })
            .collect();
        loop {
            let mut changed = false;
            for funcs in &mut stage_funcs {
                for q in callind_source_queues(program, funcs) {
                    if let Some(fids) = fid_candidates.get(&q) {
                        for &fid in fids {
                            if !funcs.contains(&fid) {
                                direct_closure(program, fid, funcs);
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Queue endpoints from the per-stage closures.
        let mut queues = vec![QueueEndpoints::default(); num_queues];
        for (stage, funcs) in stage_funcs.iter().enumerate() {
            for &fid in funcs {
                let func = program.function(fid);
                for (_, instr) in func.instr_ids() {
                    match *func.op(instr) {
                        Op::Produce { queue, .. } => {
                            let ep = &mut queues[queue.index()];
                            push_unique(&mut ep.producers, stage);
                            ep.kind = ep.kind.merge(QueueKind::Data);
                        }
                        Op::ProduceToken { queue } => {
                            let ep = &mut queues[queue.index()];
                            push_unique(&mut ep.producers, stage);
                            ep.kind = ep.kind.merge(QueueKind::Token);
                        }
                        Op::Consume { queue, .. } => {
                            let ep = &mut queues[queue.index()];
                            push_unique(&mut ep.consumers, stage);
                            ep.kind = ep.kind.merge(QueueKind::Data);
                        }
                        Op::ConsumeToken { queue } => {
                            let ep = &mut queues[queue.index()];
                            push_unique(&mut ep.consumers, stage);
                            ep.kind = ep.kind.merge(QueueKind::Token);
                        }
                        _ => {}
                    }
                }
            }
        }

        let stages = program
            .thread_entries()
            .iter()
            .zip(&stage_funcs)
            .map(|(&entry, funcs)| StageInfo {
                entry,
                functions: funcs.iter().copied().collect(),
            })
            .collect();
        PipelineMap { stages, queues }
    }

    /// Checks the discipline the native runtime's SPSC queues assume:
    /// every used queue has exactly one producer stage and exactly one
    /// consumer stage.
    pub fn validate(&self) -> Result<(), PipelineMapError> {
        for (q, ep) in self.queues.iter().enumerate() {
            if ep.producers.len() > 1 {
                return Err(PipelineMapError::MultipleProducers {
                    queue: q,
                    stages: ep.producers.clone(),
                });
            }
            if ep.consumers.len() > 1 {
                return Err(PipelineMapError::MultipleConsumers {
                    queue: q,
                    stages: ep.consumers.clone(),
                });
            }
            if !ep.producers.is_empty() && ep.consumers.is_empty() {
                return Err(PipelineMapError::NoConsumer { queue: q });
            }
            if ep.producers.is_empty() && !ep.consumers.is_empty() {
                return Err(PipelineMapError::NoProducer { queue: q });
            }
        }
        Ok(())
    }

    /// `true` when [`validate`](Self::validate) passes.
    pub fn is_spsc(&self) -> bool {
        self.validate().is_ok()
    }

    /// Per-queue communication batch (chunk) sizes for a requested base
    /// batch, one entry per queue id. Delegates to
    /// [`Tuner::queue_batches`]; kept as a method for convenience.
    pub fn batch_hints(&self, batch: usize) -> Vec<usize> {
        Tuner::detect().queue_batches(self, batch)
    }

    /// The role each hardware context plays, recovered from the
    /// transformation's function-naming convention (`dswp.master{t}`,
    /// `dswp.master{t}.r{r}`, `dswp.master{t}.g`, `dswp.scatter{t}`).
    pub fn roles(&self, program: &Program) -> Vec<StageRole> {
        self.stages
            .iter()
            .enumerate()
            .map(|(i, stage)| {
                if i == 0 {
                    return StageRole::Main;
                }
                let name = &program.function(stage.entry).name;
                let Some(rest) = name.strip_prefix("dswp.master") else {
                    return StageRole::Stage(i);
                };
                let mut parts = rest.splitn(2, '.');
                let Some(Ok(t)) = parts.next().map(str::parse::<usize>) else {
                    return StageRole::Stage(i);
                };
                match parts.next() {
                    None => {
                        let scatter = format!("dswp.scatter{t}");
                        if stage
                            .functions
                            .iter()
                            .any(|&f| program.function(f).name == scatter)
                        {
                            StageRole::Scatter(t)
                        } else {
                            StageRole::Stage(t)
                        }
                    }
                    Some("g") => StageRole::Gather(t),
                    Some(r) => match r.strip_prefix('r').and_then(|s| s.parse().ok()) {
                        Some(index) => StageRole::Replica { stage: t, index },
                        None => StageRole::Stage(t),
                    },
                }
            })
            .collect()
    }

    /// Groups the contexts belonging to each replicated stage: the scatter
    /// context, the replica contexts (in round-robin order), the optional
    /// gather context, and the queue sets the scatter feeds / the gather
    /// drains. Empty when the program is unreplicated.
    pub fn replica_groups(&self, program: &Program) -> Vec<ReplicaGroup> {
        let roles = self.roles(program);
        let mut groups: BTreeMap<usize, ReplicaGroup> = BTreeMap::new();
        fn group(groups: &mut BTreeMap<usize, ReplicaGroup>, stage: usize) -> &mut ReplicaGroup {
            groups.entry(stage).or_insert_with(|| ReplicaGroup {
                stage,
                scatter_thread: 0,
                replica_threads: Vec::new(),
                gather_thread: None,
                scatter_queues: Vec::new(),
                gather_queues: Vec::new(),
            })
        }
        for (i, role) in roles.iter().enumerate() {
            match *role {
                StageRole::Scatter(t) => group(&mut groups, t).scatter_thread = i,
                StageRole::Replica { stage, index } => {
                    let g = group(&mut groups, stage);
                    g.replica_threads.push(i);
                    debug_assert_eq!(g.replica_threads.len() - 1, index);
                }
                StageRole::Gather(t) => group(&mut groups, t).gather_thread = Some(i),
                StageRole::Main | StageRole::Stage(_) => {}
            }
        }
        let mut out: Vec<ReplicaGroup> = groups.into_values().collect();
        for g in &mut out {
            for (q, ep) in self.queues.iter().enumerate() {
                if ep.producers == [g.scatter_thread] {
                    g.scatter_queues.push(q);
                }
                if let Some(gt) = g.gather_thread {
                    if ep.consumers == [gt] {
                        g.gather_queues.push(q);
                    }
                }
            }
        }
        out
    }

    /// Human-readable one-line-per-item summary (used by `dswpc`).
    pub fn summary(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, stage) in self.stages.iter().enumerate() {
            let names: Vec<&str> = stage
                .functions
                .iter()
                .map(|&f| program.function(f).name.as_str())
                .collect();
            let _ = writeln!(out, "stage {i}: {}", names.join(", "));
        }
        for (q, ep) in self.queues.iter().enumerate() {
            if !ep.is_used() {
                continue;
            }
            let kind = match ep.kind {
                QueueKind::Unused => "unused",
                QueueKind::Data => "data",
                QueueKind::Token => "token",
                QueueKind::Mixed => "mixed",
            };
            let _ = writeln!(
                out,
                "queue {q}: stage {} -> stage {} ({kind})",
                fmt_stages(&ep.producers),
                fmt_stages(&ep.consumers)
            );
        }
        out
    }
}

/// What a hardware context does in a (possibly replicated) pipeline,
/// recovered by [`PipelineMap::roles`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageRole {
    /// Context 0: the original function with the stage-0 loop spliced in.
    Main,
    /// An ordinary pipeline stage's master context.
    Stage(usize),
    /// The round-robin scatter of a replicated stage (runs on the stage's
    /// original master context).
    Scatter(usize),
    /// One replica of a replicated stage.
    Replica {
        /// The replicated stage.
        stage: usize,
        /// Round-robin position among the stage's replicas.
        index: usize,
    },
    /// The in-order gather of a replicated stage.
    Gather(usize),
}

/// The contexts and queue sets of one replicated stage (see
/// [`PipelineMap::replica_groups`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaGroup {
    /// The replicated stage (its index in the unreplicated pipeline).
    pub stage: usize,
    /// Context running the scatter.
    pub scatter_thread: usize,
    /// Contexts running the replicas, in round-robin order.
    pub replica_threads: Vec<usize>,
    /// Context running the gather, when the stage feeds later stages.
    pub gather_thread: Option<usize>,
    /// Queues produced (only) by the scatter: the per-replica instance
    /// queues plus the gather's iteration-tag control queue.
    pub scatter_queues: Vec<usize>,
    /// Queues consumed (only) by the gather: the per-replica instances of
    /// the stage's downstream queues plus the control queue.
    pub gather_queues: Vec<usize>,
}

impl ReplicaGroup {
    /// Every context belonging to the group, scatter first, gather last.
    pub fn threads(&self) -> Vec<usize> {
        let mut v = vec![self.scatter_thread];
        v.extend(&self.replica_threads);
        v.extend(self.gather_thread);
        v
    }
}

/// Shared tuning knobs for the runtime hints derived from a
/// [`PipelineMap`]: `--batch auto` and `--replicate auto` both consult one
/// `Tuner` instead of each walking the map with private policy.
#[derive(Clone, Copy, Debug)]
pub struct Tuner {
    /// Hardware threads assumed available.
    pub cores: usize,
    /// Upper bound on replicas per stage regardless of core count.
    pub max_replicas: usize,
}

impl Tuner {
    /// Default cap on replicas per stage.
    pub const DEFAULT_MAX_REPLICAS: usize = 8;

    /// A tuner for an assumed number of hardware threads.
    pub fn with_cores(cores: usize) -> Self {
        Tuner {
            cores,
            max_replicas: Self::DEFAULT_MAX_REPLICAS,
        }
    }

    /// A tuner for the detected hardware
    /// ([`std::thread::available_parallelism`], 1 when unknown).
    pub fn detect() -> Self {
        Self::with_cores(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Per-queue communication batch (chunk) sizes for a requested base
    /// batch, one entry per queue id.
    ///
    /// Data and mixed queues get the full `batch`; token queues are capped
    /// at 4 (a token's whole job is to release a waiting peer — sitting on
    /// a deep chunk of them only defers that); unused queues get 1. The
    /// result plugs straight into the native runtime's per-queue batch
    /// override.
    pub fn queue_batches(&self, map: &PipelineMap, batch: usize) -> Vec<usize> {
        let batch = batch.max(1);
        map.queues
            .iter()
            .map(|ep| match ep.kind {
                QueueKind::Data | QueueKind::Mixed => batch,
                QueueKind::Token => batch.clamp(1, 4),
                QueueKind::Unused => 1,
            })
            .collect()
    }

    /// Picks `(stage, replicas)` for `--replicate auto` from the static
    /// per-stage time estimate: the heaviest replicable stage, replicated
    /// just enough that its per-iteration cost drops below the
    /// next-slowest stage's, capped by `cores` and
    /// [`max_replicas`](Self::max_replicas). `None` when no replicable
    /// stage is the bottleneck or fewer than 2 cores are assumed.
    pub fn replica_plan(&self, stage_times: &[f64], replicable: &[bool]) -> Option<(usize, usize)> {
        if self.cores < 2 {
            return None;
        }
        let cap = self.cores.min(self.max_replicas).max(2);
        let t = (0..stage_times.len())
            .filter(|&t| replicable.get(t).copied().unwrap_or(false))
            .max_by(|&a, &b| stage_times[a].total_cmp(&stage_times[b]))?;
        let next = stage_times
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != t)
            .map(|(_, &x)| x)
            .fold(0.0_f64, f64::max);
        if stage_times[t] <= next {
            return None;
        }
        let k = (2..=cap)
            .find(|&k| stage_times[t] / k as f64 <= next)
            .unwrap_or(cap);
        Some((t, k))
    }

    /// Distributes a total-core budget across *every* replicable stage for
    /// `--replicate auto`: greedy water-filling on the static per-stage
    /// time estimate. Each round grants one more replica to the stage with
    /// the largest *effective* time (`stage_times[t] / k[t]`), stopping
    /// when the bottleneck is a non-replicable stage, the budget
    /// (`sum k ≤ cores`) is spent, or every stage hit
    /// [`max_replicas`](Self::max_replicas).
    ///
    /// Returns `(stage, replicas)` pairs in stage order, keeping only
    /// stages that actually earned ≥ 2 replicas. Empty when fewer than 2
    /// cores are assumed or no stage is replicable.
    pub fn replica_plans(&self, stage_times: &[f64], replicable: &[bool]) -> Vec<(usize, usize)> {
        if self.cores < 2 {
            return Vec::new();
        }
        let cap = self.cores.min(self.max_replicas).max(2);
        let repl: Vec<usize> = (0..stage_times.len())
            .filter(|&t| replicable.get(t).copied().unwrap_or(false))
            .collect();
        if repl.is_empty() {
            return Vec::new();
        }
        // Replicating cannot push throughput past the slowest stage that
        // must stay sequential: that's the water level.
        let floor = stage_times
            .iter()
            .enumerate()
            .filter(|&(i, _)| !replicable.get(i).copied().unwrap_or(false))
            .map(|(_, &x)| x)
            .fold(0.0_f64, f64::max);
        let mut k: BTreeMap<usize, usize> = repl.iter().map(|&t| (t, 1)).collect();
        loop {
            if k.values().sum::<usize>() >= self.cores {
                break;
            }
            let Some(t) = repl
                .iter()
                .copied()
                .filter(|&t| k[&t] < cap)
                .max_by(|&a, &b| {
                    (stage_times[a] / k[&a] as f64).total_cmp(&(stage_times[b] / k[&b] as f64))
                })
            else {
                break;
            };
            if stage_times[t] / k[&t] as f64 <= floor {
                break;
            }
            *k.get_mut(&t).unwrap() += 1;
        }
        repl.into_iter()
            .filter(|t| k[t] >= 2)
            .map(|t| (t, k[&t]))
            .collect()
    }
}

fn fmt_stages(stages: &[usize]) -> String {
    match stages {
        [] => "-".to_string(),
        [s] => s.to_string(),
        many => format!("{many:?}"),
    }
}

fn push_unique(v: &mut Vec<usize>, stage: usize) {
    if !v.contains(&stage) {
        v.push(stage);
    }
}

/// Adds `root` and everything reachable from it through direct calls to
/// `out`.
fn direct_closure(program: &Program, root: FuncId, out: &mut BTreeSet<FuncId>) {
    let mut work = vec![root];
    while let Some(fid) = work.pop() {
        if !out.insert(fid) {
            continue;
        }
        let func = program.function(fid);
        for (_, instr) in func.instr_ids() {
            if let Op::Call { callee } = *func.op(instr) {
                if !out.contains(&callee) {
                    work.push(callee);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::{ProgramBuilder, QueueId};

    /// A hand-built two-stage pipeline with a master-loop aux thread:
    /// main produces the aux loop's fid on queue 0 and data on queue 1.
    fn master_loop_program() -> Program {
        let mut pb = ProgramBuilder::new();

        let mut w = pb.function("aux_loop");
        let e = w.entry_block();
        let v = w.reg();
        w.switch_to(e);
        w.consume(v, QueueId(1));
        w.ret();
        let aux_loop = w.finish();

        let mut f = pb.function("main");
        let e = f.entry_block();
        let x = f.reg();
        f.switch_to(e);
        f.iconst(x, 5);
        f.produce(QueueId(0), aux_loop.index() as i64);
        f.produce(QueueId(1), x);
        f.produce(QueueId(0), -1);
        f.halt();
        let main = f.finish();

        let mut m = pb.function("master");
        let e = m.entry_block();
        let loop_ = m.block("loop");
        let fid = m.reg();
        m.switch_to(e);
        m.jump(loop_);
        m.switch_to(loop_);
        m.consume(fid, QueueId(0));
        m.call_ind(fid);
        m.jump(loop_);
        let master = m.finish();

        let mut p = pb.finish(main, 4);
        p.num_queues = 2;
        p.add_thread(master);
        p
    }

    #[test]
    fn resolves_master_loop_indirect_calls() {
        let p = master_loop_program();
        let map = PipelineMap::infer(&p);
        assert_eq!(map.stages.len(), 2);
        // Stage 1 (master) picks up aux_loop through the callind fixpoint.
        let aux = p.function_by_name("aux_loop").unwrap();
        assert!(map.stages[1].functions.contains(&aux));
        // Queue 0: main -> master; queue 1: main -> aux (stage 1).
        assert_eq!(map.queues[0].producers, vec![0]);
        assert_eq!(map.queues[0].consumers, vec![1]);
        assert_eq!(map.queues[1].producers, vec![0]);
        assert_eq!(map.queues[1].consumers, vec![1]);
        assert!(map.is_spsc());
    }

    #[test]
    fn single_thread_program_has_one_stage() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.switch_to(e);
        f.halt();
        let main = f.finish();
        let p = pb.finish(main, 0);
        let map = PipelineMap::infer(&p);
        assert_eq!(map.stages.len(), 1);
        assert!(map.queues.is_empty());
        assert!(map.is_spsc());
    }

    #[test]
    fn classifies_queue_kinds_and_caps_token_batches() {
        // Queue 0 carries data, queue 1 carries tokens, queue 2 sees both
        // (data produce, token consume), queue 3 is declared but untouched.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let x = f.reg();
        f.switch_to(e);
        f.iconst(x, 1);
        f.produce(QueueId(0), x);
        f.produce_token(QueueId(1));
        f.produce(QueueId(2), x);
        f.halt();
        let main = f.finish();
        let mut g = pb.function("aux");
        let e2 = g.entry_block();
        let v = g.reg();
        g.switch_to(e2);
        g.consume(v, QueueId(0));
        g.consume_token(QueueId(1));
        g.consume_token(QueueId(2));
        g.halt();
        let aux = g.finish();
        let mut p = pb.finish(main, 0);
        p.num_queues = 4;
        p.add_thread(aux);

        let map = PipelineMap::infer(&p);
        assert_eq!(map.queues[0].kind, QueueKind::Data);
        assert_eq!(map.queues[1].kind, QueueKind::Token);
        assert_eq!(map.queues[2].kind, QueueKind::Mixed);
        assert_eq!(map.queues[3].kind, QueueKind::Unused);
        assert_eq!(map.batch_hints(16), vec![16, 4, 16, 1]);
        assert_eq!(map.batch_hints(2), vec![2, 2, 2, 1]);
        assert_eq!(map.batch_hints(0), vec![1, 1, 1, 1]);

        let summary = map.summary(&p);
        assert!(summary.contains("(data)"), "{summary}");
        assert!(summary.contains("(token)"), "{summary}");
        assert!(summary.contains("(mixed)"), "{summary}");
    }

    #[test]
    fn detects_spsc_violations() {
        // Both threads produce into queue 0; nobody consumes it.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let x = f.reg();
        f.switch_to(e);
        f.produce(QueueId(0), x);
        f.halt();
        let main = f.finish();
        let mut g = pb.function("aux");
        let e2 = g.entry_block();
        let y = g.reg();
        g.switch_to(e2);
        g.produce(QueueId(0), y);
        g.halt();
        let aux = g.finish();
        let mut p = pb.finish(main, 0);
        p.num_queues = 1;
        p.add_thread(aux);
        let map = PipelineMap::infer(&p);
        assert_eq!(
            map.validate(),
            Err(PipelineMapError::MultipleProducers {
                queue: 0,
                stages: vec![0, 1]
            })
        );
    }
}
