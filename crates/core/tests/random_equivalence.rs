//! Randomized testing of the DSWP transformation: random structured loops
//! (nested diamonds/sequences of random arithmetic, loads, stores) must be
//! observationally equivalent after DSWP under the heuristic *and* under
//! every enumerated valid partitioning.
//!
//! This is the repository's strongest correctness evidence: the generator
//! produces loops with conditional stores, conditionally updated live-outs,
//! cross-iteration register recurrences and aliasing memory traffic, and
//! the oracle is exact (final memory image). Cases are enumerated from
//! deterministic seeds (see `dswp-testutil`).

use dswp::{analyze_loop, dswp_loop, enumerate_two_thread, DswpError, DswpOptions};
use dswp_analysis::AliasMode;
use dswp_ir::interp::Interpreter;
use dswp_ir::verify::verify_program;
use dswp_ir::{BlockId, FunctionBuilder, Program, ProgramBuilder, Reg, RegionId};
use dswp_sim::{Executor, Machine, MachineConfig};
use dswp_testutil::{cases, Rng};

/// Number of general-purpose pool registers the generator plays with.
const POOL: usize = 6;
/// Iterations the generated loop runs.
const ITERS: i64 = 20;
/// Two disjoint scratch arrays (region 0 and region 1).
const ARRAY_A: i64 = 16;
const ARRAY_B: i64 = 48;
const ARRAY_MASK: i64 = 31;

#[derive(Clone, Debug)]
enum LeafOp {
    /// `pool[d] = pool[a] <op> pool[b]`, op selected by `k`.
    Bin { d: u8, a: u8, b: u8, k: u8 },
    /// `pool[d] = (pool[a] <cmp> pool[b])`.
    Cmp { d: u8, a: u8, b: u8, k: u8 },
    /// `pool[d] = array[r][pool[a] & mask]`.
    Load { d: u8, a: u8, r: bool },
    /// `array[r][pool[a] & mask] = pool[s]`.
    Store { s: u8, a: u8, r: bool },
    /// `pool[d] = array[r][i + k]` — IV-addressed (scalar-evolution food).
    IdxLoad { d: u8, k: u8, r: bool },
    /// `array[r][i + k] = pool[s]` — IV-addressed.
    IdxStore { s: u8, k: u8, r: bool },
}

#[derive(Clone, Debug)]
enum Shape {
    Leaf(Vec<LeafOp>),
    Seq(Box<Shape>, Box<Shape>),
    Diamond(u8, Box<Shape>, Box<Shape>),
}

fn leaf_op(rng: &mut Rng) -> LeafOp {
    let r = |rng: &mut Rng| rng.below(POOL) as u8;
    match rng.below(6) {
        0 => LeafOp::Bin {
            d: r(rng),
            a: r(rng),
            b: r(rng),
            k: rng.below(8) as u8,
        },
        1 => LeafOp::Cmp {
            d: r(rng),
            a: r(rng),
            b: r(rng),
            k: rng.below(4) as u8,
        },
        2 => LeafOp::Load {
            d: r(rng),
            a: r(rng),
            r: rng.bool(),
        },
        3 => LeafOp::Store {
            s: r(rng),
            a: r(rng),
            r: rng.bool(),
        },
        4 => LeafOp::IdxLoad {
            d: r(rng),
            k: rng.below(8) as u8,
            r: rng.bool(),
        },
        _ => LeafOp::IdxStore {
            s: r(rng),
            k: rng.below(8) as u8,
            r: rng.bool(),
        },
    }
}

fn shape(rng: &mut Rng, depth: u32) -> Shape {
    let leaf = |rng: &mut Rng| {
        let n = rng.range(1, 5);
        Shape::Leaf(rng.vec(n, leaf_op))
    };
    if depth == 0 {
        return leaf(rng);
    }
    // Weights mirror the original strategy: 3 leaf : 2 seq : 2 diamond.
    match rng.below(7) {
        0..=2 => leaf(rng),
        3 | 4 => {
            let a = shape(rng, depth - 1);
            let b = shape(rng, depth - 1);
            Shape::Seq(Box::new(a), Box::new(b))
        }
        _ => {
            let c = rng.below(POOL) as u8;
            let a = shape(rng, depth - 1);
            let b = shape(rng, depth - 1);
            Shape::Diamond(c, Box::new(a), Box::new(b))
        }
    }
}

fn pool_seeds(rng: &mut Rng) -> Vec<i64> {
    rng.vec(POOL, |r| r.range_i64(-50, 50))
}

struct Emitter {
    pool: Vec<Reg>,
    /// The loop counter (a basic induction variable).
    iv: Reg,
}

impl Emitter {
    fn emit_leaf(&self, f: &mut FunctionBuilder, ops: &[LeafOp]) {
        for op in ops {
            match *op {
                LeafOp::Bin { d, a, b, k } => {
                    use dswp_ir::BinOp::*;
                    let ops = [Add, Sub, Mul, And, Or, Xor, Min, Max];
                    f.binary(
                        self.pool[d as usize],
                        ops[k as usize % ops.len()],
                        self.pool[a as usize],
                        self.pool[b as usize],
                    );
                }
                LeafOp::Cmp { d, a, b, k } => {
                    use dswp_ir::CmpOp::*;
                    let ops = [Eq, Ne, Lt, Ge];
                    f.cmp(
                        self.pool[d as usize],
                        ops[k as usize % ops.len()],
                        self.pool[a as usize],
                        self.pool[b as usize],
                    );
                }
                LeafOp::Load { d, a, r } => {
                    let addr = f.reg();
                    f.and(addr, self.pool[a as usize], ARRAY_MASK);
                    let (base, region) = if r {
                        (ARRAY_B, RegionId(1))
                    } else {
                        (ARRAY_A, RegionId(0))
                    };
                    f.add(addr, addr, base);
                    f.load_region(self.pool[d as usize], addr, 0, region);
                }
                LeafOp::Store { s, a, r } => {
                    let addr = f.reg();
                    f.and(addr, self.pool[a as usize], ARRAY_MASK);
                    let (base, region) = if r {
                        (ARRAY_B, RegionId(1))
                    } else {
                        (ARRAY_A, RegionId(0))
                    };
                    f.add(addr, addr, base);
                    f.store_region(self.pool[s as usize], addr, 0, region);
                }
                LeafOp::IdxLoad { d, k, r } => {
                    let addr = f.reg();
                    let (base, region) = if r {
                        (ARRAY_B, RegionId(1))
                    } else {
                        (ARRAY_A, RegionId(0))
                    };
                    f.add(addr, self.iv, base);
                    f.load_region(self.pool[d as usize], addr, k as i64, region);
                }
                LeafOp::IdxStore { s, k, r } => {
                    let addr = f.reg();
                    let (base, region) = if r {
                        (ARRAY_B, RegionId(1))
                    } else {
                        (ARRAY_A, RegionId(0))
                    };
                    f.add(addr, self.iv, base);
                    f.store_region(self.pool[s as usize], addr, k as i64, region);
                }
            }
        }
    }

    /// Emits `shape`, returning the block to continue from.
    fn emit(&self, f: &mut FunctionBuilder, cur: BlockId, shape: &Shape, n: &mut usize) -> BlockId {
        *n += 1;
        match shape {
            Shape::Leaf(ops) => {
                f.switch_to(cur);
                self.emit_leaf(f, ops);
                cur
            }
            Shape::Seq(a, b) => {
                let after_a = self.emit(f, cur, a, n);
                self.emit(f, after_a, b, n)
            }
            Shape::Diamond(c, a, b) => {
                let then_b = f.block(format!("then{n}"));
                let else_b = f.block(format!("else{n}"));
                let join = f.block(format!("join{n}"));
                let cond = f.reg();
                f.switch_to(cur);
                f.and(cond, self.pool[*c as usize], 1);
                f.br(cond, then_b, else_b);
                let ta = self.emit(f, then_b, a, n);
                f.switch_to(ta);
                f.jump(join);
                let tb = self.emit(f, else_b, b, n);
                f.switch_to(tb);
                f.jump(join);
                join
            }
        }
    }
}

/// Builds a terminating loop program around the random body.
fn build_program(body: &Shape, seeds: &[i64]) -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let entry = f.entry_block();
    let header = f.block("header");
    let first_body = f.block("body");
    let latch = f.block("latch");
    let exit = f.block("exit");

    let i = f.reg();
    let n = f.reg();
    let done = f.reg();
    let pool: Vec<Reg> = (0..POOL).map(|_| f.reg()).collect();

    f.switch_to(entry);
    f.iconst(i, 0);
    f.iconst(n, ITERS);
    for (k, &r) in pool.iter().enumerate() {
        f.iconst(r, seeds[k % seeds.len()]);
    }
    f.jump(header);

    f.switch_to(header);
    f.cmp_ge(done, i, n);
    f.br(done, exit, first_body);

    let em = Emitter {
        pool: pool.clone(),
        iv: i,
    };
    let mut counter = 0usize;
    let last = em.emit(&mut f, first_body, body, &mut counter);
    f.switch_to(last);
    f.jump(latch);
    f.switch_to(latch);
    f.add(i, i, 1);
    f.jump(header);

    f.switch_to(exit);
    // Make every pool register observable through memory.
    let base = f.reg();
    f.iconst(base, 0);
    for (k, &r) in pool.iter().enumerate() {
        f.store(r, base, k as i64);
    }
    f.halt();
    let main = f.finish();

    let mut mem = vec![0i64; 96];
    for (k, slot) in mem.iter_mut().enumerate().skip(ARRAY_A as usize) {
        *slot = (k as i64).wrapping_mul(2654435761) % 1000;
    }
    pb.finish_with_memory(main, mem)
}

#[test]
fn random_loops_survive_dswp() {
    for seed in 0..cases(48) as u64 {
        let mut rng = Rng::new(seed);
        let body = shape(&mut rng, 2);
        let seeds = pool_seeds(&mut rng);

        let program = build_program(&body, &seeds);
        verify_program(&program).expect("generated program verifies");
        let baseline = Interpreter::new(&program).run().expect("baseline runs");

        let main = program.main();
        let header = BlockId(1);

        // Heuristic pass (profitability disabled so every split is tested).
        let mut p = program.clone();
        let opts = DswpOptions {
            alias: AliasMode::Region,
            min_speedup: 0.0,
            ..DswpOptions::default()
        };
        match dswp_loop(&mut p, main, header, &baseline.profile, &opts) {
            Ok(_) => {
                verify_program(&p).expect("transformed program verifies");
                let exec = Executor::new(&p).run().expect("no deadlock");
                assert_eq!(&exec.memory, &baseline.memory, "seed {seed}");
            }
            Err(DswpError::SingleScc | DswpError::NotProfitable) => {}
            Err(e) => panic!("seed {seed}: unexpected DSWP error: {e}"),
        }

        // A handful of enumerated valid partitionings.
        if let Ok(a) = analyze_loop(&program, main, header, AliasMode::Region) {
            for part in enumerate_two_thread(&a.dag, 4) {
                let mut p = program.clone();
                let opts = DswpOptions {
                    alias: AliasMode::Region,
                    partitioning: Some(part.clone()),
                    ..DswpOptions::default()
                };
                dswp_loop(&mut p, main, header, &baseline.profile, &opts)
                    .expect("valid partitioning transforms");
                let exec = Executor::new(&p).run().expect("no deadlock");
                assert_eq!(
                    &exec.memory, &baseline.memory,
                    "seed {seed} partition {part:?}"
                );
            }
        }
    }
}

#[test]
fn random_loops_survive_scev_then_precise_dswp() {
    for seed in 0..cases(48) as u64 {
        let mut rng = Rng::new(0x5343_4556 ^ seed);
        let body = shape(&mut rng, 2);
        let seeds = pool_seeds(&mut rng);

        let program = build_program(&body, &seeds);
        let baseline = Interpreter::new(&program).run().expect("baseline runs");
        let main = program.main();

        let mut p = program.clone();
        dswp::annotate_loop_affine(&mut p, main, BlockId(1)).expect("scev runs");
        let annotated = Interpreter::new(&p).run().expect("annotated runs");
        assert_eq!(&annotated.memory, &baseline.memory, "seed {seed}");

        let opts = DswpOptions {
            alias: AliasMode::Precise,
            min_speedup: 0.0,
            ..DswpOptions::default()
        };
        if dswp_loop(&mut p, main, BlockId(1), &annotated.profile, &opts).is_ok() {
            let exec = Executor::new(&p).run().expect("no deadlock");
            assert_eq!(
                &exec.memory, &baseline.memory,
                "seed {seed}: scev-derived precise analysis licensed a wrong split"
            );
        }
    }
}

#[test]
fn random_loops_survive_list_scheduling() {
    for seed in 0..cases(48) as u64 {
        let mut rng = Rng::new(0x5343_4845 ^ seed);
        let body = shape(&mut rng, 2);
        let seeds = pool_seeds(&mut rng);

        let program = build_program(&body, &seeds);
        let baseline = Interpreter::new(&program).run().expect("baseline runs");
        let mut s = program.clone();
        dswp::schedule_program(&mut s, &dswp_ir::LatencyTable::default(), AliasMode::Region);
        verify_program(&s).expect("scheduled program verifies");
        let after = Interpreter::new(&s).run().expect("scheduled runs");
        assert_eq!(&after.memory, &baseline.memory, "seed {seed}");

        // Scheduling composes with DSWP.
        let main = s.main();
        let opts = DswpOptions {
            alias: AliasMode::Region,
            min_speedup: 0.0,
            ..DswpOptions::default()
        };
        if dswp_loop(&mut s, main, BlockId(1), &after.profile, &opts).is_ok() {
            let exec = Executor::new(&s).run().expect("no deadlock");
            assert_eq!(&exec.memory, &baseline.memory, "seed {seed}");
        }
    }
}

#[test]
fn random_loops_survive_unrolling_then_dswp() {
    for seed in 0..cases(48) as u64 {
        let mut rng = Rng::new(0x554E_524C ^ seed);
        let body = shape(&mut rng, 1);
        let seeds = pool_seeds(&mut rng);
        let factor = rng.range(2, 4);

        let program = build_program(&body, &seeds);
        let baseline = Interpreter::new(&program).run().expect("baseline runs");
        let main = program.main();

        let mut u = program.clone();
        dswp::unroll_loop(&mut u, main, BlockId(1), factor).expect("unrolls");
        verify_program(&u).expect("unrolled program verifies");
        let after = Interpreter::new(&u).run().expect("unrolled runs");
        assert_eq!(&after.memory, &baseline.memory, "seed {seed}");

        let opts = DswpOptions {
            alias: AliasMode::Region,
            min_speedup: 0.0,
            ..DswpOptions::default()
        };
        if dswp_loop(&mut u, main, BlockId(1), &after.profile, &opts).is_ok() {
            let exec = Executor::new(&u).run().expect("no deadlock");
            assert_eq!(&exec.memory, &baseline.memory, "seed {seed}");
        }
    }
}

#[test]
fn random_loops_survive_dswp_on_the_timing_model() {
    for seed in 0..cases(48) as u64 {
        let mut rng = Rng::new(0x5449_4D45 ^ seed);
        let body = shape(&mut rng, 1);
        let seeds = pool_seeds(&mut rng);

        let program = build_program(&body, &seeds);
        let baseline = Interpreter::new(&program).run().expect("baseline runs");
        let main = program.main();
        let mut p = program.clone();
        let opts = DswpOptions {
            alias: AliasMode::Region,
            min_speedup: 0.0,
            ..DswpOptions::default()
        };
        if dswp_loop(&mut p, main, BlockId(1), &baseline.profile, &opts).is_ok() {
            let sim = Machine::new(&p, MachineConfig::full_width())
                .run()
                .expect("timing model runs");
            assert_eq!(&sim.memory, &baseline.memory, "seed {seed}");
        }
    }
}
