//! Observational-equivalence tests for the DSWP transformation: the
//! transformed multi-threaded program must compute exactly the memory image
//! of the original single-threaded program, on both the functional executor
//! and the cycle-level timing model.

mod common;

use common::*;
use dswp::{dswp_loop, enumerate_two_thread, DswpError, DswpOptions, Partitioning};
use dswp_analysis::{build_pdg, find_loops, AliasMode, DagScc, Liveness, PdgOptions};
use dswp_ir::interp::Interpreter;
use dswp_ir::verify::verify_program;
use dswp_sim::{Executor, Machine, MachineConfig};

#[test]
fn figure2_roundtrips_with_heuristic_partition() {
    let kernel = figure2_kernel();
    let (p, report) = check_dswp(&kernel, &default_opts());
    assert_eq!(report.partitioning.num_threads, 2);
    // The paper's Figure 2(c) shows five SCCs over the *labeled*
    // instructions A–K; our IR additionally carries three explicit `jump`
    // instructions (end of BB3/BB5/BB6), each a singleton SCC.
    assert_eq!(report.num_sccs, 8);
    assert!(report.artifacts.flows.loop_flows > 0);
    assert!(report.artifacts.flows.final_flows >= 1, "sum is a live-out");
    assert_eq!(p.num_threads(), 2);
}

#[test]
fn list_kernel_roundtrips() {
    let kernel = list_kernel(64);
    let (_, report) = check_dswp(&kernel, &default_opts());
    assert_eq!(report.partitioning.num_threads, 2);
}

#[test]
fn diamond_kernel_roundtrips() {
    let kernel = diamond_kernel(50);
    check_dswp(&kernel, &default_opts());
}

#[test]
fn serial_loop_is_rejected_as_single_scc() {
    let kernel = serial_kernel(1_000_000);
    let baseline = Interpreter::new(&kernel.program).run().unwrap();
    let mut p = kernel.program.clone();
    let main = p.main();
    let err = dswp_loop(
        &mut p,
        main,
        kernel.header,
        &baseline.profile,
        &default_opts(),
    )
    .unwrap_err();
    assert_eq!(err, DswpError::SingleScc);
}

/// The strongest transformation test: *every* valid two-thread partitioning
/// of the Figure 2 loop must produce an equivalent program.
#[test]
fn every_valid_partitioning_of_figure2_is_equivalent() {
    let kernel = figure2_kernel();
    let baseline = Interpreter::new(&kernel.program).run().unwrap();

    // Recompute the DAG the way the driver does, to enumerate partitions.
    let mut scratch = kernel.program.clone();
    let main = scratch.main();
    let l = find_loops(scratch.function(main))
        .into_iter()
        .find(|l| l.header == kernel.header)
        .unwrap();
    dswp::normalize_loop(scratch.function_mut(main), &l).unwrap();
    let l = find_loops(scratch.function(main))
        .into_iter()
        .find(|l| l.header == kernel.header)
        .unwrap();
    let liveness = Liveness::compute(scratch.function(main));
    let pdg = build_pdg(
        scratch.function(main),
        &l,
        &liveness,
        &PdgOptions {
            alias: AliasMode::Region,
        },
    );
    let dag = DagScc::compute(&pdg.instr_graph());
    let partitions = enumerate_two_thread(&dag, 256);
    assert!(
        partitions.len() >= 3,
        "expected several cuts, got {}",
        partitions.len()
    );

    for (k, part) in partitions.iter().enumerate() {
        let mut p = kernel.program.clone();
        let opts = DswpOptions {
            partitioning: Some(part.clone()),
            ..default_opts()
        };
        let report = dswp_loop(&mut p, main, kernel.header, &baseline.profile, &opts)
            .unwrap_or_else(|e| panic!("partition {k} failed: {e} ({part:?})"));
        assert_eq!(report.partitioning, *part);
        verify_program(&p).unwrap();
        let exec = Executor::new(&p)
            .run()
            .unwrap_or_else(|e| panic!("partition {k} deadlocked or failed: {e}"));
        assert_eq!(exec.memory, baseline.memory, "partition {k} diverged");
    }
}

#[test]
fn every_valid_partitioning_of_diamond_is_equivalent() {
    let kernel = diamond_kernel(40);
    let baseline = Interpreter::new(&kernel.program).run().unwrap();
    let mut scratch = kernel.program.clone();
    let main = scratch.main();
    let l = find_loops(scratch.function(main))
        .into_iter()
        .find(|l| l.header == kernel.header)
        .unwrap();
    dswp::normalize_loop(scratch.function_mut(main), &l).unwrap();
    let l = find_loops(scratch.function(main))
        .into_iter()
        .find(|l| l.header == kernel.header)
        .unwrap();
    let liveness = Liveness::compute(scratch.function(main));
    let pdg = build_pdg(
        scratch.function(main),
        &l,
        &liveness,
        &PdgOptions {
            alias: AliasMode::Region,
        },
    );
    let dag = DagScc::compute(&pdg.instr_graph());
    for (k, part) in enumerate_two_thread(&dag, 512).iter().enumerate() {
        let mut p = kernel.program.clone();
        let opts = DswpOptions {
            partitioning: Some(part.clone()),
            ..default_opts()
        };
        let report = dswp_loop(&mut p, main, kernel.header, &baseline.profile, &opts);
        let report = match report {
            Ok(r) => r,
            Err(e) => panic!("partition {k} failed: {e}"),
        };
        let _ = report;
        let exec = Executor::new(&p)
            .run()
            .unwrap_or_else(|e| panic!("partition {k} failed at runtime: {e}"));
        assert_eq!(exec.memory, baseline.memory, "partition {k} diverged");
    }
}

#[test]
fn dswp_speeds_up_the_list_kernel_on_the_timing_model() {
    // The decoupling claim, end to end: DSWP'd pointer-chasing with a heavy
    // body should beat single-threaded execution on the dual-core model.
    let kernel = list_kernel(512);
    let baseline_sim = Machine::new(&kernel.program, MachineConfig::full_width())
        .run()
        .unwrap();
    let (p, _) = check_dswp(&kernel, &default_opts());
    let dswp_sim = Machine::new(&p, MachineConfig::full_width()).run().unwrap();
    assert!(
        dswp_sim.cycles < baseline_sim.cycles,
        "DSWP {} cycles vs baseline {}",
        dswp_sim.cycles,
        baseline_sim.cycles
    );
}

#[test]
fn queue_occupancy_shows_decoupling() {
    let kernel = list_kernel(512);
    let (p, _) = check_dswp(&kernel, &default_opts());
    let sim = Machine::new(&p, MachineConfig::full_width()).run().unwrap();
    // The producer runs ahead: some cycles must have buffered entries.
    assert!(
        sim.occupancy.max() > 1,
        "occupancy {:?}",
        sim.occupancy.max()
    );
}

#[test]
fn comm_latency_insensitivity_figure9b_shape() {
    // DSWP's headline property: the loop critical path never crosses cores,
    // so 10x the communication latency should barely change cycles.
    let kernel = list_kernel(512);
    let (p, _) = check_dswp(&kernel, &default_opts());
    let c1 = Machine::new(&p, MachineConfig::full_width().with_comm_latency(1))
        .run()
        .unwrap();
    let c50 = Machine::new(&p, MachineConfig::full_width().with_comm_latency(50))
        .run()
        .unwrap();
    assert_eq!(c1.memory, c50.memory);
    let ratio = c50.cycles as f64 / c1.cycles as f64;
    assert!(
        ratio < 1.25,
        "DSWP should tolerate latency; got slowdown ratio {ratio:.3}"
    );
}

#[test]
fn manual_three_thread_partition_roundtrips() {
    // Extension beyond the paper's dual-core evaluation: a 3-stage pipeline.
    let kernel = figure2_kernel();
    let baseline = Interpreter::new(&kernel.program).run().unwrap();
    let mut p = kernel.program.clone();
    let main = p.main();
    // Any assignment that is monotone over the DAG's topological order is
    // valid (all arcs go forward in that order).
    let mut scratch = kernel.program.clone();
    let l = find_loops(scratch.function(main))
        .into_iter()
        .find(|l| l.header == kernel.header)
        .unwrap();
    dswp::normalize_loop(scratch.function_mut(main), &l).unwrap();
    let l = find_loops(scratch.function(main))
        .into_iter()
        .find(|l| l.header == kernel.header)
        .unwrap();
    let liveness = Liveness::compute(scratch.function(main));
    let pdg = build_pdg(
        scratch.function(main),
        &l,
        &liveness,
        &PdgOptions {
            alias: AliasMode::Region,
        },
    );
    let dag = DagScc::compute(&pdg.instr_graph());
    let n = dag.len();
    assert!(n >= 3);
    let part = Partitioning::new((0..n).map(|i| i * 3 / n).collect(), 3);
    let opts = DswpOptions {
        partitioning: Some(part),
        max_threads: 3,
        ..default_opts()
    };
    let report = dswp_loop(&mut p, main, kernel.header, &baseline.profile, &opts).unwrap();
    assert_eq!(report.partitioning.num_threads, 3);
    assert_eq!(p.num_threads(), 3);
    verify_program(&p).unwrap();
    let exec = Executor::new(&p).run().unwrap();
    assert_eq!(exec.memory, baseline.memory);
    let sim = Machine::new(&p, MachineConfig::full_width()).run().unwrap();
    assert_eq!(sim.memory, baseline.memory);
}
