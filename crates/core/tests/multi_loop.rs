//! DSWP applied to *two* loops of one program, each getting its own
//! auxiliary thread and master queue — stressing the Section 3 runtime
//! protocol (per-loop auxiliary functions, per-thread master loops,
//! terminate sentinels at every pre-existing halt).

use dswp::{dswp_loop, DswpOptions};
use dswp_analysis::AliasMode;
use dswp_ir::interp::Interpreter;
use dswp_ir::verify::verify_program;
use dswp_ir::{BlockId, Program, ProgramBuilder, RegionId};
use dswp_sim::{Executor, Machine, MachineConfig};

/// Two back-to-back loops: the first transforms an array, the second sums
/// the transformed values through a pointer chase.
fn two_loop_program(n: i64) -> (Program, BlockId, BlockId) {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let h1 = f.block("h1");
    let b1 = f.block("b1");
    let mid = f.block("mid");
    let h2 = f.block("h2");
    let b2 = f.block("b2");
    let exit = f.block("exit");

    let (i, nn, done1, v, t, addr, base) = (
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
    );
    let (j, done2, sum) = (f.reg(), f.reg(), f.reg());

    f.switch_to(e);
    f.iconst(i, 0);
    f.iconst(nn, n);
    f.iconst(base, 0);
    f.jump(h1);

    // Loop 1: a[k] = f(a[k]) — counted, DOALL-shaped.
    f.switch_to(h1);
    f.cmp_ge(done1, i, nn);
    f.br(done1, mid, b1);
    f.switch_to(b1);
    f.add(addr, i, 8);
    f.load_region(v, addr, 0, RegionId(0));
    f.mul(t, v, 7);
    f.add(t, t, 3);
    f.rem(t, t, 1001);
    f.store_region(t, addr, 0, RegionId(0));
    f.add(i, i, 1);
    f.jump(h1);

    f.switch_to(mid);
    f.iconst(j, 0);
    f.iconst(sum, 0);
    f.jump(h2);

    // Loop 2: sum the transformed array with a heavier body.
    f.switch_to(h2);
    f.cmp_ge(done2, j, nn);
    f.br(done2, exit, b2);
    f.switch_to(b2);
    f.add(addr, j, 8);
    f.load_region(v, addr, 0, RegionId(0));
    f.mul(t, v, 5);
    f.rem(t, t, 997);
    f.add(sum, sum, t);
    f.add(j, j, 1);
    f.jump(h2);

    f.switch_to(exit);
    f.store(sum, base, 0);
    f.halt();
    let main = f.finish();

    let mut mem = vec![0i64; 8 + n as usize];
    for k in 0..n as usize {
        mem[8 + k] = (k as i64 * 31 + 11) % 500;
    }
    (pb.finish_with_memory(main, mem), BlockId(1), BlockId(4))
}

#[test]
fn both_loops_can_be_dswped_in_sequence() {
    let (p, h1, h2) = two_loop_program(48);
    let baseline = Interpreter::new(&p).run().unwrap();

    let mut q = p.clone();
    let main = q.main();
    let opts = DswpOptions {
        alias: AliasMode::Region,
        min_speedup: 0.0,
        ..DswpOptions::default()
    };
    let r1 = dswp_loop(&mut q, main, h1, &baseline.profile, &opts).unwrap();
    // After the first transform, the program has queue instructions; the
    // partitioner of the second loop only needs the second loop's profile —
    // reuse the original (block ids of untouched blocks are stable).
    let r2 = dswp_loop(&mut q, main, h2, &baseline.profile, &opts).unwrap();
    assert_eq!(r1.partitioning.num_threads, 2);
    assert_eq!(r2.partitioning.num_threads, 2);
    assert_eq!(q.num_threads(), 3, "one auxiliary context per loop");
    verify_program(&q).unwrap();

    let exec = Executor::new(&q).run().unwrap();
    assert_eq!(exec.memory, baseline.memory);

    let sim = Machine::new(&q, MachineConfig::full_width()).run().unwrap();
    assert_eq!(sim.memory, baseline.memory);
}

#[test]
fn second_loop_alone_also_works() {
    let (p, _, h2) = two_loop_program(48);
    let baseline = Interpreter::new(&p).run().unwrap();
    let mut q = p.clone();
    let main = q.main();
    let opts = DswpOptions {
        alias: AliasMode::Region,
        min_speedup: 0.0,
        ..DswpOptions::default()
    };
    dswp_loop(&mut q, main, h2, &baseline.profile, &opts).unwrap();
    let exec = Executor::new(&q).run().unwrap();
    assert_eq!(exec.memory, baseline.memory);
}
