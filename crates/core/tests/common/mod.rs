//! Shared kernels and the DSWP equivalence checker used by the
//! transformation test suites.
#![allow(dead_code)] // each test binary uses a different subset

use dswp::{dswp_loop, DswpOptions, DswpReport};
use dswp_analysis::AliasMode;
use dswp_ir::interp::Interpreter;
use dswp_ir::verify::verify_program;
use dswp_ir::{BlockId, Program, ProgramBuilder, RegionId};
use dswp_sim::{Executor, Machine, MachineConfig};

/// A test kernel: a program plus the header of its DSWP candidate loop.
pub struct Kernel {
    pub program: Program,
    pub header: BlockId,
    pub name: &'static str,
}

/// Runs the single-threaded baseline, applies DSWP with `opts`, verifies
/// the result structurally, and checks observational equivalence (final
/// memory) on both the functional executor and the timing model.
///
/// Returns the transformed program and the report for further inspection.
pub fn check_dswp(kernel: &Kernel, opts: &DswpOptions) -> (Program, DswpReport) {
    let baseline = Interpreter::new(&kernel.program)
        .run()
        .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", kernel.name));

    let mut p = kernel.program.clone();
    let main = p.main();
    let report = dswp_loop(&mut p, main, kernel.header, &baseline.profile, opts)
        .unwrap_or_else(|e| panic!("{}: dswp failed: {e}", kernel.name));
    verify_program(&p).unwrap_or_else(|e| panic!("{}: verify failed: {e}", kernel.name));

    let exec = Executor::new(&p)
        .run()
        .unwrap_or_else(|e| panic!("{}: functional run failed: {e}", kernel.name));
    assert_eq!(
        exec.memory, baseline.memory,
        "{}: functional memory mismatch",
        kernel.name
    );

    let sim = Machine::new(&p, MachineConfig::full_width())
        .run()
        .unwrap_or_else(|e| panic!("{}: timing run failed: {e}", kernel.name));
    assert_eq!(
        sim.memory, baseline.memory,
        "{}: timing-model memory mismatch",
        kernel.name
    );

    (p, report)
}

/// The paper's Figure 2(a): list-of-lists traversal summing all elements.
pub fn figure2_kernel() -> Kernel {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let bb1 = f.entry_block();
    let bb2 = f.block("BB2");
    let bb3 = f.block("BB3");
    let bb4 = f.block("BB4");
    let bb5 = f.block("BB5");
    let bb6 = f.block("BB6");
    let bb7 = f.block("BB7");
    let (r1, r2, r3, r4, p1, p2, r6) = (
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
    );
    f.switch_to(bb1);
    f.iconst(r1, 1);
    f.iconst(r4, 0);
    f.jump(bb2);
    f.switch_to(bb2);
    f.cmp_eq(p1, r1, 0);
    f.br(p1, bb7, bb3);
    f.switch_to(bb3);
    f.load_region(r2, r1, 2, RegionId(0));
    f.jump(bb4);
    f.switch_to(bb4);
    f.cmp_eq(p2, r2, 0);
    f.br(p2, bb6, bb5);
    f.switch_to(bb5);
    f.load_region(r3, r2, 3, RegionId(1));
    f.add(r4, r4, r3);
    f.load_region(r2, r2, 0, RegionId(1));
    f.jump(bb4);
    f.switch_to(bb6);
    f.load_region(r1, r1, 1, RegionId(0));
    f.jump(bb2);
    f.switch_to(bb7);
    f.iconst(r6, 0);
    f.store(r4, r6, 0);
    f.halt();
    let main = f.finish();

    // Build 8 outer nodes, each with a short inner list.
    let mut mem = vec![0i64; 512];
    let mut outer = 1usize;
    let mut inner_base = 200usize;
    for o in 0..8 {
        let next_outer = if o == 7 { 0 } else { outer + 3 };
        mem[outer + 1] = next_outer as i64;
        mem[outer + 2] = inner_base as i64;
        for k in 0..(o % 3) + 1 {
            let next_inner = if k == o % 3 { 0 } else { inner_base + 4 };
            mem[inner_base] = next_inner as i64;
            mem[inner_base + 3] = (o * 10 + k + 1) as i64;
            inner_base += 4;
        }
        outer += 3;
    }
    Kernel {
        program: pb.finish_with_memory(main, mem),
        header: BlockId(1),
        name: "figure2",
    }
}

/// A linked-list traversal with a multi-instruction body (the paper's
/// Figure 1 / 181.mcf shape): `while (p = p->next) { work on p }`.
pub fn list_kernel(nodes: usize) -> Kernel {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let exit = f.block("exit");
    let (ptr, sum, v, t, done, base) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.switch_to(e);
    f.iconst(ptr, 8);
    f.iconst(sum, 0);
    f.iconst(base, 0);
    f.jump(header);
    f.switch_to(header);
    f.cmp_eq(done, ptr, 0);
    f.br(done, exit, body);
    f.switch_to(body);
    // Field-granular regions: `next` (offset 0), `val` (offset 1) and
    // `out` (offset 2) of a fixed-stride record never overlap — the
    // field-sensitivity a production memory analysis provides.
    f.load_region(v, ptr, 1, RegionId(1));
    f.mul(t, v, 3);
    f.add(t, t, 7);
    f.rem(t, t, 1000);
    f.add(sum, sum, t);
    f.store_region(t, ptr, 2, RegionId(2));
    f.load_region(ptr, ptr, 0, RegionId(0));
    f.jump(header);
    f.switch_to(exit);
    f.store(sum, base, 0);
    f.halt();
    let main = f.finish();

    let mut mem = vec![0i64; 8 + nodes * 4];
    let mut addr = 8usize;
    for i in 0..nodes {
        let next = if i + 1 == nodes { 0 } else { addr + 4 };
        mem[addr] = next as i64;
        mem[addr + 1] = (i as i64) * 17 % 256;
        addr += 4;
    }
    Kernel {
        program: pb.finish_with_memory(main, mem),
        header: BlockId(1),
        name: "list",
    }
}

/// A counted loop with a control-flow diamond in the body and a
/// conditionally updated live-out (exercises conditional control
/// dependences and the live-in/live-out coupling).
pub fn diamond_kernel(n: i64) -> Kernel {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let test = f.block("test");
    let odd = f.block("odd");
    let even = f.block("even");
    let join = f.block("join");
    let exit = f.block("exit");
    let (i, nn, done, a, b, sum, last_odd, parity, base) = (
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
    );
    f.switch_to(e);
    f.iconst(i, 0);
    f.iconst(nn, n);
    f.iconst(sum, 0);
    f.iconst(last_odd, -1);
    f.iconst(base, 0);
    f.jump(header);
    f.switch_to(header);
    f.cmp_ge(done, i, nn);
    f.br(done, exit, test);
    f.switch_to(test);
    let a_addr = f.reg();
    f.add(a_addr, i, 16);
    f.load_region(a, a_addr, 0, RegionId(0));
    f.and(parity, a, 1);
    f.br(parity, odd, even);
    f.switch_to(odd);
    f.mul(b, a, 3);
    f.mov(last_odd, i); // conditionally updated live-out
    f.jump(join);
    f.switch_to(even);
    f.add(b, a, 1);
    f.jump(join);
    f.switch_to(join);
    f.add(sum, sum, b);
    let b_addr = f.reg();
    f.add(b_addr, i, 600);
    f.store_region(b, b_addr, 0, RegionId(1));
    f.add(i, i, 1);
    f.jump(header);
    f.switch_to(exit);
    f.store(sum, base, 0);
    f.store(last_odd, base, 1);
    f.halt();
    let main = f.finish();

    let mut mem = vec![0i64; 1200];
    for k in 0..n as usize {
        mem[16 + k] = (k as i64 * 7 + 3) % 97;
    }
    Kernel {
        program: pb.finish_with_memory(main, mem),
        header: BlockId(1),
        name: "diamond",
    }
}

/// A fully serialized loop: one cross-iteration dependence chain
/// (the 164.gzip shape, Section 5.4) — DSWP must decline.
pub fn serial_kernel(n: i64) -> Kernel {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let exit = f.block("exit");
    let (x, done, base) = (f.reg(), f.reg(), f.reg());
    f.switch_to(e);
    f.iconst(x, 1);
    f.iconst(base, 0);
    f.jump(header);
    f.switch_to(header);
    // x evolves serially; the exit test depends on x itself.
    f.mul(x, x, 5);
    f.add(x, x, 1);
    f.rem(x, x, 1 << 30);
    f.cmp_ge(done, x, n);
    f.br(done, exit, header);
    f.switch_to(exit);
    f.store(x, base, 0);
    f.halt();
    let main = f.finish();
    Kernel {
        program: pb.finish(main, 2),
        header: BlockId(1),
        name: "serial",
    }
}

/// Default options with region-precision alias analysis.
pub fn default_opts() -> DswpOptions {
    DswpOptions {
        alias: AliasMode::Region,
        ..DswpOptions::default()
    }
}
