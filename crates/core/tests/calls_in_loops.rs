//! DSWP on loops containing function calls. Calls are memory/ordering
//! barriers in the PDG (Section 2.2.4 category 3 covers "the ordering of
//! system calls"), so they join the loop's memory recurrences; the rest of
//! the loop still pipelines, and whichever thread receives the call invokes
//! the callee in its own context.

use dswp::{dswp_loop, loop_stats, DswpOptions};
use dswp_analysis::AliasMode;
use dswp_ir::interp::Interpreter;
use dswp_ir::verify::verify_program;
use dswp_ir::{BlockId, Program, ProgramBuilder, RegionId};
use dswp_sim::{Executor, Machine, MachineConfig};

/// A loop that calls a helper every iteration: the helper bumps a counter
/// in memory; the loop also does register work that can pipeline.
fn kernel(n: i64) -> (Program, BlockId) {
    let mut pb = ProgramBuilder::new();

    // Helper: mem[1] = mem[1] * 3 + 1 (a serial memory recurrence).
    let mut h = pb.function("helper");
    let he = h.entry_block();
    let (b, v) = (h.reg(), h.reg());
    h.switch_to(he);
    h.iconst(b, 0);
    h.load_region(v, b, 1, RegionId(7));
    h.mul(v, v, 3);
    h.add(v, v, 1);
    h.store_region(v, b, 1, RegionId(7));
    h.ret();
    let helper = h.finish();

    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let exit = f.block("exit");
    let (i, nn, done, sum, t, base, addr) = (
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
    );
    f.switch_to(e);
    f.iconst(i, 0);
    f.iconst(nn, n);
    f.iconst(sum, 0);
    f.iconst(base, 0);
    f.jump(header);
    f.switch_to(header);
    f.cmp_ge(done, i, nn);
    f.br(done, exit, body);
    f.switch_to(body);
    f.call(helper);
    f.add(addr, i, 16);
    f.load_region(t, addr, 0, RegionId(0));
    f.mul(t, t, 7);
    f.rem(t, t, 101);
    f.add(sum, sum, t);
    f.add(i, i, 1);
    f.jump(header);
    f.switch_to(exit);
    f.store(sum, base, 0);
    f.halt();
    let main = f.finish();

    let mut mem = vec![0i64; 16 + n as usize];
    mem[1] = 1;
    for k in 0..n as usize {
        mem[16 + k] = (k as i64 * 13 + 5) % 77;
    }
    (pb.finish_with_memory(main, mem), BlockId(1))
}

#[test]
fn loop_with_call_is_analyzed_and_counted() {
    let (p, header) = kernel(24);
    let stats = loop_stats(&p, p.main(), header, AliasMode::Region).unwrap();
    assert_eq!(stats.calls, 1);
    assert!(stats.sccs > 1, "work off the call barrier still splits");
}

#[test]
fn dswp_with_call_in_loop_is_equivalent() {
    let (p, header) = kernel(24);
    let baseline = Interpreter::new(&p).run().unwrap();
    let mut q = p.clone();
    let main = q.main();
    let opts = DswpOptions {
        alias: AliasMode::Region,
        min_speedup: 0.0,
        ..DswpOptions::default()
    };
    dswp_loop(&mut q, main, header, &baseline.profile, &opts).unwrap();
    verify_program(&q).unwrap();

    let exec = Executor::new(&q).run().unwrap();
    assert_eq!(exec.memory, baseline.memory);
    let sim = Machine::new(&q, MachineConfig::full_width()).run().unwrap();
    assert_eq!(sim.memory, baseline.memory);
    // helper ran n times: mem[1] followed x -> 3x+1 from 1, 24 times.
    let mut expect = 1i64;
    for _ in 0..24 {
        expect = expect * 3 + 1;
    }
    assert_eq!(sim.memory[1], expect);
}

#[test]
fn call_and_unrelated_loads_do_not_merge_under_regions() {
    // Region analysis knows the call only touches region 7... no — calls
    // are barriers against *all* memory, so the input loads DO depend on
    // the call. What must stay separate is the pure register pipeline
    // (mul/rem/sum) behind the loads.
    let (p, header) = kernel(24);
    let stats = loop_stats(&p, p.main(), header, AliasMode::Region).unwrap();
    // The call + loads form one SCC region; the arithmetic chain and the
    // accumulator remain separate components.
    assert!(
        stats.sccs >= 4,
        "expected the arithmetic pipeline to stay partitionable, got {} SCCs",
        stats.sccs
    );
}
