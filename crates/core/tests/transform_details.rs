//! Structural checks on the code the DSWP transformation emits, matching
//! the paper's Figure 2(d)/(e) and Section 3 descriptions: flow placement,
//! duplicated branches, the master-thread runtime, and termination.

mod common;

use common::*;
use dswp_ir::program::TERMINATE_SENTINEL;
use dswp_ir::{Op, Operand};

/// Collects all ops of a function as display strings (reachable blocks
/// only), for structural matching.
fn reachable_ops(p: &dswp_ir::Program, fid: dswp_ir::FuncId) -> Vec<String> {
    let f = p.function(fid);
    let mut seen = vec![false; f.num_blocks()];
    let mut stack = vec![f.entry()];
    seen[f.entry().index()] = true;
    let mut out = Vec::new();
    while let Some(b) = stack.pop() {
        for &i in f.block(b).instrs() {
            out.push(f.op(i).to_string());
        }
        for s in f.successors(b) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    out
}

#[test]
fn figure2_split_has_the_paper_shape() {
    let kernel = figure2_kernel();
    let (p, report) = check_dswp(&kernel, &default_opts());

    // One auxiliary loop function and one master function were created.
    assert_eq!(report.artifacts.aux_functions.len(), 1);
    assert_eq!(report.artifacts.master_functions.len(), 1);
    let aux = report.artifacts.aux_functions[0];
    let master = report.artifacts.master_functions[0];

    // Producer thread (main) contains PRODUCE instructions for the loop
    // flows and at least one for the master queue; the consumer contains
    // the matching CONSUMEs and a duplicated branch fed by a consumed flag.
    let main_ops = reachable_ops(&p, p.main());
    let aux_ops = reachable_ops(&p, aux);
    assert!(
        main_ops.iter().any(|o| o.starts_with("PRODUCE")),
        "{main_ops:#?}"
    );
    assert!(
        aux_ops.iter().any(|o| o.starts_with("CONSUME")),
        "{aux_ops:#?}"
    );
    // The consumer finishes with final-flow produce(s) and a ret back to
    // the master loop (Fig. 2(e): `BB7': PRODUCE [3] = r`).
    assert!(aux_ops.iter().any(|o| o.starts_with("PRODUCE")));
    assert!(aux_ops.iter().any(|o| o == "ret"));
    assert!(
        !aux_ops.iter().any(|o| o == "halt"),
        "aux loop must return to the master, not halt"
    );

    // The master function is the Section 3 dispatcher: consume, call.ind,
    // loop.
    let master_ops = reachable_ops(&p, master);
    assert_eq!(master_ops.len(), 3, "{master_ops:#?}");
    assert!(master_ops[0].starts_with("CONSUME"));
    assert!(master_ops[1].starts_with("call.ind"));
    assert!(master_ops[2].starts_with("jump"));

    // The main thread wakes the auxiliary thread with the aux function id
    // and later sends the terminate sentinel before halting.
    let expected_wake = format!("= {}", aux.index());
    assert!(
        main_ops
            .iter()
            .any(|o| o.starts_with("PRODUCE") && o.ends_with(&expected_wake)),
        "missing master wake-up: {main_ops:#?}"
    );
    let expected_sentinel = format!("= {TERMINATE_SENTINEL}");
    assert!(
        main_ops
            .iter()
            .any(|o| o.starts_with("PRODUCE") && o.ends_with(&expected_sentinel)),
        "missing terminate sentinel: {main_ops:#?}"
    );
}

#[test]
fn duplicated_branch_consumes_its_flag_first() {
    // In every auxiliary function, a conditional branch must be preceded
    // (somewhere in its block) by either the computation of its condition
    // or a CONSUME into the condition register — never read a stale flag.
    let kernel = figure2_kernel();
    let (p, report) = check_dswp(&kernel, &default_opts());
    for &aux in &report.artifacts.aux_functions {
        let f = p.function(aux);
        for b in f.block_ids() {
            let instrs = f.block(b).instrs();
            let Some((&last, rest)) = instrs.split_last() else {
                continue;
            };
            if let Op::Br { cond, .. } = f.op(last) {
                let defined_in_block = rest.iter().any(|&i| f.op(i).def() == Some(*cond));
                assert!(
                    defined_in_block,
                    "branch in {b} of {} reads a condition defined elsewhere",
                    f.name
                );
            }
        }
    }
}

#[test]
fn every_queue_has_exactly_one_producer_and_consumer_site_pairing() {
    // Queues are point-to-point: all produces of a queue live in one
    // function and all consumes in another (or the same for none).
    let kernel = figure2_kernel();
    let (p, _) = check_dswp(&kernel, &default_opts());
    for q in 0..p.num_queues {
        let mut producers = std::collections::BTreeSet::new();
        let mut consumers = std::collections::BTreeSet::new();
        for (fi, f) in p.functions().iter().enumerate() {
            for (_, i) in f.instr_ids() {
                match f.op(i) {
                    Op::Produce { queue, .. } | Op::ProduceToken { queue } if queue.0 == q => {
                        producers.insert(fi);
                    }
                    Op::Consume { queue, .. } | Op::ConsumeToken { queue } if queue.0 == q => {
                        consumers.insert(fi);
                    }
                    _ => {}
                }
            }
        }
        assert!(
            producers.len() <= 1,
            "queue q{q} produced from {producers:?}"
        );
        assert!(
            consumers.len() <= 1,
            "queue q{q} consumed from {consumers:?}"
        );
        assert_ne!(
            producers, consumers,
            "queue q{q} must cross threads (p={producers:?}, c={consumers:?})"
        );
    }
}

#[test]
fn completion_token_orders_post_loop_reads() {
    // The landing block of the main thread must consume one token per
    // auxiliary stage (the fix for post-loop memory reads racing pending
    // stores).
    let kernel = list_kernel(32);
    let (p, report) = check_dswp(&kernel, &default_opts());
    let main_ops = reachable_ops(&p, p.main());
    let tokens = main_ops
        .iter()
        .filter(|o| o.starts_with("CONSUME.token"))
        .count();
    assert!(
        tokens >= report.artifacts.aux_functions.len(),
        "expected ≥{} completion tokens, found {tokens}",
        report.artifacts.aux_functions.len()
    );
}

#[test]
fn produce_wake_value_is_an_immediate_function_id() {
    let kernel = diamond_kernel(24);
    let (p, report) = check_dswp(&kernel, &default_opts());
    let aux = report.artifacts.aux_functions[0];
    let f = p.function(p.main());
    let mut found = false;
    for (_, i) in f.instr_ids() {
        if let Op::Produce {
            src: Operand::Imm(v),
            ..
        } = f.op(i)
        {
            if *v == aux.index() as i64 {
                found = true;
            }
        }
    }
    assert!(found, "main must produce the auxiliary function id");
}
