//! Tests for the DOACROSS comparator and the Figure 1 motivation contrast:
//! DOACROSS routes the critical-path recurrence cross-core each iteration
//! (latency-sensitive); DSWP keeps it core-local (latency-tolerant).

mod common;

use common::*;
use dswp::{doacross, DswpError};
use dswp_ir::interp::Interpreter;
use dswp_ir::verify::verify_program;
use dswp_sim::{Executor, Machine, MachineConfig};

#[test]
fn doacross_list_kernel_is_equivalent() {
    let kernel = list_kernel(64);
    let baseline = Interpreter::new(&kernel.program).run().unwrap();
    let mut p = kernel.program.clone();
    let main = p.main();
    let report = doacross(&mut p, main, kernel.header).unwrap();
    assert!(!report.state_regs.is_empty());
    verify_program(&p).unwrap();

    let exec = Executor::new(&p).run().unwrap();
    assert_eq!(exec.memory, baseline.memory);

    let sim = Machine::new(&p, MachineConfig::full_width()).run().unwrap();
    assert_eq!(sim.memory, baseline.memory);
}

#[test]
fn doacross_rejects_control_flow_bodies() {
    let kernel = diamond_kernel(20);
    let mut p = kernel.program.clone();
    let main = p.main();
    let err = doacross(&mut p, main, kernel.header).unwrap_err();
    assert!(matches!(err, DswpError::IneligibleForDoacross(_)), "{err}");
}

#[test]
fn figure1_contrast_doacross_pays_latency_dswp_does_not() {
    let kernel = list_kernel(256);

    // DOACROSS version.
    let mut dx = kernel.program.clone();
    let main = dx.main();
    doacross(&mut dx, main, kernel.header).unwrap();

    // DSWP version.
    let (dswp_p, _) = check_dswp(&kernel, &default_opts());

    let run = |p: &dswp_ir::Program, lat: u64| {
        Machine::new(p, MachineConfig::full_width().with_comm_latency(lat))
            .run()
            .unwrap()
            .cycles
    };

    let dx_1 = run(&dx, 1);
    let dx_50 = run(&dx, 50);
    let dswp_1 = run(&dswp_p, 1);
    let dswp_50 = run(&dswp_p, 50);

    // DOACROSS slows roughly with latency × iterations; DSWP barely moves.
    let dx_ratio = dx_50 as f64 / dx_1 as f64;
    let dswp_ratio = dswp_50 as f64 / dswp_1 as f64;
    assert!(
        dx_ratio > 1.5,
        "DOACROSS should suffer at 50-cycle latency (ratio {dx_ratio:.2})"
    );
    assert!(
        dswp_ratio < 1.25,
        "DSWP should tolerate 50-cycle latency (ratio {dswp_ratio:.2})"
    );
    assert!(dswp_ratio < dx_ratio);
}

#[test]
fn doacross_zero_trip_loop_is_handled() {
    // A list of zero nodes: the loop body never runs.
    let kernel = list_kernel(1);
    // Overwrite memory so the initial pointer is null.
    let mut program = kernel.program.clone();
    program.initial_memory[8] = 0;
    // ptr starts at 8 with next=0 → exactly one iteration; also test the
    // degenerate one-iteration case end to end.
    let baseline = Interpreter::new(&program).run().unwrap();
    let mut p = program.clone();
    let main = p.main();
    doacross(&mut p, main, kernel.header).unwrap();
    let exec = Executor::new(&p).run().unwrap();
    assert_eq!(exec.memory, baseline.memory);
}
