//! Malformed programs must be rejected with [`DswpError::InvalidProgram`]
//! at every public loop-level entry point — never an index panic inside the
//! transformation.

use dswp::{dswp_loop, loop_stats, unroll_loop, DswpError, DswpOptions};
use dswp_analysis::AliasMode;
use dswp_ir::interp::Profile;
use dswp_ir::text::parse_program;
use dswp_ir::BlockId;

/// Parses fine, but `r7` is outside the declared register file (regs 2):
/// without the verification gate, the interpreter/transformation would
/// panic indexing the register vector.
fn malformed() -> dswp_ir::Program {
    parse_program(
        "\
program 1 threads 1 queues 0 memory 4
thread 0 = fn0
func main entry bb0 regs 2 {
bb0 entry:
  r0 = 0
  jump bb1
bb1 loop:
  r7 = add r7, 1
  r1 = (r7 >= 5)
  br r1, bb2, bb1
bb2 exit:
  halt
}
",
    )
    .expect("text itself is well-formed")
}

#[test]
fn dswp_loop_rejects_invalid_program() {
    let mut p = malformed();
    let profile = Profile::zeroed(&p);
    let main = p.main();
    let err = dswp_loop(&mut p, main, BlockId(1), &profile, &DswpOptions::default()).unwrap_err();
    assert!(matches!(err, DswpError::InvalidProgram(_)), "{err}");
    assert!(err.to_string().contains("invalid program"), "{err}");
}

#[test]
fn loop_stats_rejects_invalid_program() {
    let p = malformed();
    let main = p.main();
    let err = loop_stats(&p, main, BlockId(1), AliasMode::Region).unwrap_err();
    assert!(matches!(err, DswpError::InvalidProgram(_)), "{err}");
}

#[test]
fn unroll_rejects_invalid_program() {
    let mut p = malformed();
    let main = p.main();
    let err = unroll_loop(&mut p, main, BlockId(1), 2).unwrap_err();
    assert!(matches!(err, DswpError::InvalidProgram(_)), "{err}");
}
