//! Global blocking coordination and deadlock detection.
//!
//! The queue fast path is lock-free; a stage thread only arrives here after
//! spinning on a full (produce) or empty (consume) queue. The [`Monitor`]
//! parks such threads on a condition variable and — because it sees every
//! blocked thread at once — doubles as the runtime's *watchdog brain*: when
//! every live thread is blocked and no blocked operation can ever be
//! satisfied, it issues a structured verdict instead of letting the process
//! hang.
//!
//! Two verdicts exist, mirroring the functional executor's semantics
//! (`dswp-sim`): if the main context has already terminated, the remaining
//! blocked threads are *parked* (a DSWP master loop that produced its
//! terminate sentinels may leave auxiliary threads waiting on queues that
//! will never fill — the run is complete); if the main context is itself
//! blocked, the program is *deadlocked* and the run fails with
//! [`RtError::Deadlock`].
//!
//! With batched communication a blocked thread may hold *pending flush
//! buffers* for other queues. Those buffered values could unblock a peer,
//! so a thread registers a [`WaitSet`]: its primary blocked operation plus
//! every queue it still owes a flush to. The thread is woken (and
//! quiescence is denied) whenever the primary op *or any pending flush*
//! becomes performable — the blocking loop in the worker then side-flushes
//! those buffers, which is what keeps buffering from manufacturing
//! deadlocks that the unbatched runtime would not have.
//!
//! Waiters poll with a bounded `wait_timeout`, so a lost wakeup costs
//! milliseconds, never liveness.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::queue::SpscQueue;
use crate::RtError;

/// Which side of a queue a thread is blocked on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockKind {
    /// Producer waiting for a free slot (queue full).
    Produce,
    /// Consumer waiting for a value (queue empty).
    Consume,
}

/// A blocked queue operation: the queue and the side.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BlockInfo {
    pub queue: usize,
    pub kind: BlockKind,
}

/// Everything a blocked thread is waiting on: the operation it cannot
/// complete, plus the queues it holds non-empty local output buffers for
/// (a flush to any of them is progress too).
#[derive(Clone, Debug)]
pub(crate) struct WaitSet {
    /// The operation the thread is actually blocked on.
    pub primary: BlockInfo,
    /// Queues with pending (non-empty) local output buffers.
    pub flush: Vec<usize>,
}

impl WaitSet {
    /// A wait on a single operation with no pending flushes — the
    /// un-batched shape.
    #[cfg(test)]
    pub fn solo(queue: usize, kind: BlockKind) -> Self {
        WaitSet {
            primary: BlockInfo { queue, kind },
            flush: Vec::new(),
        }
    }
}

/// Terminal decision about a quiescent (or failed) run.
#[derive(Clone, Debug)]
pub(crate) enum Verdict {
    /// Main terminated; remaining blocked threads park and the run is
    /// complete.
    Park,
    /// The run failed; all threads must stop.
    Fail(RtError),
}

/// What a blocked thread should do next.
#[derive(Debug)]
pub(crate) enum WaitOutcome {
    /// The blocked operation (or a pending flush) became satisfiable —
    /// retry it.
    Ready,
    /// Park verdict: stop this thread, the run completed without it.
    Park,
    /// Failure verdict: stop this thread, the run is an error.
    Fail,
}

#[derive(Debug)]
struct MonState {
    /// `Some(set)` while thread `t` is blocked inside [`Monitor::wait`].
    blocked: Vec<Option<WaitSet>>,
    /// Whether thread `t` has terminated (halt or terminate sentinel).
    terminated: Vec<bool>,
    verdict: Option<Verdict>,
}

/// The runtime-global coordination object.
#[derive(Debug)]
pub(crate) struct Monitor {
    state: Mutex<MonState>,
    cond: Condvar,
    /// Fast-path hint: number of threads currently inside [`wait`]. Lets
    /// queue operations skip the mutex when nobody is parked.
    blocked_hint: AtomicUsize,
}

/// Whether a blocked operation could complete right now. A poisoned queue
/// counts as satisfiable so its waiters wake up, re-attempt, and observe
/// the poison in the worker's blocking loop (which converts it into a
/// structured error) — instead of sleeping on a dead endpoint or tripping
/// a spurious deadlock verdict.
fn satisfiable(info: BlockInfo, queues: &[SpscQueue]) -> bool {
    let q = &queues[info.queue];
    if q.is_poisoned() {
        return true;
    }
    match info.kind {
        BlockKind::Consume => !q.is_empty(),
        BlockKind::Produce => !q.is_full(),
    }
}

/// Whether anything in the wait set can make progress: the primary op, or a
/// flush of a pending output buffer (a produce-shaped op on that queue).
fn satisfiable_set(set: &WaitSet, queues: &[SpscQueue]) -> bool {
    satisfiable(set.primary, queues)
        || set.flush.iter().any(|&q| {
            satisfiable(
                BlockInfo {
                    queue: q,
                    kind: BlockKind::Produce,
                },
                queues,
            )
        })
}

impl Monitor {
    pub fn new(num_threads: usize) -> Self {
        Monitor {
            state: Mutex::new(MonState {
                blocked: vec![None; num_threads],
                terminated: vec![false; num_threads],
                verdict: None,
            }),
            cond: Condvar::new(),
            blocked_hint: AtomicUsize::new(0),
        }
    }

    /// Locks the shared state, tolerating mutex poisoning: a stage thread
    /// that panicked (crash recovery catches it) must not cascade into
    /// panics on every surviving thread. The state itself stays consistent
    /// — every mutation under the lock is a single field store.
    fn lock(&self) -> MutexGuard<'_, MonState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Quiescence check, called with the state lock held: if every live
    /// thread is blocked and nothing in any blocked thread's wait set is
    /// satisfiable, nothing can ever happen again — decide Park vs
    /// Deadlock.
    fn quiescent_verdict(st: &MonState, queues: &[SpscQueue]) -> Option<Verdict> {
        let all_stopped = st
            .blocked
            .iter()
            .zip(&st.terminated)
            .all(|(b, &t)| t || b.is_some());
        if !all_stopped {
            return None;
        }
        if st
            .blocked
            .iter()
            .flatten()
            .any(|s| satisfiable_set(s, queues))
        {
            return None;
        }
        if st.terminated[0] {
            Some(Verdict::Park)
        } else {
            let blocked = st
                .blocked
                .iter()
                .enumerate()
                .filter(|(_, b)| b.is_some())
                .map(|(t, _)| t)
                .collect();
            Some(Verdict::Fail(RtError::Deadlock { blocked }))
        }
    }

    /// Blocks `thread` on `set` until anything in it becomes satisfiable or
    /// a verdict is issued. Re-runs the quiescence check on every poll, so
    /// whichever thread blocks last detects deadlock within one poll
    /// interval.
    pub fn wait(&self, thread: usize, set: &WaitSet, queues: &[SpscQueue]) -> WaitOutcome {
        let mut st = self.lock();
        st.blocked[thread] = Some(set.clone());
        self.blocked_hint.fetch_add(1, Ordering::Relaxed);
        let outcome = loop {
            // Satisfiability first: a value that arrived just before a Park
            // verdict cannot exist (Park requires global unsatisfiability),
            // and SPSC ownership means a satisfiable operation stays
            // satisfiable until *this* thread performs it.
            if satisfiable_set(set, queues) {
                break WaitOutcome::Ready;
            }
            match st.verdict {
                Some(Verdict::Park) => break WaitOutcome::Park,
                Some(Verdict::Fail(_)) => break WaitOutcome::Fail,
                None => {}
            }
            if let Some(v) = Self::quiescent_verdict(&st, queues) {
                st.verdict = Some(v);
                self.cond.notify_all();
                continue;
            }
            let (guard, _timed_out) = self
                .cond
                .wait_timeout(st, Duration::from_millis(20))
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        };
        st.blocked[thread] = None;
        self.blocked_hint.fetch_sub(1, Ordering::Relaxed);
        outcome
    }

    /// Records that `thread` terminated (halt / terminate sentinel) and
    /// re-checks quiescence: this termination may strand blocked peers.
    pub fn terminate(&self, thread: usize, queues: &[SpscQueue]) {
        let mut st = self.lock();
        st.terminated[thread] = true;
        if st.verdict.is_none() {
            if let Some(v) = Self::quiescent_verdict(&st, queues) {
                st.verdict = Some(v);
            }
        }
        self.cond.notify_all();
    }

    /// Issues a failure verdict (first error wins) and wakes every waiter.
    pub fn fail(&self, err: RtError) {
        let mut st = self.lock();
        if st.verdict.is_none() {
            st.verdict = Some(Verdict::Fail(err));
        }
        self.cond.notify_all();
    }

    /// Wakes blocked threads after a successful queue operation. Cheap
    /// (one relaxed load) when nobody is blocked.
    pub fn notify_activity(&self) {
        if self.blocked_hint.load(Ordering::Relaxed) > 0 {
            let _guard = self.lock();
            self.cond.notify_all();
        }
    }

    /// The final verdict, if any.
    pub fn verdict(&self) -> Option<Verdict> {
        self.lock().verdict.clone()
    }

    /// The lowest-numbered thread currently blocked inside [`wait`](Self::wait)
    /// and what it is blocked on — the deadline watchdog's diagnosis of
    /// *where* a timed-out run is stuck.
    pub fn first_blocked(&self) -> Option<(usize, BlockInfo)> {
        self.lock()
            .blocked
            .iter()
            .enumerate()
            .find_map(|(t, b)| b.as_ref().map(|set| (t, set.primary)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lone_blocked_main_is_deadlock() {
        let queues = vec![SpscQueue::new(4, false)];
        let m = Monitor::new(1);
        let out = m.wait(0, &WaitSet::solo(0, BlockKind::Consume), &queues);
        assert!(matches!(out, WaitOutcome::Fail));
        assert!(matches!(
            m.verdict(),
            Some(Verdict::Fail(RtError::Deadlock { .. }))
        ));
    }

    #[test]
    fn blocked_aux_parks_after_main_terminates() {
        let queues = Arc::new(vec![SpscQueue::new(4, false)]);
        let m = Arc::new(Monitor::new(2));
        let (mc, qc) = (Arc::clone(&m), Arc::clone(&queues));
        let aux =
            std::thread::spawn(move || mc.wait(1, &WaitSet::solo(0, BlockKind::Consume), &qc));
        std::thread::sleep(Duration::from_millis(5));
        m.terminate(0, &queues);
        assert!(matches!(aux.join().unwrap(), WaitOutcome::Park));
        assert!(matches!(m.verdict(), Some(Verdict::Park)));
    }

    #[test]
    fn satisfiable_wait_returns_ready() {
        let queues = Arc::new(vec![SpscQueue::new(1, false)]);
        let m = Arc::new(Monitor::new(2));
        let (mc, qc) = (Arc::clone(&m), Arc::clone(&queues));
        let consumer =
            std::thread::spawn(move || mc.wait(1, &WaitSet::solo(0, BlockKind::Consume), &qc));
        std::thread::sleep(Duration::from_millis(5));
        assert!(queues[0].try_produce(9));
        m.notify_activity();
        assert!(matches!(consumer.join().unwrap(), WaitOutcome::Ready));
        assert!(m.verdict().is_none());
    }

    #[test]
    fn fail_wakes_waiters() {
        let queues = Arc::new(vec![SpscQueue::new(1, false)]);
        let m = Arc::new(Monitor::new(2));
        let (mc, qc) = (Arc::clone(&m), Arc::clone(&queues));
        let waiter =
            std::thread::spawn(move || mc.wait(1, &WaitSet::solo(0, BlockKind::Consume), &qc));
        std::thread::sleep(Duration::from_millis(5));
        m.fail(RtError::StepLimit(1));
        assert!(matches!(waiter.join().unwrap(), WaitOutcome::Fail));
    }

    #[test]
    fn pending_flush_denies_quiescence() {
        // Thread 0 (main) blocked consuming empty queue 1, but it owes a
        // flush to queue 0 which has space: not a deadlock — the wait must
        // return Ready so the worker can side-flush.
        let queues = vec![SpscQueue::new(4, false), SpscQueue::new(4, false)];
        let m = Monitor::new(1);
        let set = WaitSet {
            primary: BlockInfo {
                queue: 1,
                kind: BlockKind::Consume,
            },
            flush: vec![0],
        };
        let out = m.wait(0, &set, &queues);
        assert!(matches!(out, WaitOutcome::Ready));
        assert!(m.verdict().is_none());
    }

    #[test]
    fn unflushable_pending_flush_still_deadlocks() {
        // Same shape, but the flush target is itself full: genuinely stuck.
        let queues = vec![SpscQueue::new(1, false), SpscQueue::new(1, false)];
        assert!(queues[0].try_produce(1));
        let m = Monitor::new(1);
        let set = WaitSet {
            primary: BlockInfo {
                queue: 1,
                kind: BlockKind::Consume,
            },
            flush: vec![0],
        };
        let out = m.wait(0, &set, &queues);
        assert!(matches!(out, WaitOutcome::Fail));
        assert!(matches!(
            m.verdict(),
            Some(Verdict::Fail(RtError::Deadlock { .. }))
        ));
    }
}
