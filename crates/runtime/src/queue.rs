//! Bounded single-producer/single-consumer ring-buffer queues — the native
//! realization of the paper's *synchronization array* (Section 2.1).
//!
//! Each DSWP queue connects exactly one producer stage to one consumer
//! stage, so the transfer path needs no locks: a fixed slot array plus two
//! monotonic atomic cursors. The producer owns `tail`, the consumer owns
//! `head`; `produce` publishes a slot with a release store of `tail`
//! (making the producer's preceding ordinary memory writes visible to the
//! consumer — the property DSWP's memory-synchronization flows rely on),
//! and `consume` acquires it.
//!
//! The hardware synchronization array the paper models costs roughly a
//! cycle per `produce`/`consume`; a software queue costs a cross-core
//! cache-line transfer per cursor update. The **batched** fast path
//! ([`push_batch`](SpscQueue::push_batch) /
//! [`pop_batch`](SpscQueue::pop_batch)) amortizes that gap: a chunk of
//! values is published with a *single* release store, and drained with a
//! single acquire load plus a single release store of `head`.
//!
//! Blocking (full queue on produce, empty queue on consume) is *not*
//! handled here; the runtime's internal `Monitor` parks
//! and unparks threads and performs global deadlock detection. This module
//! only offers the non-blocking `try_*`/`*_batch` operations plus occupancy
//! statistics.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Pads a hot atomic to its own cache line to avoid false sharing between
/// the producer's and consumer's cursors (the paper's Section 4.2 studies
/// exactly this effect in its `bslive` experiment).
#[repr(align(64))]
#[derive(Debug, Default)]
struct CacheLine<T>(T);

/// Number of power-of-two histogram buckets: sizes 1, 2–3, 4–7, … , ≥128.
const HIST_BUCKETS: usize = 8;

/// Single-writer histogram of batch sizes. Only the owning endpoint thread
/// (producer for flushes, consumer for refills) records into it, so plain
/// load+store on the atomics is exact — the atomics exist only so the
/// runtime thread can snapshot after joining.
#[derive(Debug, Default)]
struct Histo {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histo {
    fn record(&self, n: usize) {
        let b = (usize::BITS - 1 - (n | 1).leading_zeros()).min(HIST_BUCKETS as u32 - 1) as usize;
        let bucket = &self.buckets[b];
        bucket.store(bucket.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.count
            .store(self.count.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        self.sum.store(
            self.sum.load(Ordering::Relaxed) + n as u64,
            Ordering::Relaxed,
        );
    }

    fn snapshot(&self) -> BatchHistogram {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        BatchHistogram {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of a batch-size distribution (flushes or refills) with
/// power-of-two buckets: `buckets[i]` counts batches of size
/// `2^i ..= 2^(i+1)-1` (last bucket is open-ended).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchHistogram {
    /// Power-of-two size buckets: 1, 2–3, 4–7, 8–15, 16–31, 32–63, 64–127,
    /// ≥128.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total number of batches recorded.
    pub count: u64,
    /// Total number of values across all batches.
    pub sum: u64,
}

impl BatchHistogram {
    /// Records one batch of `n` values (single-owner accumulation — the
    /// worker-side counterpart of [`Histo::record`]).
    pub(crate) fn add(&mut self, n: usize) {
        let b = (usize::BITS - 1 - (n | 1).leading_zeros()).min(HIST_BUCKETS as u32 - 1) as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += n as u64;
    }

    /// Mean batch size, or 0.0 when nothing was recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Statistics written only by the producer endpoint, grouped onto their own
/// cache line(s). Before this grouping, `producer_blocks` and
/// `consumer_blocks` sat adjacent in the struct: a producer stalling on a
/// full queue and a consumer stalling on an empty one would ping-pong the
/// same line between cores on every failed attempt — false sharing on the
/// *statistics*, precisely the effect the padded cursors already avoid on
/// the transfer path.
#[repr(align(64))]
#[derive(Debug, Default)]
struct ProducerStats {
    /// Maximum observed occupancy (updated on publish).
    max_occupancy: AtomicUsize,
    /// Times the producer found the queue full.
    blocks: AtomicU64,
    /// Sizes of successful producer-side publishes (batched or single).
    flush_hist: Histo,
}

/// Statistics written only by the consumer endpoint (see [`ProducerStats`]).
#[repr(align(64))]
#[derive(Debug, Default)]
struct ConsumerStats {
    /// Times the consumer found the queue empty.
    blocks: AtomicU64,
    /// Sizes of successful consumer-side acquires (batched or single).
    refill_hist: Histo,
}

/// A bounded SPSC queue of `i64` words.
#[derive(Debug)]
pub struct SpscQueue {
    slots: Box<[UnsafeCell<i64>]>,
    capacity: usize,
    /// Consumer cursor: number of values consumed so far.
    head: CacheLine<AtomicUsize>,
    /// Producer cursor: number of values produced so far.
    tail: CacheLine<AtomicUsize>,
    /// Producer-endpoint statistics, on their own cache line(s).
    producer: ProducerStats,
    /// Consumer-endpoint statistics, on their own cache line(s).
    consumer: ConsumerStats,
    /// Produced-value log (only filled when stream recording is on).
    stream: Mutex<Vec<i64>>,
    record_stream: bool,
    /// Set when an endpoint stage died (crash recovery) or a fault plan
    /// poisons the queue: producers must stop, consumers may drain what is
    /// already buffered and must then stop.
    poisoned: AtomicBool,
}

// SAFETY: the `UnsafeCell` slots are only written by the single producer
// before the release store of `tail`, and only read by the single consumer
// after the acquire load of `tail`; the cursors order every access.
unsafe impl Sync for SpscQueue {}

/// Occupancy and traffic statistics of one queue, mirroring the simulator's
/// `OccupancyStats` at per-queue granularity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Configured capacity in values.
    pub capacity: usize,
    /// Total values produced over the run.
    pub produced: u64,
    /// Total values consumed over the run.
    pub consumed: u64,
    /// Maximum simultaneous occupancy observed.
    pub max_occupancy: usize,
    /// Produce attempts that found the queue full (backpressure events).
    pub producer_blocks: u64,
    /// Consume attempts that found the queue empty (starvation events).
    pub consumer_blocks: u64,
    /// Distribution of producer-side publish (flush) sizes.
    pub flush_sizes: BatchHistogram,
    /// Distribution of consumer-side acquire (refill) sizes.
    pub refill_sizes: BatchHistogram,
}

impl SpscQueue {
    /// Creates a queue with `capacity` slots (`capacity >= 1`).
    pub fn new(capacity: usize, record_stream: bool) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        SpscQueue {
            slots: (0..capacity).map(|_| UnsafeCell::new(0)).collect(),
            capacity,
            head: CacheLine(AtomicUsize::new(0)),
            tail: CacheLine(AtomicUsize::new(0)),
            producer: ProducerStats::default(),
            consumer: ConsumerStats::default(),
            stream: Mutex::new(Vec::new()),
            record_stream,
            poisoned: AtomicBool::new(false),
        }
    }

    /// Marks the queue as poisoned: one of its endpoint stages is dead (or
    /// a fault plan says so). Blocked peers observe the flag through the
    /// monitor and shut down with a structured error instead of waiting for
    /// values that will never arrive (or never be consumed).
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Whether [`poison`](Self::poison) was called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Counts one blocked produce attempt (called from the producer thread).
    pub(crate) fn count_producer_block(&self) {
        self.producer.blocks.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one blocked consume attempt (called from the consumer thread).
    pub(crate) fn count_consumer_block(&self) {
        self.consumer.blocks.fetch_add(1, Ordering::Relaxed);
    }

    /// Attempts to enqueue a prefix of `vals`, publishing however many fit
    /// with a **single** release store of `tail`. Returns the number of
    /// values accepted (0 when the queue is full or `vals` is empty).
    /// Must only be called from the single producer thread.
    ///
    /// ```
    /// use dswp_rt::queue::SpscQueue;
    ///
    /// let q = SpscQueue::new(4, false);
    /// assert_eq!(q.push_batch(&[1, 2, 3]), 3);
    /// // Only one slot left: the batch is truncated, never split or lost.
    /// assert_eq!(q.push_batch(&[4, 5]), 1);
    /// assert_eq!(q.push_batch(&[6]), 0); // full
    /// assert_eq!(q.len(), 4);
    /// ```
    pub fn push_batch(&self, vals: &[i64]) -> usize {
        if vals.is_empty() {
            return 0;
        }
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        let occ = tail.wrapping_sub(head);
        let n = (self.capacity - occ).min(vals.len());
        if n == 0 {
            return 0;
        }
        // SAFETY: slots `tail .. tail+n` are outside the consumer's visible
        // window until the release store below.
        for (i, &v) in vals[..n].iter().enumerate() {
            unsafe {
                *self.slots[tail.wrapping_add(i) % self.capacity].get() = v;
            }
        }
        self.tail.0.store(tail.wrapping_add(n), Ordering::Release);
        // Only the producer writes this; load+store beats an RMW.
        let max = &self.producer.max_occupancy;
        if occ + n > max.load(Ordering::Relaxed) {
            max.store(occ + n, Ordering::Relaxed);
        }
        self.producer.flush_hist.record(n);
        if self.record_stream {
            // Poison-tolerant: a stage that crashed mid-push must not take
            // the survivors down with a second panic.
            self.stream
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .extend_from_slice(&vals[..n]);
        }
        n
    }

    /// Attempts to dequeue up to `max` values into `out`, consuming however
    /// many are available with a **single** acquire of `tail` and a single
    /// release store of `head`. Returns the number of values appended.
    /// Must only be called from the single consumer thread.
    ///
    /// ```
    /// use dswp_rt::queue::SpscQueue;
    ///
    /// let q = SpscQueue::new(8, false);
    /// q.push_batch(&[10, 20, 30]);
    /// let mut out = Vec::new();
    /// assert_eq!(q.pop_batch(&mut out, 2), 2); // bounded by `max`
    /// assert_eq!(q.pop_batch(&mut out, 16), 1); // bounded by occupancy
    /// assert_eq!(out, vec![10, 20, 30]);
    /// ```
    pub fn pop_batch(&self, out: &mut Vec<i64>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        let n = tail.wrapping_sub(head).min(max);
        if n == 0 {
            return 0;
        }
        out.reserve(n);
        // SAFETY: the acquire load of `tail` made the producer's writes to
        // these slots visible, and the producer will not reuse them until
        // the release store of `head` below.
        for i in 0..n {
            out.push(unsafe { *self.slots[head.wrapping_add(i) % self.capacity].get() });
        }
        self.head.0.store(head.wrapping_add(n), Ordering::Release);
        self.consumer.refill_hist.record(n);
        n
    }

    /// Attempts to enqueue `v`. Returns `false` when the queue is full.
    /// Must only be called from the single producer thread.
    pub fn try_produce(&self, v: i64) -> bool {
        self.push_batch(std::slice::from_ref(&v)) == 1
    }

    /// Attempts to dequeue a value. Returns `None` when the queue is empty.
    /// Must only be called from the single consumer thread.
    pub fn try_consume(&self) -> Option<i64> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: the acquire load of `tail` made the producer's write to
        // this slot visible, and the producer will not reuse it until the
        // release store of `head` below.
        let v = unsafe { *self.slots[head % self.capacity].get() };
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        self.consumer.refill_hist.record(1);
        Some(v)
    }

    /// Current occupancy (racy snapshot; exact from the owning threads).
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the queue is currently full (racy snapshot).
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    /// Final statistics. Exact once all stage threads have joined.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            capacity: self.capacity,
            produced: self.tail.0.load(Ordering::Acquire) as u64,
            consumed: self.head.0.load(Ordering::Acquire) as u64,
            max_occupancy: self.producer.max_occupancy.load(Ordering::Relaxed),
            producer_blocks: self.producer.blocks.load(Ordering::Relaxed),
            consumer_blocks: self.consumer.blocks.load(Ordering::Relaxed),
            flush_sizes: self.producer.flush_hist.snapshot(),
            refill_sizes: self.consumer.refill_hist.snapshot(),
        }
    }

    /// Drains the recorded produced-value stream.
    pub fn take_stream(&self) -> Vec<i64> {
        std::mem::take(
            &mut *self
                .stream
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = SpscQueue::new(4, false);
        assert!(q.try_produce(1));
        assert!(q.try_produce(2));
        assert!(q.try_produce(3));
        assert_eq!(q.try_consume(), Some(1));
        assert!(q.try_produce(4));
        assert!(q.try_produce(5));
        assert!(q.is_full());
        assert!(!q.try_produce(6));
        assert_eq!(q.try_consume(), Some(2));
        assert_eq!(q.try_consume(), Some(3));
        assert_eq!(q.try_consume(), Some(4));
        assert_eq!(q.try_consume(), Some(5));
        assert_eq!(q.try_consume(), None);
        assert_eq!(q.stats().max_occupancy, 4);
        assert_eq!(q.stats().produced, 5);
    }

    #[test]
    fn capacity_one_ping_pongs() {
        let q = SpscQueue::new(1, false);
        for i in 0..100 {
            assert!(q.try_produce(i));
            assert!(!q.try_produce(i));
            assert_eq!(q.try_consume(), Some(i));
            assert_eq!(q.try_consume(), None);
        }
    }

    #[test]
    fn batch_push_accepts_prefix_when_nearly_full() {
        let q = SpscQueue::new(4, false);
        assert_eq!(q.push_batch(&[1, 2, 3]), 3);
        assert_eq!(q.push_batch(&[4, 5, 6]), 1); // only one slot left
        assert_eq!(q.push_batch(&[9]), 0); // full
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 10), 4);
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(q.pop_batch(&mut out, 10), 0);
    }

    #[test]
    fn batch_roundtrip_across_wraparound() {
        let q = SpscQueue::new(8, false);
        let mut next = 0i64;
        let mut expect = 0i64;
        let mut out = Vec::new();
        for round in 0..100 {
            let chunk: Vec<i64> = (0..(round % 7 + 1))
                .map(|_| {
                    next += 1;
                    next
                })
                .collect();
            let pushed = q.push_batch(&chunk);
            out.clear();
            q.pop_batch(&mut out, 16);
            for &v in &out {
                expect += 1;
                assert_eq!(v, expect);
            }
            // Push whatever didn't fit so values are never lost.
            let mut rest = &chunk[pushed..];
            while !rest.is_empty() {
                let n = q.push_batch(rest);
                rest = &rest[n..];
                if n == 0 {
                    out.clear();
                    q.pop_batch(&mut out, 16);
                    for &v in &out {
                        expect += 1;
                        assert_eq!(v, expect);
                    }
                }
            }
        }
        out.clear();
        q.pop_batch(&mut out, usize::MAX);
        for &v in &out {
            expect += 1;
            assert_eq!(v, expect);
        }
        assert_eq!(expect, next);
    }

    #[test]
    fn pop_batch_is_bounded_by_max() {
        let q = SpscQueue::new(8, false);
        assert_eq!(q.push_batch(&[1, 2, 3, 4, 5]), 5);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 2), 2);
        assert_eq!(out, vec![1, 2]);
        assert_eq!(q.pop_batch(&mut out, 0), 0);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn histograms_count_batch_sizes() {
        let q = SpscQueue::new(64, false);
        q.push_batch(&[0; 16]);
        q.push_batch(&[0; 1]);
        let mut out = Vec::new();
        q.pop_batch(&mut out, 17);
        let s = q.stats();
        assert_eq!(s.flush_sizes.count, 2);
        assert_eq!(s.flush_sizes.sum, 17);
        assert_eq!(s.flush_sizes.buckets[4], 1); // 16 lands in the 16–31 bucket
        assert_eq!(s.flush_sizes.buckets[0], 1); // the single value
        assert_eq!(s.refill_sizes.count, 1);
        assert_eq!(s.refill_sizes.sum, 17);
        assert!((s.refill_sizes.mean() - 17.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_batched_transfer_preserves_order_and_values() {
        const N: i64 = 100_000;
        let q = Arc::new(SpscQueue::new(32, false));
        let qp = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            let mut i = 0i64;
            while i < N {
                let hi = (i + 13).min(N);
                let chunk: Vec<i64> = (i..hi).collect();
                let mut rest = &chunk[..];
                while !rest.is_empty() {
                    let n = qp.push_batch(rest);
                    rest = &rest[n..];
                    if n == 0 {
                        std::thread::yield_now();
                    }
                }
                i = hi;
            }
        });
        let mut expected = 0i64;
        let mut buf = Vec::new();
        while expected < N {
            buf.clear();
            if q.pop_batch(&mut buf, 16) == 0 {
                std::thread::yield_now();
                continue;
            }
            for &v in &buf {
                assert_eq!(v, expected);
                expected += 1;
            }
        }
        producer.join().unwrap();
        assert!(q.is_empty());
        assert!(q.stats().max_occupancy <= 32);
    }

    #[test]
    fn concurrent_transfer_preserves_order_and_values() {
        const N: i64 = 100_000;
        let q = Arc::new(SpscQueue::new(8, false));
        let qp = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                while !qp.try_produce(i) {
                    std::hint::spin_loop();
                }
            }
        });
        let mut expected = 0;
        while expected < N {
            if let Some(v) = q.try_consume() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(q.is_empty());
        assert!(q.stats().max_occupancy <= 8);
    }

    #[test]
    fn poisoning_still_allows_draining() {
        let q = SpscQueue::new(4, false);
        assert!(q.try_produce(1));
        assert!(q.try_produce(2));
        assert!(!q.is_poisoned());
        q.poison();
        assert!(q.is_poisoned());
        // Buffered values survive poisoning; the *blocking* layer decides
        // that producers stop and consumers stop once drained.
        assert_eq!(q.try_consume(), Some(1));
        assert_eq!(q.try_consume(), Some(2));
        assert_eq!(q.try_consume(), None);
    }

    #[test]
    fn stream_recording() {
        let q = SpscQueue::new(4, true);
        q.try_produce(7);
        q.try_produce(8);
        q.try_consume();
        assert_eq!(q.take_stream(), vec![7, 8]);
    }

    #[test]
    fn stream_records_batches_in_order() {
        let q = SpscQueue::new(4, true);
        assert_eq!(q.push_batch(&[1, 2, 3]), 3);
        let mut out = Vec::new();
        q.pop_batch(&mut out, 2);
        assert_eq!(q.push_batch(&[4, 5, 6]), 3);
        assert_eq!(q.take_stream(), vec![1, 2, 3, 4, 5, 6]);
    }
}
