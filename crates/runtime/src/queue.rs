//! Bounded single-producer/single-consumer ring-buffer queues — the native
//! realization of the paper's *synchronization array* (Section 2.1).
//!
//! Each DSWP queue connects exactly one producer stage to one consumer
//! stage, so the transfer path needs no locks: a fixed slot array plus two
//! monotonic atomic cursors. The producer owns `tail`, the consumer owns
//! `head`; `produce` publishes a slot with a release store of `tail`
//! (making the producer's preceding ordinary memory writes visible to the
//! consumer — the property DSWP's memory-synchronization flows rely on),
//! and `consume` acquires it.
//!
//! Blocking (full queue on produce, empty queue on consume) is *not*
//! handled here; the runtime's [`Monitor`](crate::monitor::Monitor) parks
//! and unparks threads and performs global deadlock detection. This module
//! only offers the non-blocking `try_*` operations plus occupancy
//! statistics.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Pads a hot atomic to its own cache line to avoid false sharing between
/// the producer's and consumer's cursors (the paper's Section 4.2 studies
/// exactly this effect in its `bslive` experiment).
#[repr(align(64))]
#[derive(Debug, Default)]
struct CacheLine<T>(T);

/// A bounded SPSC queue of `i64` words.
#[derive(Debug)]
pub struct SpscQueue {
    slots: Box<[UnsafeCell<i64>]>,
    capacity: usize,
    /// Consumer cursor: number of values consumed so far.
    head: CacheLine<AtomicUsize>,
    /// Producer cursor: number of values produced so far.
    tail: CacheLine<AtomicUsize>,
    /// Maximum observed occupancy.
    max_occupancy: AtomicUsize,
    /// Times the producer found the queue full.
    pub(crate) producer_blocks: AtomicU64,
    /// Times the consumer found the queue empty.
    pub(crate) consumer_blocks: AtomicU64,
    /// Produced-value log (only filled when stream recording is on).
    stream: Mutex<Vec<i64>>,
    record_stream: bool,
    /// Set when an endpoint stage died (crash recovery) or a fault plan
    /// poisons the queue: producers must stop, consumers may drain what is
    /// already buffered and must then stop.
    poisoned: AtomicBool,
}

// SAFETY: the `UnsafeCell` slots are only written by the single producer
// before the release store of `tail`, and only read by the single consumer
// after the acquire load of `tail`; the cursors order every access.
unsafe impl Sync for SpscQueue {}

/// Occupancy and traffic statistics of one queue, mirroring the simulator's
/// `OccupancyStats` at per-queue granularity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Configured capacity in values.
    pub capacity: usize,
    /// Total values produced over the run.
    pub produced: u64,
    /// Total values consumed over the run.
    pub consumed: u64,
    /// Maximum simultaneous occupancy observed.
    pub max_occupancy: usize,
    /// Produce attempts that found the queue full (backpressure events).
    pub producer_blocks: u64,
    /// Consume attempts that found the queue empty (starvation events).
    pub consumer_blocks: u64,
}

impl SpscQueue {
    /// Creates a queue with `capacity` slots (`capacity >= 1`).
    pub fn new(capacity: usize, record_stream: bool) -> Self {
        assert!(capacity >= 1, "queue capacity must be at least 1");
        SpscQueue {
            slots: (0..capacity).map(|_| UnsafeCell::new(0)).collect(),
            capacity,
            head: CacheLine(AtomicUsize::new(0)),
            tail: CacheLine(AtomicUsize::new(0)),
            max_occupancy: AtomicUsize::new(0),
            producer_blocks: AtomicU64::new(0),
            consumer_blocks: AtomicU64::new(0),
            stream: Mutex::new(Vec::new()),
            record_stream,
            poisoned: AtomicBool::new(false),
        }
    }

    /// Marks the queue as poisoned: one of its endpoint stages is dead (or
    /// a fault plan says so). Blocked peers observe the flag through the
    /// monitor and shut down with a structured error instead of waiting for
    /// values that will never arrive (or never be consumed).
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Whether [`poison`](Self::poison) was called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Attempts to enqueue `v`. Returns `false` when the queue is full.
    /// Must only be called from the single producer thread.
    pub fn try_produce(&self, v: i64) -> bool {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        let occ = tail.wrapping_sub(head);
        if occ == self.capacity {
            return false;
        }
        // SAFETY: slot `tail % capacity` is outside the consumer's visible
        // window until the release store below.
        unsafe {
            *self.slots[tail % self.capacity].get() = v;
        }
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        // Only the producer writes this; load+store beats an RMW.
        if occ + 1 > self.max_occupancy.load(Ordering::Relaxed) {
            self.max_occupancy.store(occ + 1, Ordering::Relaxed);
        }
        if self.record_stream {
            // Poison-tolerant: a stage that crashed mid-push must not take
            // the survivors down with a second panic.
            self.stream
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(v);
        }
        true
    }

    /// Attempts to dequeue a value. Returns `None` when the queue is empty.
    /// Must only be called from the single consumer thread.
    pub fn try_consume(&self) -> Option<i64> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: the acquire load of `tail` made the producer's write to
        // this slot visible, and the producer will not reuse it until the
        // release store of `head` below.
        let v = unsafe { *self.slots[head % self.capacity].get() };
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }

    /// Current occupancy (racy snapshot; exact from the owning threads).
    pub fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the queue is currently full (racy snapshot).
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    /// Final statistics. Exact once all stage threads have joined.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            capacity: self.capacity,
            produced: self.tail.0.load(Ordering::Acquire) as u64,
            consumed: self.head.0.load(Ordering::Acquire) as u64,
            max_occupancy: self.max_occupancy.load(Ordering::Relaxed),
            producer_blocks: self.producer_blocks.load(Ordering::Relaxed),
            consumer_blocks: self.consumer_blocks.load(Ordering::Relaxed),
        }
    }

    /// Drains the recorded produced-value stream.
    pub fn take_stream(&self) -> Vec<i64> {
        std::mem::take(
            &mut *self
                .stream
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = SpscQueue::new(4, false);
        assert!(q.try_produce(1));
        assert!(q.try_produce(2));
        assert!(q.try_produce(3));
        assert_eq!(q.try_consume(), Some(1));
        assert!(q.try_produce(4));
        assert!(q.try_produce(5));
        assert!(q.is_full());
        assert!(!q.try_produce(6));
        assert_eq!(q.try_consume(), Some(2));
        assert_eq!(q.try_consume(), Some(3));
        assert_eq!(q.try_consume(), Some(4));
        assert_eq!(q.try_consume(), Some(5));
        assert_eq!(q.try_consume(), None);
        assert_eq!(q.stats().max_occupancy, 4);
        assert_eq!(q.stats().produced, 5);
    }

    #[test]
    fn capacity_one_ping_pongs() {
        let q = SpscQueue::new(1, false);
        for i in 0..100 {
            assert!(q.try_produce(i));
            assert!(!q.try_produce(i));
            assert_eq!(q.try_consume(), Some(i));
            assert_eq!(q.try_consume(), None);
        }
    }

    #[test]
    fn concurrent_transfer_preserves_order_and_values() {
        const N: i64 = 100_000;
        let q = Arc::new(SpscQueue::new(8, false));
        let qp = Arc::clone(&q);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                while !qp.try_produce(i) {
                    std::hint::spin_loop();
                }
            }
        });
        let mut expected = 0;
        while expected < N {
            if let Some(v) = q.try_consume() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert!(q.is_empty());
        assert!(q.stats().max_occupancy <= 8);
    }

    #[test]
    fn poisoning_still_allows_draining() {
        let q = SpscQueue::new(4, false);
        assert!(q.try_produce(1));
        assert!(q.try_produce(2));
        assert!(!q.is_poisoned());
        q.poison();
        assert!(q.is_poisoned());
        // Buffered values survive poisoning; the *blocking* layer decides
        // that producers stop and consumers stop once drained.
        assert_eq!(q.try_consume(), Some(1));
        assert_eq!(q.try_consume(), Some(2));
        assert_eq!(q.try_consume(), None);
    }

    #[test]
    fn stream_recording() {
        let q = SpscQueue::new(4, true);
        q.try_produce(7);
        q.try_produce(8);
        q.try_consume();
        assert_eq!(q.take_stream(), vec![7, 8]);
    }
}
