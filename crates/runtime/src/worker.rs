//! The per-stage worker: one OS thread interpreting one hardware context.
//!
//! Each DSWP pipeline stage runs this loop on its own `std::thread`. Value
//! semantics are shared with the other two engines through
//! `dswp_ir::exec` (frames, operands, call discipline) and
//! `dswp_ir::interp::{eval_unary, eval_binary, eval_cmp}` (arithmetic), so
//! the native runtime cannot drift from the interpreter or the functional
//! executor on anything but scheduling.
//!
//! Shared program memory is a `Vec<AtomicI64>` accessed with relaxed
//! loads/stores; cross-stage ordering comes from the queues' release/acquire
//! cursor pairs, exactly the discipline the DSWP transformation enforces by
//! routing every cross-stage memory dependence through a synchronization
//! flow.
//!
//! # Batched communication
//!
//! With a per-queue batch size `b > 1`, produced values are accumulated in
//! a per-queue local buffer and *flushed* — published with one release
//! store — when the buffer reaches `b` values; consumers *refill* a local
//! buffer with up to `b` values in one acquire and serve from it. Four
//! rules keep batching an invisible (timing-only) change:
//!
//! * **Flush before blocking.** A thread that blocks for any reason
//!   side-flushes every non-empty output buffer inside its blocking loop
//!   and registers the still-pending ones in its monitor
//!   [`WaitSet`], so buffered values can never
//!   manufacture a deadlock the unbatched runtime would not have.
//! * **Flush on stage end.** A terminating stage performs a blocking flush
//!   of every residual buffer before it reports termination.
//! * **Flush on cadence.** Every `STEP_BATCH` retired instructions (the
//!   budget-refill boundary) the worker opportunistically flushes lingering
//!   buffers, so a stage that stops producing but keeps computing cannot
//!   starve its consumers behind a half-filled chunk.
//! * **Refills never wait for a full chunk.** A refill takes whatever is
//!   available (up to `b`), so a half-filled chunk published by the
//!   producer is consumed immediately.
//!
//! Fault hooks fire per *flush/refill operation* — with `b = 1` every
//! produce is a flush and every consume is a refill, so the unbatched
//! fault cadence is preserved exactly.
//!
//! When the runtime carries a [`FaultPlan`], each worker additionally
//! drives a [`FaultSession`]: periodic busy-spin delays, artificial
//! queue-operation stalls, queue poisoning, and forced panics at an exact
//! retired-instruction count. Benign faults perturb timing only — the
//! chaos differential suite asserts the observable results stay
//! bit-identical; lethal faults are converted by the recovery layer in
//! `lib.rs` into structured [`RtError`]s.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use dswp_ir::exec::{new_frame, read_operand, Frame};
use dswp_ir::interp::{eval_binary, eval_cmp, eval_unary};
use dswp_ir::{FuncId, Op, Program};

use crate::fault::{FaultPlan, InjectedPanic, StageFaults};
use crate::monitor::{BlockInfo, BlockKind, Monitor, WaitOutcome, WaitSet};
use crate::queue::{BatchHistogram, SpscQueue};
use crate::RtError;

/// Steps claimed from the shared budget at a time; also the cadence of
/// abort-flag checks, progress heartbeats, and opportunistic flushes of
/// lingering output buffers.
const STEP_BATCH: u64 = 1024;

/// Everything the stage threads share. Borrows the program for the scope of
/// the run (`std::thread::scope`).
#[derive(Debug)]
pub(crate) struct Shared<'p> {
    pub program: &'p Program,
    pub memory: Vec<AtomicI64>,
    pub queues: Vec<SpscQueue>,
    pub monitor: Monitor,
    /// Per-queue communication batch size (≥ 1; 1 = unbatched).
    pub batches: Vec<usize>,
    /// Total steps claimed across all threads (runaway guard).
    pub steps_claimed: AtomicU64,
    pub step_limit: u64,
    /// Set on any failure verdict; running threads stop at the next batch
    /// boundary or blocking attempt.
    pub abort: AtomicBool,
    /// Heartbeat for the wall-clock watchdog in `Runtime::run`.
    pub progress: AtomicU64,
    /// Per-stage retired-instruction counters, refreshed at batch
    /// boundaries: the deadline watchdog's `last_progress` diagnosis, and
    /// the best-effort step count of a crashed stage.
    pub stage_steps: Vec<AtomicU64>,
    /// Fault-injection plan, if any.
    pub faults: Option<&'p FaultPlan>,
    /// Busy-spin iterations on a blocked queue before yielding
    /// ([`RtConfig::spins`](crate::RtConfig::spins)).
    pub spins: u32,
    /// `yield_now` iterations after spinning before parking
    /// ([`RtConfig::yields`](crate::RtConfig::yields)).
    pub yields: u32,
}

/// How a worker's loop ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum WorkerEnd {
    /// Reached `halt` or the terminate sentinel — normal completion.
    Terminated,
    /// Stopped by a Park verdict while blocked (run completed without it).
    Parked,
    /// Stopped by a failure verdict or the abort flag.
    Aborted,
    /// The stage thread panicked and was caught by the recovery layer.
    Panicked,
}

/// Per-stage outcome and statistics, returned through the scoped join.
#[derive(Clone, Debug)]
pub(crate) struct WorkerReport {
    pub end: WorkerEnd,
    /// Successfully executed instructions (matches the functional
    /// executor's per-context step counts exactly).
    pub steps: u64,
    /// Entry-frame registers at the end of the run.
    pub entry_regs: Vec<i64>,
    /// Total wall-clock time of this stage thread.
    pub wall: Duration,
    /// Portion of `wall` spent blocked on queues (spin + park).
    pub blocked: Duration,
    /// Failed queue-operation attempts that entered the spin→yield→park
    /// backoff (each retry is one loop turn of a blocked operation).
    pub retries: u64,
    /// Times the stage gave up spinning and parked on the monitor.
    pub parks: u64,
    /// Sizes of the logical output batches this stage flushed.
    pub flushes: BatchHistogram,
    /// Sizes of the input batches this stage refilled.
    pub refills: BatchHistogram,
}

enum QueueOutcome {
    /// The operation completed; for consumes, carries the value.
    Done(i64),
    /// The named queue was poisoned: the peer endpoint is dead (or a fault
    /// plan poisoned it) and the operation — or a pending flush to it —
    /// can never complete meaningfully.
    Poisoned(usize),
    Stop(WorkerEnd),
}

/// Per-queue consumer-side local buffer: values acquired in one refill,
/// served one at a time.
#[derive(Debug, Default)]
struct InBuf {
    vals: Vec<i64>,
    next: usize,
}

impl InBuf {
    fn pop(&mut self) -> Option<i64> {
        let v = *self.vals.get(self.next)?;
        self.next += 1;
        Some(v)
    }
}

/// A worker's communication state: per-queue output buffers awaiting a
/// flush, per-queue input buffers being served, and the per-stage batch
/// histograms.
struct Comm {
    out: Vec<Vec<i64>>,
    inq: Vec<InBuf>,
    flushes: BatchHistogram,
    refills: BatchHistogram,
}

impl Comm {
    fn new(num_queues: usize) -> Self {
        Comm {
            out: vec![Vec::new(); num_queues],
            inq: (0..num_queues).map(|_| InBuf::default()).collect(),
            flushes: BatchHistogram::default(),
            refills: BatchHistogram::default(),
        }
    }
}

/// The per-worker fault-injection state: counters that decide when the
/// stage's [`StageFaults`] fire.
struct FaultSession {
    faults: StageFaults,
    /// Flush/refill operations performed so far (drives stall cadence;
    /// with batch size 1 this is exactly the queue-operation count).
    queue_ops: u64,
    /// Whether the poison fault already fired.
    poisoned: bool,
}

impl FaultSession {
    fn new(plan: Option<&FaultPlan>, stage: usize) -> Self {
        FaultSession {
            faults: plan
                .and_then(|p| p.stages.get(stage))
                .copied()
                .unwrap_or_default(),
            queue_ops: 0,
            poisoned: false,
        }
    }

    /// Per-instruction hook, called after `steps` was incremented. Applies
    /// the delay, poisons queues, and triggers the forced panic.
    ///
    /// # Panics
    ///
    /// Deliberately panics with an [`InjectedPanic`] payload when the plan
    /// says this stage must crash at this retired-instruction count; the
    /// recovery layer in `Runtime::run` catches it.
    fn on_step(&mut self, stage: usize, steps: u64, queues: &[SpscQueue]) {
        if let Some(d) = self.faults.delay {
            if steps.is_multiple_of(d.every) {
                for _ in 0..d.spins {
                    std::hint::spin_loop();
                }
            }
        }
        if !self.poisoned {
            if let Some(p) = self.faults.poison {
                if steps >= p.after_steps {
                    self.poisoned = true;
                    if let Some(q) = queues.get(p.queue) {
                        q.poison();
                    }
                }
            }
        }
        if self.faults.panic_at == Some(steps) {
            std::panic::panic_any(InjectedPanic { stage, steps });
        }
    }

    /// Flush/refill hook: how many attempts of the upcoming operation
    /// must artificially fail (`u32::MAX` = the operation never completes).
    fn stall_budget(&mut self) -> u32 {
        self.queue_ops += 1;
        match self.faults.stall {
            Some(s) if self.queue_ops.is_multiple_of(s.every) => {
                if s.permanent {
                    u32::MAX
                } else {
                    s.attempts
                }
            }
            _ => 0,
        }
    }
}

fn mem_load(shared: &Shared<'_>, addr: i64) -> Option<i64> {
    usize::try_from(addr)
        .ok()
        .and_then(|a| shared.memory.get(a))
        .map(|cell| cell.load(Ordering::Relaxed))
}

fn mem_store(shared: &Shared<'_>, addr: i64, value: i64) -> bool {
    match usize::try_from(addr)
        .ok()
        .and_then(|a| shared.memory.get(a))
    {
        Some(cell) => {
            cell.store(value, Ordering::Relaxed);
            true
        }
        None => false,
    }
}

/// Tracks the retry/park accounting of one worker across its blocked
/// queue operations.
#[derive(Default)]
struct Backoff {
    retries: u64,
    parks: u64,
}

/// Opportunistically flushes every non-empty output buffer as far as the
/// queues allow (never blocking). Called at budget-refill boundaries and
/// from inside the blocking loop, so buffered values reach consumers even
/// while this stage computes or waits on a different queue.
fn side_flush(shared: &Shared<'_>, out: &mut [Vec<i64>]) {
    let mut progress = false;
    for (qi, buf) in out.iter_mut().enumerate() {
        if buf.is_empty() {
            continue;
        }
        let q = &shared.queues[qi];
        if q.is_poisoned() {
            continue; // surfaces as an error at the blocking flush
        }
        let n = q.push_batch(buf);
        if n > 0 {
            buf.drain(..n);
            progress = true;
        }
    }
    if progress {
        shared.monitor.notify_activity();
    }
}

/// Spin-then-park loop shared by flushes and refills. `attempt` performs
/// the non-blocking queue operation, returning the first consumed value
/// (or 0 for flushes) on completion; it may make partial progress across
/// calls. `forced_fails` attempts are failed artificially first (fault
/// injection; `u32::MAX` stalls the operation forever — the watchdog or
/// deadline then ends the run).
///
/// While waiting, the worker side-flushes its other pending output
/// buffers (`out`) and registers them in its monitor [`WaitSet`], so
/// buffered values cannot deadlock the pipeline and a pending flush to a
/// poisoned queue is converted into a structured error instead of a hang.
#[allow(clippy::too_many_arguments)]
fn comm_wait(
    shared: &Shared<'_>,
    thread: usize,
    info: BlockInfo,
    out: &mut [Vec<i64>],
    blocked_time: &mut Duration,
    backoff: &mut Backoff,
    mut forced_fails: u32,
    mut attempt: impl FnMut() -> Option<i64>,
) -> QueueOutcome {
    let queue = &shared.queues[info.queue];
    let mut attempt = move || {
        if forced_fails > 0 {
            if forced_fails != u32::MAX {
                forced_fails -= 1;
            }
            return None;
        }
        attempt()
    };
    // A produce onto a poisoned queue can never be consumed; a consume may
    // still drain buffered values, but once the queue is empty nothing will
    // ever arrive.
    let poisoned = |queue: &SpscQueue| {
        queue.is_poisoned()
            && match info.kind {
                BlockKind::Produce => true,
                BlockKind::Consume => queue.is_empty(),
            }
    };
    // Fast path: no contention, no timing overhead.
    if poisoned(queue) {
        return QueueOutcome::Poisoned(info.queue);
    }
    if let Some(v) = attempt() {
        shared.monitor.notify_activity();
        return QueueOutcome::Done(v);
    }
    match info.kind {
        BlockKind::Produce => queue.count_producer_block(),
        BlockKind::Consume => queue.count_consumer_block(),
    };
    let began = Instant::now();
    let mut tries: u32 = 0;
    let outcome =
        loop {
            if poisoned(queue) {
                break QueueOutcome::Poisoned(info.queue);
            }
            // A pending flush to a poisoned queue can never be delivered —
            // fail now rather than spin on a satisfiable-but-unflushable set.
            if let Some(qi) = out.iter().enumerate().find_map(|(qi, b)| {
                (!b.is_empty() && shared.queues[qi].is_poisoned()).then_some(qi)
            }) {
                break QueueOutcome::Poisoned(qi);
            }
            if let Some(v) = attempt() {
                shared.monitor.notify_activity();
                break QueueOutcome::Done(v);
            }
            if shared.abort.load(Ordering::Relaxed) {
                break QueueOutcome::Stop(WorkerEnd::Aborted);
            }
            side_flush(shared, out);
            backoff.retries += 1;
            tries += 1;
            if tries <= shared.spins {
                std::hint::spin_loop();
            } else if tries <= shared.spins + shared.yields {
                std::thread::yield_now();
            } else {
                tries = 0;
                backoff.parks += 1;
                let set = WaitSet {
                    primary: info,
                    flush: out
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| !b.is_empty())
                        .map(|(qi, _)| qi)
                        .collect(),
                };
                match shared.monitor.wait(thread, &set, &shared.queues) {
                    WaitOutcome::Ready => {}
                    WaitOutcome::Park => break QueueOutcome::Stop(WorkerEnd::Parked),
                    WaitOutcome::Fail => break QueueOutcome::Stop(WorkerEnd::Aborted),
                }
            }
        };
    shared.progress.fetch_add(1, Ordering::Relaxed);
    *blocked_time += began.elapsed();
    outcome
}

/// Blocking flush of output buffer `qi`: publishes every buffered value
/// (possibly across several partial `push_batch`es while the consumer
/// drains) before returning `Done`.
fn flush_queue(
    shared: &Shared<'_>,
    thread: usize,
    qi: usize,
    comm: &mut Comm,
    faults: &mut FaultSession,
    blocked_time: &mut Duration,
    backoff: &mut Backoff,
) -> QueueOutcome {
    let mut buf = std::mem::take(&mut comm.out[qi]);
    let q = &shared.queues[qi];
    let info = BlockInfo {
        queue: qi,
        kind: BlockKind::Produce,
    };
    let stall = faults.stall_budget();
    let total = buf.len();
    let mut pos = 0usize;
    let res = comm_wait(
        shared,
        thread,
        info,
        &mut comm.out,
        blocked_time,
        backoff,
        stall,
        || {
            let n = q.push_batch(&buf[pos..]);
            if n > 0 {
                pos += n;
                shared.monitor.notify_activity();
            }
            (pos == total).then_some(0)
        },
    );
    if matches!(res, QueueOutcome::Done(_)) {
        comm.flushes.add(total);
    }
    buf.clear();
    comm.out[qi] = buf; // keep the allocation
    res
}

/// Blocking refill of input buffer `qi`: acquires up to the queue's batch
/// size in one `pop_batch` (never waiting for a full chunk) and returns
/// the first value; the rest are served from the local buffer.
fn refill_queue(
    shared: &Shared<'_>,
    thread: usize,
    qi: usize,
    comm: &mut Comm,
    faults: &mut FaultSession,
    blocked_time: &mut Duration,
    backoff: &mut Backoff,
) -> QueueOutcome {
    let mut buf = std::mem::take(&mut comm.inq[qi]);
    buf.vals.clear();
    buf.next = 0;
    let q = &shared.queues[qi];
    let info = BlockInfo {
        queue: qi,
        kind: BlockKind::Consume,
    };
    let stall = faults.stall_budget();
    let max = shared.batches[qi];
    let vals = &mut buf.vals;
    let res = comm_wait(
        shared,
        thread,
        info,
        &mut comm.out,
        blocked_time,
        backoff,
        stall,
        || (q.pop_batch(vals, max) > 0).then(|| vals[0]),
    );
    if matches!(res, QueueOutcome::Done(_)) {
        buf.next = 1;
        comm.refills.add(buf.vals.len());
    }
    comm.inq[qi] = buf; // keep the allocation
    res
}

/// Runs hardware context `thread` to completion. Errors are reported to the
/// monitor (first failure wins) and surface as an `Aborted` report.
pub(crate) fn run_worker(shared: &Shared<'_>, thread: usize) -> WorkerReport {
    let started = Instant::now();
    let mut blocked_time = Duration::ZERO;
    let mut backoff = Backoff::default();
    let mut faults = FaultSession::new(shared.faults, thread);
    let mut comm = Comm::new(shared.queues.len());
    let program = shared.program;
    let entry = program.thread_entries()[thread];
    let mut stack: Vec<Frame> = vec![new_frame(program.function(entry), entry)];
    let mut steps: u64 = 0;
    let mut budget: u64 = 0;

    let fail = |err: RtError| {
        shared.abort.store(true, Ordering::Relaxed);
        shared.monitor.fail(err);
        WorkerEnd::Aborted
    };
    // Converts a blocked-op outcome shared by all four queue instructions.
    let queue_stop = |end: QueueOutcome| match end {
        QueueOutcome::Poisoned(queue) => fail(RtError::QueuePoisoned {
            queue,
            stage: thread,
        }),
        QueueOutcome::Stop(e) => e,
        QueueOutcome::Done(_) => unreachable!("Done handled by the caller"),
    };

    let mut end = 'run: loop {
        if budget == 0 {
            let base = shared
                .steps_claimed
                .fetch_add(STEP_BATCH, Ordering::Relaxed);
            if base >= shared.step_limit {
                break 'run fail(RtError::StepLimit(shared.step_limit));
            }
            budget = STEP_BATCH.min(shared.step_limit - base);
            shared.progress.fetch_add(1, Ordering::Relaxed);
            shared.stage_steps[thread].store(steps, Ordering::Relaxed);
            if shared.abort.load(Ordering::Relaxed) {
                break 'run WorkerEnd::Aborted;
            }
            // Cadence flush: don't let buffered values linger while this
            // stage computes without touching its queues.
            side_flush(shared, &mut comm.out);
        }
        budget -= 1;
        steps += 1;
        faults.on_step(thread, steps, &shared.queues);

        let frame = stack.last_mut().expect("live context has a frame");
        let func = program.function(frame.func);
        let instr = func.block(frame.block).instrs()[frame.index];

        match *func.op(instr) {
            Op::Const { dst, value } => {
                frame.regs[dst.index()] = value;
                frame.index += 1;
            }
            Op::Unary { dst, op, src } => {
                let v = read_operand(src, &frame.regs);
                frame.regs[dst.index()] = eval_unary(op, v);
                frame.index += 1;
            }
            Op::Binary { dst, op, lhs, rhs } => {
                let (a, b) = (
                    read_operand(lhs, &frame.regs),
                    read_operand(rhs, &frame.regs),
                );
                frame.regs[dst.index()] = eval_binary(op, a, b);
                frame.index += 1;
            }
            Op::Cmp { dst, op, lhs, rhs } => {
                let (a, b) = (
                    read_operand(lhs, &frame.regs),
                    read_operand(rhs, &frame.regs),
                );
                frame.regs[dst.index()] = eval_cmp(op, a, b);
                frame.index += 1;
            }
            Op::Load {
                dst, addr, offset, ..
            } => {
                let a = frame.regs[addr.index()].wrapping_add(offset);
                let Some(v) = mem_load(shared, a) else {
                    break 'run fail(RtError::MemoryOutOfBounds {
                        address: a,
                        size: shared.memory.len(),
                    });
                };
                frame.regs[dst.index()] = v;
                frame.index += 1;
            }
            Op::Store {
                src, addr, offset, ..
            } => {
                let v = read_operand(src, &frame.regs);
                let a = frame.regs[addr.index()].wrapping_add(offset);
                if !mem_store(shared, a, v) {
                    break 'run fail(RtError::MemoryOutOfBounds {
                        address: a,
                        size: shared.memory.len(),
                    });
                }
                frame.index += 1;
            }
            Op::Call { callee } => {
                frame.index += 1;
                stack.push(new_frame(program.function(callee), callee));
            }
            Op::CallInd { target } => {
                let v = frame.regs[target.index()];
                if v < 0 {
                    // Terminate sentinel (master-loop protocol): not a
                    // counted step, matching the functional executor.
                    steps -= 1;
                    break 'run WorkerEnd::Terminated;
                }
                let Some(idx) = usize::try_from(v)
                    .ok()
                    .filter(|&i| i < program.functions().len())
                else {
                    break 'run fail(RtError::BadIndirectTarget(v));
                };
                frame.index += 1;
                let callee = FuncId::from_index(idx);
                stack.push(new_frame(program.function(callee), callee));
            }
            Op::Br { cond, then_, else_ } => {
                frame.block = if frame.regs[cond.index()] != 0 {
                    then_
                } else {
                    else_
                };
                frame.index = 0;
            }
            Op::Jump { target } => {
                frame.block = target;
                frame.index = 0;
            }
            Op::Ret => {
                if stack.len() == 1 {
                    break 'run fail(RtError::ReturnFromEntry(thread));
                }
                stack.pop();
            }
            Op::Halt => {
                steps -= 1; // halt is not a counted step (executor parity)
                break 'run WorkerEnd::Terminated;
            }
            Op::Produce { queue, src } => {
                let v = read_operand(src, &frame.regs);
                let qi = queue.index();
                comm.out[qi].push(v);
                if comm.out[qi].len() >= shared.batches[qi] {
                    match flush_queue(
                        shared,
                        thread,
                        qi,
                        &mut comm,
                        &mut faults,
                        &mut blocked_time,
                        &mut backoff,
                    ) {
                        QueueOutcome::Done(_) => frame.index += 1,
                        other => {
                            steps -= 1; // the op never completed
                            break 'run queue_stop(other);
                        }
                    }
                } else {
                    frame.index += 1;
                }
            }
            Op::Consume { queue, dst } => {
                let qi = queue.index();
                let v = match comm.inq[qi].pop() {
                    Some(v) => v,
                    None => match refill_queue(
                        shared,
                        thread,
                        qi,
                        &mut comm,
                        &mut faults,
                        &mut blocked_time,
                        &mut backoff,
                    ) {
                        QueueOutcome::Done(v) => v,
                        other => {
                            steps -= 1;
                            break 'run queue_stop(other);
                        }
                    },
                };
                frame.regs[dst.index()] = v;
                frame.index += 1;
            }
            Op::ProduceToken { queue } => {
                let qi = queue.index();
                comm.out[qi].push(0);
                if comm.out[qi].len() >= shared.batches[qi] {
                    match flush_queue(
                        shared,
                        thread,
                        qi,
                        &mut comm,
                        &mut faults,
                        &mut blocked_time,
                        &mut backoff,
                    ) {
                        QueueOutcome::Done(_) => frame.index += 1,
                        other => {
                            steps -= 1;
                            break 'run queue_stop(other);
                        }
                    }
                } else {
                    frame.index += 1;
                }
            }
            Op::ConsumeToken { queue } => {
                let qi = queue.index();
                match comm.inq[qi].pop() {
                    Some(_) => frame.index += 1,
                    None => match refill_queue(
                        shared,
                        thread,
                        qi,
                        &mut comm,
                        &mut faults,
                        &mut blocked_time,
                        &mut backoff,
                    ) {
                        QueueOutcome::Done(_) => frame.index += 1,
                        other => {
                            steps -= 1;
                            break 'run queue_stop(other);
                        }
                    },
                }
            }
            Op::QueueDepth { dst, queue } => {
                // Occupancy as visible to this context: the ring itself,
                // plus anything this worker has produced but not yet
                // flushed, plus refilled values it has not yet served.
                // The snapshot is racy by design — the probe feeds a
                // routing heuristic (work-stealing scatter), never a
                // correctness decision.
                let qi = queue.index();
                let local = comm.out[qi].len() + (comm.inq[qi].vals.len() - comm.inq[qi].next);
                frame.regs[dst.index()] = (shared.queues[qi].len() + local) as i64;
                frame.index += 1;
            }
            Op::Nop => {
                frame.index += 1;
            }
        }
    };

    // Stage-end flush: a terminating stage still owes its consumers
    // whatever it buffered since the last flush.
    if end == WorkerEnd::Terminated {
        for qi in 0..shared.queues.len() {
            if comm.out[qi].is_empty() {
                continue;
            }
            match flush_queue(
                shared,
                thread,
                qi,
                &mut comm,
                &mut faults,
                &mut blocked_time,
                &mut backoff,
            ) {
                QueueOutcome::Done(_) => {}
                other => {
                    end = queue_stop(other);
                    break;
                }
            }
        }
    }

    if end == WorkerEnd::Terminated {
        shared.monitor.terminate(thread, &shared.queues);
    }
    shared.stage_steps[thread].store(steps, Ordering::Relaxed);
    shared.progress.fetch_add(1, Ordering::Relaxed);

    WorkerReport {
        end,
        steps,
        entry_regs: stack.first().map(|f| f.regs.clone()).unwrap_or_default(),
        wall: started.elapsed(),
        blocked: blocked_time,
        retries: backoff.retries,
        parks: backoff.parks,
        flushes: comm.flushes,
        refills: comm.refills,
    }
}
