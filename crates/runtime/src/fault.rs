//! Deterministic, seeded fault injection for the native runtime.
//!
//! The paper's central claim is that a decoupled pipeline *tolerates*
//! variable latency: the synchronization array absorbs stalls, so one slow
//! stage does not serialize the loop (Section 2). The happy-path
//! differential suite cannot test that claim — every engine simply runs to
//! completion. This module makes the adverse schedules reachable on
//! purpose: a [`FaultPlan`] describes, per pipeline stage, artificial
//! delays, transient (or permanent) queue-operation stalls, a forced panic
//! at an exact retired-instruction count, and queue poisoning, plus an
//! optional artificially tiny queue-capacity override.
//!
//! Two properties make plans usable in differential tests:
//!
//! * **Determinism of the plan** — [`FaultPlan::from_seed`] derives the
//!   whole plan from one seed with an embedded SplitMix64 generator, so a
//!   failing seed reproduces exactly (thread interleaving still varies, but
//!   the injected faults do not).
//! * **Semantic transparency of benign faults** — delays, bounded stalls
//!   and capacity overrides change *timing only*. A run under a benign plan
//!   ([`FaultPlan::is_benign`]) must produce results bit-identical to the
//!   fault-free run; the chaos suite (`tests/chaos.rs` at the workspace
//!   root) asserts exactly that. Lethal faults (panic, permanent stall,
//!   poison) must instead surface as a structured [`RtError`] — never a
//!   hang, never silently corrupted memory.
//!
//! [`RtError`]: crate::RtError

use std::fmt;

/// A bounded artificial delay: after every `every` retired instructions,
/// the stage busy-spins for `spins` iterations. Models a slow stage (cache
/// misses, long-latency ops) without changing any observable value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelayFault {
    /// Instruction cadence of the delay (>= 1).
    pub every: u64,
    /// Spin-loop iterations per delay.
    pub spins: u32,
}

/// Stalls on queue operations: every `every`-th queue operation of the
/// stage artificially fails its first `attempts` tries before the real
/// operation is attempted. With `permanent`, the selected operation never
/// succeeds — a zero-progress queue endpoint, which the runtime must
/// diagnose (watchdog or deadline) instead of hanging on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallFault {
    /// Queue-operation cadence of the stall (>= 1).
    pub every: u64,
    /// Forced failures before the operation is allowed to proceed.
    pub attempts: u32,
    /// Never let the selected operation complete (lethal).
    pub permanent: bool,
}

/// Poisons one queue once the stage retires `after_steps` instructions.
/// Downstream consumers drain remaining values, then fail with
/// [`RtError::QueuePoisoned`](crate::RtError::QueuePoisoned); producers fail
/// immediately.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoisonFault {
    /// Queue to poison.
    pub queue: usize,
    /// Retired-instruction count of the injecting stage at which the
    /// poisoning happens.
    pub after_steps: u64,
}

/// The faults injected into one pipeline stage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageFaults {
    /// Periodic busy-spin delay.
    pub delay: Option<DelayFault>,
    /// Queue-operation stalls.
    pub stall: Option<StallFault>,
    /// Forced panic when the stage's retired-instruction count reaches this
    /// value (lethal; recovered by the runtime via `catch_unwind`).
    pub panic_at: Option<u64>,
    /// Queue poisoning trigger (lethal for whoever touches the queue next).
    pub poison: Option<PoisonFault>,
}

impl StageFaults {
    /// Whether this stage injects no fault at all.
    pub fn is_empty(&self) -> bool {
        self.delay.is_none()
            && self.stall.is_none()
            && self.panic_at.is_none()
            && self.poison.is_none()
    }
}

/// A complete, deterministic fault-injection plan for one native run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed the plan was derived from (0 for hand-built plans).
    pub seed: u64,
    /// Per-stage faults, indexed by hardware context.
    pub stages: Vec<StageFaults>,
    /// Overrides [`RtConfig::queue_capacity`](crate::RtConfig) for every
    /// queue (used to force artificially tiny queues).
    pub queue_capacity: Option<usize>,
}

/// Panic payload used by injected stage panics, so the recovery layer (and
/// the optional [`silence_injected_panics`] hook) can tell an injected
/// crash from a genuine bug.
#[derive(Clone, Copy, Debug)]
pub struct InjectedPanic {
    /// Stage that was forced to panic.
    pub stage: usize,
    /// Retired-instruction count at the panic point.
    pub steps: u64,
}

impl fmt::Display for InjectedPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected fault: stage {} forced panic at {} retired instructions",
            self.stage, self.steps
        )
    }
}

/// Minimal SplitMix64, embedded so the runtime crate stays dependency-free
/// (the workspace's `dswp-testutil` RNG is a dev-dependency only).
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound >= 1`.
    fn below(&mut self, bound: u64) -> u64 {
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// `true` with probability `num / den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

impl FaultPlan {
    /// An empty plan (no faults) for `num_stages` stages. Useful as a
    /// baseline when measuring the injection layer's overhead, and as a
    /// starting point for the `with_*` builders.
    pub fn none(num_stages: usize) -> Self {
        FaultPlan {
            seed: 0,
            stages: vec![StageFaults::default(); num_stages],
            queue_capacity: None,
        }
    }

    /// Derives a complete plan for a pipeline with `num_stages` stages and
    /// `num_queues` queues from `seed`. The same arguments always produce
    /// the same plan.
    ///
    /// The distribution is tuned for differential chaos testing: roughly
    /// half the plans shrink every queue to a tiny capacity, most stages get
    /// bounded delays and transient stalls, and about one plan in three
    /// carries a single *lethal* fault (a forced panic, a permanent stall,
    /// or a queue poisoning) whose outcome must be a structured error.
    pub fn from_seed(seed: u64, num_stages: usize, num_queues: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let queue_capacity = rng.chance(1, 2).then(|| rng.range(1, 9) as usize);

        let mut stages = vec![StageFaults::default(); num_stages.max(1)];
        for stage in &mut stages {
            if rng.chance(1, 2) {
                stage.delay = Some(DelayFault {
                    every: rng.range(16, 257),
                    spins: rng.range(64, 2049) as u32,
                });
            }
            if rng.chance(1, 3) {
                stage.stall = Some(StallFault {
                    every: rng.range(1, 33),
                    attempts: rng.range(1, 65) as u32,
                    permanent: false,
                });
            }
        }

        // At most one lethal fault per plan, so the chaos harness can map
        // each structured error back to its cause.
        let victim = rng.below(stages.len() as u64) as usize;
        match rng.below(16) {
            0..=3 => stages[victim].panic_at = Some(rng.range(1, 20_001)),
            4 => {
                stages[victim].stall = Some(StallFault {
                    every: rng.range(1, 9),
                    attempts: 0,
                    permanent: true,
                });
            }
            5 | 6 if num_queues > 0 => {
                stages[victim].poison = Some(PoisonFault {
                    queue: rng.below(num_queues as u64) as usize,
                    after_steps: rng.range(1, 10_001),
                });
            }
            _ => {}
        }

        FaultPlan {
            seed,
            stages,
            queue_capacity,
        }
    }

    /// Sets the queue-capacity override.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Adds a periodic delay to `stage`.
    pub fn with_delay(mut self, stage: usize, delay: DelayFault) -> Self {
        self.stages[stage].delay = Some(delay);
        self
    }

    /// Adds a queue-operation stall to `stage`.
    pub fn with_stall(mut self, stage: usize, stall: StallFault) -> Self {
        self.stages[stage].stall = Some(stall);
        self
    }

    /// Forces `stage` to panic at `steps` retired instructions.
    pub fn with_panic(mut self, stage: usize, steps: u64) -> Self {
        self.stages[stage].panic_at = Some(steps);
        self
    }

    /// Makes `stage` poison a queue at a retired-instruction count.
    pub fn with_poison(mut self, stage: usize, poison: PoisonFault) -> Self {
        self.stages[stage].poison = Some(poison);
        self
    }

    /// Whether any stage injects a forced panic.
    pub fn injects_panic(&self) -> bool {
        self.stages.iter().any(|s| s.panic_at.is_some())
    }

    /// Whether any stage injects a permanent (zero-progress) stall.
    pub fn injects_permanent_stall(&self) -> bool {
        self.stages
            .iter()
            .any(|s| s.stall.is_some_and(|st| st.permanent))
    }

    /// Whether any stage poisons a queue.
    pub fn injects_poison(&self) -> bool {
        self.stages.iter().any(|s| s.poison.is_some())
    }

    /// Whether the plan only perturbs timing (delays, bounded stalls, tiny
    /// queues): a benign plan must not change any observable result.
    pub fn is_benign(&self) -> bool {
        !self.injects_panic() && !self.injects_permanent_stall() && !self.injects_poison()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan (seed {})", self.seed)?;
        if let Some(cap) = self.queue_capacity {
            write!(f, ", queue capacity {cap}")?;
        }
        for (i, s) in self.stages.iter().enumerate() {
            if s.is_empty() {
                continue;
            }
            write!(f, "; stage {i}:")?;
            if let Some(d) = s.delay {
                write!(f, " delay({} spins / {} instrs)", d.spins, d.every)?;
            }
            if let Some(st) = s.stall {
                if st.permanent {
                    write!(f, " permanent-stall(every {})", st.every)?;
                } else {
                    write!(f, " stall({} tries / {} ops)", st.attempts, st.every)?;
                }
            }
            if let Some(p) = s.panic_at {
                write!(f, " panic@{p}")?;
            }
            if let Some(p) = s.poison {
                write!(f, " poison(q{} @{})", p.queue, p.after_steps)?;
            }
        }
        Ok(())
    }
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" stderr report for panics whose payload is an
/// [`InjectedPanic`]; all other panics are reported by the previously
/// installed hook. The runtime converts injected panics into structured
/// [`RtError::StagePanic`](crate::RtError::StagePanic) values, so the
/// stderr noise carries no information — and a chaos suite running hundreds
/// of plans would otherwise flood its output.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        for seed in 0..64 {
            let a = FaultPlan::from_seed(seed, 3, 4);
            let b = FaultPlan::from_seed(seed, 3, 4);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn seeds_cover_benign_and_lethal_plans() {
        let plans: Vec<FaultPlan> = (0..256).map(|s| FaultPlan::from_seed(s, 2, 3)).collect();
        assert!(plans.iter().any(|p| p.is_benign()));
        assert!(plans.iter().any(|p| p.injects_panic()));
        assert!(plans.iter().any(|p| p.injects_permanent_stall()));
        assert!(plans.iter().any(|p| p.injects_poison()));
        assert!(plans.iter().any(|p| p.queue_capacity.is_some()));
        // Lethal faults stay rare enough for timing-sensitive suites.
        let lethal = plans.iter().filter(|p| !p.is_benign()).count();
        assert!((32..128).contains(&lethal), "lethal plans: {lethal}");
    }

    #[test]
    fn generated_faults_respect_bounds() {
        for seed in 0..512 {
            let p = FaultPlan::from_seed(seed, 4, 2);
            assert_eq!(p.stages.len(), 4);
            if let Some(cap) = p.queue_capacity {
                assert!((1..=8).contains(&cap), "seed {seed}: capacity {cap}");
            }
            for s in &p.stages {
                if let Some(d) = s.delay {
                    assert!(d.every >= 16 && d.spins <= 2048, "seed {seed}");
                }
                if let Some(st) = s.stall {
                    assert!(st.every >= 1 && st.attempts <= 64, "seed {seed}");
                }
            }
            // At most one lethal fault overall.
            let lethal: usize = p
                .stages
                .iter()
                .map(|s| {
                    usize::from(s.panic_at.is_some())
                        + usize::from(s.poison.is_some())
                        + usize::from(s.stall.is_some_and(|st| st.permanent))
                })
                .sum();
            assert!(lethal <= 1, "seed {seed}: {lethal} lethal faults");
        }
    }

    #[test]
    fn no_queues_means_no_poison_faults() {
        for seed in 0..512 {
            let p = FaultPlan::from_seed(seed, 2, 0);
            assert!(!p.injects_poison(), "seed {seed}");
        }
    }

    #[test]
    fn builders_and_summary() {
        let plan = FaultPlan::none(2)
            .with_queue_capacity(1)
            .with_delay(
                0,
                DelayFault {
                    every: 32,
                    spins: 128,
                },
            )
            .with_stall(
                1,
                StallFault {
                    every: 4,
                    attempts: 8,
                    permanent: false,
                },
            )
            .with_panic(1, 99)
            .with_poison(
                0,
                PoisonFault {
                    queue: 0,
                    after_steps: 5,
                },
            );
        assert!(!plan.is_benign());
        assert!(plan.injects_panic() && plan.injects_poison());
        let s = plan.to_string();
        assert!(s.contains("panic@99") && s.contains("poison(q0 @5)"), "{s}");
        assert!(FaultPlan::none(2).is_benign());
    }
}
