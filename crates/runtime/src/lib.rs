//! Native multi-threaded runtime for DSWP-transformed programs.
//!
//! The MICRO 2005 DSWP paper evaluates decoupled software pipelining on a
//! simulated dual-core Itanium 2 with a hardware *synchronization array*.
//! This crate is the third execution engine of the reproduction, and the
//! only one that actually runs the pipeline concurrently:
//!
//! * the single-context [`Interpreter`](dswp_ir::interp::Interpreter)
//!   executes baseline programs and rejects queue instructions;
//! * the functional [`Executor`](../dswp_sim) round-robins all hardware
//!   contexts in one OS thread with unbounded queues — the deterministic
//!   correctness oracle;
//! * this [`Runtime`] spawns **one OS thread per pipeline stage** and
//!   implements the synchronization array as bounded lock-free SPSC
//!   ring-buffer queues ([`queue::SpscQueue`]), with park/unpark
//!   backpressure and a deadlock watchdog.
//!
//! The synchronization-array gap the paper glosses over — its hardware
//! `produce`/`consume` cost ~a cycle, a software queue costs a cross-core
//! cache-line transfer per cursor update — is attacked with **batched
//! communication** ([`BatchPolicy`]): values are accumulated in per-queue
//! local buffers and published/acquired a chunk at a time, with forced
//! flushes on blocking waits, stage end, and a step cadence so batching
//! never changes observable results or liveness, only timing.
//!
//! All three engines share value semantics through `dswp_ir::exec` and
//! `dswp_ir::interp::{eval_unary, eval_binary, eval_cmp}`, so a
//! DSWP-transformed program must produce **bit-identical observable
//! results** (final memory, main entry registers, per-queue value streams)
//! on all of them. The differential test suite at the workspace root
//! asserts exactly that over every paper workload.
//!
//! # Liveness
//!
//! A buggy partition (or a deliberately miswired queue) must fail, not
//! hang. Three independent guards ensure the runtime always returns:
//!
//! 1. the internal monitor detects true deadlock — every live thread
//!    blocked on an unsatisfiable queue operation — and returns
//!    [`RtError::Deadlock`] naming the blocked threads;
//! 2. a shared step budget ([`RtConfig::step_limit`]) stops runaway loops
//!    with [`RtError::StepLimit`];
//! 3. a wall-clock watchdog ([`RtConfig::watchdog`]) aborts the run with
//!    [`RtError::Watchdog`] if *no thread makes progress* for the
//!    configured duration — a backstop for livelock the first two guards
//!    cannot see.
//!
//! # Crash safety
//!
//! Each stage thread runs under `catch_unwind`. When a stage panics, the
//! recovery layer records [`RtError::StagePanic`] (first error wins),
//! poisons every queue so blocked peers wake and shut down, and sets the
//! abort flag — the run returns a structured error instead of propagating
//! the panic or deadlocking the surviving stages. Two cooperative controls
//! complete the picture: a per-run wall-clock deadline
//! ([`RtConfig::deadline`] → [`RtError::Timeout`] with a diagnosis of
//! *which* stage was stuck and how far it got) and an external
//! [`CancelToken`] ([`RtError::Cancelled`]).
//!
//! The [`fault`] module provides deterministic seeded fault injection
//! ([`FaultPlan`]) for exercising all of this; the chaos differential
//! suite at the workspace root asserts that under hundreds of seeded fault
//! plans every run either matches the interpreter bit-for-bit or returns a
//! structured error — never a hang, never corrupt memory.
//!
//! # Example
//!
//! ```
//! use dswp_ir::{ProgramBuilder, QueueId};
//! use dswp_rt::{RtConfig, Runtime};
//!
//! // Stage 0 produces 0..10, stage 1 sums them into memory word 0.
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("stage0");
//! let e = f.entry_block();
//! let header = f.block("header");
//! let body = f.block("body");
//! let tail = f.block("tail");
//! let (i, lim, done) = (f.reg(), f.reg(), f.reg());
//! f.switch_to(e);
//! f.iconst(i, 0);
//! f.iconst(lim, 10);
//! f.jump(header);
//! f.switch_to(header);
//! f.cmp_ge(done, i, lim);
//! f.br(done, tail, body);
//! f.switch_to(body);
//! f.produce(QueueId(0), i);
//! f.add(i, i, 1);
//! f.jump(header);
//! f.switch_to(tail);
//! f.produce(QueueId(0), -1);
//! f.halt();
//! let stage0 = f.finish();
//!
//! let mut g = pb.function("stage1");
//! let e = g.entry_block();
//! let loop_ = g.block("loop");
//! let acc = g.block("acc");
//! let fin = g.block("fin");
//! let (v, sum, neg, base) = (g.reg(), g.reg(), g.reg(), g.reg());
//! g.switch_to(e);
//! g.iconst(sum, 0);
//! g.jump(loop_);
//! g.switch_to(loop_);
//! g.consume(v, QueueId(0));
//! g.cmp_lt(neg, v, 0);
//! g.br(neg, fin, acc);
//! g.switch_to(acc);
//! g.add(sum, sum, v);
//! g.jump(loop_);
//! g.switch_to(fin);
//! g.iconst(base, 0);
//! g.store(sum, base, 0);
//! g.halt();
//! let stage1 = g.finish();
//!
//! let mut program = pb.finish(stage0, 4);
//! program.num_queues = 1;
//! program.add_thread(stage1);
//!
//! let result = Runtime::new(&program).with_config(RtConfig::default()).run().unwrap();
//! assert_eq!(result.memory[0], 45);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fault;
pub mod queue;

pub(crate) mod monitor;
pub(crate) mod worker;

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dswp_ir::Program;

use monitor::{Monitor, Verdict};
use worker::{run_worker, Shared, WorkerEnd, WorkerReport};

pub use fault::{silence_injected_panics, FaultPlan, InjectedPanic};
pub use queue::{BatchHistogram, QueueStats};

/// Errors raised by the native runtime.
///
/// The variants mirror the functional executor's `ExecError` so the two
/// engines can be compared in differential tests; [`RtError::Watchdog`] is
/// runtime-specific.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtError {
    /// A load or store addressed a word outside program memory.
    MemoryOutOfBounds {
        /// Faulting word address.
        address: i64,
        /// Memory size in words.
        size: usize,
    },
    /// An indirect call target was not a valid function id.
    BadIndirectTarget(i64),
    /// The shared step budget was exhausted (runaway-loop guard).
    StepLimit(u64),
    /// `ret` executed with an empty call stack.
    ReturnFromEntry(usize),
    /// Every live thread was blocked on a queue operation that can never
    /// be satisfied, with the main thread among them.
    Deadlock {
        /// Indices of the blocked threads.
        blocked: Vec<usize>,
    },
    /// No thread made progress for the watchdog duration (livelock
    /// backstop).
    Watchdog {
        /// How long the run was stalled before the watchdog fired.
        stalled_for: Duration,
    },
    /// A stage thread panicked; the recovery layer caught the unwind,
    /// poisoned the queues and shut the pipeline down.
    StagePanic {
        /// Hardware context of the crashed stage.
        stage: usize,
        /// The panic payload rendered as text.
        message: String,
    },
    /// A queue operation found its queue poisoned: the peer endpoint died
    /// (or a fault plan poisoned the queue) and the operation can never
    /// complete — producers stop immediately, consumers stop once drained.
    QueuePoisoned {
        /// The poisoned queue.
        queue: usize,
        /// The stage whose operation observed the poison.
        stage: usize,
    },
    /// The per-run wall-clock deadline ([`RtConfig::deadline`]) elapsed.
    Timeout {
        /// The stage diagnosed as stuck: the first blocked stage if any,
        /// otherwise the stage that retired the fewest instructions.
        stage: usize,
        /// Instructions that stage had retired when the deadline fired.
        last_progress: u64,
    },
    /// The run was cancelled through its [`CancelToken`].
    Cancelled,
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::MemoryOutOfBounds { address, size } => {
                write!(
                    f,
                    "memory access at word {address} out of bounds (size {size})"
                )
            }
            RtError::BadIndirectTarget(v) => {
                write!(f, "indirect call target {v} is not a valid function id")
            }
            RtError::StepLimit(n) => write!(f, "step limit of {n} instructions exceeded"),
            RtError::ReturnFromEntry(t) => {
                write!(f, "thread {t} returned from its entry function")
            }
            RtError::Deadlock { blocked } => {
                write!(
                    f,
                    "deadlock: threads {blocked:?} blocked on unsatisfiable queue operations"
                )
            }
            RtError::Watchdog { stalled_for } => {
                write!(f, "watchdog: no progress for {stalled_for:?}")
            }
            RtError::StagePanic { stage, message } => {
                write!(f, "stage {stage} panicked: {message}")
            }
            RtError::QueuePoisoned { queue, stage } => {
                write!(
                    f,
                    "queue {queue} poisoned: stage {stage} cannot complete its operation"
                )
            }
            RtError::Timeout {
                stage,
                last_progress,
            } => {
                write!(
                    f,
                    "deadline exceeded: stage {stage} stuck after {last_progress} instructions"
                )
            }
            RtError::Cancelled => write!(f, "run cancelled"),
        }
    }
}

impl std::error::Error for RtError {}

/// Cooperative cancellation handle for a native run.
///
/// Clone the token, hand one clone to [`RtConfig::cancel`], keep the other,
/// and call [`cancel`](Self::cancel) from any thread; the run aborts with
/// [`RtError::Cancelled`] within one watchdog poll interval (~10 ms).
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// How many values a stage accumulates per queue before publishing them
/// with a single release store (and how many a consumer acquires at once).
///
/// The paper's hardware synchronization array makes `produce`/`consume`
/// roughly one cycle each; a software SPSC queue pays a cross-core
/// cache-line transfer per cursor update instead. Batching amortizes that
/// cost over a chunk of values. Correctness is batch-size-independent —
/// the worker force-flushes on blocking waits, stage end, and every
/// `STEP_BATCH` retired instructions, and consumers never wait for a full
/// chunk — so the policy only trades latency for synchronization
/// throughput.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Use this chunk size on every queue (1 = unbatched, the default).
    Fixed(usize),
    /// Derive the chunk size from the queue capacity:
    /// `(capacity / 2).clamp(1, 16)` — half the queue so producer and
    /// consumer can overlap, capped where the returns flatten out.
    Auto,
}

impl BatchPolicy {
    /// The chunk size this policy yields for a queue of `capacity` slots.
    pub fn chunk(self, capacity: usize) -> usize {
        match self {
            BatchPolicy::Fixed(n) => n.max(1),
            BatchPolicy::Auto => (capacity / 2).clamp(1, 16),
        }
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy::Fixed(1)
    }
}

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct RtConfig {
    /// Capacity of every synchronization-array queue, in values. The paper
    /// models a 32-entry-per-queue synchronization array (Section 2.1).
    pub queue_capacity: usize,
    /// Communication batch (chunk) size policy applied to every queue.
    pub batch: BatchPolicy,
    /// Per-queue batch-size overrides (indexed by queue id; entries beyond
    /// the vector fall back to [`RtConfig::batch`]). Lets the pipeline map
    /// keep token queues at small chunks while data queues batch deeply.
    pub queue_batches: Option<Vec<usize>>,
    /// Total instruction budget across all stage threads.
    pub step_limit: u64,
    /// Abort the run if no thread makes progress for this long.
    pub watchdog: Duration,
    /// Record every produced value per queue (for differential testing;
    /// adds a mutex acquisition per produce).
    pub record_streams: bool,
    /// Hard wall-clock deadline for the whole run; exceeded runs fail with
    /// [`RtError::Timeout`] naming the stuck stage. `None` = no deadline.
    pub deadline: Option<Duration>,
    /// External cancellation token; when it fires, the run aborts with
    /// [`RtError::Cancelled`].
    pub cancel: Option<CancelToken>,
    /// Deterministic fault-injection plan (chaos testing). `None` = no
    /// faults, zero overhead on the worker hot path beyond a branch.
    pub faults: Option<FaultPlan>,
    /// Busy-spin iterations on a blocked queue operation before yielding.
    pub spins: u32,
    /// `yield_now` iterations after spinning before parking on the monitor
    /// condvar.
    pub yields: u32,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            queue_capacity: 32,
            batch: BatchPolicy::default(),
            queue_batches: None,
            step_limit: 500_000_000,
            watchdog: Duration::from_secs(2),
            record_streams: false,
            deadline: None,
            cancel: None,
            faults: None,
            spins: 64,
            yields: 32,
        }
    }
}

impl RtConfig {
    /// Sets the per-queue capacity (must be at least 1).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets a fixed communication batch size for every queue (1 =
    /// unbatched).
    pub fn batch(mut self, n: usize) -> Self {
        self.batch = BatchPolicy::Fixed(n);
        self
    }

    /// Derives the communication batch size from the queue capacity
    /// ([`BatchPolicy::Auto`]).
    pub fn batch_auto(mut self) -> Self {
        self.batch = BatchPolicy::Auto;
        self
    }

    /// Sets per-queue batch-size overrides (see [`RtConfig::queue_batches`]).
    pub fn queue_batches(mut self, batches: Vec<usize>) -> Self {
        self.queue_batches = Some(batches);
        self
    }

    /// Sets the shared step budget.
    pub fn step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Sets the no-progress watchdog duration.
    pub fn watchdog(mut self, duration: Duration) -> Self {
        self.watchdog = duration;
        self
    }

    /// Enables per-queue produced-value stream recording.
    pub fn record_streams(mut self, on: bool) -> Self {
        self.record_streams = on;
        self
    }

    /// Sets the per-run wall-clock deadline.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a deterministic fault-injection plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Tunes the blocked-queue backoff: `spins` busy-spin iterations, then
    /// `yields` scheduler yields, then park on the monitor condvar.
    pub fn spin(mut self, spins: u32, yields: u32) -> Self {
        self.spins = spins;
        self.yields = yields;
        self
    }
}

/// Wall-clock and scheduling statistics of one pipeline stage.
#[derive(Clone, Debug)]
pub struct StageStats {
    /// Successfully executed instructions (comparable to the functional
    /// executor's per-context step counts).
    pub steps: u64,
    /// Total wall-clock lifetime of the stage thread.
    pub wall: Duration,
    /// Portion of `wall` spent blocked on queue backpressure/starvation.
    pub blocked: Duration,
    /// Whether the stage was parked (still blocked when the main thread
    /// terminated) rather than reaching its own halt.
    pub parked: bool,
    /// Failed queue-operation attempts that entered the spin→yield→park
    /// backoff loop (retry accounting).
    pub retries: u64,
    /// Times the stage exhausted its spin/yield budget and parked on the
    /// monitor condvar.
    pub parks: u64,
    /// Whether the stage thread panicked (caught by crash recovery).
    pub panicked: bool,
    /// Sizes of the logical output batches this stage flushed (one entry
    /// per blocking flush; size = values delivered by that flush).
    pub flushes: BatchHistogram,
    /// Sizes of the input batches this stage refilled (one entry per
    /// blocking refill; size = values acquired by that refill).
    pub refills: BatchHistogram,
}

/// The observable result of a completed native run.
#[derive(Clone, Debug)]
pub struct RtResult {
    /// Final shared memory image.
    pub memory: Vec<i64>,
    /// Registers of the main thread's entry frame at halt.
    pub entry_regs: Vec<i64>,
    /// Per-stage statistics, indexed by hardware context.
    pub stages: Vec<StageStats>,
    /// Per-queue occupancy and traffic statistics.
    pub queues: Vec<QueueStats>,
    /// Per-queue produced-value streams, present when
    /// [`RtConfig::record_streams`] was set.
    pub streams: Option<Vec<Vec<i64>>>,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
}

impl RtResult {
    /// Total instructions executed across all stages.
    pub fn total_steps(&self) -> u64 {
        self.stages.iter().map(|s| s.steps).sum()
    }
}

/// Native multi-threaded runtime over a [`Program`].
#[derive(Debug)]
pub struct Runtime<'p> {
    program: &'p Program,
    config: RtConfig,
}

impl<'p> Runtime<'p> {
    /// Creates a runtime for `program` with the default configuration.
    pub fn new(program: &'p Program) -> Self {
        Runtime {
            program,
            config: RtConfig::default(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: RtConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs every hardware context on its own OS thread until the program
    /// completes (main halts and every other stage halts or parks).
    ///
    /// # Errors
    ///
    /// See [`RtError`]. The runtime never hangs: deadlock, runaway loops
    /// and livelock all surface as structured errors.
    pub fn run(&self) -> Result<RtResult, RtError> {
        let program = self.program;
        let num_threads = program.thread_entries().len();
        // A fault plan may override the configured queue capacity (the
        // "artificially tiny queues" fault class).
        let queue_capacity = self
            .config
            .faults
            .as_ref()
            .and_then(|f| f.queue_capacity)
            .unwrap_or(self.config.queue_capacity);
        // Per-queue effective batch sizes, computed after the capacity
        // override so `BatchPolicy::Auto` tracks the real queue size.
        let base_chunk = self.config.batch.chunk(queue_capacity);
        let batches: Vec<usize> = (0..program.num_queues as usize)
            .map(|qi| {
                self.config
                    .queue_batches
                    .as_ref()
                    .and_then(|v| v.get(qi).copied())
                    .unwrap_or(base_chunk)
                    .max(1)
            })
            .collect();
        let shared = Shared {
            program,
            memory: program
                .initial_memory
                .iter()
                .map(|&v| AtomicI64::new(v))
                .collect(),
            queues: (0..program.num_queues as usize)
                .map(|_| queue::SpscQueue::new(queue_capacity, self.config.record_streams))
                .collect(),
            monitor: Monitor::new(num_threads),
            batches,
            steps_claimed: AtomicU64::new(0),
            step_limit: self.config.step_limit,
            abort: AtomicBool::new(false),
            progress: AtomicU64::new(0),
            stage_steps: (0..num_threads).map(|_| AtomicU64::new(0)).collect(),
            faults: self.config.faults.as_ref(),
            spins: self.config.spins,
            yields: self.config.yields,
        };

        let started = Instant::now();
        // The watchdog thread sleeps on a condvar and wakes periodically to
        // compare the progress heartbeat and check the deadline and cancel
        // token; it adds no latency to the run itself (workers are joined
        // directly). True deadlock is detected much faster by the monitor.
        let done = (std::sync::Mutex::new(false), std::sync::Condvar::new());
        let reports: Vec<WorkerReport> = std::thread::scope(|s| {
            let shared = &shared;
            let handles: Vec<_> = (0..num_threads)
                .map(|t| {
                    s.spawn(move || {
                        // Crash recovery: catch the unwind, record the
                        // failure FIRST (first error wins — the panic is
                        // the primary cause, the poisoned queues are its
                        // effect), then poison every queue so blocked
                        // peers wake up and shut down, then raise the
                        // abort flag for the running ones.
                        catch_unwind(AssertUnwindSafe(|| run_worker(shared, t))).unwrap_or_else(
                            |payload| {
                                shared.monitor.fail(RtError::StagePanic {
                                    stage: t,
                                    message: panic_message(&*payload),
                                });
                                for q in &shared.queues {
                                    q.poison();
                                }
                                shared.abort.store(true, Ordering::Relaxed);
                                shared.monitor.notify_activity();
                                WorkerReport {
                                    end: WorkerEnd::Panicked,
                                    steps: shared.stage_steps[t].load(Ordering::Relaxed),
                                    entry_regs: Vec::new(),
                                    wall: Duration::ZERO,
                                    blocked: Duration::ZERO,
                                    retries: 0,
                                    parks: 0,
                                    flushes: BatchHistogram::default(),
                                    refills: BatchHistogram::default(),
                                }
                            },
                        )
                    })
                })
                .collect();

            let done = &done;
            let watchdog_limit = self.config.watchdog;
            let deadline = self.config.deadline;
            let cancel = self.config.cancel.clone();
            let watchdog = s.spawn(move || {
                let (lock, cvar) = done;
                let mut finished = lock
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let mut last_progress = shared.progress.load(Ordering::Relaxed);
                let mut last_change = Instant::now();
                let mut fired = false;
                let fail = |err: RtError| {
                    shared.abort.store(true, Ordering::Relaxed);
                    shared.monitor.fail(err);
                    // Poison all queues so permanently-blocked workers
                    // (e.g. under an injected permanent stall) re-check
                    // their operation, observe the verdict, and exit.
                    for q in &shared.queues {
                        q.poison();
                    }
                };
                while !*finished {
                    let (guard, _) = cvar
                        .wait_timeout(finished, Duration::from_millis(10))
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    finished = guard;
                    if *finished {
                        break;
                    }
                    if fired {
                        continue;
                    }
                    if cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                        fired = true;
                        fail(RtError::Cancelled);
                        continue;
                    }
                    if deadline.is_some_and(|d| started.elapsed() >= d) {
                        fired = true;
                        let stage = shared
                            .monitor
                            .first_blocked()
                            .map(|(t, _)| t)
                            .unwrap_or_else(|| min_steps_stage(&shared.stage_steps));
                        fail(RtError::Timeout {
                            stage,
                            last_progress: shared.stage_steps[stage].load(Ordering::Relaxed),
                        });
                        continue;
                    }
                    let p = shared.progress.load(Ordering::Relaxed);
                    if p != last_progress {
                        last_progress = p;
                        last_change = Instant::now();
                    } else if last_change.elapsed() >= watchdog_limit {
                        fired = true;
                        fail(RtError::Watchdog {
                            stalled_for: watchdog_limit,
                        });
                    }
                }
            });

            let reports = handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .expect("catch_unwind in the stage closure never unwinds")
                })
                .collect();
            let (lock, cvar) = &done;
            *lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
            cvar.notify_all();
            watchdog
                .join()
                .expect("watchdog thread has no panicking path");
            reports
        });
        let elapsed = started.elapsed();

        if let Some(Verdict::Fail(err)) = shared.monitor.verdict() {
            return Err(err);
        }

        let streams = self
            .config
            .record_streams
            .then(|| shared.queues.iter().map(|q| q.take_stream()).collect());
        Ok(RtResult {
            memory: shared
                .memory
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            entry_regs: reports[0].entry_regs.clone(),
            stages: reports
                .iter()
                .map(|r| StageStats {
                    steps: r.steps,
                    wall: r.wall,
                    blocked: r.blocked,
                    parked: r.end == WorkerEnd::Parked,
                    retries: r.retries,
                    parks: r.parks,
                    panicked: r.end == WorkerEnd::Panicked,
                    flushes: r.flushes,
                    refills: r.refills,
                })
                .collect(),
            queues: shared.queues.iter().map(|q| q.stats()).collect(),
            streams,
            elapsed,
        })
    }
}

/// Renders a caught panic payload as text for [`RtError::StagePanic`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(p) = payload.downcast_ref::<InjectedPanic>() {
        p.to_string()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The stage that retired the fewest instructions — the [`RtError::Timeout`]
/// diagnosis when no stage is parked on the monitor (e.g. all are spinning).
fn min_steps_stage(stage_steps: &[AtomicU64]) -> usize {
    stage_steps
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| s.load(Ordering::Relaxed))
        .map(|(t, _)| t)
        .unwrap_or(0)
}

/// Convenience wrapper: runs `program` with `config` and returns the
/// result.
pub fn run_native(program: &Program, config: RtConfig) -> Result<RtResult, RtError> {
    Runtime::new(program).with_config(config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_ir::{ProgramBuilder, QueueId};

    /// Two stages: stage 0 produces 0..n then a -1 sentinel and reads the
    /// sum back through a second queue; stage 1 accumulates.
    fn ping_pong(n: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let q_data = QueueId(0);
        let q_done = QueueId(1);

        let mut f = pb.function("producer");
        let e = f.entry_block();
        let header = f.block("header");
        let body = f.block("body");
        let tail = f.block("tail");
        let (i, lim, done, res, base) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(i, 0);
        f.iconst(lim, n);
        f.iconst(base, 0);
        f.jump(header);
        f.switch_to(header);
        f.cmp_ge(done, i, lim);
        f.br(done, tail, body);
        f.switch_to(body);
        f.produce(q_data, i);
        f.add(i, i, 1);
        f.jump(header);
        f.switch_to(tail);
        f.produce(q_data, -1);
        f.consume(res, q_done);
        f.store(res, base, 0);
        f.halt();
        let producer = f.finish();

        let mut g = pb.function("consumer");
        let e2 = g.entry_block();
        let loop_ = g.block("loop");
        let acc_b = g.block("accumulate");
        let fin = g.block("fin");
        let (v, sum, neg) = (g.reg(), g.reg(), g.reg());
        g.switch_to(e2);
        g.iconst(sum, 0);
        g.jump(loop_);
        g.switch_to(loop_);
        g.consume(v, q_data);
        g.cmp_lt(neg, v, 0);
        g.br(neg, fin, acc_b);
        g.switch_to(acc_b);
        g.add(sum, sum, v);
        g.jump(loop_);
        g.switch_to(fin);
        g.produce(q_done, sum);
        g.halt();
        let consumer = g.finish();

        let mut p = pb.finish(producer, 4);
        p.num_queues = 2;
        p.add_thread(consumer);
        p
    }

    #[test]
    fn two_stages_communicate() {
        let p = ping_pong(1000);
        let r = Runtime::new(&p).run().unwrap();
        assert_eq!(r.memory[0], 499_500);
        assert_eq!(r.stages.len(), 2);
        assert!(r.queues[0].produced == 1001);
        assert!(r.queues[0].max_occupancy <= 32);
    }

    #[test]
    fn tiny_queues_still_complete() {
        let p = ping_pong(500);
        for cap in [1, 2, 3] {
            let r = run_native(&p, RtConfig::default().queue_capacity(cap)).unwrap();
            assert_eq!(r.memory[0], 124_750, "capacity {cap}");
            assert!(r.queues[0].max_occupancy <= cap);
        }
    }

    #[test]
    fn batched_runs_match_unbatched_exactly() {
        let p = ping_pong(2_000);
        let clean = run_native(&p, RtConfig::default().record_streams(true)).unwrap();
        let steps = |r: &RtResult| r.stages.iter().map(|s| s.steps).collect::<Vec<_>>();
        for batch in [2, 4, 16, 64] {
            let r = run_native(&p, RtConfig::default().record_streams(true).batch(batch))
                .unwrap_or_else(|e| panic!("batch {batch}: {e}"));
            assert_eq!(r.memory, clean.memory, "batch {batch}: memory");
            assert_eq!(r.entry_regs, clean.entry_regs, "batch {batch}: regs");
            assert_eq!(r.streams, clean.streams, "batch {batch}: streams");
            assert_eq!(steps(&r), steps(&clean), "batch {batch}: steps");
        }
    }

    #[test]
    fn auto_batch_policy_completes_and_batches() {
        let p = ping_pong(2_000);
        let r = run_native(&p, RtConfig::default().batch_auto()).unwrap();
        assert_eq!(r.memory[0], 1_999_000);
        // Capacity 32 → chunk 16: the data queue must see real batches,
        // both at the queue level and in the per-stage histograms.
        assert!(r.queues[0].flush_sizes.mean() > 1.0);
        assert!(r.stages[0].flushes.count > 0);
        assert!(r.stages[1].refills.sum >= 2_001);
    }

    #[test]
    fn per_queue_batch_overrides_apply() {
        let p = ping_pong(2_000);
        // Deep batching on the data queue, unbatched on the done queue.
        let r = run_native(&p, RtConfig::default().batch(16).queue_batches(vec![16, 1])).unwrap();
        assert_eq!(r.memory[0], 1_999_000);
        assert_eq!(r.queues[1].flush_sizes.buckets[0], 1); // single-value flush
    }

    #[test]
    fn streams_are_recorded_in_order() {
        let p = ping_pong(50);
        let r = run_native(
            &p,
            RtConfig::default().queue_capacity(4).record_streams(true),
        )
        .unwrap();
        let streams = r.streams.unwrap();
        let mut expected: Vec<i64> = (0..50).collect();
        expected.push(-1);
        assert_eq!(streams[0], expected);
        assert_eq!(streams[1], vec![1225]);
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        // Main consumes from a queue nothing produces into.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        let r = f.reg();
        f.switch_to(e);
        f.consume(r, QueueId(0));
        f.halt();
        let main = f.finish();
        let mut p = pb.finish(main, 0);
        p.num_queues = 1;
        let err = Runtime::new(&p).run().unwrap_err();
        assert_eq!(err, RtError::Deadlock { blocked: vec![0] });
    }

    #[test]
    fn aux_parks_when_main_halts() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.switch_to(e);
        f.halt();
        let main = f.finish();
        let mut g = pb.function("parked");
        let e2 = g.entry_block();
        let r = g.reg();
        g.switch_to(e2);
        g.consume(r, QueueId(0));
        g.halt();
        let parked = g.finish();
        let mut p = pb.finish(main, 0);
        p.num_queues = 1;
        p.add_thread(parked);
        let res = Runtime::new(&p).run().unwrap();
        assert!(!res.stages[0].parked);
        assert!(res.stages[1].parked);
        assert_eq!(res.stages[1].steps, 0);
    }

    #[test]
    fn step_limit_stops_runaways() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let e = f.entry_block();
        f.switch_to(e);
        f.jump(e);
        let main = f.finish();
        let p = pb.finish(main, 0);
        let err = Runtime::new(&p)
            .with_config(RtConfig::default().step_limit(10_000))
            .run()
            .unwrap_err();
        assert_eq!(err, RtError::StepLimit(10_000));
    }

    #[test]
    fn memory_fault_aborts_all_stages() {
        let p = {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.function("main");
            let e = f.entry_block();
            let (a, v) = (f.reg(), f.reg());
            f.switch_to(e);
            f.iconst(a, 1_000);
            f.load(v, a, 0);
            f.halt();
            let main = f.finish();
            pb.finish(main, 4)
        };
        let err = Runtime::new(&p).run().unwrap_err();
        assert!(matches!(
            err,
            RtError::MemoryOutOfBounds { address: 1_000, .. }
        ));
    }
}
