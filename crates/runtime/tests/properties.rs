//! Randomized properties of the native runtime.
//!
//! The central claim: the observable result of a valid DSWP pipeline is
//! independent of queue capacity and of scheduling. The functional
//! `Executor` simulates capacity-∞ queues deterministically; the native
//! runtime runs the same program with bounded queues under whatever
//! schedule the OS produces. Across randomized capacities (1..64) and
//! workloads, all observables must coincide.
//!
//! Plus the liveness property: a *miswired* pipeline (queues that never
//! connect) must return a structured deadlock error, never hang.

use dswp::{dswp_loop, DswpOptions};
use dswp_ir::interp::Interpreter;
use dswp_ir::{Program, ProgramBuilder, QueueId};
use dswp_rt::{RtConfig, RtError, Runtime};
use dswp_sim::Executor;
use dswp_testutil::{cases, Rng};
use dswp_workloads::{paper_suite, Size};

/// DSWP-transforms every paper workload once (shared across seeds).
fn transformed_suite() -> Vec<(&'static str, Program)> {
    paper_suite(Size::Test)
        .into_iter()
        .map(|w| {
            let baseline = Interpreter::new(&w.program).run().unwrap();
            let mut p = w.program.clone();
            let main = p.main();
            dswp_loop(
                &mut p,
                main,
                w.header,
                &baseline.profile,
                &DswpOptions::default(),
            )
            .unwrap_or_else(|e| panic!("{}: DSWP failed: {e}", w.name));
            (w.name, p)
        })
        .collect()
}

#[test]
fn random_queue_capacities_never_change_results() {
    let suite = transformed_suite();
    let oracles: Vec<_> = suite
        .iter()
        .map(|(name, p)| {
            Executor::new(p)
                .run()
                .unwrap_or_else(|e| panic!("{name}: oracle failed: {e}"))
        })
        .collect();

    for seed in 0..cases(24) as u64 {
        let mut rng = Rng::new(seed ^ 0x5254_4341_5053);
        let idx = rng.below(suite.len());
        let (name, program) = &suite[idx];
        let oracle = &oracles[idx];
        let capacity = rng.range(1, 65);

        let native = Runtime::new(program)
            .with_config(
                RtConfig::default()
                    .queue_capacity(capacity)
                    .record_streams(true),
            )
            .run()
            .unwrap_or_else(|e| panic!("{name} (cap {capacity}, seed {seed}): {e}"));

        assert_eq!(
            native.memory, oracle.memory,
            "{name}: memory, capacity {capacity}, seed {seed}"
        );
        assert_eq!(
            native.entry_regs, oracle.entry_regs,
            "{name}: entry regs, capacity {capacity}, seed {seed}"
        );
        assert_eq!(
            native.streams.as_ref().unwrap(),
            &oracle.streams,
            "{name}: streams, capacity {capacity}, seed {seed}"
        );
        let steps: Vec<u64> = native.stages.iter().map(|s| s.steps).collect();
        assert_eq!(
            steps, oracle.steps,
            "{name}: steps, capacity {capacity}, seed {seed}"
        );
        // Bounded queues really bound occupancy.
        for (q, qs) in native.queues.iter().enumerate() {
            assert!(
                qs.max_occupancy <= capacity,
                "{name}: queue {q} occupancy {} exceeds capacity {capacity}",
                qs.max_occupancy
            );
        }
    }
}

/// The batched analogue: across random queue capacities (1..64) *and*
/// random communication batch sizes (1..64, occasionally `auto`), every
/// observable — memory, entry registers, streams, per-stage step counts —
/// must still coincide with the capacity-∞ functional oracle. Batch sizes
/// above the capacity are deliberately in range: flushes then span several
/// partial `push_batch`es.
#[test]
fn random_batch_sizes_never_change_results() {
    let suite = transformed_suite();
    let oracles: Vec<_> = suite
        .iter()
        .map(|(name, p)| {
            Executor::new(p)
                .run()
                .unwrap_or_else(|e| panic!("{name}: oracle failed: {e}"))
        })
        .collect();

    for seed in 0..cases(24) as u64 {
        let mut rng = Rng::new(seed ^ 0x4241_5443_4845); // "BATCHE"
        let idx = rng.below(suite.len());
        let (name, program) = &suite[idx];
        let oracle = &oracles[idx];
        let capacity = rng.range(1, 65);
        let batch = rng.range(1, 65);
        let auto = rng.below(4) == 0;

        let mut config = RtConfig::default()
            .queue_capacity(capacity)
            .record_streams(true);
        config = if auto {
            config.batch_auto()
        } else {
            config.batch(batch)
        };
        let native = Runtime::new(program)
            .with_config(config)
            .run()
            .unwrap_or_else(|e| {
                panic!("{name} (cap {capacity}, batch {batch}, auto {auto}, seed {seed}): {e}")
            });

        let ctx = format!("cap {capacity}, batch {batch}, auto {auto}, seed {seed}");
        assert_eq!(native.memory, oracle.memory, "{name}: memory, {ctx}");
        assert_eq!(
            native.entry_regs, oracle.entry_regs,
            "{name}: entry regs, {ctx}"
        );
        assert_eq!(
            native.streams.as_ref().unwrap(),
            &oracle.streams,
            "{name}: streams, {ctx}"
        );
        let steps: Vec<u64> = native.stages.iter().map(|s| s.steps).collect();
        assert_eq!(steps, oracle.steps, "{name}: steps, {ctx}");
        for (q, qs) in native.queues.iter().enumerate() {
            assert!(
                qs.max_occupancy <= capacity,
                "{name}: queue {q} occupancy {} exceeds capacity {capacity} ({ctx})",
                qs.max_occupancy
            );
        }
    }
}

/// Random producer/consumer value batches through a capacity-1..4 pipeline:
/// FIFO order must survive real concurrency.
#[test]
fn random_value_batches_arrive_in_order() {
    for seed in 0..cases(16) as u64 {
        let mut rng = Rng::new(seed ^ 0x4649_464F);
        let n = rng.range(1, 200) as i64;
        let capacity = rng.range(1, 5);

        // Producer sends seed-derived values; consumer checksums them.
        let mut pb = ProgramBuilder::new();
        let q = QueueId(0);
        let mut f = pb.function("producer");
        let e = f.entry_block();
        let header = f.block("header");
        let body = f.block("body");
        let tail = f.block("tail");
        let (i, lim, done, x) = (f.reg(), f.reg(), f.reg(), f.reg());
        f.switch_to(e);
        f.iconst(i, 0);
        f.iconst(lim, n);
        f.jump(header);
        f.switch_to(header);
        f.cmp_ge(done, i, lim);
        f.br(done, tail, body);
        f.switch_to(body);
        f.mul(x, i, 7);
        f.add(x, x, 3);
        f.produce(q, x);
        f.add(i, i, 1);
        f.jump(header);
        f.switch_to(tail);
        f.produce(q, -1);
        f.halt();
        let producer = f.finish();

        let mut g = pb.function("consumer");
        let e2 = g.entry_block();
        let loop_ = g.block("loop");
        let acc = g.block("acc");
        let fin = g.block("fin");
        let (v, sum, neg, base) = (g.reg(), g.reg(), g.reg(), g.reg());
        g.switch_to(e2);
        g.iconst(sum, 0);
        g.jump(loop_);
        g.switch_to(loop_);
        g.consume(v, q);
        g.cmp_lt(neg, v, 0);
        g.br(neg, fin, acc);
        g.switch_to(acc);
        g.mul(sum, sum, 31);
        g.add(sum, sum, v);
        g.jump(loop_);
        g.switch_to(fin);
        g.iconst(base, 0);
        g.store(sum, base, 0);
        g.halt();
        let consumer = g.finish();

        let mut program = pb.finish(producer, 2);
        program.num_queues = 1;
        program.add_thread(consumer);

        // Order-sensitive checksum: any reordering changes it.
        let mut expected: i64 = 0;
        for k in 0..n {
            expected = expected.wrapping_mul(31).wrapping_add(k * 7 + 3);
        }
        let native = Runtime::new(&program)
            .with_config(RtConfig::default().queue_capacity(capacity))
            .run()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(
            native.memory[0], expected,
            "seed {seed}, capacity {capacity}"
        );
    }
}

/// A deliberately miswired pipeline: the producer writes queue 0, the
/// consumer waits on queue 1, and the producer then waits for an answer on
/// queue 2. Every thread ends up blocked on a queue nobody will ever touch
/// — the watchdog must report deadlock instead of hanging.
#[test]
fn miswired_queues_deadlock_with_structured_error() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let (x, r) = (f.reg(), f.reg());
    f.switch_to(e);
    f.iconst(x, 42);
    f.produce(QueueId(0), x);
    f.consume(r, QueueId(2)); // never produced: blocks forever
    f.halt();
    let main = f.finish();

    let mut g = pb.function("aux");
    let e2 = g.entry_block();
    let v = g.reg();
    g.switch_to(e2);
    g.consume(v, QueueId(1)); // miswired: producer used queue 0
    g.produce(QueueId(2), v);
    g.halt();
    let aux = g.finish();

    let mut program = pb.finish(main, 4);
    program.num_queues = 3;
    program.add_thread(aux);

    let err = Runtime::new(&program).run().unwrap_err();
    match err {
        RtError::Deadlock { mut blocked } => {
            blocked.sort_unstable();
            assert_eq!(blocked, vec![0, 1]);
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

/// The same miswiring where only the aux thread blocks must *park*, not
/// deadlock, once main terminates — and the run succeeds.
#[test]
fn miswired_aux_parks_when_main_completes() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let x = f.reg();
    f.switch_to(e);
    f.iconst(x, 7);
    f.produce(QueueId(0), x);
    f.halt();
    let main = f.finish();

    let mut g = pb.function("aux");
    let e2 = g.entry_block();
    let v = g.reg();
    g.switch_to(e2);
    g.consume(v, QueueId(1)); // miswired
    g.halt();
    let aux = g.finish();

    let mut program = pb.finish(main, 4);
    program.num_queues = 2;
    program.add_thread(aux);

    let res = Runtime::new(&program).run().unwrap();
    assert!(res.stages[1].parked);
}
