//! Batched-communication edge cases: the nasty corners where chunking
//! could change semantics if any forced-flush rule were missing.
//!
//! * capacity 1 (every flush degenerates to single-value pushes),
//! * batch sizes far above the queue capacity (flushes span several
//!   partial `push_batch`es),
//! * queue poisoning landing mid-chunk (buffered values can never be
//!   delivered — must surface as a structured error, not a hang),
//! * the step-cadence flush (a producer that stops touching queues but
//!   keeps computing must still deliver its half-filled chunk),
//! * deadlock detection with values parked in local buffers.

use dswp_ir::{ProgramBuilder, QueueId};
use dswp_rt::fault::{FaultPlan, PoisonFault};
use dswp_rt::{run_native, RtConfig, RtError, Runtime};

/// Two stages: stage 0 produces 0..n then a -1 sentinel and reads the sum
/// back through a second queue; stage 1 accumulates.
fn ping_pong(n: i64) -> dswp_ir::Program {
    let mut pb = ProgramBuilder::new();
    let q_data = QueueId(0);
    let q_done = QueueId(1);

    let mut f = pb.function("producer");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let tail = f.block("tail");
    let (i, lim, done, res, base) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.switch_to(e);
    f.iconst(i, 0);
    f.iconst(lim, n);
    f.iconst(base, 0);
    f.jump(header);
    f.switch_to(header);
    f.cmp_ge(done, i, lim);
    f.br(done, tail, body);
    f.switch_to(body);
    f.produce(q_data, i);
    f.add(i, i, 1);
    f.jump(header);
    f.switch_to(tail);
    f.produce(q_data, -1);
    f.consume(res, q_done);
    f.store(res, base, 0);
    f.halt();
    let producer = f.finish();

    let mut g = pb.function("consumer");
    let e2 = g.entry_block();
    let loop_ = g.block("loop");
    let acc_b = g.block("accumulate");
    let fin = g.block("fin");
    let (v, sum, neg) = (g.reg(), g.reg(), g.reg());
    g.switch_to(e2);
    g.iconst(sum, 0);
    g.jump(loop_);
    g.switch_to(loop_);
    g.consume(v, q_data);
    g.cmp_lt(neg, v, 0);
    g.br(neg, fin, acc_b);
    g.switch_to(acc_b);
    g.add(sum, sum, v);
    g.jump(loop_);
    g.switch_to(fin);
    g.produce(q_done, sum);
    g.halt();
    let consumer = g.finish();

    let mut p = pb.finish(producer, 4);
    p.num_queues = 2;
    p.add_thread(consumer);
    p
}

#[test]
fn capacity_one_with_every_batch_size() {
    let p = ping_pong(500);
    for batch in [1, 2, 4, 16] {
        let r = run_native(
            &p,
            RtConfig::default()
                .queue_capacity(1)
                .batch(batch)
                .record_streams(true),
        )
        .unwrap_or_else(|e| panic!("batch {batch}: {e}"));
        assert_eq!(r.memory[0], 124_750, "batch {batch}");
        assert!(r.queues.iter().all(|q| q.max_occupancy <= 1));
        let mut expected: Vec<i64> = (0..500).collect();
        expected.push(-1);
        assert_eq!(r.streams.as_ref().unwrap()[0], expected, "batch {batch}");
    }
}

#[test]
fn batch_far_above_capacity_still_completes() {
    let p = ping_pong(2_000);
    for (cap, batch) in [(2, 64), (4, 256), (32, 4096)] {
        let r = run_native(&p, RtConfig::default().queue_capacity(cap).batch(batch))
            .unwrap_or_else(|e| panic!("cap {cap} batch {batch}: {e}"));
        assert_eq!(r.memory[0], 1_999_000, "cap {cap} batch {batch}");
        assert!(
            r.queues[0].max_occupancy <= cap,
            "cap {cap} batch {batch}: occupancy {}",
            r.queues[0].max_occupancy
        );
    }
}

#[test]
fn poison_mid_chunk_is_a_structured_error() {
    // The poison fires at retired-instruction 100 — mid-loop, with values
    // sitting in the producer's half-filled chunk. Those values can never
    // be delivered; the run must fail with QueuePoisoned, never hang on a
    // "satisfiable" wait set.
    let p = ping_pong(10_000);
    let plan = FaultPlan::none(2).with_poison(
        0,
        PoisonFault {
            queue: 0,
            after_steps: 100,
        },
    );
    for batch in [4, 16, 64] {
        let err = Runtime::new(&p)
            .with_config(RtConfig::default().batch(batch).faults(plan.clone()))
            .run()
            .unwrap_err();
        match err {
            RtError::QueuePoisoned { queue, stage } => {
                assert_eq!(queue, 0, "batch {batch}");
                assert!(stage < 2, "batch {batch}");
            }
            other => panic!("batch {batch}: expected QueuePoisoned, got {other}"),
        }
    }
}

#[test]
fn cadence_flush_delivers_chunks_from_computing_stages() {
    // Aux produces ONE value into a batch-64 buffer (never reaching the
    // chunk threshold) and then spins on a memory flag without touching
    // any queue again. Main blocks consuming that value, then raises the
    // flag. Only the step-cadence flush can deliver the buffered value —
    // if it were missing, this run would die on the step limit.
    let mut pb = ProgramBuilder::new();
    let q = QueueId(0);

    let mut f = pb.function("main");
    let e = f.entry_block();
    let (v, one, base) = (f.reg(), f.reg(), f.reg());
    f.switch_to(e);
    f.consume(v, q);
    f.iconst(one, 1);
    f.iconst(base, 0);
    f.store(v, base, 1);
    f.store(one, base, 0);
    f.halt();
    let main = f.finish();

    let mut g = pb.function("aux");
    let e2 = g.entry_block();
    let spin = g.block("spin");
    let fin = g.block("fin");
    let (x, flag, base2, zero) = (g.reg(), g.reg(), g.reg(), g.reg());
    g.switch_to(e2);
    g.iconst(x, 7);
    g.produce(q, x);
    g.iconst(base2, 0);
    g.jump(spin);
    g.switch_to(spin);
    g.load(flag, base2, 0);
    g.cmp_eq(zero, flag, 0);
    g.br(zero, spin, fin);
    g.switch_to(fin);
    g.halt();
    let aux = g.finish();

    let mut p = pb.finish(main, 4);
    p.num_queues = 1;
    p.add_thread(aux);

    let r = run_native(&p, RtConfig::default().batch(64).step_limit(50_000_000)).unwrap();
    assert_eq!(r.memory[0], 1);
    assert_eq!(r.memory[1], 7);
    assert_eq!(r.queues[0].produced, 1);
}

#[test]
fn batched_full_queue_nobody_drains_is_deadlock() {
    // Main produces forever into a queue with no consumer. With batch 4 and
    // capacity 2, the local buffer fills, the flush blocks on the full
    // queue, and the monitor must call it: deadlock, not a hang.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let x = f.reg();
    f.switch_to(e);
    f.iconst(x, 1);
    f.produce(QueueId(0), x);
    f.jump(e);
    let main = f.finish();
    let mut p = pb.finish(main, 0);
    p.num_queues = 1;

    let err = Runtime::new(&p)
        .with_config(RtConfig::default().queue_capacity(2).batch(4))
        .run()
        .unwrap_err();
    assert_eq!(err, RtError::Deadlock { blocked: vec![0] });
}

#[test]
fn batched_histograms_reflect_chunking() {
    let p = ping_pong(2_000);
    let r = run_native(&p, RtConfig::default().batch(8)).unwrap();
    // Stage 0 pushes 2001 values through the data queue in chunks of 8;
    // most are delivered by blocking flushes (a few may ride the cadence
    // side-flush instead, which records at queue level only).
    assert!(r.stages[0].flushes.count > 0);
    assert!(
        r.stages[0].flushes.mean() > 1.0,
        "{:?}",
        r.stages[0].flushes
    );
    // Queue-level accounting is exact: every produced value crossed each
    // queue in exactly one publish and one acquire.
    assert_eq!(
        r.queues[0].flush_sizes.sum + r.queues[1].flush_sizes.sum,
        2_002
    );
    assert_eq!(
        r.queues[0].refill_sizes.sum + r.queues[1].refill_sizes.sum,
        2_002
    );
    // The data queue saw genuinely multi-value publishes.
    assert!(r.queues[0].flush_sizes.mean() > 1.0);
}
