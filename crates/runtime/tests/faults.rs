//! Fault-injection and recovery tests: every lethal fault class must
//! surface as a structured [`RtError`] — never a hang, never an escaped
//! panic — and every benign fault class must leave the observable results
//! bit-identical to the fault-free run.
//!
//! Together with the unit tests in `lib.rs` (deadlock, step limit, memory
//! fault) this file constructs every `RtError` variant at least once.

use std::time::Duration;

use dswp_ir::{ProgramBuilder, QueueId};
use dswp_rt::fault::{DelayFault, FaultPlan, PoisonFault, StallFault};
use dswp_rt::{silence_injected_panics, CancelToken, RtConfig, RtError, Runtime};

/// Two stages: stage 0 produces 0..n then a -1 sentinel and reads the sum
/// back through a second queue; stage 1 accumulates.
fn ping_pong(n: i64) -> dswp_ir::Program {
    let mut pb = ProgramBuilder::new();
    let q_data = QueueId(0);
    let q_done = QueueId(1);

    let mut f = pb.function("producer");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let tail = f.block("tail");
    let (i, lim, done, res, base) = (f.reg(), f.reg(), f.reg(), f.reg(), f.reg());
    f.switch_to(e);
    f.iconst(i, 0);
    f.iconst(lim, n);
    f.iconst(base, 0);
    f.jump(header);
    f.switch_to(header);
    f.cmp_ge(done, i, lim);
    f.br(done, tail, body);
    f.switch_to(body);
    f.produce(q_data, i);
    f.add(i, i, 1);
    f.jump(header);
    f.switch_to(tail);
    f.produce(q_data, -1);
    f.consume(res, q_done);
    f.store(res, base, 0);
    f.halt();
    let producer = f.finish();

    let mut g = pb.function("consumer");
    let e2 = g.entry_block();
    let loop_ = g.block("loop");
    let acc_b = g.block("accumulate");
    let fin = g.block("fin");
    let (v, sum, neg) = (g.reg(), g.reg(), g.reg());
    g.switch_to(e2);
    g.iconst(sum, 0);
    g.jump(loop_);
    g.switch_to(loop_);
    g.consume(v, q_data);
    g.cmp_lt(neg, v, 0);
    g.br(neg, fin, acc_b);
    g.switch_to(acc_b);
    g.add(sum, sum, v);
    g.jump(loop_);
    g.switch_to(fin);
    g.produce(q_done, sum);
    g.halt();
    let consumer = g.finish();

    let mut p = pb.finish(producer, 4);
    p.num_queues = 2;
    p.add_thread(consumer);
    p
}

/// A single stage spinning in an infinite loop (no queue traffic).
fn spin_forever() -> dswp_ir::Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    f.switch_to(e);
    f.jump(e);
    let main = f.finish();
    pb.finish(main, 0)
}

#[test]
fn injected_panic_is_recovered_as_stage_panic() {
    silence_injected_panics();
    let p = ping_pong(10_000);
    let plan = FaultPlan::none(2).with_panic(1, 50);
    let err = Runtime::new(&p)
        .with_config(RtConfig::default().faults(plan))
        .run()
        .unwrap_err();
    match err {
        RtError::StagePanic { stage, message } => {
            assert_eq!(stage, 1);
            assert!(message.contains("injected fault"), "{message}");
        }
        other => panic!("expected StagePanic, got {other}"),
    }
}

#[test]
fn panic_in_main_stage_is_recovered_too() {
    silence_injected_panics();
    let p = ping_pong(10_000);
    let plan = FaultPlan::none(2).with_panic(0, 7);
    let err = Runtime::new(&p)
        .with_config(RtConfig::default().faults(plan))
        .run()
        .unwrap_err();
    assert!(matches!(err, RtError::StagePanic { stage: 0, .. }), "{err}");
}

#[test]
fn poison_fault_yields_queue_poisoned() {
    let p = ping_pong(10_000);
    let plan = FaultPlan::none(2).with_poison(
        0,
        PoisonFault {
            queue: 0,
            after_steps: 20,
        },
    );
    let err = Runtime::new(&p)
        .with_config(RtConfig::default().faults(plan))
        .run()
        .unwrap_err();
    match err {
        RtError::QueuePoisoned { queue, stage } => {
            assert_eq!(queue, 0);
            assert!(stage < 2);
        }
        other => panic!("expected QueuePoisoned, got {other}"),
    }
}

#[test]
fn permanent_stall_trips_watchdog() {
    let p = ping_pong(10_000);
    let plan = FaultPlan::none(2).with_stall(
        0,
        StallFault {
            every: 1,
            attempts: 0,
            permanent: true,
        },
    );
    let err = Runtime::new(&p)
        .with_config(
            RtConfig::default()
                .faults(plan)
                .watchdog(Duration::from_millis(100)),
        )
        .run()
        .unwrap_err();
    assert!(matches!(err, RtError::Watchdog { .. }), "{err}");
}

#[test]
fn deadline_times_out_with_stuck_stage_diagnosis() {
    let p = ping_pong(10_000);
    let plan = FaultPlan::none(2).with_stall(
        1,
        StallFault {
            every: 1,
            attempts: 0,
            permanent: true,
        },
    );
    let err = Runtime::new(&p)
        .with_config(
            RtConfig::default()
                .faults(plan)
                .watchdog(Duration::from_secs(30))
                .deadline(Duration::from_millis(100)),
        )
        .run()
        .unwrap_err();
    match err {
        RtError::Timeout {
            stage,
            last_progress: _,
        } => assert!(stage < 2),
        other => panic!("expected Timeout, got {other}"),
    }
}

#[test]
fn deadline_is_inert_on_completing_runs() {
    let p = ping_pong(500);
    let r = Runtime::new(&p)
        .with_config(RtConfig::default().deadline(Duration::from_secs(30)))
        .run()
        .unwrap();
    assert_eq!(r.memory[0], 124_750);
}

#[test]
fn cancel_token_aborts_run() {
    let p = spin_forever();
    let token = CancelToken::new();
    token.cancel();
    assert!(token.is_cancelled());
    let err = Runtime::new(&p)
        .with_config(RtConfig::default().cancel_token(token))
        .run()
        .unwrap_err();
    assert_eq!(err, RtError::Cancelled);
}

#[test]
fn cancel_from_another_thread_aborts_run() {
    let p = spin_forever();
    let token = CancelToken::new();
    let remote = token.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        remote.cancel();
    });
    let err = Runtime::new(&p)
        .with_config(RtConfig::default().cancel_token(token))
        .run()
        .unwrap_err();
    canceller.join().unwrap();
    assert_eq!(err, RtError::Cancelled);
}

#[test]
fn bad_indirect_target_is_reported() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let t = f.reg();
    f.switch_to(e);
    f.iconst(t, 99);
    f.call_ind(t);
    f.halt();
    let main = f.finish();
    let p = pb.finish(main, 0);
    let err = Runtime::new(&p).run().unwrap_err();
    assert_eq!(err, RtError::BadIndirectTarget(99));
}

#[test]
fn return_from_entry_is_reported() {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    f.switch_to(e);
    f.ret();
    let main = f.finish();
    let p = pb.finish(main, 0);
    let err = Runtime::new(&p).run().unwrap_err();
    assert_eq!(err, RtError::ReturnFromEntry(0));
}

#[test]
fn benign_faults_preserve_results_exactly() {
    let p = ping_pong(2_000);
    let clean = Runtime::new(&p)
        .with_config(RtConfig::default().record_streams(true))
        .run()
        .unwrap();

    // A hand-built worst case: tiny queues, delays and stalls everywhere.
    let mut plans = vec![FaultPlan::none(2)
        .with_queue_capacity(1)
        .with_delay(
            0,
            DelayFault {
                every: 16,
                spins: 500,
            },
        )
        .with_delay(
            1,
            DelayFault {
                every: 7,
                spins: 900,
            },
        )
        .with_stall(
            0,
            StallFault {
                every: 3,
                attempts: 40,
                permanent: false,
            },
        )
        .with_stall(
            1,
            StallFault {
                every: 2,
                attempts: 25,
                permanent: false,
            },
        )];
    // Plus whatever benign plans the seeded generator produces.
    plans.extend(
        (0..64)
            .map(|s| FaultPlan::from_seed(s, 2, 2))
            .filter(FaultPlan::is_benign),
    );

    for plan in plans {
        let seed = plan.seed;
        let faulty = Runtime::new(&p)
            .with_config(RtConfig::default().record_streams(true).faults(plan))
            .run()
            .unwrap_or_else(|e| panic!("benign plan (seed {seed}) failed: {e}"));
        assert_eq!(faulty.memory, clean.memory, "seed {seed}: memory");
        assert_eq!(faulty.entry_regs, clean.entry_regs, "seed {seed}: regs");
        assert_eq!(faulty.streams, clean.streams, "seed {seed}: streams");
        let steps = |r: &dswp_rt::RtResult| r.stages.iter().map(|s| s.steps).collect::<Vec<_>>();
        assert_eq!(steps(&faulty), steps(&clean), "seed {seed}: steps");
    }
}

#[test]
fn transient_stalls_are_accounted_as_retries() {
    let p = ping_pong(2_000);
    let plan = FaultPlan::none(2)
        .with_stall(
            0,
            StallFault {
                every: 1,
                attempts: 8,
                permanent: false,
            },
        )
        .with_stall(
            1,
            StallFault {
                every: 1,
                attempts: 8,
                permanent: false,
            },
        );
    let r = Runtime::new(&p)
        .with_config(RtConfig::default().faults(plan))
        .run()
        .unwrap();
    assert_eq!(r.memory[0], 1_999_000);
    let retries: u64 = r.stages.iter().map(|s| s.retries).sum();
    assert!(retries > 0, "forced stall attempts must show up as retries");
    assert!(r.stages.iter().all(|s| !s.panicked));
}

#[test]
fn tiny_queue_override_applies_and_completes() {
    let p = ping_pong(500);
    let plan = FaultPlan::none(2).with_queue_capacity(1);
    let r = Runtime::new(&p)
        .with_config(RtConfig::default().queue_capacity(64).faults(plan))
        .run()
        .unwrap();
    assert_eq!(r.memory[0], 124_750);
    assert!(r.queues.iter().all(|q| q.capacity == 1));
    assert!(r.queues[0].max_occupancy <= 1);
}
