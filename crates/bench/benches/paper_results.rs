//! Regenerates every table and figure of the paper in one run.
//!
//! Invoked by `cargo bench -p dswp-bench --bench paper_results`. Set
//! `DSWP_BENCH_SIZE=test` for a fast smoke run.

use dswp_bench::figures::*;
use dswp_bench::runner::Experiment;

fn main() {
    let exp = Experiment::from_env();
    println!("DSWP paper-results harness (size {:?})\n", exp.size);

    let rows = table1(&exp);
    print_table1(&rows);
    println!();

    let runs = figure6(&exp);
    print_fig6a(&runs);
    println!();
    print_fig6b(&runs);
    println!();
    print_fig8(&runs);
    println!();

    let f7 = figure7(&exp);
    print_fig7(&f7);
    println!();

    let f9a = figure9a(&exp);
    print_fig9a(&f9a);
    println!();

    let f9b = figure9b(&exp);
    print_fig9b(&f9b);
    println!();

    let qs = queue_size_sweep(&exp);
    print_queue_size(&qs);
    println!();

    let f1 = figure1_contrast(&exp);
    print_figure1(&f1);
    println!();

    print_case_studies(&exp);
    println!();

    print_ilp_study(&ilp_study(&exp));
}
