//! Micro-benchmarks of the compiler passes and the simulator: PDG
//! construction, SCC/DAG coalescing, the TPP heuristic, the full DSWP
//! transformation, and timing-model throughput.
//!
//! Uses a small self-contained harness (median-of-samples over
//! `std::time::Instant`) instead of an external benchmark framework so the
//! workspace builds with no registry access. Run with
//! `cargo bench -p dswp-bench --bench pass_costs`.

use std::hint::black_box;
use std::time::Instant;

use dswp::{analyze_loop, dswp_loop, scc_costs, tpp_heuristic, DswpOptions, TppOptions};
use dswp_analysis::{build_pdg, find_loops, AliasMode, DagScc, Liveness, PdgOptions};
use dswp_ir::interp::Interpreter;
use dswp_ir::LatencyTable;
use dswp_sim::{Machine, MachineConfig};
use dswp_workloads::{mcf, Size};

/// Runs `f` repeatedly and prints the median per-iteration time.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    const WARMUP: usize = 3;
    const SAMPLES: usize = 15;
    for _ in 0..WARMUP {
        black_box(f());
    }
    let mut times: Vec<u128> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            black_box(f());
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    let median = times[SAMPLES / 2];
    println!(
        "{name:<32} {:>12.3} µs/iter (median of {SAMPLES})",
        median as f64 / 1000.0
    );
}

fn bench_passes() {
    let w = mcf::build(Size::Test);
    let main = w.program.main();
    let analysis = analyze_loop(&w.program, main, w.header, AliasMode::Region).unwrap();
    let f = analysis.normalized.function(main);
    let liveness = Liveness::compute(f);
    let profile = Interpreter::new(&w.program).run().unwrap().profile;

    bench("pdg_build_mcf", || {
        build_pdg(
            black_box(f),
            &analysis.loop_,
            &liveness,
            &PdgOptions {
                alias: AliasMode::Region,
            },
        )
    });

    bench("dag_scc_mcf", || {
        DagScc::compute(&black_box(&analysis.pdg).instr_graph())
    });

    let costs = scc_costs(
        f,
        main,
        &analysis.pdg,
        &analysis.dag,
        &profile,
        &LatencyTable::default(),
    );
    bench("tpp_heuristic_mcf", || {
        tpp_heuristic(black_box(&analysis.dag), &costs, &TppOptions::default())
    });

    bench("dswp_full_transform_mcf", || {
        let mut p = w.program.clone();
        dswp_loop(&mut p, main, w.header, &profile, &DswpOptions::default()).unwrap()
    });

    bench("find_loops_mcf", || {
        find_loops(black_box(w.program.function(main)))
    });
}

fn bench_simulator() {
    let w = mcf::build(Size::Test);
    bench("timing_sim_mcf_baseline", || {
        Machine::new(black_box(&w.program), MachineConfig::full_width())
            .run()
            .unwrap()
    });

    let profile = Interpreter::new(&w.program).run().unwrap().profile;
    let mut p = w.program.clone();
    let main = p.main();
    dswp_loop(&mut p, main, w.header, &profile, &DswpOptions::default()).unwrap();
    bench("timing_sim_mcf_dswp", || {
        Machine::new(black_box(&p), MachineConfig::full_width())
            .run()
            .unwrap()
    });

    bench("functional_exec_mcf_dswp", || {
        dswp_sim::Executor::new(black_box(&p)).run().unwrap()
    });

    bench("interpreter_mcf_baseline", || {
        Interpreter::new(black_box(&w.program)).run().unwrap()
    });
}

fn main() {
    println!("pass_costs micro-benchmarks (manual harness)\n");
    bench_passes();
    bench_simulator();
}
