//! Criterion micro-benchmarks of the compiler passes and the simulator:
//! PDG construction, SCC/DAG coalescing, the TPP heuristic, the full DSWP
//! transformation, and timing-model throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dswp::{analyze_loop, dswp_loop, scc_costs, tpp_heuristic, DswpOptions, TppOptions};
use dswp_analysis::{build_pdg, find_loops, AliasMode, DagScc, Liveness, PdgOptions};
use dswp_ir::interp::Interpreter;
use dswp_ir::LatencyTable;
use dswp_sim::{Machine, MachineConfig};
use dswp_workloads::{mcf, Size};

fn bench_passes(c: &mut Criterion) {
    let w = mcf::build(Size::Test);
    let main = w.program.main();
    let analysis = analyze_loop(&w.program, main, w.header, AliasMode::Region).unwrap();
    let f = analysis.normalized.function(main);
    let liveness = Liveness::compute(f);
    let profile = Interpreter::new(&w.program).run().unwrap().profile;

    c.bench_function("pdg_build_mcf", |b| {
        b.iter(|| {
            build_pdg(
                black_box(f),
                &analysis.loop_,
                &liveness,
                &PdgOptions {
                    alias: AliasMode::Region,
                },
            )
        })
    });

    c.bench_function("dag_scc_mcf", |b| {
        b.iter(|| DagScc::compute(&black_box(&analysis.pdg).instr_graph()))
    });

    let costs = scc_costs(
        f,
        main,
        &analysis.pdg,
        &analysis.dag,
        &profile,
        &LatencyTable::default(),
    );
    c.bench_function("tpp_heuristic_mcf", |b| {
        b.iter(|| tpp_heuristic(black_box(&analysis.dag), &costs, &TppOptions::default()))
    });

    c.bench_function("dswp_full_transform_mcf", |b| {
        b.iter(|| {
            let mut p = w.program.clone();
            dswp_loop(
                &mut p,
                main,
                w.header,
                &profile,
                &DswpOptions::default(),
            )
            .unwrap()
        })
    });

    c.bench_function("find_loops_mcf", |b| {
        b.iter(|| find_loops(black_box(w.program.function(main))))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let w = mcf::build(Size::Test);
    c.bench_function("timing_sim_mcf_baseline", |b| {
        b.iter(|| {
            Machine::new(black_box(&w.program), MachineConfig::full_width())
                .run()
                .unwrap()
        })
    });

    let profile = Interpreter::new(&w.program).run().unwrap().profile;
    let mut p = w.program.clone();
    let main = p.main();
    dswp_loop(&mut p, main, w.header, &profile, &DswpOptions::default()).unwrap();
    c.bench_function("timing_sim_mcf_dswp", |b| {
        b.iter(|| {
            Machine::new(black_box(&p), MachineConfig::full_width())
                .run()
                .unwrap()
        })
    });

    c.bench_function("functional_exec_mcf_dswp", |b| {
        b.iter(|| dswp_sim::Executor::new(black_box(&p)).run().unwrap())
    });

    c.bench_function("interpreter_mcf_baseline", |b| {
        b.iter(|| Interpreter::new(black_box(&w.program)).run().unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_passes, bench_simulator
}
criterion_main!(benches);
