//! Minimal flat-JSON support for benchmark artifacts.
//!
//! The bench binaries emit machine-readable results (`BENCH_*.json`) that
//! CI archives and diffs against a committed baseline. The workspace is
//! deliberately dependency-free, so instead of a JSON library this module
//! implements exactly the subset the artifacts use: a single flat object
//! mapping string keys to finite numbers.
//!
//! ```text
//! {
//!   "queue-stream/4": 1.37,
//!   "queue-stream/16": 1.82
//! }
//! ```

use std::fmt::Write as _;

/// Renders `pairs` as a flat JSON object, one key per line, preserving
/// order. Keys must not contain `"` or `\` (bench keys are
/// `workload/batch` slugs); values must be finite.
pub fn emit(pairs: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in pairs.iter().enumerate() {
        assert!(
            !k.contains('"') && !k.contains('\\'),
            "unescapable key: {k:?}"
        );
        assert!(v.is_finite(), "non-finite value for {k:?}");
        let comma = if i + 1 < pairs.len() { "," } else { "" };
        let _ = writeln!(out, "  \"{k}\": {v:.6}{comma}");
    }
    out.push_str("}\n");
    out
}

/// Parses a flat JSON object of string keys and numeric values, in file
/// order. Accepts exactly what [`emit`] produces plus insignificant
/// whitespace; anything else (nesting, strings values, escapes, trailing
/// garbage) is an error naming the offending position.
pub fn parse(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.ws();
    p.expect(b'{')?;
    let mut pairs = Vec::new();
    p.ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.ws();
            let key = p.string()?;
            p.ws();
            p.expect(b':')?;
            p.ws();
            let val = p.number()?;
            pairs.push((key, val));
            p.ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        p.pos,
                        other.map(char::from)
                    ))
                }
            }
        }
    }
    p.ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(pairs)
}

/// Replaces one namespace of a flat baseline with fresh pairs, preserving
/// every key outside it. The new section is spliced where the old one
/// first appeared (appended when the namespace was absent), so a committed
/// baseline keeps a stable layout across partial updates — `batched_speedup`
/// owns every key outside `replicated/`, `replicated_speedup` owns the keys
/// inside it, and neither clobbers the other's section on
/// `--update-baseline`.
pub fn replace_section(
    existing: &[(String, f64)],
    belongs: impl Fn(&str) -> bool,
    pairs: &[(String, f64)],
) -> Vec<(String, f64)> {
    let mut out = Vec::with_capacity(existing.len() + pairs.len());
    let mut spliced = false;
    for (k, v) in existing {
        if belongs(k) {
            if !spliced {
                out.extend(pairs.iter().cloned());
                spliced = true;
            }
        } else {
            out.push((k.clone(), *v));
        }
    }
    if !spliced {
        out.extend(pairs.iter().cloned());
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!(
                "expected {:?} at byte {}, found {:?}",
                char::from(want),
                self.pos,
                other.map(char::from)
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        loop {
            match self.next() {
                Some(b'"') => {
                    let raw = &self.bytes[start..self.pos - 1];
                    return String::from_utf8(raw.to_vec())
                        .map_err(|_| format!("invalid UTF-8 in key at byte {start}"));
                }
                Some(b'\\') => return Err(format!("escape in key at byte {}", self.pos)),
                Some(_) => {}
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let v: f64 = raw
            .parse()
            .map_err(|_| format!("bad number {raw:?} at byte {start}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite number {raw:?} at byte {start}"));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_preserves_order() {
        let pairs = vec![
            ("b/16".to_string(), 1.5),
            ("a/4".to_string(), 0.25),
            ("z".to_string(), -3.0),
        ];
        let text = emit(&pairs);
        let back = parse(&text).unwrap();
        assert_eq!(back.len(), 3);
        for ((k1, v1), (k2, v2)) in pairs.iter().zip(&back) {
            assert_eq!(k1, k2);
            assert!((v1 - v2).abs() < 1e-9, "{k1}: {v1} vs {v2}");
        }
    }

    #[test]
    fn empty_object_parses() {
        assert_eq!(parse("{}\n").unwrap(), vec![]);
        assert_eq!(parse(&emit(&[])).unwrap(), vec![]);
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "{",
            "{\"a\" 1}",
            "{\"a\": }",
            "{\"a\": 1,}",
            "{\"a\": 1} extra",
            "{\"a\": \"str\"}",
            "{\"a\": nan}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn tolerates_whitespace_variations() {
        let got = parse(" { \"x/1\" :\t2.5 ,\n\"y\":3 } ").unwrap();
        assert_eq!(got, vec![("x/1".to_string(), 2.5), ("y".to_string(), 3.0)]);
    }
}
