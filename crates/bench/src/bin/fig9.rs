//! Prints Figures 9(a) and 9(b) (issue-width and latency sensitivity).
//! `cargo run --release -p dswp-bench --bin fig9`

use dswp_bench::figures::{figure9a, figure9b, print_fig9a, print_fig9b};
use dswp_bench::runner::Experiment;

fn main() {
    let exp = Experiment::from_env();
    print_fig9a(&figure9a(&exp));
    println!();
    print_fig9b(&figure9b(&exp));
}
