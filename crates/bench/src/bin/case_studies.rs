//! Prints the Section 5 case studies (epicdec, adpcmdec, 179.art, 164.gzip)
//! and the Section 4.2 false-sharing analysis.
//! `cargo run --release -p dswp-bench --bin case_studies`

use dswp_bench::figures::print_case_studies;
use dswp_bench::runner::Experiment;

fn main() {
    let exp = Experiment::from_env();
    print_case_studies(&exp);
}
