//! Prints the ILP-preparation ablation (unroll x2 + list scheduling).
//! `cargo run --release -p dswp-bench --bin ilp_study`

use dswp_bench::figures::{ilp_study, print_ilp_study};
use dswp_bench::runner::Experiment;

fn main() {
    let exp = Experiment::from_env();
    print_ilp_study(&ilp_study(&exp));
}
