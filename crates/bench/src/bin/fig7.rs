//! Prints Figure 7 (the 181.mcf partition-balance study).
//! `cargo run --release -p dswp-bench --bin fig7`

use dswp_bench::figures::{figure7, print_fig7};
use dswp_bench::runner::Experiment;

fn main() {
    let exp = Experiment::from_env();
    print_fig7(&figure7(&exp));
}
