//! Prints Figures 6(a) and 6(b) (speedups and IPC).
//! `cargo run --release -p dswp-bench --bin fig6`

use dswp_bench::figures::{figure6, print_fig6a, print_fig6b};
use dswp_bench::runner::Experiment;

fn main() {
    let exp = Experiment::from_env();
    let runs = figure6(&exp);
    print_fig6a(&runs);
    println!();
    print_fig6b(&runs);
}
