//! Prints the paper's Table 1 (selected-loop statistics).
//! `cargo run --release -p dswp-bench --bin table1`

use dswp_bench::figures::{print_table1, table1};
use dswp_bench::runner::Experiment;

fn main() {
    let exp = Experiment::from_env();
    print_table1(&table1(&exp));
}
