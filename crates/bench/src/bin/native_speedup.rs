//! Measured wall-clock speedup of native pipelined execution.
//!
//! The paper's evaluation (Figure 6) reports *modeled* cycle counts; this
//! binary measures what the `dswp-sim` timing model can only predict: real
//! wall-clock time of the DSWP-transformed program running one OS thread
//! per pipeline stage (`dswp-rt`), against the untransformed program
//! running on the same runtime with a single stage. Both sides pay the
//! same interpretation overhead, so the ratio isolates the pipeline-
//! parallelism effect (decoupling wins vs. per-value queue cost).
//!
//! ```text
//! cargo run --release -p dswp-bench --bin native_speedup -- [--out FILE]
//! DSWP_BENCH_SIZE=test ... for a quick smoke run
//! DSWP_QUEUE_CAP=N    ... queue capacity (default 32)
//! ```
//!
//! `--out FILE` additionally writes the per-workload speedups (and their
//! geomean) as flat JSON, for CI artifact archiving.

use std::time::Duration;

use dswp_bench::runner::{geomean, profile, transform_auto, Experiment};
use dswp_ir::Program;
use dswp_rt::{RtConfig, Runtime};
use dswp_workloads::paper_suite;

const REPS: usize = 3;

/// Best-of-`REPS` native wall-clock time; also sanity-checks the memory
/// image against `expect` on every repetition.
fn native_time(program: &Program, cfg: &RtConfig, expect: &[i64]) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let r = Runtime::new(program)
            .with_config(cfg.clone())
            .run()
            .unwrap_or_else(|e| panic!("native run failed: {e}"));
        assert_eq!(r.memory, expect, "native run diverged from baseline");
        best = best.min(r.elapsed);
    }
    best
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = Some(it.next().expect("--out needs a path")),
            other => {
                eprintln!("native_speedup: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    let exp = Experiment::from_env();
    let cap = std::env::var("DSWP_QUEUE_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let cfg = RtConfig::default().queue_capacity(cap);

    println!("native wall-clock speedup (queue capacity {cap}, best of {REPS})");
    println!(
        "{:<12} {:>7} {:>12} {:>12} {:>9}",
        "workload", "stages", "seq ms", "pipe ms", "speedup"
    );

    let mut speedups = Vec::new();
    let mut pairs: Vec<(String, f64)> = Vec::new();
    for w in paper_suite(exp.size) {
        let (prof, _) = profile(&w);
        let Some((transformed, report)) = transform_auto(&w, &prof, exp.alias) else {
            println!(
                "{:<12} {:>7} {:>12} {:>12} {:>9}",
                w.name, "-", "-", "-", "declined"
            );
            continue;
        };
        // Reference memory image from the deterministic oracle.
        let oracle = dswp_sim::Executor::new(&transformed)
            .run()
            .unwrap_or_else(|e| panic!("{}: oracle failed: {e}", w.name));

        let seq = native_time(&w.program, &cfg, &oracle.memory);
        let pipe = native_time(&transformed, &cfg, &oracle.memory);
        let speedup = seq.as_secs_f64() / pipe.as_secs_f64();
        speedups.push(speedup);
        pairs.push((w.name.to_string(), speedup));
        println!(
            "{:<12} {:>7} {:>12.3} {:>12.3} {:>8.2}x",
            w.name,
            report.partitioning.num_threads,
            seq.as_secs_f64() * 1e3,
            pipe.as_secs_f64() * 1e3,
            speedup
        );
    }
    if !speedups.is_empty() {
        let g = geomean(speedups);
        println!("geomean speedup: {g:.2}x");
        pairs.push(("geomean".to_string(), g));
    }
    if let Some(path) = out_path {
        std::fs::write(&path, dswp_bench::json::emit(&pairs))
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
