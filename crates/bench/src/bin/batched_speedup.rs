//! Batched-communication sweep: native pipeline wall-clock time at batch
//! sizes 1 / 4 / 16 / 64, per workload.
//!
//! The paper's synchronization array moves one value per (~1-cycle)
//! `produce`; the software runtime pays an atomic Release/Acquire pair per
//! value instead. Chunked communication amortizes that cost across the
//! chunk — this binary measures by how much. Each workload reports the
//! throughput ratio `time(batch=1) / time(batch=N)` (higher is better,
//! 1.0 = batching changed nothing), which is what CI gates on: ratios are
//! far less machine-dependent than absolute milliseconds.
//!
//! Alongside the DSWP-transformed paper workloads, the sweep includes a
//! hand-built `queue-stream` pipeline that does nothing but move values —
//! the communication-bound extreme where batching must pay off.
//!
//! ```text
//! cargo run --release -p dswp-bench --bin batched_speedup -- [options]
//!   --out FILE               write ratios as flat JSON (default BENCH_batched.json)
//!   --check FILE             fail (exit 1) if any ratio regresses more than
//!                            10% below the committed baseline
//!   --update-baseline FILE   overwrite the baseline with this run's ratios
//! DSWP_BENCH_SIZE=test      quick smoke run
//! DSWP_QUEUE_CAP=N          queue capacity (default 32)
//! ```

use std::process::ExitCode;
use std::time::Duration;

use dswp_bench::json;
use dswp_bench::runner::{geomean, profile, transform_auto, Experiment};
use dswp_ir::{Program, ProgramBuilder, QueueId};
use dswp_rt::{RtConfig, Runtime};
use dswp_workloads::{paper_suite, Size};

const REPS: usize = 5;
const BATCHES: [usize; 4] = [1, 4, 16, 64];

/// Tolerated throughput loss vs. the committed baseline before `--check`
/// fails the run.
const REGRESSION_TOLERANCE: f64 = 0.10;

/// Re-measurements granted to keys that miss the baseline before the
/// check fails for real.
const CHECK_RETRIES: usize = 2;

struct Case {
    name: String,
    program: Program,
    expect: Vec<i64>,
}

/// The communication-bound extreme: a two-stage pipeline that only moves
/// values. The producer streams `0..n` (then a `-1` sentinel); the
/// consumer folds them into an order-sensitive checksum.
fn queue_stream(n: i64) -> Case {
    let mut pb = ProgramBuilder::new();
    let q = QueueId(0);

    let mut f = pb.function("producer");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let tail = f.block("tail");
    let (i, lim, done) = (f.reg(), f.reg(), f.reg());
    f.switch_to(e);
    f.iconst(i, 0);
    f.iconst(lim, n);
    f.jump(header);
    f.switch_to(header);
    f.cmp_ge(done, i, lim);
    f.br(done, tail, body);
    f.switch_to(body);
    f.produce(q, i);
    f.add(i, i, 1);
    f.jump(header);
    f.switch_to(tail);
    f.produce(q, -1);
    f.halt();
    let producer = f.finish();

    let mut g = pb.function("consumer");
    let e2 = g.entry_block();
    let loop_ = g.block("loop");
    let acc = g.block("acc");
    let fin = g.block("fin");
    let (v, sum, neg, base) = (g.reg(), g.reg(), g.reg(), g.reg());
    g.switch_to(e2);
    g.iconst(sum, 0);
    g.jump(loop_);
    g.switch_to(loop_);
    g.consume(v, q);
    g.cmp_lt(neg, v, 0);
    g.br(neg, fin, acc);
    g.switch_to(acc);
    g.mul(sum, sum, 31);
    g.add(sum, sum, v);
    g.jump(loop_);
    g.switch_to(fin);
    g.iconst(base, 0);
    g.store(sum, base, 0);
    g.halt();
    let consumer = g.finish();

    let mut program = pb.finish(producer, 2);
    program.num_queues = 1;
    program.add_thread(consumer);

    let mut checksum: i64 = 0;
    for k in 0..n {
        checksum = checksum.wrapping_mul(31).wrapping_add(k);
    }
    Case {
        name: "queue-stream".into(),
        program,
        expect: vec![checksum, 0],
    }
}

/// Best-of-`REPS` wall-clock time; every repetition is checked against the
/// expected memory image so a miscompiled batch path can't "win".
fn timed(case: &Case, cfg: &RtConfig) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let r = Runtime::new(&case.program)
            .with_config(cfg.clone())
            .run()
            .unwrap_or_else(|e| panic!("{}: native run failed: {e}", case.name));
        assert_eq!(r.memory, case.expect, "{}: diverged", case.name);
        best = best.min(r.elapsed);
    }
    best
}

fn cases(size: Size) -> Vec<Case> {
    let stream_len = match size {
        Size::Test => 20_000,
        Size::Paper => 200_000,
    };
    let mut out = vec![queue_stream(stream_len)];
    for w in paper_suite(size) {
        let (prof, _) = profile(&w);
        let Some((transformed, _)) = transform_auto(&w, &prof, Experiment::from_env().alias) else {
            continue;
        };
        let oracle = dswp_sim::Executor::new(&transformed)
            .run()
            .unwrap_or_else(|e| panic!("{}: oracle failed: {e}", w.name));
        out.push(Case {
            name: w.name.into(),
            program: transformed,
            expect: oracle.memory,
        });
    }
    out
}

/// Compares this run's ratios against a committed baseline; returns the
/// regression messages (empty = gate passes).
fn check_against(baseline: &[(String, f64)], current: &[(String, f64)]) -> Vec<String> {
    let mut problems = Vec::new();
    for (key, base) in baseline {
        match current.iter().find(|(k, _)| k == key) {
            None => problems.push(format!("{key}: present in baseline but not measured")),
            Some((_, cur)) => {
                let floor = base * (1.0 - REGRESSION_TOLERANCE);
                if *cur < floor {
                    problems.push(format!(
                        "{key}: ratio {cur:.3} regressed more than 10% below baseline {base:.3}"
                    ));
                }
            }
        }
    }
    problems
}

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_batched.json");
    let mut check_path: Option<String> = None;
    let mut update_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path"),
            "--check" => check_path = Some(it.next().expect("--check needs a path")),
            "--update-baseline" => {
                update_path = Some(it.next().expect("--update-baseline needs a path"));
            }
            other => {
                eprintln!("batched_speedup: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }

    let exp = Experiment::from_env();
    let cap = std::env::var("DSWP_QUEUE_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let cases = cases(exp.size);
    let mut pairs = sweep(&cases, cap);
    let mut gate_failed = false;

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("batched_speedup: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // The baseline file is shared with `replicated_speedup`, which owns
        // every key under `replicated/`; this gate checks only its own
        // section.
        let baseline: Vec<(String, f64)> = match json::parse(&text) {
            Ok(b) => b
                .into_iter()
                .filter(|(k, _)| !k.starts_with("replicated/"))
                .collect(),
            Err(e) => {
                eprintln!("batched_speedup: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // The gate asks "can this build still achieve the baseline
        // throughput ratios?" — so a noisy miss earns a re-measure, and
        // each key's score is its best across attempts. One unlucky
        // scheduler quantum must not fail CI; a real regression fails
        // every attempt.
        let mut problems = check_against(&baseline, &pairs);
        for retry in 0..CHECK_RETRIES {
            if problems.is_empty() {
                break;
            }
            println!(
                "{} key(s) below baseline; re-measuring (retry {}/{CHECK_RETRIES})",
                problems.len(),
                retry + 1
            );
            for (key, v) in sweep(&cases, cap) {
                if let Some((_, best)) = pairs.iter_mut().find(|(k, _)| *k == key) {
                    *best = best.max(v);
                }
            }
            problems = check_against(&baseline, &pairs);
        }
        if problems.is_empty() {
            println!("baseline check passed ({path}, {} keys)", baseline.len());
        } else {
            for p in &problems {
                eprintln!("REGRESSION {p}");
            }
            eprintln!(
                "batched_speedup: {} regression(s) vs {path}; rerun with \
                 --update-baseline {path} if this change is intentional",
                problems.len()
            );
            gate_failed = true;
        }
    }

    // Persist the final (best-across-attempts) ratios — even on gate
    // failure, so the uploaded artifact shows what was measured.
    let rendered = json::emit(&pairs);
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("batched_speedup: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if let Some(path) = update_path {
        // Rewrite only this binary's section; `replicated_speedup` owns the
        // keys under `replicated/`.
        let existing = std::fs::read_to_string(&path)
            .ok()
            .and_then(|t| json::parse(&t).ok())
            .unwrap_or_default();
        let merged = json::replace_section(&existing, |k| !k.starts_with("replicated/"), &pairs);
        if let Err(e) = std::fs::write(&path, json::emit(&merged)) {
            eprintln!("batched_speedup: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("updated baseline {path} ({} keys total)", merged.len());
    }
    if gate_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// One full sweep over `cases`: prints the table and returns the
/// `workload/batch` ratio pairs plus per-batch geomeans.
fn sweep(cases: &[Case], cap: usize) -> Vec<(String, f64)> {
    println!("batched communication sweep (queue capacity {cap}, best of {REPS})");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8}",
        "workload", "b=1 ms", "b=4 ms", "b=16 ms", "b=64 ms", "r4", "r16", "r64"
    );
    let mut pairs: Vec<(String, f64)> = Vec::new();
    let mut per_batch: Vec<Vec<f64>> = vec![Vec::new(); BATCHES.len()];
    for case in cases {
        let times: Vec<Duration> = BATCHES
            .iter()
            .map(|&b| timed(case, &RtConfig::default().queue_capacity(cap).batch(b)))
            .collect();
        let base = times[0].as_secs_f64();
        let ratios: Vec<f64> = times.iter().map(|t| base / t.as_secs_f64()).collect();
        println!(
            "{:<14} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>7.2}x {:>7.2}x {:>7.2}x",
            case.name,
            times[0].as_secs_f64() * 1e3,
            times[1].as_secs_f64() * 1e3,
            times[2].as_secs_f64() * 1e3,
            times[3].as_secs_f64() * 1e3,
            ratios[1],
            ratios[2],
            ratios[3]
        );
        for (i, &b) in BATCHES.iter().enumerate().skip(1) {
            pairs.push((format!("{}/{b}", case.name), ratios[i]));
            per_batch[i].push(ratios[i]);
        }
    }
    // Geomean ratios across workloads: the statistic the CI baseline
    // gates on. Individual workloads at a few ms each are too noisy for
    // a tight regression threshold; the geomean (and the long-running
    // queue-stream sentinel) is not.
    for (i, &b) in BATCHES.iter().enumerate().skip(1) {
        let g = geomean(per_batch[i].iter().copied());
        println!("geomean ratio at batch {b}: {g:.2}x");
        pairs.push((format!("geomean/{b}"), g));
    }
    pairs
}
