//! Prints Figure 8 (queue-occupancy cycle distribution).
//! `cargo run --release -p dswp-bench --bin fig8`

use dswp_bench::figures::{figure6, print_fig8};
use dswp_bench::runner::Experiment;

fn main() {
    let mut exp = Experiment::from_env();
    exp.search_cap = 0; // occupancy needs no best-partition search
    let runs = figure6(&exp);
    print_fig8(&runs);
}
