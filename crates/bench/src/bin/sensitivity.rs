//! Prints the Section 4.4 queue-size sweep and the Figure 1 DOACROSS
//! contrast. `cargo run --release -p dswp-bench --bin sensitivity`

use dswp_bench::figures::{figure1_contrast, print_figure1, print_queue_size, queue_size_sweep};
use dswp_bench::runner::Experiment;

fn main() {
    let exp = Experiment::from_env();
    print_queue_size(&queue_size_sweep(&exp));
    println!();
    print_figure1(&figure1_contrast(&exp));
}
