//! Parallel-stage replication sweep: native pipeline wall-clock time with
//! every DOALL stage replicated 1 / 2 / 4 ways, per workload.
//!
//! DSWP's pipeline throughput is bounded by its slowest stage; when that
//! stage carries no recurrence, replicating it N ways divides its
//! per-iteration cost by N (the paper's Section 5 "parallel-stage"
//! extension). This binary measures the end-to-end effect, scatter and
//! gather overhead included: each workload reports the throughput ratio
//! `time(replicas=1) / time(replicas=N)` (higher is better; 1 replica =
//! the plain pipeline, no scatter context). Every repetition is checked
//! bit-for-bit against the sequential interpreter's memory image, so a
//! replication bug can never "win" the benchmark.
//!
//! Workloads whose candidate stage is not legally replicable (a carried
//! recurrence, a live-out, an unprovable store) appear in the table as
//! `refused` and are excluded from the gated keys — refusing is the
//! correct result for them, not a regression.
//!
//! A second, *skewed-cost* section measures the work-stealing scatter: one
//! replica of each 4-way replicated stage runs under an injected benign
//! delay (timing-only, results still checked bit-for-bit), and the table
//! reports `time(round-robin) / time(work-stealing)` — round-robin must
//! push a quarter of the iterations through the slow replica, stealing
//! routes around it via queue-depth feedback.
//!
//! ```text
//! cargo run --release -p dswp-bench --bin replicated_speedup -- [options]
//!   --out FILE               write ratios as flat JSON (default BENCH_replicated.json)
//!   --check FILE             fail (exit 1) if any `replicated/` ratio regresses
//!                            more than 10% below the committed baseline; on
//!                            hosts with >= 4 cores additionally require the
//!                            DOALL sentinel (compress or jpegenc at 4
//!                            replicas) to reach 1.3x and the skewed-cost
//!                            work-stealing ratio to reach 1.15x
//!   --update-baseline FILE   rewrite the baseline's `replicated/` section
//!                            with this run's ratios (other sections kept)
//! DSWP_BENCH_SIZE=test      quick smoke run
//! DSWP_QUEUE_CAP=N          queue capacity (default 32)
//! ```

use std::process::ExitCode;
use std::time::Duration;

use dswp::{
    annotate_loop_affine, dswp_loop, DswpError, DswpOptions, PipelineMap, Replicate, ScatterPolicy,
};
use dswp_analysis::AliasMode;
use dswp_bench::json;
use dswp_bench::runner::{geomean, Experiment};
use dswp_ir::interp::Interpreter;
use dswp_ir::Program;
use dswp_rt::fault::DelayFault;
use dswp_rt::{FaultPlan, RtConfig, Runtime};
use dswp_workloads::{paper_suite, Size, Workload};

const REPS: usize = 5;
const REPLICAS: [usize; 3] = [1, 2, 4];
/// Communication batch used for every run (identical across replica
/// counts, so the ratios compare replication alone).
const BATCH: usize = 8;
/// Namespace of every key this binary owns in the shared baseline.
const PREFIX: &str = "replicated/";
/// DOALL workloads that must hit [`SENTINEL_FLOOR`] at 4 replicas on a
/// machine with enough cores.
const SENTINELS: [&str; 2] = ["29.compress", "jpegenc"];
const SENTINEL_FLOOR: f64 = 1.3;
/// Minimum `time(round-robin) / time(work-stealing)` under the skewed-cost
/// workload at 4 replicas, required on machines with >= 4 cores.
const STEAL_FLOOR: f64 = 1.15;
/// Spin count of the injected per-instruction delay that skews one replica
/// of each group in the work-stealing section.
const SKEW_SPINS: u32 = 400;

const REGRESSION_TOLERANCE: f64 = 0.10;
const CHECK_RETRIES: usize = 2;

struct Case {
    name: String,
    /// Transformed program per replica count (index-aligned with
    /// [`REPLICAS`]); `None` past the point where replication refused.
    programs: Vec<Option<Program>>,
    /// Sequential-interpreter memory image of the original program.
    expect: Vec<i64>,
    /// Whether the stage actually replicated at counts >= 2.
    replicated: bool,
}

/// DSWP-transforms `w` with `replicate` under precise alias analysis
/// (replication legality needs provable per-iteration stores). Returns the
/// transformed program and whether a stage was actually replicated.
fn transform(
    w: &Workload,
    replicate: Replicate,
    scatter: ScatterPolicy,
) -> Option<(Program, bool)> {
    let mut p = w.program.clone();
    let main = p.main();
    let profile = Interpreter::new(&p)
        .run()
        .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", w.name))
        .profile;
    annotate_loop_affine(&mut p, main, w.header)
        .unwrap_or_else(|e| panic!("{}: scev failed: {e}", w.name));
    let opts = DswpOptions {
        alias: AliasMode::Precise,
        replicate,
        scatter,
        ..DswpOptions::default()
    };
    match dswp_loop(&mut p, main, w.header, &profile, &opts) {
        Ok(report) => Some((p, !report.replication.is_empty())),
        Err(DswpError::SingleScc | DswpError::NotProfitable) => None,
        Err(e) => panic!("{}: unexpected DSWP failure: {e}", w.name),
    }
}

fn cases(size: Size) -> Vec<Case> {
    let mut out = Vec::new();
    for w in paper_suite(size) {
        let expect = Interpreter::new(&w.program)
            .run()
            .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", w.name))
            .memory;
        let mut programs = Vec::new();
        let mut replicated = false;
        for &k in &REPLICAS {
            let req = if k == 1 {
                Replicate::Off
            } else {
                Replicate::Fixed(k)
            };
            match transform(&w, req, ScatterPolicy::RoundRobin) {
                Some((p, applied)) => {
                    if k > 1 && !applied {
                        programs.push(None);
                    } else {
                        replicated |= applied;
                        programs.push(Some(p));
                    }
                }
                None => programs.push(None),
            }
        }
        if programs[0].is_none() {
            continue; // DSWP itself declined; nothing to compare
        }
        out.push(Case {
            name: w.name.into(),
            programs,
            expect,
            replicated,
        });
    }
    out
}

/// Best-of-`REPS` wall-clock time; every repetition is checked against the
/// sequential interpreter's memory image.
fn timed(name: &str, program: &Program, expect: &[i64], cfg: &RtConfig) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let r = Runtime::new(program)
            .with_config(cfg.clone())
            .run()
            .unwrap_or_else(|e| panic!("{name}: native run failed: {e}"));
        assert_eq!(r.memory, expect, "{name}: diverged from the interpreter");
        best = best.min(r.elapsed);
    }
    best
}

/// One full sweep: prints the table and returns the gated
/// `replicated/<workload>/r<N>` ratio pairs plus per-count geomeans.
fn sweep(cases: &[Case], cap: usize) -> Vec<(String, f64)> {
    println!(
        "parallel-stage replication sweep (queue capacity {cap}, batch {BATCH}, best of {REPS})"
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "workload", "r=1 ms", "r=2 ms", "r=4 ms", "x2", "x4"
    );
    let mut pairs: Vec<(String, f64)> = Vec::new();
    let mut per_count: Vec<Vec<f64>> = vec![Vec::new(); REPLICAS.len()];
    for case in cases {
        let cfg = RtConfig::default().queue_capacity(cap).batch(BATCH);
        let times: Vec<Option<Duration>> = case
            .programs
            .iter()
            .map(|p| p.as_ref().map(|p| timed(&case.name, p, &case.expect, &cfg)))
            .collect();
        let base = times[0].expect("replica count 1 always runs").as_secs_f64();
        let ms = |t: &Option<Duration>| match t {
            Some(t) => format!("{:.3}", t.as_secs_f64() * 1e3),
            None => "refused".into(),
        };
        let ratio = |t: &Option<Duration>| t.map(|t| base / t.as_secs_f64());
        let rx = |t: &Option<Duration>| match ratio(t) {
            Some(r) => format!("{r:.2}x"),
            None => "-".into(),
        };
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>8} {:>8}",
            case.name,
            ms(&times[0]),
            ms(&times[1]),
            ms(&times[2]),
            rx(&times[1]),
            rx(&times[2])
        );
        if !case.replicated {
            continue; // refusal is correct, not a gated data point
        }
        for (i, &k) in REPLICAS.iter().enumerate().skip(1) {
            if let Some(r) = ratio(&times[i]) {
                pairs.push((format!("{PREFIX}{}/r{k}", case.name), r));
                per_count[i].push(r);
            }
        }
    }
    for (i, &k) in REPLICAS.iter().enumerate().skip(1) {
        if per_count[i].is_empty() {
            continue;
        }
        let g = geomean(per_count[i].iter().copied());
        println!("geomean ratio at {k} replicas: {g:.2}x");
        pairs.push((format!("{PREFIX}geomean/r{k}"), g));
    }
    pairs
}

/// Skewed-cost work-stealing section: each DOALL sentinel is replicated 4
/// ways under both scatter policies, with the first replica of every
/// replica group slowed by an injected benign delay. Returns
/// `replicated/steal/<workload>/r4` keys holding
/// `time(round-robin) / time(work-stealing)`.
fn skew_sweep(size: Size, cap: usize) -> Vec<(String, f64)> {
    println!("skewed-cost scatter sweep (one replica delayed {SKEW_SPINS} spins/instr, x4)");
    println!(
        "{:<14} {:>14} {:>14} {:>10}",
        "workload", "round-robin ms", "stealing ms", "rr/steal"
    );
    let mut pairs = Vec::new();
    for w in paper_suite(size) {
        if !SENTINELS.contains(&w.name) {
            continue;
        }
        let expect = Interpreter::new(&w.program)
            .run()
            .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", w.name))
            .memory;
        let Some((rr, true)) = transform(&w, Replicate::Fixed(4), ScatterPolicy::RoundRobin) else {
            continue;
        };
        let Some((ws, true)) = transform(&w, Replicate::Fixed(4), ScatterPolicy::WorkStealing)
        else {
            continue;
        };
        // Both pipelines have identical thread topology, so one plan —
        // delay the first replica of every group — fits both.
        let map = PipelineMap::infer(&ws);
        let mut plan = FaultPlan::none(ws.num_threads());
        for g in map.replica_groups(&ws) {
            plan = plan.with_delay(
                g.replica_threads[0],
                DelayFault {
                    every: 1,
                    spins: SKEW_SPINS,
                },
            );
        }
        let cfg = RtConfig::default()
            .queue_capacity(cap)
            .batch(BATCH)
            .faults(plan);
        let t_rr = timed(&format!("{} rr-skew", w.name), &rr, &expect, &cfg);
        let t_ws = timed(&format!("{} steal-skew", w.name), &ws, &expect, &cfg);
        let ratio = t_rr.as_secs_f64() / t_ws.as_secs_f64();
        println!(
            "{:<14} {:>14.3} {:>14.3} {:>9.2}x",
            w.name,
            t_rr.as_secs_f64() * 1e3,
            t_ws.as_secs_f64() * 1e3,
            ratio
        );
        pairs.push((format!("{PREFIX}steal/{}/r4", w.name), ratio));
    }
    if !pairs.is_empty() {
        let g = geomean(pairs.iter().map(|&(_, v)| v));
        println!("geomean rr/steal ratio: {g:.2}x");
        pairs.push((format!("{PREFIX}steal/geomean/r4"), g));
    }
    pairs
}

/// Regression messages vs. the committed baseline (empty = gate passes).
/// `cores` also arms the DOALL sentinel floor: with at least 4 cores, a
/// build where neither compress nor jpegenc reaches 1.3x at 4 replicas is
/// broken regardless of what the baseline says.
fn check_against(
    baseline: &[(String, f64)],
    current: &[(String, f64)],
    cores: usize,
) -> Vec<String> {
    let mut problems = Vec::new();
    for (key, base) in baseline {
        match current.iter().find(|(k, _)| k == key) {
            None => problems.push(format!("{key}: present in baseline but not measured")),
            Some((_, cur)) => {
                let floor = base * (1.0 - REGRESSION_TOLERANCE);
                if *cur < floor {
                    problems.push(format!(
                        "{key}: ratio {cur:.3} regressed more than 10% below baseline {base:.3}"
                    ));
                }
            }
        }
    }
    if cores >= 4 {
        let best = SENTINELS
            .iter()
            .filter_map(|s| {
                current
                    .iter()
                    .find(|(k, _)| k == &format!("{PREFIX}{s}/r4"))
                    .map(|&(_, v)| v)
            })
            .fold(f64::NAN, f64::max);
        // NaN (no sentinel measured at all) must fail the floor too.
        if best.is_nan() || best < SENTINEL_FLOOR {
            problems.push(format!(
                "DOALL sentinel: best of {SENTINELS:?} at 4 replicas is {best:.3}, \
                 below the {SENTINEL_FLOOR} floor ({cores} cores available)"
            ));
        }
        let best_steal = current
            .iter()
            .filter(|(k, _)| k.starts_with(&format!("{PREFIX}steal/")))
            .map(|&(_, v)| v)
            .fold(f64::NAN, f64::max);
        if best_steal.is_nan() || best_steal < STEAL_FLOOR {
            problems.push(format!(
                "skewed-cost scatter: best work-stealing ratio is {best_steal:.3}, \
                 below the {STEAL_FLOOR} floor ({cores} cores available)"
            ));
        }
    } else {
        println!("sentinel and stealing floors skipped: only {cores} core(s) available (need 4)");
    }
    problems
}

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_replicated.json");
    let mut check_path: Option<String> = None;
    let mut update_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path"),
            "--check" => check_path = Some(it.next().expect("--check needs a path")),
            "--update-baseline" => {
                update_path = Some(it.next().expect("--update-baseline needs a path"));
            }
            other => {
                eprintln!("replicated_speedup: unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }

    let exp = Experiment::from_env();
    let cap = std::env::var("DSWP_QUEUE_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let cases = cases(exp.size);
    let mut pairs = sweep(&cases, cap);
    pairs.extend(skew_sweep(exp.size, cap));
    let mut gate_failed = false;

    if let Some(path) = check_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("replicated_speedup: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline: Vec<(String, f64)> = match json::parse(&text) {
            Ok(b) => b
                .into_iter()
                .filter(|(k, _)| k.starts_with(PREFIX))
                .collect(),
            Err(e) => {
                eprintln!("replicated_speedup: {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Noisy misses earn a re-measure; each key keeps its best score
        // across attempts. A real regression fails every attempt.
        let mut problems = check_against(&baseline, &pairs, cores);
        for retry in 0..CHECK_RETRIES {
            if problems.is_empty() {
                break;
            }
            println!(
                "{} key(s) below baseline; re-measuring (retry {}/{CHECK_RETRIES})",
                problems.len(),
                retry + 1
            );
            let mut remeasured = sweep(&cases, cap);
            remeasured.extend(skew_sweep(exp.size, cap));
            for (key, v) in remeasured {
                if let Some((_, best)) = pairs.iter_mut().find(|(k, _)| *k == key) {
                    *best = best.max(v);
                }
            }
            problems = check_against(&baseline, &pairs, cores);
        }
        if problems.is_empty() {
            println!("baseline check passed ({path}, {} keys)", baseline.len());
        } else {
            for p in &problems {
                eprintln!("REGRESSION {p}");
            }
            eprintln!(
                "replicated_speedup: {} regression(s) vs {path}; rerun with \
                 --update-baseline {path} if this change is intentional",
                problems.len()
            );
            gate_failed = true;
        }
    }

    let rendered = json::emit(&pairs);
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("replicated_speedup: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if let Some(path) = update_path {
        // Rewrite only the `replicated/` section; `batched_speedup` owns
        // the rest of the shared baseline. Only the geomean keys are
        // committed — per-workload ratios at a few ms per run are too
        // noisy to gate individually (they still land in the `--out`
        // artifact, and the 4-core sentinel reads them from the current
        // run, not the baseline).
        let existing = std::fs::read_to_string(&path)
            .ok()
            .and_then(|t| json::parse(&t).ok())
            .unwrap_or_default();
        let gate_keys: Vec<(String, f64)> = pairs
            .iter()
            .filter(|(k, _)| {
                k.starts_with("replicated/geomean/") || k == "replicated/steal/geomean/r4"
            })
            .cloned()
            .collect();
        let merged = json::replace_section(&existing, |k| k.starts_with(PREFIX), &gate_keys);
        if let Err(e) = std::fs::write(&path, json::emit(&merged)) {
            eprintln!("replicated_speedup: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("updated baseline {path} ({} keys total)", merged.len());
    }
    if gate_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
