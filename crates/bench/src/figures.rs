//! Generators for every table and figure of the paper's evaluation.
//!
//! Each `fig*`/`table*` function computes the experiment's data and prints
//! the same rows/series the paper reports. Absolute numbers differ (our
//! substrate is a synthetic-kernel simulator, not the authors' Itanium 2
//! testbed); the *shape* — who wins, by roughly what factor, where the
//! crossovers fall — is the reproduction target. See `EXPERIMENTS.md`.

use dswp::{analyze_loop, doacross, loop_stats, DswpError};
use dswp_analysis::AliasMode;
use dswp_sim::sharing;
use dswp_sim::{Machine, MachineConfig};
use dswp_workloads::{adpcm, art, bzip2, epic, figure1, gzip, paper_suite};

use crate::runner::{
    geomean, mean, partitions, profile, simulate, transform_auto, transform_with, BenchRun,
    Experiment,
};

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Fraction of dynamic instructions spent in the selected loop.
    pub exec_pct: f64,
    /// Loop nesting depth.
    pub nest: usize,
    /// Basic blocks in the loop.
    pub bbs: usize,
    /// Function calls in the loop.
    pub calls: usize,
    /// Static instructions in the loop.
    pub instrs: usize,
    /// SCC count of the dependence graph.
    pub sccs: usize,
    /// Flows inserted by the automatic partitioning: (initial, loop, final).
    pub flows: (usize, usize, usize),
}

/// Table 1: statistics for the selected loops.
pub fn table1(exp: &Experiment) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for w in paper_suite(exp.size) {
        let (prof, steps) = profile(&w);
        let main = w.program.main();
        let stats = loop_stats(&w.program, main, w.header, exp.alias).expect("loop stats");
        let loop_dynamic: u64 = {
            let f = w.program.function(main);
            dswp_analysis::find_loops(f)
                .iter()
                .find(|l| l.header == w.header)
                .map(|l| {
                    l.blocks
                        .iter()
                        .map(|&b| prof.weight(main, b) * f.block(b).instrs().len() as u64)
                        .sum()
                })
                .unwrap_or(0)
        };
        let flows = transform_auto(&w, &prof, exp.alias)
            .map(|(_, r)| {
                (
                    r.artifacts.flows.initial,
                    r.artifacts.flows.loop_flows,
                    r.artifacts.flows.final_flows,
                )
            })
            .unwrap_or((0, 0, 0));
        rows.push(Table1Row {
            name: w.name,
            exec_pct: 100.0 * loop_dynamic as f64 / steps as f64,
            nest: stats.depth,
            bbs: stats.blocks,
            calls: stats.calls,
            instrs: stats.instrs,
            sccs: stats.sccs,
            flows,
        });
    }
    rows
}

/// Prints Table 1.
pub fn print_table1(rows: &[Table1Row]) {
    println!("== Table 1: statistics for the selected loops ==");
    println!(
        "{:<12} {:>6} {:>5} {:>4} {:>6} {:>7} {:>5} {:>6} {:>5} {:>6}",
        "benchmark", "exec%", "nest", "BBs", "calls", "instrs", "SCCs", "init", "loop", "final"
    );
    for r in rows {
        println!(
            "{:<12} {:>6.1} {:>5} {:>4} {:>6} {:>7} {:>5} {:>6} {:>5} {:>6}",
            r.name,
            r.exec_pct,
            r.nest,
            r.bbs,
            r.calls,
            r.instrs,
            r.sccs,
            r.flows.0,
            r.flows.1,
            r.flows.2
        );
    }
}

/// Figure 6 data: per-benchmark runs (with best-partition search).
pub fn figure6(exp: &Experiment) -> Vec<BenchRun> {
    paper_suite(exp.size)
        .iter()
        .map(|w| BenchRun::measure(w, exp, true))
        .collect()
}

/// Prints Figure 6(a): DSWP loop speedups, automatic vs best searched.
pub fn print_fig6a(runs: &[BenchRun]) {
    println!("== Figure 6(a): loop speedup of DSWP over single-threaded ==");
    println!(
        "{:<12} {:>16} {:>22}",
        "benchmark", "fully automatic", "best manually directed"
    );
    for r in runs {
        println!(
            "{:<12} {:>15.3}x {:>21.3}x",
            r.name,
            r.auto_speedup(),
            r.best_speedup()
        );
    }
    println!(
        "{:<12} {:>15.3}x {:>21.3}x",
        "GeoMean",
        geomean(runs.iter().map(BenchRun::auto_speedup)),
        geomean(runs.iter().map(BenchRun::best_speedup))
    );
}

/// Prints Figure 6(b): baseline IPC vs per-core DSWP IPC (produce/consume
/// excluded, as in the paper).
pub fn print_fig6b(runs: &[BenchRun]) {
    println!("== Figure 6(b): baseline and DSWP IPC ==");
    println!(
        "{:<12} {:>9} {:>15} {:>15}",
        "benchmark", "base", "DSWP core 0", "DSWP core 1"
    );
    let (mut bs, mut p0s, mut p1s) = (Vec::new(), Vec::new(), Vec::new());
    for r in runs {
        let b = r.base.cores[0].ipc(r.base.cycles);
        bs.push(b);
        match &r.auto_dswp {
            Some((_, _, s)) => {
                let c0 = s.cores[0].ipc(s.cycles);
                let c1 = s.cores[1].ipc(s.cycles);
                p0s.push(c0);
                p1s.push(c1);
                println!("{:<12} {:>9.2} {:>15.2} {:>15.2}", r.name, b, c0, c1);
            }
            None => println!("{:<12} {:>9.2} {:>15} {:>15}", r.name, b, "-", "-"),
        }
    }
    println!(
        "{:<12} {:>9.2} {:>15.2} {:>15.2}",
        "Average",
        mean(bs),
        mean(p0s),
        mean(p1s)
    );
}

/// One partitioning of the Figure 7 study.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Instructions assigned to each thread.
    pub stage_instrs: (usize, usize),
    /// Loop speedup over the baseline.
    pub speedup: f64,
    /// Mean total queue occupancy.
    pub occ_mean: f64,
    /// Max total queue occupancy.
    pub occ_max: usize,
    /// Fraction of cycles the consumer stalled on empty queues.
    pub empty_stall_pct: f64,
    /// Fraction of cycles the producer stalled on full queues.
    pub full_stall_pct: f64,
    /// Whether this is the heuristic's own pick.
    pub heuristic_pick: bool,
}

/// Figure 7: the mcf partition-balance study — every valid two-thread cut
/// of the `DAG_SCC`, with speedup and occupancy behavior.
pub fn figure7(exp: &Experiment) -> Vec<Fig7Row> {
    let w = dswp_workloads::mcf::build(exp.size);
    let (prof, _) = profile(&w);
    let cfg = MachineConfig::full_width();
    let base = simulate(&w.program, &cfg);
    let auto_pick = transform_auto(&w, &prof, exp.alias).map(|(_, r)| r.partitioning);

    let analysis = analyze_loop(&w.program, w.program.main(), w.header, exp.alias).unwrap();
    let mut rows = Vec::new();
    for part in partitions(&w, exp.alias, exp.search_cap) {
        let Ok((p, _)) = transform_with(&w, &prof, exp.alias, part.clone()) else {
            continue;
        };
        let sim = simulate(&p, &cfg);
        let counts = {
            let mut c = (0usize, 0usize);
            for (scc, comp) in analysis.dag.sccs.iter().enumerate() {
                if part.assignment[scc] == 0 {
                    c.0 += comp.len();
                } else {
                    c.1 += comp.len();
                }
            }
            c
        };
        let total = sim.cycles as f64;
        rows.push(Fig7Row {
            stage_instrs: counts,
            speedup: base.cycles as f64 / sim.cycles as f64,
            occ_mean: sim.occupancy.mean(),
            occ_max: sim.occupancy.max(),
            empty_stall_pct: 100.0 * sim.occupancy.classes.empty_consumer_stalled as f64 / total,
            full_stall_pct: 100.0 * sim.occupancy.classes.full_producer_stalled as f64 / total,
            heuristic_pick: auto_pick.as_ref() == Some(&part),
        });
    }
    rows
}

/// Prints Figure 7.
pub fn print_fig7(rows: &[Fig7Row]) {
    println!("== Figure 7: importance of balancing — 181.mcf DAG_SCC cuts ==");
    println!(
        "{:<16} {:>9} {:>9} {:>8} {:>12} {:>11}",
        "stage instrs", "speedup", "occ.mean", "occ.max", "empty-stall%", "full-stall%"
    );
    for r in rows {
        println!(
            "{:>6} | {:<7} {:>8.3}x {:>9.1} {:>8} {:>11.1}% {:>10.1}% {}",
            r.stage_instrs.0,
            r.stage_instrs.1,
            r.speedup,
            r.occ_mean,
            r.occ_max,
            r.empty_stall_pct,
            r.full_stall_pct,
            if r.heuristic_pick { "<- heuristic" } else { "" }
        );
    }
}

/// Prints Figure 8: cumulative cycle distribution over occupancy classes.
pub fn print_fig8(runs: &[BenchRun]) {
    println!("== Figure 8: cycle distribution at occupancy levels (DSWP) ==");
    println!(
        "{:<12} {:>14} {:>16} {:>14} {:>17}",
        "benchmark", "full/prod-stall", "balanced/active", "empty/active", "empty/cons-stall"
    );
    let mut sums = [0.0f64; 4];
    let mut n = 0;
    for r in runs {
        let Some((_, _, s)) = &r.auto_dswp else {
            continue;
        };
        let c = &s.occupancy.classes;
        let total = (c.full_producer_stalled
            + c.balanced_both_active
            + c.empty_both_active
            + c.empty_consumer_stalled) as f64;
        let pct = [
            100.0 * c.full_producer_stalled as f64 / total,
            100.0 * c.balanced_both_active as f64 / total,
            100.0 * c.empty_both_active as f64 / total,
            100.0 * c.empty_consumer_stalled as f64 / total,
        ];
        for (a, b) in sums.iter_mut().zip(pct) {
            *a += b;
        }
        n += 1;
        println!(
            "{:<12} {:>13.1}% {:>15.1}% {:>13.1}% {:>16.1}%",
            r.name, pct[0], pct[1], pct[2], pct[3]
        );
    }
    if n > 0 {
        println!(
            "{:<12} {:>13.1}% {:>15.1}% {:>13.1}% {:>16.1}%",
            "Average",
            sums[0] / n as f64,
            sums[1] / n as f64,
            sums[2] / n as f64,
            sums[3] / n as f64
        );
    }
}

/// Figure 9(a) row: speedups relative to the full-width single-threaded
/// baseline.
#[derive(Clone, Debug)]
pub struct Fig9aRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Half-width single-threaded.
    pub half_base: f64,
    /// Half-width DSWP.
    pub half_dswp: f64,
    /// Full-width DSWP.
    pub full_dswp: f64,
}

/// Figure 9(a): performance compatibility across issue widths.
pub fn figure9a(exp: &Experiment) -> Vec<Fig9aRow> {
    let full = MachineConfig::full_width();
    let half = MachineConfig::half_width();
    let mut rows = Vec::new();
    for w in paper_suite(exp.size) {
        let (prof, _) = profile(&w);
        let base_full = simulate(&w.program, &full);
        let base_half = simulate(&w.program, &half);
        let (half_dswp, full_dswp) = match transform_auto(&w, &prof, exp.alias) {
            Some((p, _)) => (
                base_full.cycles as f64 / simulate(&p, &half).cycles as f64,
                base_full.cycles as f64 / simulate(&p, &full).cycles as f64,
            ),
            None => (base_full.cycles as f64 / base_half.cycles as f64, 1.0),
        };
        rows.push(Fig9aRow {
            name: w.name,
            half_base: base_full.cycles as f64 / base_half.cycles as f64,
            half_dswp,
            full_dswp,
        });
    }
    rows
}

/// Prints Figure 9(a).
pub fn print_fig9a(rows: &[Fig9aRow]) {
    println!("== Figure 9(a): varying issue widths (vs full-width base) ==");
    println!(
        "{:<12} {:>15} {:>15} {:>15}",
        "benchmark", "half-width base", "half-width DSWP", "full-width DSWP"
    );
    for r in rows {
        println!(
            "{:<12} {:>14.3}x {:>14.3}x {:>14.3}x",
            r.name, r.half_base, r.half_dswp, r.full_dswp
        );
    }
    println!(
        "{:<12} {:>14.3}x {:>14.3}x {:>14.3}x",
        "GeoMean",
        geomean(rows.iter().map(|r| r.half_base)),
        geomean(rows.iter().map(|r| r.half_dswp)),
        geomean(rows.iter().map(|r| r.full_dswp))
    );
}

/// Figure 9(b) row: DSWP speedup at different communication latencies.
#[derive(Clone, Debug)]
pub struct Fig9bRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Speedups at 1 / 10 / 50-cycle produce latency.
    pub speedups: [f64; 3],
}

/// Figure 9(b): communication-latency sensitivity.
pub fn figure9b(exp: &Experiment) -> Vec<Fig9bRow> {
    let mut rows = Vec::new();
    for w in paper_suite(exp.size) {
        let (prof, _) = profile(&w);
        let base = simulate(&w.program, &MachineConfig::full_width());
        let Some((p, _)) = transform_auto(&w, &prof, exp.alias) else {
            continue;
        };
        let mut speedups = [0.0; 3];
        for (k, lat) in [1u64, 10, 50].into_iter().enumerate() {
            let cfg = MachineConfig::full_width().with_comm_latency(lat);
            speedups[k] = base.cycles as f64 / simulate(&p, &cfg).cycles as f64;
        }
        rows.push(Fig9bRow {
            name: w.name,
            speedups,
        });
    }
    rows
}

/// Prints Figure 9(b).
pub fn print_fig9b(rows: &[Fig9bRow]) {
    println!("== Figure 9(b): varying communication latencies ==");
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "benchmark", "1 cycle", "10 cycles", "50 cycles"
    );
    for r in rows {
        println!(
            "{:<12} {:>11.3}x {:>11.3}x {:>11.3}x",
            r.name, r.speedups[0], r.speedups[1], r.speedups[2]
        );
    }
    for k in 0..3 {
        // columns aligned with the header order
        let _ = k;
    }
    println!(
        "{:<12} {:>11.3}x {:>11.3}x {:>11.3}x",
        "GeoMean",
        geomean(rows.iter().map(|r| r.speedups[0])),
        geomean(rows.iter().map(|r| r.speedups[1])),
        geomean(rows.iter().map(|r| r.speedups[2]))
    );
}

/// Section 4.4: queue-size sensitivity (8 / 32 / 128 entries).
pub fn queue_size_sweep(exp: &Experiment) -> Vec<(&'static str, [f64; 3])> {
    let mut rows = Vec::new();
    for w in paper_suite(exp.size) {
        let (prof, _) = profile(&w);
        let Some((p, _)) = transform_auto(&w, &prof, exp.alias) else {
            continue;
        };
        let mut cycles = [0u64; 3];
        for (k, cap) in [8usize, 32, 128].into_iter().enumerate() {
            let cfg = MachineConfig::full_width().with_queue_capacity(cap);
            cycles[k] = simulate(&p, &cfg).cycles;
        }
        // Normalize to the 32-entry configuration, as the paper does.
        let rel = [
            cycles[1] as f64 / cycles[0] as f64,
            1.0,
            cycles[1] as f64 / cycles[2] as f64,
        ];
        rows.push((w.name, rel));
    }
    rows
}

/// Prints the queue-size sweep.
pub fn print_queue_size(rows: &[(&'static str, [f64; 3])]) {
    println!("== Section 4.4: queue-size sensitivity (speedup vs 32-entry) ==");
    println!("{:<12} {:>10} {:>10} {:>10}", "benchmark", "8", "32", "128");
    for (name, rel) in rows {
        println!(
            "{:<12} {:>9.3}x {:>9.3}x {:>9.3}x",
            name, rel[0], rel[1], rel[2]
        );
    }
    println!(
        "{:<12} {:>9.3}x {:>9.3}x {:>9.3}x",
        "GeoMean",
        geomean(rows.iter().map(|r| r.1[0])),
        1.0,
        geomean(rows.iter().map(|r| r.1[2]))
    );
}

/// Figure 1: base vs DOACROSS vs DSWP on the pointer-chasing loop, across
/// communication latencies.
pub fn figure1_contrast(exp: &Experiment) -> Vec<(u64, f64, f64)> {
    let w = figure1::build(exp.size);
    let (prof, _) = profile(&w);
    let base = simulate(&w.program, &MachineConfig::full_width());

    let mut dx = w.program.clone();
    let main = dx.main();
    doacross(&mut dx, main, w.header).expect("figure1 loop is DOACROSS-eligible");
    let (dswp_p, _) = transform_auto(&w, &prof, exp.alias).expect("figure1 loop partitions");

    [1u64, 10, 50]
        .into_iter()
        .map(|lat| {
            let cfg = MachineConfig::full_width().with_comm_latency(lat);
            let dx_cycles = simulate(&dx, &cfg).cycles;
            let dswp_cycles = simulate(&dswp_p, &cfg).cycles;
            (
                lat,
                base.cycles as f64 / dx_cycles as f64,
                base.cycles as f64 / dswp_cycles as f64,
            )
        })
        .collect()
}

/// Prints the Figure 1 contrast.
pub fn print_figure1(rows: &[(u64, f64, f64)]) {
    println!("== Figure 1: DOACROSS vs DSWP on the linked-list loop ==");
    println!("{:<14} {:>12} {:>12}", "comm latency", "DOACROSS", "DSWP");
    for (lat, dx, ds) in rows {
        println!(
            "{:<14} {:>11.3}x {:>11.3}x",
            format!("{lat} cycles"),
            dx,
            ds
        );
    }
}

/// One row of the ILP-preparation ablation.
#[derive(Clone, Debug)]
pub struct IlpRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Baseline IPC of the unmodified kernel.
    pub base_ipc: f64,
    /// Baseline IPC after unroll×2 + list scheduling.
    pub ilp_ipc: f64,
    /// DSWP speedup on the unmodified kernel.
    pub dswp_plain: f64,
    /// DSWP speedup on the ILP-prepared kernel (vs the ILP-prepared base).
    pub dswp_ilp: f64,
}

/// Ablation: the paper applies DSWP to *ILP-optimized* IMPACT code
/// ("operating on ILP optimized predicated code", Section 3; the epicdec
/// and art studies re-unroll and re-schedule). This experiment prepares
/// each kernel with unroll×2 + acyclic list scheduling and re-measures —
/// showing how the baseline IPC rises toward the paper's and how DSWP
/// composes with classic ILP preparation.
pub fn ilp_study(exp: &Experiment) -> Vec<IlpRow> {
    use dswp::{merge_blocks_program, schedule_program, unroll_counted, unroll_loop};
    use dswp_ir::interp::Interpreter;
    let cfg = MachineConfig::full_width();
    let mut rows = Vec::new();
    for w in paper_suite(exp.size) {
        let (prof, _) = profile(&w);
        let base = simulate(&w.program, &cfg);
        let dswp_plain = transform_auto(&w, &prof, exp.alias)
            .map(|(p, _)| base.cycles as f64 / simulate(&p, &cfg).cycles as f64)
            .unwrap_or(1.0);

        // ILP preparation: counted unrolling ×2 (test-preserving unrolling
        // as the fallback for uncounted loops), straight-line block
        // merging, then acyclic list scheduling — the classic recipe.
        let mut prepared = w.program.clone();
        let main = prepared.main();
        if unroll_counted(&mut prepared, main, w.header, 2).is_err() {
            let _ = unroll_loop(&mut prepared, main, w.header, 2);
        }
        merge_blocks_program(&mut prepared);
        schedule_program(&mut prepared, &dswp_ir::LatencyTable::default(), exp.alias);
        let Ok(prep_run) = Interpreter::new(&prepared).run() else {
            continue;
        };
        assert_eq!(
            prep_run.memory, base.memory,
            "{}: ILP prep diverged",
            w.name
        );
        let ilp_base = simulate(&prepared, &cfg);
        // Counted unrolling splits the loop into a fast loop and a
        // remainder; re-select the hot loop before applying DSWP.
        let hot = dswp::select_loop(&prepared, main, &prep_run.profile, 2.0).unwrap_or(w.header);
        let prepared_w = dswp_workloads::Workload {
            name: w.name,
            program: prepared,
            header: hot,
            doall: w.doall,
        };
        let dswp_ilp = transform_auto(&prepared_w, &prep_run.profile, exp.alias)
            .map(|(p, _)| {
                let s = simulate(&p, &cfg);
                assert_eq!(s.memory, base.memory, "{}: DSWP-on-ILP diverged", w.name);
                ilp_base.cycles as f64 / s.cycles as f64
            })
            .unwrap_or(1.0);
        rows.push(IlpRow {
            name: w.name,
            base_ipc: base.cores[0].ipc(base.cycles),
            ilp_ipc: ilp_base.cores[0].ipc(ilp_base.cycles),
            dswp_plain,
            dswp_ilp,
        });
    }
    rows
}

/// Prints the ILP-preparation ablation.
pub fn print_ilp_study(rows: &[IlpRow]) {
    println!("== Ablation: ILP preparation (unroll x2 + list scheduling) ==");
    println!(
        "{:<12} {:>9} {:>9} {:>12} {:>12}",
        "benchmark", "base IPC", "ILP IPC", "DSWP plain", "DSWP on ILP"
    );
    for r in rows {
        println!(
            "{:<12} {:>9.2} {:>9.2} {:>11.3}x {:>11.3}x",
            r.name, r.base_ipc, r.ilp_ipc, r.dswp_plain, r.dswp_ilp
        );
    }
    println!(
        "{:<12} {:>9.2} {:>9.2} {:>11.3}x {:>11.3}x",
        "Mean/GeoMean",
        mean(rows.iter().map(|r| r.base_ipc)),
        mean(rows.iter().map(|r| r.ilp_ipc)),
        geomean(rows.iter().map(|r| r.dswp_plain)),
        geomean(rows.iter().map(|r| r.dswp_ilp))
    );
}

/// Case studies of Section 5 (epicdec, adpcmdec, 179.art, 164.gzip) plus
/// the bzip2 false-sharing analysis of Section 4.2.
pub fn print_case_studies(exp: &Experiment) {
    let cfg = MachineConfig::full_width();

    // ---- Section 5.1: epicdec ----
    // Three precision levels: conservative, precise with the kernel's
    // hand-written affine annotations, and precise with annotations
    // *derived* by the scalar-evolution pass from the bare address code —
    // the automated form of the paper's "accurate memory analysis at the
    // assembly level".
    println!("== Section 5.1: epicdec — memory analysis precision & unrolling ==");
    println!(
        "{:<18} {:>7} {:>6} {:>12} {:>9}",
        "analysis", "unroll", "SCCs", "largest SCC", "speedup"
    );
    for unroll in [1usize, 2, 8] {
        for mode in ["conservative", "precise(manual)", "precise(scev)"] {
            let mut w = epic::build(exp.size, unroll);
            let alias = if mode == "conservative" {
                AliasMode::Conservative
            } else {
                AliasMode::Precise
            };
            if mode == "precise(scev)" {
                // Strip the hand-written facts; re-derive them.
                let main = w.program.main();
                for fi in 0..w.program.functions().len() {
                    let f = w.program.function_mut(dswp_ir::FuncId::from_index(fi));
                    for i in 0..f.num_instr_slots() {
                        let id = dswp_ir::InstrId::from_index(i);
                        if let dswp_ir::Op::Load { mem, .. } | dswp_ir::Op::Store { mem, .. } =
                            f.op_mut(id)
                        {
                            *mem = dswp_ir::op::MemInfo::UNKNOWN;
                        }
                    }
                }
                dswp::annotate_loop_affine(&mut w.program, main, w.header).unwrap();
            }
            let (prof, _) = profile(&w);
            let stats = loop_stats(&w.program, w.program.main(), w.header, alias).unwrap();
            let base = simulate(&w.program, &cfg);
            let speedup = transform_auto(&w, &prof, alias)
                .map(|(p, _)| base.cycles as f64 / simulate(&p, &cfg).cycles as f64)
                .unwrap_or(1.0);
            println!(
                "{:<18} {:>7} {:>6} {:>11}i {:>8.3}x",
                mode, unroll, stats.sccs, stats.largest_scc, speedup
            );
        }
    }

    // ---- Section 5.2: adpcmdec ----
    println!("\n== Section 5.2: adpcmdec — predication (hyperblock) ablation ==");
    println!(
        "{:<14} {:>6} {:>14} {:>9}",
        "variant", "SCCs", "largest SCC %", "speedup"
    );
    for hb in [true, false] {
        let w = adpcm::build(exp.size, hb);
        let (prof, _) = profile(&w);
        let stats = loop_stats(&w.program, w.program.main(), w.header, exp.alias).unwrap();
        let base = simulate(&w.program, &cfg);
        let speedup = transform_auto(&w, &prof, exp.alias)
            .map(|(p, _)| base.cycles as f64 / simulate(&p, &cfg).cycles as f64)
            .unwrap_or(1.0);
        println!(
            "{:<14} {:>6} {:>13.0}% {:>8.3}x",
            if hb { "hyperblock" } else { "no-hyperblock" },
            stats.sccs,
            100.0 * stats.largest_scc as f64 / stats.instrs as f64,
            speedup
        );
    }

    // ---- Section 5.3: 179.art ----
    println!("\n== Section 5.3: 179.art — accumulator expansion ==");
    println!("{:<14} {:>6} {:>9}", "accumulators", "SCCs", "speedup");
    for k in [1usize, 4] {
        let w = art::build(exp.size, k);
        let (prof, _) = profile(&w);
        let stats = loop_stats(&w.program, w.program.main(), w.header, exp.alias).unwrap();
        let base = simulate(&w.program, &cfg);
        let speedup = transform_auto(&w, &prof, exp.alias)
            .map(|(p, _)| base.cycles as f64 / simulate(&p, &cfg).cycles as f64)
            .unwrap_or(1.0);
        println!("{:<14} {:>6} {:>8.3}x", k, stats.sccs, speedup);
    }

    // ---- Section 5.4: 164.gzip ----
    println!("\n== Section 5.4: 164.gzip — serialized termination ==");
    let w = gzip::build(exp.size);
    let (prof, _) = profile(&w);
    let stats = loop_stats(&w.program, w.program.main(), w.header, exp.alias).unwrap();
    println!(
        "SCCs: {}, largest SCC: {} of {} instrs ({:.0}%)",
        stats.sccs,
        stats.largest_scc,
        stats.instrs,
        100.0 * stats.largest_scc as f64 / stats.instrs as f64
    );
    match transform_auto(&w, &prof, exp.alias) {
        None => println!("DSWP declines the loop (as in the paper)"),
        Some(_) => println!("NOTE: DSWP unexpectedly accepted the loop"),
    }

    // ---- Section 4.2: bzip2 false sharing ----
    // The paper replayed the two cores' memory traces through an offline
    // invalidation-based coherence model and found the `bslive` global
    // causing heavy false sharing, fixed by register promotion. Whether the
    // hazard manifests depends on which side of the cut the global writes
    // land, so we scan every valid cut and report the worst one for each
    // variant.
    println!("\n== Section 4.2: 256.bzip2 — offline false-sharing analysis ==");
    println!(
        "{:<22} {:>10} {:>14} {:>13} (worst cut over ≤24 partitionings)",
        "variant", "invalid.", "false sharing", "true sharing"
    );
    for promote in [false, true] {
        let w = bzip2::build(exp.size, promote);
        let (prof, _) = profile(&w);
        let mut worst: Option<sharing::SharingReport> = None;
        for part in partitions(&w, exp.alias, 24) {
            let Ok((p, _)) = transform_with(&w, &prof, exp.alias, part) else {
                continue;
            };
            let mut cfg = MachineConfig::full_width();
            cfg.record_mem_trace = true;
            let sim = Machine::new(&p, cfg).run().unwrap();
            let report = sharing::analyze(&sim.mem_trace, 8, p.num_threads());
            if worst
                .as_ref()
                .map(|b| report.false_sharing_invalidations > b.false_sharing_invalidations)
                .unwrap_or(true)
            {
                worst = Some(report);
            }
        }
        if let Some(r) = worst {
            println!(
                "{:<22} {:>10} {:>14} {:>13}",
                if promote {
                    "bslive in register:"
                } else {
                    "bslive in memory:"
                },
                r.invalidations,
                r.false_sharing_invalidations,
                r.true_sharing_invalidations
            );
        }
    }
    let _ = DswpError::SingleScc; // referenced for doc purposes
}
