//! Experiment machinery shared by the `paper_results` harness and the
//! per-figure binaries.

use dswp::{analyze_loop, dswp_loop, DswpError, DswpOptions, DswpReport, Partitioning};
use dswp_analysis::AliasMode;
use dswp_ir::interp::{Interpreter, Profile};
use dswp_ir::Program;
use dswp_sim::{Machine, MachineConfig, SimResult};
use dswp_workloads::{Size, Workload};

/// Experiment-wide configuration.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Workload size.
    pub size: Size,
    /// Cap on the number of partitionings explored by the "best manually
    /// directed" search (Figure 6(a)).
    pub search_cap: usize,
    /// Alias precision used for the main evaluation.
    pub alias: AliasMode,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment::from_env()
    }
}

impl Experiment {
    /// Reads `DSWP_BENCH_SIZE` (`test` | `paper`, default `paper`) so the
    /// harness can be smoke-tested quickly.
    pub fn from_env() -> Self {
        let size = match std::env::var("DSWP_BENCH_SIZE").as_deref() {
            Ok("test") => Size::Test,
            _ => Size::Paper,
        };
        Experiment {
            size,
            search_cap: 64,
            alias: AliasMode::Region,
        }
    }
}

/// Profile a workload by running the interpreter once.
pub fn profile(w: &Workload) -> (Profile, u64) {
    let r = Interpreter::new(&w.program)
        .run()
        .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", w.name));
    (r.profile, r.steps)
}

/// Runs the timing model.
pub fn simulate(p: &Program, cfg: &MachineConfig) -> SimResult {
    Machine::new(p, cfg.clone())
        .run()
        .unwrap_or_else(|e| panic!("simulation failed: {e}"))
}

/// Applies automatic DSWP; `None` when the compiler declines (single SCC /
/// not profitable).
pub fn transform_auto(
    w: &Workload,
    profile: &Profile,
    alias: AliasMode,
) -> Option<(Program, DswpReport)> {
    let mut p = w.program.clone();
    let main = p.main();
    let opts = DswpOptions {
        alias,
        ..DswpOptions::default()
    };
    match dswp_loop(&mut p, main, w.header, profile, &opts) {
        Ok(report) => Some((p, report)),
        Err(DswpError::SingleScc | DswpError::NotProfitable) => None,
        Err(e) => panic!("{}: unexpected DSWP failure: {e}", w.name),
    }
}

/// Applies DSWP under a caller-chosen partitioning.
pub fn transform_with(
    w: &Workload,
    profile: &Profile,
    alias: AliasMode,
    partitioning: Partitioning,
) -> Result<(Program, DswpReport), DswpError> {
    let mut p = w.program.clone();
    let main = p.main();
    let opts = DswpOptions {
        alias,
        partitioning: Some(partitioning),
        ..DswpOptions::default()
    };
    dswp_loop(&mut p, main, w.header, profile, &opts).map(|r| (p, r))
}

/// Enumerates valid two-thread partitionings of the workload's loop.
pub fn partitions(w: &Workload, alias: AliasMode, cap: usize) -> Vec<Partitioning> {
    match analyze_loop(&w.program, w.program.main(), w.header, alias) {
        Ok(a) => dswp::enumerate_two_thread(&a.dag, cap),
        Err(_) => Vec::new(),
    }
}

/// The per-benchmark measurement bundle behind Figures 6, 8, 9.
#[derive(Debug)]
pub struct BenchRun {
    /// Workload name.
    pub name: &'static str,
    /// Interpreter profile and dynamic instruction count.
    pub profile: Profile,
    /// Total dynamic instructions of the baseline.
    pub steps: u64,
    /// Full-width single-threaded baseline.
    pub base: SimResult,
    /// Automatic DSWP (program, report, simulation), if the compiler
    /// accepted the loop.
    pub auto_dswp: Option<(Program, DswpReport, SimResult)>,
    /// Best partitioning found by iterative search (partitioning, sim).
    pub best: Option<(Partitioning, SimResult)>,
}

impl BenchRun {
    /// Measures one workload end to end.
    pub fn measure(w: &Workload, exp: &Experiment, search_best: bool) -> BenchRun {
        let (prof, steps) = profile(w);
        let cfg = MachineConfig::full_width();
        let base = simulate(&w.program, &cfg);

        let auto_dswp = transform_auto(w, &prof, exp.alias).map(|(p, report)| {
            let sim = simulate(&p, &cfg);
            assert_eq!(sim.memory, base.memory, "{}: DSWP diverged", w.name);
            (p, report, sim)
        });

        let best = if search_best {
            let mut best: Option<(Partitioning, SimResult)> = None;
            for part in partitions(w, exp.alias, exp.search_cap) {
                if let Ok((p, _)) = transform_with(w, &prof, exp.alias, part.clone()) {
                    let sim = simulate(&p, &cfg);
                    assert_eq!(sim.memory, base.memory, "{}: partition diverged", w.name);
                    if best
                        .as_ref()
                        .map(|(_, b)| sim.cycles < b.cycles)
                        .unwrap_or(true)
                    {
                        best = Some((part, sim));
                    }
                }
            }
            best
        } else {
            None
        };

        BenchRun {
            name: w.name,
            profile: prof,
            steps,
            base,
            auto_dswp,
            best,
        }
    }

    /// Loop speedup of automatic DSWP over the baseline (1.0 if declined).
    pub fn auto_speedup(&self) -> f64 {
        self.auto_dswp
            .as_ref()
            .map(|(_, _, s)| self.base.cycles as f64 / s.cycles as f64)
            .unwrap_or(1.0)
    }

    /// Speedup of the best searched partitioning (≥ auto by construction
    /// when the search covers the heuristic's pick).
    pub fn best_speedup(&self) -> f64 {
        self.best
            .as_ref()
            .map(|(_, s)| self.base.cycles as f64 / s.cycles as f64)
            .unwrap_or_else(|| self.auto_speedup())
    }
}

/// Geometric mean.
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0usize);
    for x in xs {
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean.
pub fn mean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0f64, 0usize);
    for x in xs {
        sum += x;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dswp_workloads::mcf;

    #[test]
    fn geomean_and_mean() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((mean([1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 1.0);
    }

    #[test]
    fn bench_run_measures_mcf() {
        let exp = Experiment {
            size: Size::Test,
            search_cap: 8,
            alias: AliasMode::Region,
        };
        let w = mcf::build(Size::Test);
        let run = BenchRun::measure(&w, &exp, true);
        assert!(run.base.cycles > 0);
        assert!(run.auto_dswp.is_some());
        assert!(run.best.is_some());
        assert!(run.best_speedup() >= run.auto_speedup() * 0.999 || run.best_speedup() > 1.0);
    }
}
