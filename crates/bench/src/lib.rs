//! Benchmark harness for the DSWP reproduction.
//!
//! Regenerates every table and figure of the MICRO 2005 paper's evaluation:
//!
//! | Experiment | Generator |
//! |---|---|
//! | Table 1 (loop statistics) | [`figures::table1`] |
//! | Figure 6(a)/(b) (speedups, IPC) | [`figures::figure6`] |
//! | Figure 7 (mcf balance study) | [`figures::figure7`] |
//! | Figure 8 (occupancy distribution) | [`figures::print_fig8`] |
//! | Figure 9(a)/(b) (width / latency) | [`figures::figure9a`], [`figures::figure9b`] |
//! | Section 4.4 (queue sizes) | [`figures::queue_size_sweep`] |
//! | Figure 1 (DOACROSS contrast) | [`figures::figure1_contrast`] |
//! | Section 5 case studies + 4.2 sharing | [`figures::print_case_studies`] |
//!
//! Run everything with `cargo bench -p dswp-bench --bench paper_results`
//! (`DSWP_BENCH_SIZE=test` for a quick smoke run), or individual figures
//! with the `fig*` binaries in `src/bin/`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
pub mod json;
pub mod runner;
