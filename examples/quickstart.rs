//! Quickstart: build the paper's Figure 2 loop (a list-of-lists sum),
//! run automatic DSWP on it, print the producer and consumer threads, and
//! compare single-threaded vs dual-core execution on the timing model.
//!
//! Run with `cargo run --release --example quickstart`.

use dswp_repro::dswp::{dswp_loop, DswpOptions};
use dswp_repro::ir::interp::Interpreter;
use dswp_repro::ir::{ProgramBuilder, RegionId};
use dswp_repro::sim::{Machine, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Figure 2(a): while (l) { for (e = l->list; e; e = e->next)
    //                     sum += e->value; l = l->next; } ---
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let bb1 = f.entry_block();
    let bb2 = f.block("BB2");
    let bb3 = f.block("BB3");
    let bb4 = f.block("BB4");
    let bb5 = f.block("BB5");
    let bb6 = f.block("BB6");
    let bb7 = f.block("BB7");
    let (outer, inner, val, sum, p1, p2, base, t) = (
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
    );

    f.switch_to(bb1);
    f.iconst(outer, 1);
    f.iconst(sum, 0);
    f.jump(bb2);
    f.switch_to(bb2); // A, B
    f.cmp_eq(p1, outer, 0);
    f.br(p1, bb7, bb3);
    f.switch_to(bb3); // C
    f.load_region(inner, outer, 2, RegionId(0));
    f.jump(bb4);
    f.switch_to(bb4); // D, E
    f.cmp_eq(p2, inner, 0);
    f.br(p2, bb6, bb5);
    f.switch_to(bb5); // F, G, H, I (with a slightly heavier body)
    f.load_region(val, inner, 3, RegionId(1));
    f.mul(t, val, 3);
    f.rem(t, t, 101);
    f.add(sum, sum, t);
    f.load_region(inner, inner, 0, RegionId(1));
    f.jump(bb4);
    f.switch_to(bb6); // J, K
    f.load_region(outer, outer, 1, RegionId(0));
    f.jump(bb2);
    f.switch_to(bb7);
    f.iconst(base, 0);
    f.store(sum, base, 0);
    f.halt();
    let main = f.finish();

    // Build a list of 200 outer nodes, each with a short inner list.
    let mut mem = vec![0i64; 16 + 200 * 3 + 600 * 4];
    let (mut outer_at, mut inner_at) = (1usize, 16 + 600);
    for o in 0..200usize {
        mem[outer_at + 1] = if o == 199 { 0 } else { (outer_at + 3) as i64 };
        mem[outer_at + 2] = inner_at as i64;
        let count = o % 3 + 1;
        for k in 0..count {
            mem[inner_at] = if k + 1 == count {
                0
            } else {
                (inner_at + 4) as i64
            };
            mem[inner_at + 3] = ((o * 7 + k) % 100) as i64;
            inner_at += 4;
        }
        outer_at += 3;
    }
    let mut program = pb.finish_with_memory(main, mem);
    let original = program.clone();

    // --- profile, transform, inspect ---
    let baseline = Interpreter::new(&program).run()?;
    println!(
        "baseline: sum = {}, {} instructions interpreted",
        baseline.memory[0], baseline.steps
    );

    let entry = program.main();
    let report = dswp_loop(
        &mut program,
        entry,
        dswp_repro::ir::BlockId(1),
        &baseline.profile,
        &DswpOptions::default(),
    )?;
    println!(
        "\nDSWP: {} SCCs, {} threads, flows: {} initial / {} loop / {} final",
        report.num_sccs,
        report.partitioning.num_threads,
        report.artifacts.flows.initial,
        report.artifacts.flows.loop_flows,
        report.artifacts.flows.final_flows,
    );

    println!("\n--- transformed program (Figure 2(d)/(e) analogue) ---");
    print!("{program}");

    // --- measure both versions on the timing model ---
    let cfg = MachineConfig::full_width();
    let base_sim = Machine::new(&original, cfg.clone()).run()?;
    let dswp_sim = Machine::new(&program, cfg).run()?;
    assert_eq!(
        dswp_sim.memory[0], baseline.memory[0],
        "DSWP result must match"
    );
    println!(
        "\nsingle-threaded: {} cycles    DSWP dual-core: {} cycles    speedup {:.2}x",
        base_sim.cycles,
        dswp_sim.cycles,
        base_sim.cycles as f64 / dswp_sim.cycles as f64
    );
    println!(
        "core 0 IPC {:.2}, core 1 IPC {:.2} (excluding produce/consume)",
        dswp_sim.cores[0].ipc(dswp_sim.cycles),
        dswp_sim.cores[1].ipc(dswp_sim.cycles)
    );
    println!(
        "max queue occupancy {} entries — the decoupling DSWP provides",
        dswp_sim.occupancy.max()
    );
    Ok(())
}
