//! The paper's Figure 1 experiment: a pointer-chasing loop
//! (`while (ptr = ptr->next) ptr->val += 1;`) parallelized with DOACROSS vs
//! DSWP, swept over inter-core communication latencies.
//!
//! DOACROSS routes the critical-path recurrence (the pointer-chasing load)
//! from core to core *every iteration*, so its runtime grows by roughly
//! `iterations × latency`. DSWP keeps the recurrence on one core, so it is
//! nearly latency-insensitive.
//!
//! Run with `cargo run --release --example linked_list`.

use dswp_repro::dswp::{doacross, dswp_loop, DswpOptions};
use dswp_repro::ir::interp::Interpreter;
use dswp_repro::sim::{Machine, MachineConfig};
use dswp_repro::workloads::{figure1, Size};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = figure1::build(Size::Paper);
    let main = w.program.main();
    let baseline = Interpreter::new(&w.program).run()?;

    // DOACROSS version.
    let mut dx = w.program.clone();
    let report = doacross(&mut dx, main, w.header)?;
    println!(
        "DOACROSS: {} carried register(s) forwarded per iteration: {:?}",
        report.state_regs.len(),
        report.state_regs
    );

    // DSWP version.
    let mut ds = w.program.clone();
    let dswp_report = dswp_loop(
        &mut ds,
        main,
        w.header,
        &baseline.profile,
        &DswpOptions::default(),
    )?;
    println!(
        "DSWP: {} SCCs partitioned into {} pipeline stages\n",
        dswp_report.num_sccs, dswp_report.partitioning.num_threads
    );

    println!(
        "{:<14} {:>14} {:>14} {:>14}",
        "comm latency", "1 thread", "DOACROSS", "DSWP"
    );
    for lat in [1u64, 5, 10, 20, 50] {
        let cfg = MachineConfig::full_width().with_comm_latency(lat);
        let base = Machine::new(&w.program, cfg.clone()).run()?;
        let dxr = Machine::new(&dx, cfg.clone()).run()?;
        let dsr = Machine::new(&ds, cfg).run()?;
        assert_eq!(dxr.memory, base.memory);
        assert_eq!(dsr.memory, base.memory);
        println!(
            "{:<14} {:>13}c {:>13}c {:>13}c",
            format!("{lat} cycles"),
            base.cycles,
            dxr.cycles,
            dsr.cycles
        );
    }
    println!("\nDOACROSS degrades linearly with latency; DSWP barely moves —");
    println!("the paper's Figure 1 in numbers.");
    Ok(())
}
