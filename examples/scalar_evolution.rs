//! The epicdec case study (paper Section 5.1), fully automated: build the
//! Figure 10 clamp loop with *no* memory annotations, let the
//! scalar-evolution pass derive affine facts for `result[i]`, and watch the
//! dependence graph split from one merged load/store recurrence into
//! per-element pipelines.
//!
//! Run with `cargo run --release --example scalar_evolution`.

use dswp_repro::analysis::AliasMode;
use dswp_repro::dswp::{annotate_loop_affine, dswp_loop, loop_stats, DswpOptions};
use dswp_repro::ir::interp::Interpreter;
use dswp_repro::ir::{BlockId, ProgramBuilder};
use dswp_repro::sim::{Machine, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 10: for i in 0..n { dtemp = result[i] / scale;
    //   result[i] = clamp(dtemp) } — with *unannotated* loads and stores.
    let n = 512i64;
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let e = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let lo = f.block("lo");
    let hitest = f.block("hitest");
    let hi = f.block("hi");
    let mid = f.block("mid");
    let latch = f.block("latch");
    let exit = f.block("exit");
    let (i, nn, base, done, addr, v, dtemp, p) = (
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
    );
    f.switch_to(e);
    f.iconst(i, 0);
    f.iconst(nn, n);
    f.iconst(base, 16);
    f.jump(header);
    f.switch_to(header);
    f.cmp_ge(done, i, nn);
    f.br(done, exit, body);
    f.switch_to(body);
    f.add(addr, base, i);
    f.load(v, addr, 0); // plain load: no region, no affine facts
    f.div(dtemp, v, 7);
    f.cmp_lt(p, dtemp, 0);
    f.br(p, lo, hitest);
    f.switch_to(lo);
    f.store(0, addr, 0);
    f.jump(latch);
    f.switch_to(hitest);
    f.cmp_gt(p, dtemp, 255);
    f.br(p, hi, mid);
    f.switch_to(hi);
    f.store(255, addr, 0);
    f.jump(latch);
    f.switch_to(mid);
    f.add(dtemp, dtemp, 1);
    f.store(dtemp, addr, 0);
    f.jump(latch);
    f.switch_to(latch);
    f.add(i, i, 1);
    f.jump(header);
    f.switch_to(exit);
    f.halt();
    let main_fn = f.finish();
    let mut mem = vec![0i64; 16 + n as usize];
    for k in 0..n as usize {
        mem[16 + k] = ((k as i64).wrapping_mul(2654435761)) % 4000 - 500;
    }
    let mut program = pb.finish_with_memory(main_fn, mem);
    let header = BlockId(1);

    let before = loop_stats(&program, main_fn, header, AliasMode::Precise)?;
    println!(
        "without memory facts:  {} SCCs, largest {} of {} instructions",
        before.sccs, before.largest_scc, before.instrs
    );

    let stats = annotate_loop_affine(&mut program, main_fn, header)?;
    println!(
        "scalar evolution:      {} access(es) proven affine, {} unanalyzable",
        stats.annotated, stats.unanalyzed
    );

    let after = loop_stats(&program, main_fn, header, AliasMode::Precise)?;
    println!(
        "with derived facts:    {} SCCs, largest {}",
        after.sccs, after.largest_scc
    );

    // And the payoff: DSWP under precise analysis.
    let baseline = Interpreter::new(&program).run()?;
    let original = program.clone();
    let opts = DswpOptions {
        alias: AliasMode::Precise,
        ..DswpOptions::default()
    };
    dswp_loop(&mut program, main_fn, header, &baseline.profile, &opts)?;
    let cfg = MachineConfig::full_width();
    let base_sim = Machine::new(&original, cfg.clone()).run()?;
    let dswp_sim = Machine::new(&program, cfg).run()?;
    assert_eq!(base_sim.memory, dswp_sim.memory);
    println!(
        "\nDSWP speedup with the derived analysis: {:.2}x ({} -> {} cycles)",
        base_sim.cycles as f64 / dswp_sim.cycles as f64,
        base_sim.cycles,
        dswp_sim.cycles
    );
    println!("— the paper's epicdec case study, with the accurate memory");
    println!("  analysis computed instead of assumed.");
    Ok(())
}
