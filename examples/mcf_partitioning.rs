//! The paper's Figure 7 study: enumerate every valid two-thread cut of the
//! 181.mcf loop's `DAG_SCC`, simulate each, and show how load balance
//! drives speedup and queue occupancy.
//!
//! Run with `cargo run --release --example mcf_partitioning`.

use dswp_repro::analysis::AliasMode;
use dswp_repro::dswp::{analyze_loop, dswp_loop, enumerate_two_thread, DswpOptions};
use dswp_repro::ir::interp::Interpreter;
use dswp_repro::sim::{Machine, MachineConfig};
use dswp_repro::workloads::{mcf, Size};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = mcf::build(Size::Paper);
    let main = w.program.main();
    let baseline = Interpreter::new(&w.program).run()?;

    let analysis = analyze_loop(&w.program, main, w.header, AliasMode::Region)?;
    println!("181.mcf loop DAG_SCC ({} components):", analysis.dag.len());
    for (i, comp) in analysis.dag.sccs.iter().enumerate() {
        let succs: Vec<usize> = analysis.dag.succs(i).collect();
        println!(
            "  SCC{i}: {} instruction(s), arcs to {:?}",
            comp.len(),
            succs
        );
    }

    let cfg = MachineConfig::full_width();
    let base = Machine::new(&w.program, cfg.clone()).run()?;
    println!("\nbaseline: {} cycles\n", base.cycles);

    // The heuristic's own pick, for comparison.
    let auto = {
        let mut p = w.program.clone();
        dswp_loop(
            &mut p,
            main,
            w.header,
            &baseline.profile,
            &DswpOptions::default(),
        )
        .ok()
        .map(|r| r.partitioning)
    };

    println!(
        "{:<18} {:>9} {:>10} {:>9}",
        "P1 | P2 (instrs)", "speedup", "occ(mean)", "occ(max)"
    );
    for part in enumerate_two_thread(&analysis.dag, 64) {
        let mut p = w.program.clone();
        let opts = DswpOptions {
            partitioning: Some(part.clone()),
            ..DswpOptions::default()
        };
        if dswp_loop(&mut p, main, w.header, &baseline.profile, &opts).is_err() {
            continue;
        }
        let sim = Machine::new(&p, cfg.clone()).run()?;
        assert_eq!(sim.memory, base.memory);
        let (mut c0, mut c1) = (0usize, 0usize);
        for (scc, comp) in analysis.dag.sccs.iter().enumerate() {
            if part.assignment[scc] == 0 {
                c0 += comp.len();
            } else {
                c1 += comp.len();
            }
        }
        println!(
            "{:>7} | {:<8} {:>8.3}x {:>10.1} {:>9}  {}",
            c0,
            c1,
            base.cycles as f64 / sim.cycles as f64,
            sim.occupancy.mean(),
            sim.occupancy.max(),
            if auto.as_ref() == Some(&part) {
                "<- heuristic's pick"
            } else {
                ""
            }
        );
    }
    println!("\nBalanced cuts pipeline well; starving either stage collapses the win —");
    println!("the paper's Figure 7.");
    Ok(())
}
