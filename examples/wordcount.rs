//! End-to-end `wc`: the Unix word-count state machine, automatically
//! pipelined by DSWP and inspected stage by stage.
//!
//! Run with `cargo run --release --example wordcount`.

use dswp_repro::analysis::AliasMode;
use dswp_repro::dswp::{dswp_loop, loop_stats, DswpOptions};
use dswp_repro::ir::interp::Interpreter;
use dswp_repro::sim::{Machine, MachineConfig};
use dswp_repro::workloads::{wc, Size};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = wc::build(Size::Paper);
    let main = w.program.main();

    let stats = loop_stats(&w.program, main, w.header, AliasMode::Region)?;
    println!(
        "wc loop: {} blocks, {} instructions, {} SCCs (largest {})",
        stats.blocks, stats.instrs, stats.sccs, stats.largest_scc
    );

    let baseline = Interpreter::new(&w.program).run()?;
    println!(
        "reference counts: {} words, {} lines, {} chars",
        baseline.memory[0], baseline.memory[1], baseline.memory[2]
    );

    let mut p = w.program.clone();
    let report = dswp_loop(
        &mut p,
        main,
        w.header,
        &baseline.profile,
        &DswpOptions::default(),
    )?;
    println!(
        "\nDSWP split the loop into {} stages; thread 1 runs function {:?}",
        report.partitioning.num_threads, report.artifacts.aux_functions
    );
    for t in 0..report.partitioning.num_threads {
        println!(
            "  stage {t}: SCC indices {:?}",
            report.partitioning.sccs_of(t)
        );
    }

    let cfg = MachineConfig::full_width();
    let base_sim = Machine::new(&w.program, cfg.clone()).run()?;
    let dswp_sim = Machine::new(&p, cfg).run()?;
    assert_eq!(
        &dswp_sim.memory[0..3],
        &base_sim.memory[0..3],
        "pipelined wc must count identically"
    );
    println!(
        "\ncounts after DSWP: {} words, {} lines, {} chars (identical)",
        dswp_sim.memory[0], dswp_sim.memory[1], dswp_sim.memory[2]
    );
    println!(
        "cycles: {} single-threaded vs {} pipelined ({:.2}x)",
        base_sim.cycles,
        dswp_sim.cycles,
        base_sim.cycles as f64 / dswp_sim.cycles as f64
    );
    let c = &dswp_sim.occupancy.classes;
    let total = (c.full_producer_stalled
        + c.balanced_both_active
        + c.empty_both_active
        + c.empty_consumer_stalled) as f64;
    println!(
        "queue classes: {:.0}% balanced, {:.0}% consumer-starved, {:.0}% producer-blocked",
        100.0 * c.balanced_both_active as f64 / total,
        100.0 * c.empty_consumer_stalled as f64 / total,
        100.0 * c.full_producer_stalled as f64 / total,
    );
    Ok(())
}
