//! Workspace-level integration tests: the complete flow a downstream user
//! would run — build or pick a workload, profile it, apply DSWP, and
//! measure it on the CMP model — exercised through the `dswp-repro` facade.

use dswp_repro::analysis::AliasMode;
use dswp_repro::dswp::{dswp_loop, select_loop, DswpOptions};
use dswp_repro::ir::interp::Interpreter;
use dswp_repro::ir::verify::verify_program;
use dswp_repro::sim::{Executor, Machine, MachineConfig};
use dswp_repro::workloads::{self, paper_suite, Size};

#[test]
fn the_readme_flow_works() {
    // 1. Pick a workload.
    let w = workloads::mcf::build(Size::Test);
    let mut program = w.program.clone();
    let main = program.main();

    // 2. Profile it with the interpreter.
    let baseline = Interpreter::new(&program).run().unwrap();

    // 3. Let the driver select the candidate loop (Section 4's criterion).
    let header =
        select_loop(&program, main, &baseline.profile, 4.0).expect("mcf has an obvious hot loop");
    assert_eq!(header, w.header);

    // 4. Transform.
    let report = dswp_loop(
        &mut program,
        main,
        header,
        &baseline.profile,
        &DswpOptions::default(),
    )
    .unwrap();
    assert_eq!(report.partitioning.num_threads, 2);
    verify_program(&program).unwrap();

    // 5. Run on the dual-core model and compare against the baseline.
    let sim = Machine::new(&program, MachineConfig::full_width())
        .run()
        .unwrap();
    assert_eq!(sim.memory, baseline.memory);
    assert_eq!(sim.cores.len(), 2);
}

#[test]
fn select_loop_prefers_the_hot_loop() {
    for w in paper_suite(Size::Test) {
        let baseline = Interpreter::new(&w.program).run().unwrap();
        let selected = select_loop(&w.program, w.program.main(), &baseline.profile, 4.0);
        assert_eq!(selected, Some(w.header), "{}", w.name);
    }
}

#[test]
fn functional_and_timing_engines_agree_on_all_workloads() {
    for w in paper_suite(Size::Test) {
        let interp = Interpreter::new(&w.program).run().unwrap();
        let exec = Executor::new(&w.program).run().unwrap();
        let sim = Machine::new(&w.program, MachineConfig::full_width())
            .run()
            .unwrap();
        assert_eq!(interp.memory, exec.memory, "{}", w.name);
        assert_eq!(interp.memory, sim.memory, "{}", w.name);
        assert_eq!(interp.entry_regs, exec.entry_regs, "{}", w.name);
        assert_eq!(interp.entry_regs, sim.entry_regs, "{}", w.name);
    }
}

#[test]
fn timing_model_is_deterministic() {
    let w = workloads::wc::build(Size::Test);
    let baseline = Interpreter::new(&w.program).run().unwrap();
    let mut p = w.program.clone();
    let main = p.main();
    dswp_loop(
        &mut p,
        main,
        w.header,
        &baseline.profile,
        &DswpOptions::default(),
    )
    .unwrap();

    let a = Machine::new(&p, MachineConfig::full_width()).run().unwrap();
    let b = Machine::new(&p, MachineConfig::full_width()).run().unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.memory, b.memory);
    assert_eq!(a.cores[0], b.cores[0]);
    assert_eq!(a.occupancy.histogram, b.occupancy.histogram);
}

#[test]
fn alias_precision_is_monotone_in_scc_count() {
    // More precise analysis can only remove dependences, so SCC counts are
    // monotone non-decreasing with precision on every workload.
    for w in paper_suite(Size::Test) {
        let main = w.program.main();
        let c = dswp_repro::dswp::loop_stats(&w.program, main, w.header, AliasMode::Conservative)
            .unwrap();
        let r =
            dswp_repro::dswp::loop_stats(&w.program, main, w.header, AliasMode::Region).unwrap();
        let p =
            dswp_repro::dswp::loop_stats(&w.program, main, w.header, AliasMode::Precise).unwrap();
        assert!(c.sccs <= r.sccs, "{}: {} > {}", w.name, c.sccs, r.sccs);
        assert!(r.sccs <= p.sccs, "{}: {} > {}", w.name, r.sccs, p.sccs);
        assert!(c.largest_scc >= r.largest_scc, "{}", w.name);
        assert!(r.largest_scc >= p.largest_scc, "{}", w.name);
    }
}

#[test]
fn four_stage_pipeline_on_mcf() {
    // Extension: a 4-context machine running a 3-stage pipeline + baseline
    // comparison, beyond the paper's dual-core evaluation.
    let w = workloads::mcf::build(Size::Test);
    let baseline = Interpreter::new(&w.program).run().unwrap();
    let main = w.program.main();
    let analysis =
        dswp_repro::dswp::analyze_loop(&w.program, main, w.header, AliasMode::Region).unwrap();
    let n = analysis.dag.len();
    let part = dswp_repro::dswp::Partitioning::new((0..n).map(|i| i * 3 / n).collect(), 3);
    let mut p = w.program.clone();
    let opts = DswpOptions {
        partitioning: Some(part),
        max_threads: 3,
        ..DswpOptions::default()
    };
    dswp_loop(&mut p, main, w.header, &baseline.profile, &opts).unwrap();
    assert_eq!(p.num_threads(), 3);
    let sim = Machine::new(&p, MachineConfig::full_width()).run().unwrap();
    assert_eq!(sim.memory, baseline.memory);
}
