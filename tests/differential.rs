//! Differential suite over the three execution engines.
//!
//! For every `paper_suite()` workload, the DSWP-transformed program is run
//! on the deterministic functional `Executor` (unbounded queues, one OS
//! thread) and the native `dswp-rt` runtime (bounded queues, one OS thread
//! per pipeline stage), and the observable results are compared against
//! each other and against the single-threaded `Interpreter` baseline of
//! the *original* program:
//!
//! * final shared memory (the program's output),
//! * the main thread's entry-frame registers (the "return value"),
//! * the per-queue produced-value streams,
//! * even the per-context retired-instruction counts.
//!
//! Each engine implements scheduling independently, so agreement on all
//! four is strong evidence that the DSWP transformation produced a truly
//! schedule-independent pipeline — the property the paper's correctness
//! argument (Section 2.2.4) relies on.

use dswp_repro::dswp::{dswp_loop, DswpOptions, PipelineMap};
use dswp_repro::ir::interp::Interpreter;
use dswp_repro::ir::Program;
use dswp_repro::rt::{RtConfig, Runtime};
use dswp_repro::sim::Executor;
use dswp_repro::workloads::{paper_suite, Size, Workload};

/// Profiles and DSWP-transforms a workload with default options.
fn transform(w: &Workload) -> (Program, Vec<i64>) {
    let baseline = Interpreter::new(&w.program)
        .run()
        .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", w.name));
    let mut p = w.program.clone();
    let main = p.main();
    dswp_loop(
        &mut p,
        main,
        w.header,
        &baseline.profile,
        &DswpOptions::default(),
    )
    .unwrap_or_else(|e| panic!("{}: DSWP failed: {e}", w.name));
    (p, baseline.memory)
}

#[test]
fn native_runtime_matches_oracle_on_every_workload() {
    for w in paper_suite(Size::Test) {
        let (transformed, baseline_memory) = transform(&w);

        let exec = Executor::new(&transformed)
            .run()
            .unwrap_or_else(|e| panic!("{}: executor failed: {e}", w.name));
        let native = Runtime::new(&transformed)
            .with_config(RtConfig::default().record_streams(true))
            .run()
            .unwrap_or_else(|e| panic!("{}: native runtime failed: {e}", w.name));

        // Output memory: all three engines agree.
        assert_eq!(
            exec.memory, baseline_memory,
            "{}: executor vs baseline",
            w.name
        );
        assert_eq!(
            native.memory, baseline_memory,
            "{}: native vs baseline",
            w.name
        );

        // Return value (entry-frame registers of the main context).
        assert_eq!(native.entry_regs, exec.entry_regs, "{}: entry regs", w.name);

        // Produce/consume value streams, per queue, in production order.
        let streams = native.streams.as_ref().expect("streams recorded");
        assert_eq!(streams, &exec.streams, "{}: queue streams", w.name);

        // Retired instructions per context.
        let native_steps: Vec<u64> = native.stages.iter().map(|s| s.steps).collect();
        assert_eq!(native_steps, exec.steps, "{}: per-context steps", w.name);
    }
}

/// The same cross-engine agreement must hold with batched communication:
/// chunked queue publishes are a pure transport optimization, invisible to
/// every observable. `batch_hints` additionally exercises the per-queue
/// path (token queues shallow, data queues deep).
#[test]
fn batched_native_runtime_matches_oracle_on_every_workload() {
    for w in paper_suite(Size::Test) {
        let (transformed, baseline_memory) = transform(&w);
        let exec = Executor::new(&transformed)
            .run()
            .unwrap_or_else(|e| panic!("{}: executor failed: {e}", w.name));
        let map = PipelineMap::infer(&transformed);

        for batch in [4usize, 16, 64] {
            for hinted in [false, true] {
                let mut cfg = RtConfig::default().record_streams(true);
                cfg = if hinted {
                    cfg.queue_batches(map.batch_hints(batch))
                } else {
                    cfg.batch(batch)
                };
                let native = Runtime::new(&transformed)
                    .with_config(cfg)
                    .run()
                    .unwrap_or_else(|e| panic!("{} (batch {batch}, hinted {hinted}): {e}", w.name));
                let ctx = format!("{} batch {batch}, hinted {hinted}", w.name);
                assert_eq!(native.memory, baseline_memory, "{ctx}: memory");
                assert_eq!(native.entry_regs, exec.entry_regs, "{ctx}: entry regs");
                assert_eq!(
                    native.streams.as_ref().unwrap(),
                    &exec.streams,
                    "{ctx}: queue streams"
                );
                let steps: Vec<u64> = native.stages.iter().map(|s| s.steps).collect();
                assert_eq!(steps, exec.steps, "{ctx}: per-context steps");
            }
        }
    }
}

#[test]
fn transformed_workloads_have_valid_pipeline_maps() {
    for w in paper_suite(Size::Test) {
        let (transformed, _) = transform(&w);
        let map = PipelineMap::infer(&transformed);
        assert_eq!(
            map.stages.len(),
            transformed.num_threads(),
            "{}: one stage per context",
            w.name
        );
        map.validate()
            .unwrap_or_else(|e| panic!("{}: pipeline map invalid: {e}", w.name));
        // Every stage beyond the main context reaches real code (its master
        // function plus the indirect-call-resolved loop body).
        for (i, stage) in map.stages.iter().enumerate().skip(1) {
            assert!(
                stage.functions.len() >= 2,
                "{}: stage {i} resolved no aux loop function",
                w.name
            );
        }
    }
}

#[test]
fn differential_holds_for_a_three_stage_pipeline() {
    use dswp_repro::analysis::AliasMode;

    let w = dswp_repro::workloads::mcf::build(Size::Test);
    let baseline = Interpreter::new(&w.program).run().unwrap();
    let main = w.program.main();
    let analysis =
        dswp_repro::dswp::analyze_loop(&w.program, main, w.header, AliasMode::Region).unwrap();
    let n = analysis.dag.len();
    let part = dswp_repro::dswp::Partitioning::new((0..n).map(|i| i * 3 / n).collect(), 3);
    let mut p = w.program.clone();
    let opts = DswpOptions {
        partitioning: Some(part),
        max_threads: 3,
        ..DswpOptions::default()
    };
    dswp_loop(&mut p, main, w.header, &baseline.profile, &opts).unwrap();
    assert_eq!(p.num_threads(), 3);

    let exec = Executor::new(&p).run().unwrap();
    let native = Runtime::new(&p)
        .with_config(RtConfig::default().record_streams(true))
        .run()
        .unwrap();
    assert_eq!(native.memory, baseline.memory);
    assert_eq!(native.entry_regs, exec.entry_regs);
    assert_eq!(native.streams.unwrap(), exec.streams);
    assert_eq!(native.stages.len(), 3);
}

/// The full cross-engine agreement must also hold with a replicated
/// pipeline stage, at a fixed replica count and under the auto tuner —
/// the gather stage's in-order merge makes replication observably
/// invisible, down to the queue streams of every pre-existing queue.
#[test]
fn replicated_pipelines_match_oracle_on_every_workload() {
    use dswp_repro::analysis::AliasMode;
    use dswp_repro::dswp::{annotate_loop_affine, Replicate};

    for replicate in [Replicate::Fixed(2), Replicate::Auto { cores: Some(4) }] {
        for w in paper_suite(Size::Test) {
            let baseline = Interpreter::new(&w.program)
                .run()
                .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", w.name));
            let mut p = w.program.clone();
            let main = p.main();
            annotate_loop_affine(&mut p, main, w.header)
                .unwrap_or_else(|e| panic!("{}: scev failed: {e}", w.name));
            let opts = DswpOptions {
                alias: AliasMode::Precise,
                replicate,
                ..DswpOptions::default()
            };
            if dswp_loop(&mut p, main, w.header, &baseline.profile, &opts).is_err() {
                continue; // single-SCC / unprofitable under this partitioning
            }

            let exec = Executor::new(&p)
                .run()
                .unwrap_or_else(|e| panic!("{}: executor failed: {e}", w.name));
            let native = Runtime::new(&p)
                .with_config(RtConfig::default().record_streams(true))
                .run()
                .unwrap_or_else(|e| panic!("{}: native runtime failed: {e}", w.name));
            let ctx = format!("{} ({replicate:?})", w.name);
            assert_eq!(exec.memory, baseline.memory, "{ctx}: executor memory");
            assert_eq!(native.memory, baseline.memory, "{ctx}: native memory");
            assert_eq!(native.entry_regs, exec.entry_regs, "{ctx}: entry regs");
            assert_eq!(
                native.streams.as_ref().unwrap(),
                &exec.streams,
                "{ctx}: queue streams"
            );
            let steps: Vec<u64> = native.stages.iter().map(|s| s.steps).collect();
            assert_eq!(steps, exec.steps, "{ctx}: per-context steps");

            let map = PipelineMap::infer(&p);
            map.validate()
                .unwrap_or_else(|e| panic!("{ctx}: pipeline map invalid: {e}"));
        }
    }
}
