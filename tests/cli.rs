//! Integration tests of the `dswpc` binary itself: malformed inputs must
//! exit with a diagnostic (never a panic or a hang), and the `--chaos` /
//! `--deadline` flags must behave as documented.

use std::path::Path;
use std::process::{Command, Output};

fn dswpc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dswpc"))
        .args(args)
        .output()
        .expect("failed to spawn dswpc")
}

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn truncated_file_is_rejected_with_parse_error() {
    let out = dswpc(&[&fixture("malformed_truncated.ir")]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("end of input"), "stderr: {err}");
    // The diagnosis points at a real line, not a sentinel.
    assert!(err.contains("line 8"), "stderr: {err}");
}

#[test]
fn out_of_range_register_is_rejected_by_verification() {
    let out = dswpc(&[&fixture("malformed_badreg.ir")]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("invalid program"), "stderr: {err}");
}

#[test]
fn out_of_range_queue_is_rejected_by_verification() {
    let out = dswpc(&[&fixture("malformed_badqueue.ir"), "--run", "native"]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("invalid program"), "stderr: {err}");
}

#[test]
fn valid_fixture_still_runs() {
    let out = dswpc(&[&fixture("sum.ir"), "--run", "functional"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[0]=31"), "stdout: {stdout}");
}

#[test]
fn chaos_native_run_is_deterministic_per_seed_and_structured() {
    // The pipeline fixture runs on the native runtime; under a seeded
    // fault plan the outcome must be either a successful run with correct
    // memory or a structured error — and identical across invocations of
    // the same seed.
    let args = [
        fixture("pipeline.ir"),
        "--run".into(),
        "native".into(),
        "--chaos".into(),
        "7".into(),
        "--deadline".into(),
        "10000".into(),
    ];
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let a = dswpc(&argv);
    let b = dswpc(&argv);
    let plan_line = |o: &Output| {
        stderr(o)
            .lines()
            .find(|l| l.starts_with("chaos:"))
            .map(String::from)
    };
    let plan = plan_line(&a).expect("chaos plan echoed to stderr");
    assert_eq!(Some(&plan), plan_line(&b).as_ref(), "plan must be seeded");
    if a.status.success() {
        let stdout = String::from_utf8_lossy(&a.stdout);
        assert!(stdout.contains("[0]=10"), "stdout: {stdout}");
    } else {
        let err = stderr(&a);
        assert!(err.contains("native execution failed"), "stderr: {err}");
    }
}

#[test]
fn injected_stage_panic_surfaces_as_structured_error() {
    // Scan seeds for a plan that forces a panic within the first few
    // retired instructions — the pipeline fixture is tiny, so a panic
    // scheduled later would never fire. The CLI must report it as a
    // structured stage-panic error with a nonzero exit code.
    let panic_seed = (0..1_000_000u64)
        .find(|&s| {
            dswp_repro::rt::FaultPlan::from_seed(s, 2, 2)
                .stages
                .iter()
                .any(|st| st.panic_at.is_some_and(|n| n <= 5))
        })
        .expect("some seed injects an early panic");
    let out = dswpc(&[
        &fixture("pipeline.ir"),
        "--run",
        "native",
        "--chaos",
        &panic_seed.to_string(),
    ]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("panicked"), "stderr: {err}");
    assert!(err.contains("injected fault"), "stderr: {err}");
    // Stage panics get their own documented exit code.
    assert_eq!(out.status.code(), Some(12), "stderr: {err}");
}

#[test]
fn deadlocked_pipeline_exits_with_deadlock_code() {
    let out = dswpc(&[&fixture("deadlock.ir"), "--run", "native"]);
    assert_eq!(out.status.code(), Some(10), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("deadlock"), "stderr: {err}");
}

#[test]
fn exceeded_deadline_exits_with_timeout_code() {
    // Scan seeds for a plan whose only lethal fault is a permanent stall
    // firing within the pipeline fixture's handful of queue operations.
    // Under a 400 ms deadline (well below the 2 s default watchdog) the
    // run must be diagnosed as a timeout, with the timeout exit code.
    let stall_seed = (0..1_000_000u64)
        .find(|&s| {
            let plan = dswp_repro::rt::FaultPlan::from_seed(s, 2, 3);
            !plan.injects_panic()
                && !plan.injects_poison()
                && plan
                    .stages
                    .iter()
                    .any(|st| st.stall.is_some_and(|f| f.permanent && f.every <= 8))
        })
        .expect("some seed injects an early permanent stall");
    let out = dswpc(&[
        &fixture("pipeline.ir"),
        "--run",
        "native",
        "--chaos",
        &stall_seed.to_string(),
        "--deadline",
        "400",
    ]);
    assert_eq!(out.status.code(), Some(14), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("deadline"), "stderr: {err}");
}

#[test]
fn batch_flag_runs_batched_and_preserves_results() {
    for batch in ["1", "16", "auto"] {
        let out = dswpc(&[&fixture("pipeline.ir"), "--run", "native", "--batch", batch]);
        assert!(
            out.status.success(),
            "--batch {batch} stderr: {}",
            stderr(&out)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("[0]=10"),
            "--batch {batch} stdout: {stdout}"
        );
        let err = stderr(&out);
        assert!(
            err.contains("batch: base "),
            "--batch {batch} stderr: {err}"
        );
    }
}

#[test]
fn zero_batch_is_a_usage_error() {
    let out = dswpc(&[&fixture("pipeline.ir"), "--run", "native", "--batch", "0"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
}

#[test]
fn replicated_pipeline_runs_natively_with_correct_memory() {
    let out = dswpc(&[
        &fixture("doall.ir"),
        "--dswp",
        "--alias",
        "precise",
        "--replicate",
        "2",
        "--spin",
        "16,8",
        "--run",
        "native",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("replicate: stage 1 x2"), "stderr: {err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // out[0] = (3*3 + 1) ^ (3 >> 1) = 10 ^ 1 = 11, stored at word 8.
    assert!(stdout.contains("[8]=11"), "stdout: {stdout}");
    assert!(
        stdout.contains("replicas of stage 1: 2 thread(s)"),
        "stdout: {stdout}"
    );
}

#[test]
fn bad_replicate_and_spin_arguments_exit_with_usage() {
    for args in [
        vec![fixture("doall.ir"), "--replicate".into(), "0".into()],
        vec![fixture("doall.ir"), "--spin".into(), "64".into()],
        vec![fixture("doall.ir"), "--spin".into(), "a,b".into()],
    ] {
        let argv: Vec<&str> = args.iter().map(String::as_str).collect();
        let out = dswpc(&argv);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
    }
}
