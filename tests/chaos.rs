//! Chaos differential suite: every paper workload under hundreds of seeded
//! fault plans.
//!
//! The invariant (ISSUE 2 acceptance criterion): under *any* generated
//! fault plan, a native run either
//!
//! * completes and matches the interpreter/oracle results **exactly**
//!   (memory, entry registers, queue streams, per-context step counts) —
//!   mandatory for benign plans, and also required when a lethal fault
//!   never fired (e.g. a forced panic scheduled past the stage's retired
//!   instruction count); or
//! * returns a **structured [`RtError`]** consistent with the injected
//!   lethal fault — never a hang, never a panic escaping `run()`, never
//!   divergent memory.
//!
//! Fault plans are derived deterministically from seeds
//! ([`FaultPlan::from_seed`]), and the seeds themselves come from the
//! zero-dep `dswp-testutil` RNG, so any failure reproduces exactly from
//! the panic message.
//!
//! The suite is split into parallel chunks so the wall-clock cost of the
//! permanent-stall plans (each costs one watchdog interval) is spread over
//! the test harness's thread pool.

use std::time::Duration;

use dswp_repro::dswp::{dswp_loop, DswpOptions};
use dswp_repro::ir::interp::Interpreter;
use dswp_repro::ir::Program;
use dswp_repro::rt::fault::FaultPlan;
use dswp_repro::rt::{silence_injected_panics, RtConfig, RtError, Runtime};
use dswp_repro::sim::{ExecResult, Executor};
use dswp_repro::workloads::{paper_suite, Size, Workload};
use dswp_testutil::Rng;

/// Seeded fault plans per workload (the acceptance criterion demands at
/// least 200).
const PLANS_PER_WORKLOAD: usize = 200;

/// Watchdog for chaos runs: long enough that benign timing faults (delays,
/// bounded stalls) can never trip it, short enough that the handful of
/// permanent-stall plans resolve quickly.
const CHAOS_WATCHDOG: Duration = Duration::from_millis(250);

/// Hard per-run deadline: the anti-hang backstop. Any run that somehow
/// evades the watchdog still returns `RtError::Timeout` long before the CI
/// job timeout.
const CHAOS_DEADLINE: Duration = Duration::from_secs(30);

fn transform(w: &Workload) -> (Program, ExecResult) {
    let baseline = Interpreter::new(&w.program)
        .run()
        .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", w.name));
    let mut p = w.program.clone();
    let main = p.main();
    dswp_loop(
        &mut p,
        main,
        w.header,
        &baseline.profile,
        &DswpOptions::default(),
    )
    .unwrap_or_else(|e| panic!("{}: DSWP failed: {e}", w.name));
    let oracle = Executor::new(&p)
        .run()
        .unwrap_or_else(|e| panic!("{}: oracle failed: {e}", w.name));
    assert_eq!(
        oracle.memory, baseline.memory,
        "{}: oracle diverges from interpreter",
        w.name
    );
    (p, oracle)
}

/// Runs one workload under `plans` seeded plans with the given
/// communication batch size and checks the invariant for each.
fn chaos_one(w: &Workload, salt: u64, plans: usize, batch: usize) {
    let (program, oracle) = transform(w);
    chaos_run(w.name, &program, &oracle, salt, plans, batch);
}

/// The invariant check proper, over an already-transformed program and its
/// functional-executor oracle (lets callers pick non-default DSWP options,
/// e.g. replication).
fn chaos_run(
    name: &str,
    program: &Program,
    oracle: &ExecResult,
    salt: u64,
    plans: usize,
    batch: usize,
) {
    silence_injected_panics();
    let num_stages = program.num_threads();
    let num_queues = program.num_queues as usize;

    let mut rng = Rng::new(salt ^ 0x0043_4841_4F53); // "CHAOS"
    let (mut benign, mut lethal, mut completed, mut failed) = (0u32, 0u32, 0u32, 0u32);
    for _ in 0..plans {
        let seed = rng.next_u64();
        let plan = FaultPlan::from_seed(seed, num_stages, num_queues);
        if plan.is_benign() {
            benign += 1;
        } else {
            lethal += 1;
        }
        let config = RtConfig::default()
            .record_streams(true)
            .batch(batch)
            .watchdog(CHAOS_WATCHDOG)
            .deadline(CHAOS_DEADLINE)
            .faults(plan.clone());

        match Runtime::new(program).with_config(config).run() {
            Ok(r) => {
                // Completion — with or without a (never-fired) lethal fault
                // — must be indistinguishable from the clean run.
                completed += 1;
                assert_eq!(
                    r.memory, oracle.memory,
                    "{name}: memory diverged under {plan}"
                );
                assert_eq!(
                    r.entry_regs, oracle.entry_regs,
                    "{name}: entry regs diverged under {plan}"
                );
                assert_eq!(
                    r.streams.as_ref().expect("streams recorded"),
                    &oracle.streams,
                    "{name}: streams diverged under {plan}"
                );
                let steps: Vec<u64> = r.stages.iter().map(|s| s.steps).collect();
                assert_eq!(
                    steps, oracle.steps,
                    "{name}: step counts diverged under {plan}"
                );
            }
            Err(e) => {
                // Failure must be structured AND attributable to the one
                // lethal fault the plan carries.
                failed += 1;
                let consistent = match &e {
                    RtError::StagePanic { .. } => plan.injects_panic(),
                    RtError::QueuePoisoned { .. } => plan.injects_poison(),
                    RtError::Watchdog { .. } | RtError::Timeout { .. } => {
                        plan.injects_permanent_stall()
                    }
                    _ => false,
                };
                assert!(consistent, "{name}: error {e} not explained by {plan}");
            }
        }
    }

    // Distribution sanity: the generator must exercise both sides, and a
    // benign plan can never fail (checked per-run above), so failures are
    // bounded by lethal plans.
    assert!(benign > 0 && lethal > 0, "{name}: degenerate seeding");
    assert!(completed > 0, "{name}: no run completed");
    assert!(
        failed <= lethal,
        "{name}: {failed} failures from {lethal} lethal plans",
    );
}

/// Splits the suite into `total` round-robin chunks so the harness runs
/// them on parallel test threads.
fn chaos_chunk(index: usize, total: usize) {
    for (i, w) in paper_suite(Size::Test).iter().enumerate() {
        if i % total == index {
            chaos_one(w, i as u64, PLANS_PER_WORKLOAD, 1);
        }
    }
}

/// The batched analogue: chunked communication must be invisible to the
/// chaos invariant too. Every workload runs under 50 fresh seeded plans
/// with a batch of 16 — faults now land mid-chunk, flushes race poisoning,
/// and permanent stalls freeze whole chunks, yet the outcome contract is
/// unchanged.
#[test]
fn chaos_differential_batched() {
    for (i, w) in paper_suite(Size::Test).iter().enumerate() {
        chaos_one(w, 0xBA7C_0000 ^ i as u64, 50, 16);
    }
}

#[test]
fn chaos_differential_chunk_0() {
    chaos_chunk(0, 4);
}

#[test]
fn chaos_differential_chunk_1() {
    chaos_chunk(1, 4);
}

#[test]
fn chaos_differential_chunk_2() {
    chaos_chunk(2, 4);
}

#[test]
fn chaos_differential_chunk_3() {
    chaos_chunk(3, 4);
}

/// Replication under chaos: each workload whose heaviest stage legally
/// replicates (compress, jpegenc) runs its replicated pipeline under 50
/// fresh seeded fault plans. Scatter, replicas, and gather are ordinary
/// stages to the fault injector — panics poison their queues, stalls
/// freeze one replica while its siblings keep draining — and the outcome
/// contract is unchanged: bit-identical results or a structured,
/// attributable error.
#[test]
fn chaos_differential_replicated() {
    use dswp_repro::analysis::AliasMode;
    use dswp_repro::dswp::{annotate_loop_affine, Replicate};

    let mut replicated = 0;
    for (i, w) in paper_suite(Size::Test).iter().enumerate() {
        let baseline = Interpreter::new(&w.program)
            .run()
            .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", w.name));
        let mut p = w.program.clone();
        let main = p.main();
        annotate_loop_affine(&mut p, main, w.header)
            .unwrap_or_else(|e| panic!("{}: scev failed: {e}", w.name));
        let opts = DswpOptions {
            alias: AliasMode::Precise,
            replicate: Replicate::Fixed(2),
            ..DswpOptions::default()
        };
        let Ok(report) = dswp_loop(&mut p, main, w.header, &baseline.profile, &opts) else {
            continue;
        };
        if report.replication.is_empty() {
            continue;
        }
        replicated += 1;
        let oracle = Executor::new(&p)
            .run()
            .unwrap_or_else(|e| panic!("{}: oracle failed: {e}", w.name));
        assert_eq!(
            oracle.memory, baseline.memory,
            "{}: oracle diverges from interpreter",
            w.name
        );
        chaos_run(w.name, &p, &oracle, 0x5EB1_0000 ^ i as u64, 50, 1);
    }
    assert!(replicated >= 2, "only {replicated} workloads replicated");
}

/// Multi-stage replication under chaos, with batching enabled: a
/// three-stage pipeline whose two worker stages are both DOALL gets both
/// replicated (two scatter/replica/gather groups live in one program),
/// then runs under 50 seeded fault plans with a communication batch of 8.
#[test]
fn chaos_differential_multi_stage_replicated() {
    use dswp_repro::analysis::AliasMode;
    use dswp_repro::dswp::{annotate_loop_affine, Replicate};
    use dswp_repro::ir::{BinOp, BlockId, ProgramBuilder, RegionId};

    // for i in 0..48 { out[i] = hash2(hash1(in[i])) } with two chains heavy
    // enough that `--threads 3` puts them in separate replicable stages.
    let n = 48i64;
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let entry = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let exit = f.block("exit");
    let (i, bound, inb, outb, t, a_in, a_out, c) = (
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
    );
    f.switch_to(entry);
    f.iconst(i, 0);
    f.iconst(bound, n);
    f.iconst(inb, 0);
    f.iconst(outb, n);
    f.jump(header);
    f.switch_to(header);
    f.cmp_ge(t, i, bound);
    f.br(t, exit, body);
    f.switch_to(body);
    f.add(a_in, inb, i);
    f.load_region(c, a_in, 0, RegionId(0));
    for (j, op) in [
        BinOp::Mul,
        BinOp::Xor,
        BinOp::Add,
        BinOp::Mul,
        BinOp::Xor,
        BinOp::Add,
    ]
    .iter()
    .cycle()
    .take(14)
    .enumerate()
    {
        let k = f.reg();
        f.iconst(k, 0x9E37 + 131 * j as i64);
        f.binary(c, *op, c, k);
    }
    f.add(a_out, outb, i);
    f.store_region(c, a_out, 0, RegionId(1));
    f.add(i, i, 1);
    f.jump(header);
    f.switch_to(exit);
    f.halt();
    let main = f.finish();
    let mem: Vec<i64> = (0..n)
        .map(|k| (k * k * 7919 + 13) % (1 << 20))
        .chain(std::iter::repeat_n(0, n as usize))
        .collect();
    let program = pb.finish_with_memory(main, mem);

    let baseline = Interpreter::new(&program).run().expect("baseline");
    let mut p = program.clone();
    let main = p.main();
    annotate_loop_affine(&mut p, main, BlockId(1)).expect("scev");
    let opts = DswpOptions {
        alias: AliasMode::Precise,
        max_threads: 3,
        replicate: Replicate::Fixed(2),
        ..DswpOptions::default()
    };
    let report = dswp_loop(&mut p, main, BlockId(1), &baseline.profile, &opts).expect("dswp");
    assert!(
        report.replication.len() >= 2,
        "expected two replicated stages, got {:?}",
        report
            .replication
            .iter()
            .map(|r| (r.stage, r.replicas))
            .collect::<Vec<_>>()
    );
    let oracle = Executor::new(&p).run().expect("oracle");
    assert_eq!(
        oracle.memory, baseline.memory,
        "oracle diverges from interpreter"
    );
    chaos_run("two-stage-doall", &p, &oracle, 0x3157_A6E5, 50, 8);
}
