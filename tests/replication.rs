//! Parallel-stage replication: correctness against the single-threaded
//! interpreter oracle.
//!
//! The replicated pipeline must be *observably identical* to the
//! unreplicated one (and hence to the original sequential loop): same
//! final memory, same main-context registers, and — because the gather
//! restores iteration order — the same value stream on every pre-existing
//! queue. The property test drives randomly generated DOALL-shaped loops
//! through random replica counts and queue capacities on all three
//! engines.

use dswp_repro::analysis::AliasMode;
use dswp_repro::dswp::{
    annotate_loop_affine, dswp_loop, DswpOptions, DswpReport, PipelineMap, Replicate, ScatterPolicy,
};
use dswp_repro::ir::interp::Interpreter;
use dswp_repro::ir::{BinOp, Program, ProgramBuilder, RegionId};
use dswp_repro::rt::fault::DelayFault;
use dswp_repro::rt::{FaultPlan, RtConfig, Runtime};
use dswp_repro::sim::Executor;
use dswp_repro::workloads::{paper_suite, Size};
use dswp_testutil::Rng;

/// DSWP-transforms `program` with replication requested, returning the
/// transformed program, the interpreter-baseline memory of the original,
/// and the transformation report (whose `replication` entries say what was
/// actually replicated).
fn transform_replicated(
    program: &Program,
    header: dswp_repro::ir::BlockId,
    replicate: Replicate,
    scatter: ScatterPolicy,
    max_threads: usize,
) -> (Program, Vec<i64>, DswpReport) {
    let baseline = Interpreter::new(program).run().expect("baseline");
    let mut p = program.clone();
    let main = p.main();
    annotate_loop_affine(&mut p, main, header).expect("scev");
    let opts = DswpOptions {
        alias: AliasMode::Precise,
        replicate,
        scatter,
        max_threads,
        ..DswpOptions::default()
    };
    let report = dswp_loop(&mut p, main, header, &baseline.profile, &opts).expect("dswp");
    (p, baseline.memory, report)
}

/// Number of queues the pipeline had before replication added its
/// per-replica instances and control queues: on those original queues the
/// value streams must be identical no matter how iterations were routed.
fn original_queues(p: &Program, report: &DswpReport) -> usize {
    p.num_queues as usize
        - report
            .replication
            .iter()
            .map(|i| i.new_queues)
            .sum::<usize>()
}

/// Generates a random DOALL-shaped loop: `for i in 0..n { out[i] =
/// hash(in[i]) }` with a random straight-line hash chain. Every iteration
/// is independent, so the body stage is always legally replicable.
fn random_doall(rng: &mut Rng, n: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let entry = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let exit = f.block("exit");

    let (i, bound, inb, outb, t, a_in, a_out, c) = (
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
    );
    f.switch_to(entry);
    f.iconst(i, 0);
    f.iconst(bound, n);
    f.iconst(inb, 0);
    f.iconst(outb, n);
    f.jump(header);

    f.switch_to(header);
    f.cmp_ge(t, i, bound);
    f.br(t, exit, body);

    f.switch_to(body);
    f.add(a_in, inb, i);
    f.load_region(c, a_in, 0, RegionId(0));
    // A random chain of 4..10 arithmetic steps over `c` (and sometimes
    // `i`), heavy enough that the TPP heuristic puts it in its own stage.
    let steps = rng.range(4, 10);
    for _ in 0..steps {
        let op = *rng.pick(&[BinOp::Add, BinOp::Mul, BinOp::Xor, BinOp::And, BinOp::Shr]);
        let rhs = if rng.chance(1, 4) { i } else { c };
        match op {
            BinOp::Shr => {
                let k = f.reg();
                f.iconst(k, rng.range_i64(1, 5));
                f.binary(c, BinOp::Shr, c, k);
            }
            _ => {
                if rng.bool() {
                    f.binary(c, op, c, rhs);
                } else {
                    let k = f.reg();
                    f.iconst(k, rng.range_i64(1, 1 << 16));
                    f.binary(c, op, c, k);
                }
            }
        }
    }
    f.add(a_out, outb, i);
    f.store_region(c, a_out, 0, RegionId(1));
    f.add(i, i, 1);
    f.jump(header);

    f.switch_to(exit);
    f.halt();
    let main = f.finish();

    let mut mem: Vec<i64> = Vec::with_capacity(2 * n as usize);
    for k in 0..n {
        mem.push(rng.range_i64(-(1 << 30), 1 << 30).wrapping_mul(k + 1));
    }
    mem.resize(2 * n as usize, 0);
    pb.finish_with_memory(main, mem)
}

/// Generates a random *two-stage* DOALL pipeline: `for i in 0..n {
/// out[i] = hash2(hash1(in[i])) }` where `hash1` and `hash2` are separate
/// random chains heavy enough that, at `--threads 3`, the TPP heuristic
/// puts them in separate stages — both independently replicable.
fn random_two_stage_doall(rng: &mut Rng, n: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.function("main");
    let entry = f.entry_block();
    let header = f.block("header");
    let body = f.block("body");
    let exit = f.block("exit");

    let (i, bound, inb, outb, t, a_in, a_out, c) = (
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
        f.reg(),
    );
    f.switch_to(entry);
    f.iconst(i, 0);
    f.iconst(bound, n);
    f.iconst(inb, 0);
    f.iconst(outb, n);
    f.jump(header);

    f.switch_to(header);
    f.cmp_ge(t, i, bound);
    f.br(t, exit, body);

    f.switch_to(body);
    f.add(a_in, inb, i);
    f.load_region(c, a_in, 0, RegionId(0));
    // Two chains over `c`, each long enough to be its own stage.
    for _ in 0..2 {
        let steps = rng.range(6, 12);
        for _ in 0..steps {
            let op = *rng.pick(&[BinOp::Add, BinOp::Mul, BinOp::Xor, BinOp::And, BinOp::Shr]);
            match op {
                BinOp::Shr => {
                    let k = f.reg();
                    f.iconst(k, rng.range_i64(1, 5));
                    f.binary(c, BinOp::Shr, c, k);
                }
                _ => {
                    let k = f.reg();
                    f.iconst(k, rng.range_i64(1, 1 << 16));
                    f.binary(c, op, c, k);
                }
            }
        }
    }
    f.add(a_out, outb, i);
    f.store_region(c, a_out, 0, RegionId(1));
    f.add(i, i, 1);
    f.jump(header);

    f.switch_to(exit);
    f.halt();
    let main = f.finish();

    let mut mem: Vec<i64> = Vec::with_capacity(2 * n as usize);
    for k in 0..n {
        mem.push(rng.range_i64(-(1 << 30), 1 << 30).wrapping_mul(k + 1));
    }
    mem.resize(2 * n as usize, 0);
    pb.finish_with_memory(main, mem)
}

/// Runs `p` on the executor and the native runtime and checks both against
/// the interpreter-baseline memory, including queue streams and
/// per-context retired-step counts (native vs executor).
fn check_all_engines(ctx: &str, p: &Program, baseline_memory: &[i64], cfg: RtConfig) {
    let exec = Executor::new(p)
        .run()
        .unwrap_or_else(|e| panic!("{ctx}: executor failed: {e}"));
    assert_eq!(exec.memory, baseline_memory, "{ctx}: executor memory");
    let native = Runtime::new(p)
        .with_config(cfg.record_streams(true))
        .run()
        .unwrap_or_else(|e| panic!("{ctx}: native runtime failed: {e}"));
    assert_eq!(native.memory, baseline_memory, "{ctx}: native memory");
    assert_eq!(native.entry_regs, exec.entry_regs, "{ctx}: entry regs");
    assert_eq!(
        native.streams.as_ref().unwrap(),
        &exec.streams,
        "{ctx}: queue streams"
    );
    let steps: Vec<u64> = native.stages.iter().map(|s| s.steps).collect();
    assert_eq!(steps, exec.steps, "{ctx}: per-context steps");
}

/// The work-stealing analogue of [`check_all_engines`]: under
/// `ScatterPolicy::WorkStealing` the native scatter's routing depends on
/// real queue occupancy, so per-context step counts and the streams of the
/// replication-internal queues legitimately differ between engines. What
/// may *never* differ: final memory, main-context registers, and the value
/// stream of every queue that existed before replication (the gather
/// restores iteration order regardless of routing).
fn check_engines_stealing(
    ctx: &str,
    p: &Program,
    baseline_memory: &[i64],
    cfg: RtConfig,
    original_queues: usize,
) {
    let exec = Executor::new(p)
        .run()
        .unwrap_or_else(|e| panic!("{ctx}: executor failed: {e}"));
    assert_eq!(exec.memory, baseline_memory, "{ctx}: executor memory");
    let native = Runtime::new(p)
        .with_config(cfg.record_streams(true))
        .run()
        .unwrap_or_else(|e| panic!("{ctx}: native runtime failed: {e}"));
    assert_eq!(native.memory, baseline_memory, "{ctx}: native memory");
    assert_eq!(native.entry_regs, exec.entry_regs, "{ctx}: entry regs");
    let native_streams = native.streams.as_ref().unwrap();
    for (q, native_stream) in native_streams.iter().enumerate().take(original_queues) {
        assert_eq!(
            *native_stream, exec.streams[q],
            "{ctx}: stream of pre-existing queue {q}"
        );
    }
}

#[test]
fn replicated_compress_matches_interpreter() {
    let w = dswp_repro::workloads::compress::build(Size::Test);
    for replicas in [2usize, 3, 4] {
        let (p, mem, report) = transform_replicated(
            &w.program,
            w.header,
            Replicate::Fixed(replicas),
            ScatterPolicy::RoundRobin,
            2,
        );
        assert!(
            !report.replication.is_empty(),
            "compress must replicate at {replicas}"
        );
        check_all_engines(
            &format!("compress x{replicas}"),
            &p,
            &mem,
            RtConfig::default(),
        );
    }
}

#[test]
fn replication_property_random_doall_loops() {
    let mut rng = Rng::new(0xD05_11A5);
    let mut applied_count = 0;
    let cases = dswp_testutil::cases(12);
    for case in 0..cases {
        let p = random_doall(&mut rng, 48);
        let replicas = rng.range(1, 9);
        let capacity = *rng.pick(&[1usize, 2, 8, 32]);
        let (tp, mem, report) = transform_replicated(
            &p,
            dswp_repro::ir::BlockId(1),
            Replicate::Fixed(replicas),
            ScatterPolicy::RoundRobin,
            2,
        );
        if !report.replication.is_empty() {
            applied_count += 1;
        } else {
            assert!(
                replicas < 2,
                "case {case}: replication refused at {replicas}"
            );
        }
        let ctx = format!("case {case} (x{replicas}, cap {capacity})");
        check_all_engines(
            &ctx,
            &tp,
            &mem,
            RtConfig::default().queue_capacity(capacity),
        );
        // Batching composes with replication.
        check_all_engines(
            &format!("{ctx} batched"),
            &tp,
            &mem,
            RtConfig::default().queue_capacity(32).batch(8),
        );
    }
    assert!(
        applied_count >= cases / 2,
        "replication applied in only {applied_count}/{cases} cases"
    );
}

/// Multi-stage replication: random pipelines with two replicable stages,
/// `Fixed(k)` replicating both, checked bit-exactly on all engines (with
/// and without batching).
#[test]
fn multi_stage_replication_composes() {
    let mut rng = Rng::new(0x2057_A6E5);
    let mut multi = 0;
    let cases = dswp_testutil::cases(8);
    for case in 0..cases {
        let p = random_two_stage_doall(&mut rng, 40);
        let replicas = rng.range(2, 5);
        let capacity = *rng.pick(&[2usize, 8, 32]);
        let (tp, mem, report) = transform_replicated(
            &p,
            dswp_repro::ir::BlockId(1),
            Replicate::Fixed(replicas),
            ScatterPolicy::RoundRobin,
            3,
        );
        if report.replication.len() >= 2 {
            multi += 1;
        }
        let ctx = format!("two-stage case {case} (x{replicas}, cap {capacity})");
        check_all_engines(
            &ctx,
            &tp,
            &mem,
            RtConfig::default().queue_capacity(capacity),
        );
        check_all_engines(
            &format!("{ctx} batched"),
            &tp,
            &mem,
            RtConfig::default().queue_capacity(32).batch(8),
        );
    }
    assert!(
        multi >= cases / 2,
        "two replicable stages in only {multi}/{cases} cases"
    );
}

/// Work-stealing scatter: for random single- and multi-stage DOALL
/// pipelines across replica counts and capacities, the stealing pipeline's
/// observable results are bit-identical to round-robin's on every engine —
/// even when one replica per group is artificially slowed (a benign
/// injected delay), which is exactly the skew that makes the routing
/// policies dispatch differently.
#[test]
fn work_stealing_matches_round_robin() {
    let mut rng = Rng::new(0x57EA_11B5);
    let mut exercised = 0;
    let cases = dswp_testutil::cases(8);
    for case in 0..cases {
        let (p, threads) = if rng.bool() {
            (random_two_stage_doall(&mut rng, 40), 3)
        } else {
            (random_doall(&mut rng, 48), 2)
        };
        let replicas = rng.range(2, 5);
        let capacity = *rng.pick(&[2usize, 4, 8]);
        let header = dswp_repro::ir::BlockId(1);
        let (rr, mem, rep_rr) = transform_replicated(
            &p,
            header,
            Replicate::Fixed(replicas),
            ScatterPolicy::RoundRobin,
            threads,
        );
        let (ws, mem_ws, rep_ws) = transform_replicated(
            &p,
            header,
            Replicate::Fixed(replicas),
            ScatterPolicy::WorkStealing,
            threads,
        );
        assert_eq!(mem, mem_ws, "case {case}: baselines differ");
        assert_eq!(
            rep_rr.replication.len(),
            rep_ws.replication.len(),
            "case {case}: policies replicated different stage sets"
        );
        if rep_ws.replication.is_empty() {
            continue;
        }
        exercised += 1;

        // Deterministic executor: both policies, bit-identical observables
        // on every queue that existed before replication.
        let e_rr = Executor::new(&rr)
            .run()
            .unwrap_or_else(|e| panic!("case {case}: round-robin executor failed: {e}"));
        let e_ws = Executor::new(&ws)
            .run()
            .unwrap_or_else(|e| panic!("case {case}: stealing executor failed: {e}"));
        assert_eq!(e_rr.memory, mem, "case {case}: round-robin memory");
        assert_eq!(e_ws.memory, mem, "case {case}: stealing memory");
        assert_eq!(
            e_rr.entry_regs, e_ws.entry_regs,
            "case {case}: entry regs differ between policies"
        );
        let oq = original_queues(&ws, &rep_ws);
        for q in 0..oq {
            assert_eq!(
                e_rr.streams[q], e_ws.streams[q],
                "case {case}: pre-existing queue {q} stream differs between policies"
            );
        }

        // Native runtime under skew: slow down the first replica of every
        // group so the scatter's depth feedback actually fires. The delay
        // is benign (timing-only), so results must not move.
        let map = PipelineMap::infer(&ws);
        let mut plan = FaultPlan::none(ws.num_threads());
        for g in map.replica_groups(&ws) {
            plan = plan.with_delay(
                g.replica_threads[0],
                DelayFault {
                    every: 1,
                    spins: 200,
                },
            );
        }
        let ctx = format!("case {case} (x{replicas}, cap {capacity}, skewed)");
        check_engines_stealing(
            &ctx,
            &ws,
            &mem,
            RtConfig::default()
                .queue_capacity(capacity)
                .faults(plan.clone()),
            oq,
        );
        // And batching composes with stealing.
        check_engines_stealing(
            &format!("{ctx} batched"),
            &ws,
            &mem,
            RtConfig::default().queue_capacity(32).batch(8).faults(plan),
            oq,
        );
    }
    assert!(
        exercised >= cases / 2,
        "stealing exercised in only {exercised}/{cases} cases"
    );
}

#[test]
fn replicate_auto_picks_doall_stages() {
    for w in paper_suite(Size::Test) {
        let baseline = Interpreter::new(&w.program).run().expect("baseline");
        let mut p = w.program.clone();
        let main = p.main();
        annotate_loop_affine(&mut p, main, w.header).expect("scev");
        let opts = DswpOptions {
            alias: AliasMode::Precise,
            replicate: Replicate::Auto { cores: Some(4) },
            ..DswpOptions::default()
        };
        let Ok(report) = dswp_loop(&mut p, main, w.header, &baseline.profile, &opts) else {
            continue; // single-SCC / unprofitable workloads are not at issue
        };
        // `compress` and `jpegenc` are DOALL as written; `art` is only
        // DOALL after accumulator expansion (its partial sums are real
        // carried recurrences), so replication must refuse it.
        if w.name.contains("compress") || w.name.contains("jpeg") {
            let info = report
                .replication
                .first()
                .unwrap_or_else(|| panic!("{}: DOALL workload did not replicate", w.name));
            assert!(info.replicas >= 2, "{}: degenerate replica count", w.name);
        } else {
            assert!(
                report.replication.is_empty() || w.doall,
                "{}: unexpected replication of a non-DOALL workload",
                w.name
            );
        }
        check_all_engines(w.name, &p, &baseline.memory, RtConfig::default());
    }
}
