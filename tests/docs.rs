//! Documentation-drift tests: the docs are part of the contract, so CI
//! fails when they fall out of sync with the code.
//!
//! Three checks, all offline and dependency-free:
//!
//! 1. every flag `dswpc --help` prints is documented in `README.md`;
//! 2. the README exit-code table matches the `RtError` → exit-code
//!    mapping in `src/bin/dswpc.rs` (parsed from the source, so adding a
//!    variant without updating the table — or this test's description
//!    map — fails);
//! 3. every relative markdown link and every `tests/fixtures/*.ir`
//!    reference in the top-level documents resolves to a real file.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// The workspace root (this integration test belongs to the root crate).
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn read(rel: &str) -> String {
    let path = repo_root().join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// Extracts every `--flag` token (lowercase letters and dashes) from text.
fn extract_flags(text: &str) -> BTreeSet<String> {
    let bytes = text.as_bytes();
    let mut flags = BTreeSet::new();
    let mut i = 0;
    while i + 2 < bytes.len() {
        if &bytes[i..i + 2] == b"--" && bytes[i + 2].is_ascii_lowercase() {
            let mut j = i + 2;
            while j < bytes.len() && (bytes[j].is_ascii_lowercase() || bytes[j] == b'-') {
                j += 1;
            }
            flags.insert(text[i..j].to_string());
            i = j;
        } else {
            i += 1;
        }
    }
    flags
}

#[test]
fn every_help_flag_is_documented_in_readme() {
    let out = Command::new(env!("CARGO_BIN_EXE_dswpc"))
        .arg("--help")
        .output()
        .expect("run dswpc --help");
    assert!(out.status.success(), "dswpc --help must exit 0");
    let help = String::from_utf8(out.stdout).expect("help output is UTF-8");
    assert!(help.starts_with("usage:"), "help prints the usage synopsis");

    let help_flags = extract_flags(&help);
    assert!(
        help_flags.len() >= 15,
        "flag extraction looks broken: only {help_flags:?}"
    );
    let readme = read("README.md");
    let readme_flags = extract_flags(&readme);
    let missing: Vec<&String> = help_flags.difference(&readme_flags).collect();
    assert!(
        missing.is_empty(),
        "flags in `dswpc --help` but not documented in README.md: {missing:?}"
    );
}

#[test]
fn readme_exit_code_table_matches_driver() {
    // Human-readable meaning of each RtError variant, as the README table
    // words it. Kept here (not derived from the variant name) so wording
    // drift is caught too.
    let meanings = [
        ("Deadlock", "deadlock"),
        ("Watchdog", "watchdog"),
        ("StagePanic", "stage panic"),
        ("QueuePoisoned", "queue poisoned"),
        ("Timeout", "deadline timeout"),
        ("Cancelled", "cancelled"),
        ("MemoryOutOfBounds", "memory out of bounds"),
        ("BadIndirectTarget", "bad indirect call target"),
        ("StepLimit", "step limit exceeded"),
        ("ReturnFromEntry", "return from entry function"),
    ];

    // Parse the `RtError::Variant { .. } => code,` arms out of the driver
    // source. Deliberately narrow: only lines inside `fn rt_exit_code`.
    let src = read("src/bin/dswpc.rs");
    let body = src
        .split("fn rt_exit_code")
        .nth(1)
        .expect("src/bin/dswpc.rs defines rt_exit_code");
    let mut mapping: Vec<(&str, u8)> = Vec::new();
    for line in body.lines() {
        // The match patterns themselves contain `{ .. }`, so the body
        // ends at the first line that is nothing but a closing brace.
        if line.trim() == "}" {
            break;
        }
        let Some(rest) = line.trim().strip_prefix("RtError::") else {
            continue;
        };
        let variant = rest
            .split(|c: char| !c.is_ascii_alphanumeric())
            .next()
            .unwrap();
        let code: u8 = rest
            .split("=>")
            .nth(1)
            .unwrap_or_else(|| panic!("malformed arm: {line}"))
            .trim()
            .trim_end_matches(',')
            .parse()
            .unwrap_or_else(|e| panic!("bad exit code in arm `{line}`: {e}"));
        mapping.push((variant, code));
    }
    assert_eq!(
        mapping.len(),
        meanings.len(),
        "rt_exit_code arms {mapping:?} vs known meanings — update both this \
         test and the README table when RtError changes"
    );

    let readme = read("README.md");
    for (variant, code) in mapping {
        let meaning = meanings
            .iter()
            .find(|(v, _)| *v == variant)
            .unwrap_or_else(|| panic!("no README wording registered for RtError::{variant}"))
            .1;
        let cell = format!("| {code} |");
        let row = readme
            .lines()
            .find(|l| l.contains(&cell))
            .unwrap_or_else(|| panic!("README exit-code table has no row for code {code}"));
        assert!(
            row.to_lowercase().contains(meaning),
            "README row for exit code {code} should say \"{meaning}\" \
             (RtError::{variant}); got: {row}"
        );
    }
}

/// Collects `](target)` link targets from markdown text.
fn extract_links(text: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find("](") {
        rest = &rest[pos + 2..];
        if let Some(end) = rest.find(')') {
            links.push(rest[..end].to_string());
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    links
}

/// Collects `tests/fixtures/...` path references from anywhere in the
/// text, including code blocks and shell transcripts.
fn extract_fixture_refs(text: &str) -> BTreeSet<String> {
    let mut refs = BTreeSet::new();
    let mut rest = text;
    while let Some(pos) = rest.find("tests/fixtures/") {
        let tail = &rest[pos..];
        let end = tail
            .find(|c: char| !(c.is_ascii_alphanumeric() || "/._-".contains(c)))
            .unwrap_or(tail.len());
        let path = tail[..end].trim_end_matches('.');
        // Only concrete file references; globs like `*.ir` in prose and
        // the bare directory name are not checkable paths.
        if path.ends_with(".ir") {
            refs.insert(path.to_string());
        }
        rest = &rest[pos + 1..];
    }
    refs
}

#[test]
fn markdown_links_and_fixture_refs_resolve() {
    let docs = [
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "ARCHITECTURE.md",
    ];
    let root = repo_root();
    let mut broken: Vec<String> = Vec::new();
    for doc in docs {
        let text = read(doc);
        for link in extract_links(&text) {
            if link.starts_with("http://")
                || link.starts_with("https://")
                || link.starts_with("mailto:")
                || link.starts_with('#')
            {
                continue;
            }
            // Relative links are written repo-root-relative (all four
            // documents live at the root); drop any #fragment.
            let target = link.split('#').next().unwrap();
            if target.is_empty() {
                continue;
            }
            if !root.join(target).exists() {
                broken.push(format!("{doc}: broken link `{link}`"));
            }
        }
        for fixture in extract_fixture_refs(&text) {
            if !root.join(&fixture).exists() {
                broken.push(format!("{doc}: missing fixture `{fixture}`"));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "dangling references:\n{}",
        broken.join("\n")
    );
    // Guard against the checker silently checking nothing.
    assert!(
        extract_links(&read("ARCHITECTURE.md"))
            .iter()
            .any(|l| Path::new(l).extension().is_some()),
        "ARCHITECTURE.md should contain relative file links"
    );
}
