//! Tests of the textual IR pipeline a `dswpc` user sees: parse a
//! hand-written fixture, transform it, emit it, parse the emission, and get
//! identical results everywhere.

use dswp_repro::dswp::{dswp_loop, select_loop, DswpOptions};
use dswp_repro::ir::interp::Interpreter;
use dswp_repro::ir::{parse_program, to_text};
use dswp_repro::sim::{Executor, Machine, MachineConfig};

const FIXTURE: &str = include_str!("fixtures/list.ir");

#[test]
fn fixture_parses_and_runs() {
    let p = parse_program(FIXTURE).unwrap();
    let r = Interpreter::new(&p).run().unwrap();
    // Every node's value was incremented: 5,6,7,8 → 6,7,8,9.
    assert_eq!(r.memory[9], 6);
    assert_eq!(r.memory[15], 9);
}

#[test]
fn fixture_full_cli_pipeline() {
    let mut p = parse_program(FIXTURE).unwrap();
    let main = p.main();
    let baseline = Interpreter::new(&p).run().unwrap();
    let header = select_loop(&p, main, &baseline.profile, 2.0).unwrap();
    dswp_loop(&mut p, main, header, &baseline.profile, &DswpOptions::default()).unwrap();

    // Emit → parse → run, as `dswpc --emit` then `dswpc --sim` would.
    let text = to_text(&p);
    let reparsed = parse_program(&text).unwrap();
    let exec = Executor::new(&reparsed).run().unwrap();
    assert_eq!(exec.memory, baseline.memory);
    let sim = Machine::new(&reparsed, MachineConfig::full_width()).run().unwrap();
    assert_eq!(sim.memory, baseline.memory);
    assert_eq!(sim.cores.len(), 2);
}

#[test]
fn parse_errors_are_actionable() {
    let bad = FIXTURE.replace("r2 = add r2, 1", "r2 = bogus r2, 1");
    let err = parse_program(&bad).unwrap_err();
    assert!(err.line > 0);
    assert!(err.message.contains("bogus"), "{err}");
}
